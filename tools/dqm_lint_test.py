#!/usr/bin/env python3
"""Golden test for tools/dqm_lint.py.

Runs the linter over the seeded fixture tree and compares the findings,
line for line, against tools/lint_fixtures/golden.txt. The fixtures carry at
least one deliberate violation per rule plus a clean counterpart proving
each allowlist and the `// dqm-lint: allow(<rule>)` suppression, so a rule
that silently stops firing (or starts over-firing) breaks this test rather
than surfacing months later in review.

Also asserts a handful of unit-level properties of the comment/string
stripper that the rules lean on.

Usage: tools/dqm_lint_test.py   (exits non-zero on any mismatch)
"""

import subprocess
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
FIXTURES = TOOLS / "lint_fixtures" / "src"
GOLDEN = TOOLS / "lint_fixtures" / "golden.txt"

sys.path.insert(0, str(TOOLS))
import dqm_lint  # noqa: E402


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def test_stripper():
    code, comments = dqm_lint.strip_comments_and_strings(
        'a = 1;  // std::mutex in a comment\n'
        'b = "std::mutex in a string";\n'
        '/* block\n'
        '   std::lock_guard */ c = 2;\n'
        "char q = '\"';  // quote char must not open a string\n")
    if any("std::mutex" in line for line in code):
        fail("stripper leaked comment/string text into code lines")
    if "std::mutex in a comment" not in comments[0]:
        fail("stripper lost comment text needed by check-discipline")
    if len(code) != 6:  # 5 input lines + trailing empty
        fail(f"stripper changed line structure: {len(code)} lines")
    if "c = 2;" not in code[3]:
        fail("stripper dropped code after a block comment close")


def test_fixture_golden():
    result = subprocess.run(
        [sys.executable, str(TOOLS / "dqm_lint.py"), "--root", str(FIXTURES)],
        capture_output=True, text=True)
    if result.returncode != 1:
        fail(f"expected exit 1 on fixtures, got {result.returncode}\n"
             f"stderr: {result.stderr}")
    actual = result.stdout.splitlines()
    expected = GOLDEN.read_text().splitlines()
    # The golden is recorded with --root tools/lint_fixtures/src from the
    # repo root; normalize to the path-independent tail.
    if actual != expected:
        diff = "\n".join(
            f"  -{e}" for e in expected if e not in actual) + "\n" + "\n".join(
            f"  +{a}" for a in actual if a not in expected)
        fail(f"fixture findings diverge from golden.txt:\n{diff}")
    rules = {line.split("[", 1)[1].split("]", 1)[0]
             for line in actual if "[" in line}
    missing = {"raw-sync", "raw-syscall", "seqlock", "metric-name",
               "check-discipline", "include-hygiene"} - rules
    if missing:
        fail(f"fixtures no longer exercise rule(s): {sorted(missing)}")


def test_allowlists_and_suppressions():
    findings = GOLDEN.read_text()
    if "common/mutex.h:" in findings:
        fail("raw-sync allowlist regressed: the mutex.h twin was flagged")
    if "bad_mutex.cc:25" in findings:
        fail("dqm-lint: allow(raw-sync) suppression regressed")
    if "bad_check.cc:14" in findings:
        fail("'// invariant:' justification no longer satisfies "
             "check-discipline")
    if "bad_check.cc:16" in findings:
        fail("dqm-lint: allow(check-discipline) suppression regressed")
    if "kGoodCounter" in findings or "dqm_good_counter_total" in findings:
        fail("a grammar-conforming name in metric_names.h was flagged")
    if "wal.cc:20" in findings:
        fail("dqm-lint: allow(raw-syscall) suppression regressed")


def main():
    test_stripper()
    test_fixture_golden()
    test_allowlists_and_suppressions()
    print("dqm_lint_test: OK")


if __name__ == "__main__":
    main()
