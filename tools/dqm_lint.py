#!/usr/bin/env python3
"""DQM source lint: project-specific concurrency and telemetry contracts.

Rules (each suppressible on a single line with `// dqm-lint: allow(<rule>)`):

  raw-sync          std::mutex / std::lock_guard / <mutex> and friends are
                    allowed only inside src/common/mutex.{h,cc}. Everything
                    else must use the annotated dqm::Mutex wrappers, or the
                    Clang thread-safety analysis and the debug lock-order
                    checker silently lose coverage.

  seqlock           Sequence-word manipulation (the `seq`/`seq_` atomic
                    odd/even protocol) is allowed only inside the audited
                    seqlock implementations: engine/session.{h,cc}
                    (SnapshotCell) and telemetry/flight_recorder.{h,cc}.
                    Everyone else consumes those helpers; hand-rolled
                    seqlocks are where fences go missing.

  metric-name       Every exported metric name lives in
                    telemetry/metric_names.h and must match the canonical
                    grammar `dqm_[a-z][a-z0-9_]*`. A "dqm_*" string literal
                    anywhere else in src/ bypasses the registry of record.

  check-discipline  A DQM_CHECK in a serving path (src/engine/,
                    src/crowd/response_log.*) aborts the process for every
                    caller of the engine. Each one must carry an
                    `// invariant:` justification in the preceding lines,
                    forcing the author to state why the condition is a
                    programming invariant rather than a recoverable error
                    (which belongs in a Status return).

  include-hygiene   Project headers are included with quotes relative to
                    src/ (never angle brackets); standard headers with
                    angle brackets (never quotes); every header under src/
                    carries a DQM_*_H_ include guard.

  raw-syscall       Inside the failpoint-instrumented durability sources
                    (the FAILPOINT_WRAPPED_GLOBS patterns: crowd/wal*.cc,
                    engine/durability*.cc, engine/replication*.cc), raw
                    POSIX I/O calls (::write, ::fsync, ::rename, ::pread,
                    ...) are forbidden: every syscall edge must go through
                    the crowd/io.h wrappers so fault injection, retry, and
                    the dqm_wal_retries_total accounting see it. A raw call
                    is an edge chaos tests cannot reach. The patterns are
                    globs, not a file list, so a new WAL or replication TU
                    is covered the day it lands.

Usage:
  tools/dqm_lint.py --root src [--compile-commands build/compile_commands.json]
  tools/dqm_lint.py --root tools/lint_fixtures/src

Exits 0 when clean; exits 1 and prints `file:line: [rule] message` per
finding otherwise. With --compile-commands, the file set is the union of the
compiled TUs under --root and all headers under --root (headers never appear
as TUs); without it, every *.h/*.cc under --root is scanned.
"""

import argparse
import fnmatch
import json
import re
import sys
from pathlib import Path

# --- file-set policy (paths relative to the scanned root) -------------------

RAW_SYNC_ALLOWED = {"common/mutex.h", "common/mutex.cc"}
SEQLOCK_ALLOWED = {
    "engine/session.h",
    "engine/session.cc",
    "telemetry/flight_recorder.h",
    "telemetry/flight_recorder.cc",
}
METRIC_NAMES_HEADER = "telemetry/metric_names.h"
SERVING_PATH_PREFIXES = ("engine/",)
SERVING_PATH_FILES = ("crowd/response_log.h", "crowd/response_log.cc")
# Glob patterns (fnmatch, matched against the src/-relative path) naming the
# sources whose syscall edges are failpoint-instrumented: every POSIX I/O
# call must route through the crowd/io.h wrappers (crowd/io.cc itself is
# the one place the raw calls live, and stays exempt). Globs rather than a
# file list so a new durability-touching TU (a wal_*.cc split, a second
# replication transport) is covered without editing this policy.
FAILPOINT_WRAPPED_GLOBS = (
    "crowd/wal*.cc",
    "engine/durability*.cc",
    "engine/replication*.cc",
)

# --- rule patterns ----------------------------------------------------------

RAW_SYNC_TOKENS = re.compile(
    r"std\s*::\s*(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std\s*::\s*condition_variable(?:_any)?\b"
)
RAW_SYNC_INCLUDES = re.compile(
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
)
SEQLOCK_TOKENS = re.compile(
    r"\bseq_?\s*\.\s*(?:load|store|fetch_add|exchange|compare_exchange\w*)\s*\("
    r"|std\s*::\s*atomic\s*<\s*\w+\s*>\s+seq_?\b"
)
METRIC_LITERAL = re.compile(r'"(dqm_[^"]*)"')
METRIC_GRAMMAR = re.compile(r"dqm_[a-z][a-z0-9_]*$")
DQM_CHECK_STMT = re.compile(r"^\s*DQM_CHECK(?:_[A-Z]+)?\s*\(")
INVARIANT_TAG = re.compile(r"invariant:")
# How far above a DQM_CHECK the `// invariant:` justification may sit. Four
# lines lets one comment cover a small cluster of adjacent checks.
INVARIANT_WINDOW = 4
QUOTED_STD_HEADERS = {
    "algorithm", "array", "atomic", "bit", "cstdint", "cstdio", "cstdlib",
    "cstring", "deque", "functional", "future", "map", "memory", "mutex",
    "optional", "shared_mutex", "condition_variable", "span", "sstream",
    "string", "string_view", "thread", "utility", "vector",
}
INCLUDE_LINE = re.compile(r'#\s*include\s*(<([^>]+)>|"([^"]+)")')
# Global-scope POSIX I/O calls (the leading `::` with no qualifier before
# it keeps namespaced wrappers like io::Open out of scope).
RAW_SYSCALL = re.compile(
    r"(?<![\w:])::\s*(write|pwrite|pwritev|read|pread|preadv|fsync"
    r"|fdatasync|rename|renameat|ftruncate|open|openat)\s*\(")
SUPPRESS = re.compile(r"dqm-lint:\s*allow\(([a-z-]+)\)")


def strip_comments_and_strings(text):
    """Blank out comments and string literals, preserving line structure.

    Returns (code_lines, comment_lines): per-line views where code_lines has
    comments/strings blanked (strings become `""`) and comment_lines holds
    only the comment text (for rules that inspect comments).
    """
    code = []
    comments = []
    i = 0
    n = len(text)
    code_buf = []
    comment_buf = []
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                code_buf.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                i += 1
                continue
            if c == "\n":
                code.append("".join(code_buf))
                comments.append("".join(comment_buf))
                code_buf, comment_buf = [], []
            else:
                code_buf.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                code.append("".join(code_buf))
                comments.append("".join(comment_buf))
                code_buf, comment_buf = [], []
            else:
                comment_buf.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                code.append("".join(code_buf))
                comments.append("".join(comment_buf))
                code_buf, comment_buf = [], []
            else:
                comment_buf.append(c)
            i += 1
        elif state == "string":
            if c == "\\":
                i += 2
                continue
            if c == '"':
                state = "code"
                code_buf.append('"')
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                code.append("".join(code_buf))
                comments.append("".join(comment_buf))
                code_buf, comment_buf = [], []
            i += 1
        elif state == "char":
            if c == "\\":
                i += 2
                continue
            if c == "'" or c == "\n":
                state = "code"
            i += 1
    code.append("".join(code_buf))
    comments.append("".join(comment_buf))
    return code, comments


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, rel, lineno, rule, message, raw_line):
        m = SUPPRESS.search(raw_line)
        if m and m.group(1) == rule:
            return
        self.findings.append((str(rel), lineno, rule, message))

    def lint_file(self, path):
        rel = path.relative_to(self.root).as_posix()
        text = path.read_text(encoding="utf-8")
        raw_lines = text.split("\n")
        code_lines, comment_lines = strip_comments_and_strings(text)

        self._raw_sync(rel, raw_lines, code_lines)
        self._raw_syscall(rel, raw_lines, code_lines)
        self._seqlock(rel, raw_lines, code_lines)
        self._metric_name(rel, raw_lines)
        self._check_discipline(rel, raw_lines, code_lines, comment_lines)
        self._include_hygiene(path, rel, raw_lines, code_lines)

    # -- raw-sync -----------------------------------------------------------

    def _raw_sync(self, rel, raw, code):
        if rel in RAW_SYNC_ALLOWED:
            return
        for i, line in enumerate(code):
            m = RAW_SYNC_TOKENS.search(line) or RAW_SYNC_INCLUDES.search(line)
            if m:
                self.report(
                    rel, i + 1, "raw-sync",
                    f"raw standard-library synchronization ('{m.group(0)}') "
                    "outside common/mutex.h; use the annotated dqm::Mutex "
                    "wrappers so the thread-safety analysis and lock-order "
                    "checker see this lock",
                    raw[i])

    # -- raw-syscall --------------------------------------------------------

    def _raw_syscall(self, rel, raw, code):
        if not any(fnmatch.fnmatch(rel, g) for g in FAILPOINT_WRAPPED_GLOBS):
            return
        for i, line in enumerate(code):
            m = RAW_SYSCALL.search(line)
            if m:
                self.report(
                    rel, i + 1, "raw-syscall",
                    f"raw ::{m.group(1)}() in a failpoint-instrumented file; "
                    "route it through the crowd/io.h wrappers so fault "
                    "injection, transient-errno retry, and the retry "
                    "counters see this edge",
                    raw[i])

    # -- seqlock ------------------------------------------------------------

    def _seqlock(self, rel, raw, code):
        if rel in SEQLOCK_ALLOWED:
            return
        for i, line in enumerate(code):
            m = SEQLOCK_TOKENS.search(line)
            if m:
                self.report(
                    rel, i + 1, "seqlock",
                    "sequence-word manipulation outside the audited seqlock "
                    "implementations (SnapshotCell, FlightRecorder); consume "
                    "their snapshot helpers instead of hand-rolling the "
                    "odd/even protocol",
                    raw[i])

    # -- metric-name --------------------------------------------------------

    def _metric_name(self, rel, raw):
        # Scan raw lines: the literals live inside strings, which the
        # comment stripper blanks. Comment-only mentions of dqm_* names (docs
        # quote them) are fine because we require the surrounding quotes and
        # skip pure-comment lines.
        for i, line in enumerate(raw):
            stripped = line.lstrip()
            if stripped.startswith("//") or stripped.startswith("*"):
                continue
            for m in METRIC_LITERAL.finditer(line):
                name = m.group(1)
                if rel == METRIC_NAMES_HEADER:
                    if not METRIC_GRAMMAR.match(name):
                        self.report(
                            rel, i + 1, "metric-name",
                            f"metric name '{name}' violates the canonical "
                            "grammar dqm_[a-z][a-z0-9_]*",
                            line)
                else:
                    self.report(
                        rel, i + 1, "metric-name",
                        f"metric name literal '{name}' outside "
                        "telemetry/metric_names.h; add a constant there and "
                        "reference it so the exposition surface stays "
                        "reviewable in one place",
                        line)

    # -- check-discipline ---------------------------------------------------

    def _check_discipline(self, rel, raw, code, comments):
        serving = rel.startswith(SERVING_PATH_PREFIXES) or rel in SERVING_PATH_FILES
        if not serving:
            return
        for i, line in enumerate(code):
            if not DQM_CHECK_STMT.match(line):
                continue
            lo = max(0, i - INVARIANT_WINDOW)
            window = comments[lo:i + 1]
            if not any(INVARIANT_TAG.search(c) for c in window):
                self.report(
                    rel, i + 1, "check-discipline",
                    "DQM_CHECK in a serving path without an '// invariant:' "
                    "justification; if the condition can be caused by caller "
                    "input it must return a Status, and if it cannot, say "
                    "why in an invariant comment",
                    raw[i])

    # -- include-hygiene ----------------------------------------------------

    def _include_hygiene(self, path, rel, raw, code):
        is_header = rel.endswith(".h")
        guard_expected = "DQM_" + re.sub(r"[\/.]", "_", rel).upper() + "_"
        if is_header:
            if f"#ifndef {guard_expected}" not in "\n".join(raw):
                self.report(
                    rel, 1, "include-hygiene",
                    f"header missing include guard '{guard_expected}' "
                    "(#ifndef/#define pair named after the src/-relative "
                    "path)",
                    raw[0] if raw else "")
        for i, line in enumerate(code):
            m = INCLUDE_LINE.search(line)
            if not m:
                continue
            angle, quoted = m.group(2), m.group(3)
            if angle is not None:
                if (self.root / angle).exists():
                    self.report(
                        rel, i + 1, "include-hygiene",
                        f"project header <{angle}> included with angle "
                        "brackets; use quotes so the project include root "
                        "is searched first",
                        raw[i])
            else:
                if quoted in QUOTED_STD_HEADERS:
                    self.report(
                        rel, i + 1, "include-hygiene",
                        f'standard header "{quoted}" included with quotes; '
                        "use angle brackets",
                        raw[i])
                elif not (self.root / quoted).exists():
                    self.report(
                        rel, i + 1, "include-hygiene",
                        f'quoted include "{quoted}" does not resolve under '
                        "the project include root",
                        raw[i])


def collect_files(root, compile_commands):
    files = set()
    for pattern in ("**/*.h", "**/*.cc"):
        files.update(root.glob(pattern))
    if compile_commands is not None:
        compiled = set()
        for entry in json.loads(compile_commands.read_text()):
            src = Path(entry["directory"], entry["file"]).resolve()
            try:
                src.relative_to(root.resolve())
            except ValueError:
                continue
            compiled.add(src)
        # Headers never appear as TUs; keep all of them, and restrict .cc
        # files to the set the build actually compiles.
        files = {f for f in files
                 if f.suffix == ".h" or f.resolve() in compiled}
    return sorted(files)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default="src",
                        help="directory to scan (default: src)")
    parser.add_argument("--compile-commands", default=None,
                        help="optional compile_commands.json restricting the "
                             ".cc set to compiled translation units")
    args = parser.parse_args(argv)

    root = Path(args.root)
    if not root.is_dir():
        print(f"dqm_lint: no such directory: {root}", file=sys.stderr)
        return 2
    compile_commands = (
        Path(args.compile_commands) if args.compile_commands else None)
    if compile_commands is not None and not compile_commands.is_file():
        print(f"dqm_lint: no such file: {compile_commands}", file=sys.stderr)
        return 2

    linter = Linter(root)
    for path in collect_files(root, compile_commands):
        linter.lint_file(path)

    for rel, lineno, rule, message in sorted(linter.findings):
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if linter.findings:
        print(f"dqm_lint: {len(linter.findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
