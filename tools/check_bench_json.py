#!/usr/bin/env python3
"""Validate BENCH_*.json bench artifacts and gate throughput floors.

Usage:
    check_bench_json.py [--floors bench/floors.json] BENCH_foo.json ...

Checks, per file:
  1. The file parses as JSON and has the artifact shape written by
     dqm::bench::WriteBenchArtifact: {"bench": <str>, "peak_rss_mb": <num>,
     "runs": [{"bench": ..., "results": [{"name": ..., <metric>: <num>}]}]}.
  2. Every floor registered for that bench name is present and has not
     regressed by more than `allowed_regression` (default 5x) below the
     checked-in baseline: value >= baseline / allowed_regression.

Floors file shape (baselines are healthy-machine smoke-run values; the 5x
slack absorbs CI-runner variance while still catching order-of-magnitude
regressions):
    {
      "allowed_regression": 5.0,
      "floors": {
        "<bench>": {"<result_name>.<metric>": <baseline>, ...}
      }
    }

Exit code 0 when every file is well-formed and every floor holds; 1
otherwise, with one line per problem on stderr.
"""

import argparse
import json
import sys


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def load_artifact(path):
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict):
        raise ValueError("top level is not an object")
    for key in ("bench", "peak_rss_mb", "runs"):
        if key not in artifact:
            raise ValueError(f"missing top-level key '{key}'")
    if not isinstance(artifact["bench"], str) or not artifact["bench"]:
        raise ValueError("'bench' must be a non-empty string")
    if not isinstance(artifact["runs"], list):
        raise ValueError("'runs' must be a list")
    for run in artifact["runs"]:
        if not isinstance(run, dict) or "results" not in run:
            raise ValueError("every run needs a 'results' list")
        for result in run["results"]:
            if not isinstance(result, dict) or "name" not in result:
                raise ValueError("every result needs a 'name'")
            for metric, value in result.items():
                if metric == "name":
                    continue
                if value is not None and not isinstance(value, (int, float)):
                    raise ValueError(
                        f"metric '{result['name']}.{metric}' is not numeric")
    return artifact


def collect_metrics(artifact):
    """Flattens to {"<result_name>.<metric>": value} (last write wins)."""
    metrics = {}
    for run in artifact["runs"]:
        for result in run["results"]:
            for metric, value in result.items():
                if metric == "name" or value is None:
                    continue
                metrics[f"{result['name']}.{metric}"] = float(value)
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--floors", default=None,
                        help="floors JSON file (optional: shape-check only)")
    parser.add_argument("files", nargs="+", help="BENCH_*.json artifacts")
    args = parser.parse_args()

    floors_config = {"allowed_regression": 5.0, "floors": {}}
    if args.floors:
        with open(args.floors, "r", encoding="utf-8") as handle:
            floors_config.update(json.load(handle))
    allowed = float(floors_config.get("allowed_regression", 5.0))

    errors = 0
    for path in args.files:
        try:
            artifact = load_artifact(path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            errors += fail(f"{path}: malformed bench artifact: {error}")
            continue
        print(f"ok: {path} ({artifact['bench']}, "
              f"{sum(len(r['results']) for r in artifact['runs'])} results, "
              f"peak rss {artifact['peak_rss_mb']} MiB)")

        bench_floors = floors_config.get("floors", {}).get(artifact["bench"])
        if not bench_floors:
            continue
        metrics = collect_metrics(artifact)
        for key, baseline in bench_floors.items():
            if key not in metrics:
                errors += fail(f"{path}: floor metric '{key}' missing")
                continue
            minimum = float(baseline) / allowed
            if metrics[key] < minimum:
                errors += fail(
                    f"{path}: {key} = {metrics[key]:g} regressed below "
                    f"{minimum:g} (baseline {baseline:g} / {allowed:g}x)")
            else:
                print(f"  floor ok: {key} = {metrics[key]:g} "
                      f">= {minimum:g}")

    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
