#!/usr/bin/env python3
"""Validate BENCH_*.json bench artifacts and gate throughput floors.

Usage:
    check_bench_json.py [--floors bench/floors.json] BENCH_foo.json ...
    check_bench_json.py --telemetry metrics.json ...

Checks, per file (artifact mode):
  1. The file parses as JSON and has the artifact shape written by
     dqm::bench::WriteBenchArtifact: {"bench": <str>, "peak_rss_mb": <num>,
     "runs": [{"bench": ..., "results": [{"name": ..., <metric>: <num>}]}],
     "telemetry": {...}}.
  2. The optional "telemetry" block (attached by WriteBenchArtifact since the
     observability PR) has the exposition shape: counters/gauges/histograms
     lists whose entries carry name/labels/value (histograms: count, p50/p95/
     p99/max, buckets).
  3. Every floor registered for that bench name is present and has not
     regressed. Three floor spellings:
       - a bare number is a healthy-machine baseline gated with slack:
         value >= baseline / allowed_regression (default 5x);
       - {"min": <x>} is an absolute minimum with NO slack — for ratio
         metrics (telemetry on/off) where 5x slack would gate nothing;
       - {"baseline": <x>} is the bare-number spelling as an object, so it
         can carry extra keys.
     Either object spelling may add "min_hardware_concurrency": <n>; the
     floor is then skipped (with a logged reason) when the artifact's
     "hardware_concurrency" is below <n>. This is how multi-writer scaling
     floors avoid failing on single-core CI runners, where an artifact
     reporting hardware_concurrency == 1 measured scheduler thrash, not
     scaling.

With --telemetry, each file is instead a standalone telemetry dump (the
dqm_engine_cli --metrics_json output, i.e. the bare exposition object), and
the checker additionally requires the engine's core instrumentation to be
present and live: the seqlock retry counter registered, at least one
per-stripe lock-wait counter, a nonzero commit-latency histogram, and at
least one per-session quality gauge.

Floors file shape:
    {
      "allowed_regression": 5.0,
      "floors": {
        "<bench>": {"<result_name>.<metric>": <baseline> | {"min": <x>}, ...}
      }
    }

Exit code 0 when every file is well-formed and every floor holds; 1
otherwise, with one line per problem on stderr.
"""

import argparse
import json
import sys


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def check_telemetry_block(telemetry):
    """Raises ValueError unless `telemetry` has the exposition shape."""
    if not isinstance(telemetry, dict):
        raise ValueError("'telemetry' is not an object")
    for section in ("counters", "gauges", "histograms"):
        if section not in telemetry or not isinstance(telemetry[section], list):
            raise ValueError(f"telemetry section '{section}' missing or not a "
                             "list")
        for entry in telemetry[section]:
            if not isinstance(entry, dict):
                raise ValueError(f"telemetry {section} entry is not an object")
            if not isinstance(entry.get("name"), str) or not entry["name"]:
                raise ValueError(
                    f"telemetry {section} entry needs a non-empty 'name'")
            if not isinstance(entry.get("labels"), dict):
                raise ValueError(
                    f"telemetry metric '{entry.get('name')}' needs a 'labels' "
                    "object")
    for counter in telemetry["counters"]:
        if not isinstance(counter.get("value"), int) or counter["value"] < 0:
            raise ValueError(f"counter '{counter['name']}' value must be a "
                             "non-negative integer")
    for gauge in telemetry["gauges"]:
        if not isinstance(gauge.get("value"), (int, float)) and \
                gauge.get("value") is not None:
            raise ValueError(f"gauge '{gauge['name']}' value must be numeric "
                             "or null")
    for histogram in telemetry["histograms"]:
        if not isinstance(histogram.get("count"), int) or \
                histogram["count"] < 0:
            raise ValueError(f"histogram '{histogram['name']}' needs an "
                             "integer 'count'")
        for quantile in ("p50", "p95", "p99", "max"):
            if not isinstance(histogram.get(quantile), (int, float)):
                raise ValueError(f"histogram '{histogram['name']}' is missing "
                                 f"'{quantile}'")
        buckets = histogram.get("buckets")
        if not isinstance(buckets, list):
            raise ValueError(f"histogram '{histogram['name']}' needs a "
                             "'buckets' list")
        total = 0
        for bucket in buckets:
            if (not isinstance(bucket, list) or len(bucket) != 2 or
                    not isinstance(bucket[1], int)):
                raise ValueError(f"histogram '{histogram['name']}' bucket "
                                 "entries must be [upper_bound, count] pairs")
            total += bucket[1]
        if total != histogram["count"]:
            raise ValueError(f"histogram '{histogram['name']}' bucket counts "
                             f"sum to {total}, 'count' says "
                             f"{histogram['count']}")


def check_engine_telemetry(telemetry):
    """Raises ValueError unless the engine's core instrumentation is live."""
    counters = {c["name"]: c for c in telemetry["counters"]}
    if "dqm_seqlock_read_retries_total" not in counters:
        raise ValueError("seqlock retry counter "
                         "'dqm_seqlock_read_retries_total' not registered")
    if not any(c["name"] == "dqm_stripe_lock_wait_ns_total"
               for c in telemetry["counters"]):
        raise ValueError("no per-stripe 'dqm_stripe_lock_wait_ns_total' "
                         "counter — striped ingest was not exercised")
    commit = [h for h in telemetry["histograms"]
              if h["name"] == "dqm_commit_latency_ns"]
    if not commit or commit[0]["count"] == 0:
        raise ValueError("'dqm_commit_latency_ns' histogram missing or empty "
                         "— no timed commit was recorded")
    if not any(g["name"] == "dqm_session_quality"
               for g in telemetry["gauges"]):
        raise ValueError("no 'dqm_session_quality' gauge — per-session "
                         "estimates are not exported")


def load_artifact(path):
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict):
        raise ValueError("top level is not an object")
    for key in ("bench", "peak_rss_mb", "runs"):
        if key not in artifact:
            raise ValueError(f"missing top-level key '{key}'")
    if not isinstance(artifact["bench"], str) or not artifact["bench"]:
        raise ValueError("'bench' must be a non-empty string")
    if not isinstance(artifact["runs"], list):
        raise ValueError("'runs' must be a list")
    if "hardware_concurrency" in artifact and (
            not isinstance(artifact["hardware_concurrency"], int) or
            artifact["hardware_concurrency"] < 0):
        raise ValueError("'hardware_concurrency' must be a non-negative "
                         "integer")
    for run in artifact["runs"]:
        if not isinstance(run, dict) or "results" not in run:
            raise ValueError("every run needs a 'results' list")
        for result in run["results"]:
            if not isinstance(result, dict) or "name" not in result:
                raise ValueError("every result needs a 'name'")
            for metric, value in result.items():
                if metric == "name":
                    continue
                if value is not None and not isinstance(value, (int, float)):
                    raise ValueError(
                        f"metric '{result['name']}.{metric}' is not numeric")
    if "telemetry" in artifact:
        check_telemetry_block(artifact["telemetry"])
    return artifact


def collect_metrics(artifact):
    """Flattens to {"<result_name>.<metric>": value} (last write wins)."""
    metrics = {}
    for run in artifact["runs"]:
        for result in run["results"]:
            for metric, value in result.items():
                if metric == "name" or value is None:
                    continue
                metrics[f"{result['name']}.{metric}"] = float(value)
    return metrics


def check_floor(path, key, value, floor, allowed, hardware_concurrency):
    """One floor check; returns the error count (0 or 1)."""
    if isinstance(floor, dict):
        required = floor.get("min_hardware_concurrency")
        if required is not None:
            if hardware_concurrency is None:
                # Artifact predates the field: apply the floor normally
                # rather than silently waiving a gate.
                print(f"  floor note: '{key}' wants >= {required} hardware "
                      "threads but the artifact does not report "
                      "hardware_concurrency; applying the floor anyway")
            elif hardware_concurrency < required:
                print(f"  floor skipped: '{key}' needs >= {required} "
                      f"hardware threads, artifact reports "
                      f"{hardware_concurrency} — multi-writer scaling is "
                      "meaningless on this machine")
                return 0
        if "min" in floor:
            # {"min": x} — an absolute bar, no regression slack. Used for
            # ratios, where dividing a baseline by 5 would gate nothing.
            minimum = float(floor["min"])
            if value < minimum:
                return fail(f"{path}: {key} = {value:g} below the absolute "
                            f"minimum {minimum:g}")
            print(f"  floor ok: {key} = {value:g} >= {minimum:g} (absolute)")
            return 0
        if "baseline" in floor:
            floor = float(floor["baseline"])
        else:
            return fail(f"{path}: floor '{key}' object needs a 'min' or "
                        "'baseline' key")
    minimum = float(floor) / allowed
    if value < minimum:
        return fail(f"{path}: {key} = {value:g} regressed below "
                    f"{minimum:g} (baseline {floor:g} / {allowed:g}x)")
    print(f"  floor ok: {key} = {value:g} >= {minimum:g}")
    return 0


def run_telemetry_mode(files):
    errors = 0
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                telemetry = json.load(handle)
            check_telemetry_block(telemetry)
            check_engine_telemetry(telemetry)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            errors += fail(f"{path}: bad telemetry dump: {error}")
            continue
        print(f"ok: {path} ({len(telemetry['counters'])} counters, "
              f"{len(telemetry['gauges'])} gauges, "
              f"{len(telemetry['histograms'])} histograms)")
    return 1 if errors else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--floors", default=None,
                        help="floors JSON file (optional: shape-check only)")
    parser.add_argument("--telemetry", action="store_true",
                        help="files are standalone telemetry dumps "
                             "(dqm_engine_cli --metrics_json output)")
    parser.add_argument("files", nargs="+", help="BENCH_*.json artifacts")
    args = parser.parse_args()

    if args.telemetry:
        return run_telemetry_mode(args.files)

    floors_config = {"allowed_regression": 5.0, "floors": {}}
    if args.floors:
        with open(args.floors, "r", encoding="utf-8") as handle:
            floors_config.update(json.load(handle))
    allowed = float(floors_config.get("allowed_regression", 5.0))

    errors = 0
    for path in args.files:
        try:
            artifact = load_artifact(path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            errors += fail(f"{path}: malformed bench artifact: {error}")
            continue
        telemetry_note = ""
        if "telemetry" in artifact:
            telemetry_note = (
                f", telemetry: {len(artifact['telemetry']['counters'])} "
                f"counters/{len(artifact['telemetry']['histograms'])} "
                "histograms")
        print(f"ok: {path} ({artifact['bench']}, "
              f"{sum(len(r['results']) for r in artifact['runs'])} results, "
              f"peak rss {artifact['peak_rss_mb']} MiB{telemetry_note})")

        bench_floors = floors_config.get("floors", {}).get(artifact["bench"])
        if not bench_floors:
            continue
        metrics = collect_metrics(artifact)
        for key, floor in bench_floors.items():
            if key.startswith("_"):
                continue  # "_comment" and friends
            if key not in metrics:
                errors += fail(f"{path}: floor metric '{key}' missing")
                continue
            errors += check_floor(path, key, metrics[key], floor, allowed,
                                  artifact.get("hardware_concurrency"))

    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
