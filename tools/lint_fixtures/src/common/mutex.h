#ifndef DQM_COMMON_MUTEX_H_
#define DQM_COMMON_MUTEX_H_

// Fixture twin of the real wrapper header: raw standard-library
// synchronization is allowed here and nowhere else. This file must produce
// zero findings — it proves the raw-sync allowlist.

#include <mutex>

namespace dqm {

class Mutex {
 public:
  void Lock() { mu_.lock(); }
  void Unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

}  // namespace dqm

#endif  // DQM_COMMON_MUTEX_H_
