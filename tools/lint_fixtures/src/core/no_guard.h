// Fixture: a project header without the DQM_CORE_NO_GUARD_H_ include guard
// is an include-hygiene finding.
#pragma once

namespace dqm::core {
inline int Answer() { return 42; }
}  // namespace dqm::core
