// Fixture: include-hygiene findings — a project header pulled in with angle
// brackets, and a standard header pulled in with quotes.

#include <common/mutex.h>

#include "vector"

#include "core/no_guard.h"

namespace dqm::core {
int Use() { return Answer(); }
}  // namespace dqm::core
