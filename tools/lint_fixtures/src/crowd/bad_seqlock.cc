// Fixture: a hand-rolled seqlock outside SnapshotCell / FlightRecorder is a
// seqlock finding — the odd/even sequence protocol must be consumed through
// the audited helpers.

#include <atomic>
#include <cstdint>

namespace dqm::crowd {

struct RogueCell {
  std::atomic<uint64_t> seq{0};
  uint64_t payload = 0;
};

void RogueStore(RogueCell& cell, uint64_t value) {
  uint64_t seq = cell.seq.load(std::memory_order_relaxed);
  cell.seq.store(seq + 1, std::memory_order_relaxed);
  cell.payload = value;
  cell.seq.store(seq + 2, std::memory_order_release);
}

}  // namespace dqm::crowd
