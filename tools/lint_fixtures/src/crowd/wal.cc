// raw-syscall fixture twin of the real crowd/wal.cc: the genuine file must
// issue every durability syscall through the crowd/io.h wrappers; the raw
// calls below are exactly the violations the rule exists to catch (plus
// one suppressed call proving the escape hatch).

namespace dqm::crowd {

int WriteHeaderRaw(int fd, const void* data, unsigned long size) {
  long n = ::write(fd, data, size);
  if (n >= 0 && ::fsync(fd) != 0) return -1;
  return static_cast<int>(n);
}

long ReplayRaw(int fd, void* buffer, unsigned long size) {
  return ::pread(fd, buffer, size, 16);
}

int CommitRaw(const char* from, const char* to, int dir_fd) {
  if (::rename(from, to) != 0) return -1;
  return ::fsync(dir_fd);  // dqm-lint: allow(raw-syscall)
}

}  // namespace dqm::crowd
