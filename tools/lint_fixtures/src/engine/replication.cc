// raw-syscall fixture twin of the real engine/replication.cc: segment and
// checkpoint shipping I/O must go through the instrumented crowd/io.h
// wrappers so chaos tests can reach every replication edge.

namespace dqm::engine {

long ShipSegmentRaw(int fd, const void* buf, unsigned long n, long off) {
  return ::pwrite(fd, buf, n, off);
}

int OpenTransportArtifactRaw(const char* path) {
  return ::open(path, 0);
}

}  // namespace dqm::engine
