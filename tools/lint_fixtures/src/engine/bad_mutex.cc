// Fixture: every raw standard-library synchronization primitive outside
// common/mutex.h is a raw-sync finding. A std::mutex spelled in a comment is
// not: the stripper removes it before the rule runs.

#include <condition_variable>
#include <mutex>

#include "common/mutex.h"

namespace dqm::engine {

struct BadCache {
  std::mutex mu;
  std::condition_variable cv;
};

int CountUnderLock(BadCache& cache) {
  std::lock_guard<std::mutex> lock(cache.mu);
  return 0;
}

// A justified escape hatch stays silent:
// (the real tree uses this for the checker's own graph mutex)
struct Bootstrap {
  std::mutex graph_mu;  // dqm-lint: allow(raw-sync)
};

}  // namespace dqm::engine
