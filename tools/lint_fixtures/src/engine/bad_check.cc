// Fixture: serving-path DQM_CHECKs must carry an `// invariant:`
// justification within the preceding lines. The first check below has none
// (finding); the second is justified (clean); the third is suppressed.

#define DQM_CHECK(cond) (void)(cond)
#define DQM_CHECK_GT(a, b) (void)((a) > (b))

namespace dqm::engine {

void Serve(int num_shards, bool ready) {
  DQM_CHECK_GT(num_shards, 0);

  // invariant: callers flip ready exactly once, before the first request.
  DQM_CHECK(ready);

  DQM_CHECK(num_shards < 64);  // dqm-lint: allow(check-discipline)
}

}  // namespace dqm::engine
