// raw-syscall fixture twin of the real engine/durability.cc: the manifest
// tmp+rename dance and directory syncs must go through the instrumented
// crowd/io.h wrappers, never the raw calls.

namespace dqm::engine {

bool PublishManifestRaw(const char* tmp, const char* path) {
  return ::rename(tmp, path) == 0;
}

int TruncateWalRaw(int fd, long size) {
  return ::ftruncate(fd, size);
}

}  // namespace dqm::engine
