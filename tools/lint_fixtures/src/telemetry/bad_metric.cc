// Fixture: a "dqm_*" string literal outside telemetry/metric_names.h is a
// metric-name finding even when the name itself is well-formed — the point
// is that the registry of record stays the single minting site. Mentioning
// dqm_some_counter in a comment is fine.

#include "telemetry/metric_names.h"

namespace dqm::telemetry {

const char* RogueName() { return "dqm_rogue_counter_total"; }

const char* SanctionedName() { return metric_names::kGoodCounter; }

}  // namespace dqm::telemetry
