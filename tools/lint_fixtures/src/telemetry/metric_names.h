#ifndef DQM_TELEMETRY_METRIC_NAMES_H_
#define DQM_TELEMETRY_METRIC_NAMES_H_

// Fixture twin of the registry of record. Declaring a name here is the only
// sanctioned way to mint one — but the name must still match the canonical
// grammar dqm_[a-z][a-z0-9_]*.

namespace dqm::telemetry::metric_names {

// Fine: lowercase, underscores, leading letter after the prefix.
inline constexpr char kGoodCounter[] = "dqm_good_counter_total";

// metric-name finding: uppercase and '-' violate the grammar.
inline constexpr char kBadCounter[] = "dqm_Bad-Counter";

}  // namespace dqm::telemetry::metric_names

#endif  // DQM_TELEMETRY_METRIC_NAMES_H_
