// dqm_engine_cli — stream vote CSVs into a concurrent DqmEngine and print a
// per-dataset quality report.
//
//   $ ./dqm_engine_cli [flags] votes_a.csv votes_b.csv ...
//
// Each positional file is one dataset (session named after the file): the
// ResponseLogIo CSV format, `task,worker,item,vote` with `vote` in
// {dirty,clean,1,0}. Files are ingested concurrently — one worker per file up
// to --threads — in --batch sized batches, the way a live deployment would
// feed the engine, then the final snapshots are printed as a table.
//
// With no positional arguments the tool runs a self-contained demo: it
// simulates --demo_datasets crowdsourced cleaning jobs with different worker
// error regimes and serves them all from one engine.
//
// --workload=drift?walk=0.02,adversarial?fraction=0.25 replaces the demo
// with generated hostile/drifting crowd workloads (one session per spec,
// names from the workload registry); each is ingested in the batch pattern
// its arrival process produced, so bursty workloads hit the engine the way
// a live burst would.
//
// --durability_dir=/var/lib/dqm makes every session durable: votes are
// write-ahead logged (group commit tuned by --wal_group_commit) and
// checkpointed every --checkpoint_every votes under <dir>/<session>.
// --recover rebuilds all sessions found under that root (manifest +
// checkpoint + WAL tail) and prints the report instead of ingesting;
// --crash_after_ingest _Exit(0)s right after ingest, skipping every
// destructor and flush — the crash half of the CI crash/recover smoke.
//
// --replicate_to=/mnt/standby ships every durable session's checkpoints and
// sealed WAL segments to a per-session transport directory while ingest
// runs (requires --durability_dir). On another host / in another process,
// --standby=/mnt/standby replays everything shipped into warm sessions and
// prints a standby report; add --promote to fence off the old primary and
// serve — the failover half of the replication drill.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/ascii.h"
#include "common/failpoint.h"
#include "common/flags.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "crowd/io.h"
#include "crowd/log_io.h"
#include "engine/durability.h"
#include "engine/engine.h"
#include "engine/replication.h"
#include "estimators/registry.h"
#include "telemetry/export.h"
#include "telemetry/failpoints.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "workload/workload.h"

namespace {

/// Disambiguates `base` against `used` with a numeric suffix ("drift",
/// "drift-2", ...), recording the winner.
std::string UniqueSessionName(const std::string& base,
                              std::set<std::string>& used) {
  std::string name = base;
  for (int suffix = 2; !used.insert(name).second; ++suffix) {
    name = dqm::StrFormat("%s-%d", base.c_str(), suffix);
  }
  return name;
}

/// Session name from a CSV path's basename; `used` disambiguates duplicate
/// basenames (run1/votes.csv + run2/votes.csv) with a numeric suffix.
std::string SessionNameForPath(const std::string& path,
                               std::set<std::string>& used) {
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  if (base.empty()) base = "dataset";
  return UniqueSessionName(base, used);
}

/// Streams `events` into `engine`'s session `name` from `ingest_threads`
/// concurrent producers — the multi-producer serving pattern the engine's
/// striped commit path exists for. `batches` is the ingest partition (a
/// workload's arrival pattern); when empty, fixed `batch` sized chunks are
/// used instead. With one thread, batches are committed in order; with
/// several, each producer pulls the next batch off a shared cursor, so the
/// commit interleaving is whatever the scheduler produces (exactly what a
/// live multi-writer deployment looks like).
dqm::Status StreamVotes(dqm::engine::DqmEngine& engine, const std::string& name,
                        const std::vector<dqm::crowd::VoteEvent>& events,
                        const std::vector<size_t>& batches, size_t batch,
                        size_t ingest_threads) {
  // Materialize the batch list: [begin, size) chunks of the event stream.
  std::vector<std::pair<size_t, size_t>> chunks;
  if (batches.empty()) {
    for (size_t begin = 0; begin < events.size(); begin += batch) {
      chunks.emplace_back(begin, std::min(batch, events.size() - begin));
    }
  } else {
    // The registry is open to user workloads, so don't trust the partition:
    // an over-partitioned batch list must fail loudly, not read past the
    // log.
    size_t total = 0;
    for (size_t size : batches) total += size;
    if (total != events.size()) {
      return dqm::Status::InvalidArgument(dqm::StrFormat(
          "%s: batch partition covers %zu votes but the log has %zu",
          name.c_str(), total, events.size()));
    }
    size_t begin = 0;
    for (size_t size : batches) {
      chunks.emplace_back(begin, size);
      begin += size;
    }
  }

  if (ingest_threads <= 1) {
    for (const auto& [begin, size] : chunks) {
      DQM_RETURN_NOT_OK(engine.Ingest(
          name, std::span<const dqm::crowd::VoteEvent>(&events[begin], size)));
    }
    return dqm::Status::OK();
  }

  std::atomic<size_t> cursor{0};
  std::vector<dqm::Status> outcomes(ingest_threads);
  std::vector<std::thread> producers;
  producers.reserve(ingest_threads);
  for (size_t t = 0; t < ingest_threads; ++t) {
    producers.emplace_back([&, t] {
      for (;;) {
        size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
        if (index >= chunks.size()) return;
        const auto& [begin, size] = chunks[index];
        dqm::Status status = engine.Ingest(
            name,
            std::span<const dqm::crowd::VoteEvent>(&events[begin], size));
        if (!status.ok()) {
          outcomes[t] = status;
          return;
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  for (const dqm::Status& status : outcomes) {
    if (!status.ok()) return status;
  }
  return dqm::Status::OK();
}

bool WriteTextFile(const std::string& path, const std::string& body) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size();
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
  return ok;
}

/// Refreshes the engine roll-up gauges and writes the current global metric
/// fold to the requested exposition files (either path may be empty).
void DumpMetrics(const dqm::engine::DqmEngine& engine,
                 const std::string& json_path, const std::string& prom_path) {
  engine.RefreshTelemetry();
  dqm::telemetry::SyncFailpointMetrics();
  const dqm::telemetry::MetricsRegistry& registry =
      dqm::telemetry::MetricsRegistry::Global();
  if (!json_path.empty()) {
    WriteTextFile(json_path, dqm::telemetry::RenderJson(registry));
  }
  if (!prom_path.empty()) {
    WriteTextFile(prom_path, dqm::telemetry::RenderPrometheus(registry));
  }
}

/// Background dumper for --metrics_every: rewrites the exposition files on a
/// fixed cadence while ingest runs, so an operator can watch commit latency
/// and stripe contention move mid-stream.
class PeriodicMetricsDumper {
 public:
  PeriodicMetricsDumper(const dqm::engine::DqmEngine& engine,
                        std::string json_path, std::string prom_path,
                        int64_t every_seconds)
      : engine_(engine),
        json_path_(std::move(json_path)),
        prom_path_(std::move(prom_path)) {
    if (every_seconds <= 0 || (json_path_.empty() && prom_path_.empty())) {
      return;
    }
    thread_ = std::thread([this, every_seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!stop_) {
        cv_.wait_for(lock, std::chrono::seconds(every_seconds),
                     [this] { return stop_; });
        if (stop_) return;
        lock.unlock();
        DumpMetrics(engine_, json_path_, prom_path_);
        lock.lock();
      }
    });
  }

  ~PeriodicMetricsDumper() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  const dqm::engine::DqmEngine& engine_;
  std::string json_path_;
  std::string prom_path_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

std::string FormatNanos(double nanos) {
  if (nanos >= 1e6) return dqm::StrFormat("%.3fms", nanos / 1e6);
  if (nanos >= 1e3) return dqm::StrFormat("%.3fus", nanos / 1e3);
  return dqm::StrFormat("%.0fns", nanos);
}

std::string LabelsSuffix(const dqm::telemetry::LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

/// Final telemetry summary: the latency histograms as a quantile table, the
/// engine-level counters, and each session's slowest recent publish / commit
/// from its flight recorder — the "what would I grep the metrics dump for"
/// digest, printed even when no --metrics_* file was requested.
void PrintTelemetrySummary(const dqm::engine::DqmEngine& engine) {
  engine.RefreshTelemetry();
  dqm::telemetry::SyncFailpointMetrics();
  dqm::telemetry::MetricsRegistry::Collection collection =
      dqm::telemetry::MetricsRegistry::Global().Collect();

  std::printf("\ntelemetry — latency histograms\n");
  dqm::AsciiTable histograms(
      {"histogram", "count", "p50", "p95", "p99", "max"});
  for (const auto& h : collection.histograms) {
    if (h.snapshot.count == 0) continue;
    bool nanos = h.name.size() > 3 &&
                 h.name.compare(h.name.size() - 3, 3, "_ns") == 0;
    auto cell = [&](double value) {
      return nanos ? FormatNanos(value) : dqm::StrFormat("%.0f", value);
    };
    histograms.AddRow({h.name + LabelsSuffix(h.labels),
                       dqm::StrFormat("%llu",
                                      static_cast<unsigned long long>(
                                          h.snapshot.count)),
                       cell(h.snapshot.Quantile(0.50)),
                       cell(h.snapshot.Quantile(0.95)),
                       cell(h.snapshot.Quantile(0.99)),
                       cell(static_cast<double>(h.snapshot.Max()))});
  }
  std::fputs(histograms.Render().c_str(), stdout);

  std::printf("telemetry — counters\n");
  dqm::AsciiTable counters({"counter", "value"});
  for (const auto& c : collection.counters) {
    counters.AddRow({c.name + LabelsSuffix(c.labels),
                     dqm::StrFormat("%llu",
                                    static_cast<unsigned long long>(c.value))});
  }
  std::fputs(counters.Render().c_str(), stdout);

  std::printf("telemetry — gauges\n");
  dqm::AsciiTable gauges({"gauge", "value"});
  for (const auto& g : collection.gauges) {
    gauges.AddRow(
        {g.name + LabelsSuffix(g.labels), dqm::StrFormat("%.6g", g.value)});
  }
  std::fputs(gauges.Render().c_str(), stdout);

  // Flight-recorder forensics: the slowest recent publish and commit per
  // session, with start offsets on the shared telemetry clock.
  std::printf("telemetry — slowest recent spans per session\n");
  dqm::AsciiTable spans({"session", "kind", "duration", "at", "value"});
  for (const std::string& name : engine.SessionNames()) {
    dqm::Result<std::shared_ptr<dqm::engine::EstimationSession>> session =
        engine.GetSession(name);
    if (!session.ok()) continue;
    const dqm::telemetry::Span* slowest_publish = nullptr;
    const dqm::telemetry::Span* slowest_commit = nullptr;
    std::vector<dqm::telemetry::Span> recent =
        (*session)->flight_recorder().Snapshot();
    for (const dqm::telemetry::Span& span : recent) {
      if (span.kind != dqm::telemetry::SpanKind::kCommit &&
          span.kind != dqm::telemetry::SpanKind::kPublish) {
        continue;
      }
      const dqm::telemetry::Span*& slot =
          span.kind == dqm::telemetry::SpanKind::kCommit ? slowest_commit
                                                         : slowest_publish;
      if (slot == nullptr || span.duration_nanos() > slot->duration_nanos()) {
        slot = &span;
      }
    }
    for (const dqm::telemetry::Span* span : {slowest_publish, slowest_commit}) {
      if (span == nullptr) continue;
      spans.AddRow(
          {name, dqm::telemetry::SpanKindName(span->kind),
           FormatNanos(static_cast<double>(span->duration_nanos())),
           dqm::StrFormat("+%.3fs",
                          static_cast<double>(span->start_nanos) / 1e9),
           dqm::StrFormat("%llu",
                          static_cast<unsigned long long>(span->value))});
    }
  }
  std::fputs(spans.Render().c_str(), stdout);
}

/// Prints every session's snapshot with one "est/q" column pair per
/// configured estimator (all sessions share the same --methods lineup).
void PrintReport(const dqm::engine::DqmEngine& engine) {
  std::vector<std::pair<std::string, dqm::engine::Snapshot>> snapshots =
      engine.QueryAll();
  std::vector<std::string> header = {"session", "ingest", "votes", "nominal",
                                     "majority"};
  if (!snapshots.empty()) {
    for (const dqm::engine::EstimatorEstimate& row :
         snapshots.front().second.estimates) {
      header.push_back(row.name);
      header.push_back(dqm::StrFormat("q(%s)", row.name.c_str()));
    }
  }
  dqm::AsciiTable table(header);
  for (const auto& [name, snapshot] : snapshots) {
    // Which commit path the session resolved to: striped multi-producer
    // ingest (order-independent panels) or the serialized fallback.
    dqm::Result<std::shared_ptr<dqm::engine::EstimationSession>> session =
        engine.GetSession(name);
    std::string ingest_mode =
        session.ok() && (*session)->concurrent_ingest() ? "striped" : "serial";
    std::vector<std::string> cells = {
        name,
        ingest_mode,
        dqm::StrFormat("%llu",
                       static_cast<unsigned long long>(snapshot.num_votes)),
        dqm::StrFormat("%zu", snapshot.nominal_count),
        dqm::StrFormat("%zu", snapshot.majority_count)};
    for (const dqm::engine::EstimatorEstimate& row : snapshot.estimates) {
      cells.push_back(dqm::StrFormat("%.1f", row.total_errors));
      cells.push_back(dqm::StrFormat("%.4f", row.quality_score));
    }
    table.AddRow(std::move(cells));
  }
  std::fputs(table.Render().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  int64_t* num_items =
      flags.AddInt("num_items", 1000, "item universe size N per dataset");
  std::string* methods = flags.AddString(
      "methods", "",
      "comma-separated estimator specs run per dataset in one pass, e.g. "
      "switch,chao92,vchao92?shift=2 (names from the estimator registry; "
      "default: switch)");
  std::string* method_name = flags.AddString(
      "method", "", "DEPRECATED single-estimator alias for --methods");
  std::string* workloads = flags.AddString(
      "workload", "",
      "comma-separated workload specs to generate and serve instead of the "
      "demo, e.g. drift?walk=0.02,adversarial?fraction=0.25 (families: " +
          dqm::Join(dqm::workload::WorkloadRegistry::Global().Names(), ", ") +
          "); incompatible with CSV files");
  int64_t* threads =
      flags.AddInt("threads", 4, "ingest worker threads (0 = hardware)");
  int64_t* ingest_threads = flags.AddInt(
      "ingest_threads", 1,
      "concurrent producer threads PER SESSION (order-independent estimator "
      "panels commit through the striped path; panels with switch fall back "
      "to serialized commits and an unspecified batch order)");
  std::string* publish_cadence = flags.AddString(
      "publish_cadence", "every_batch",
      "when sessions publish snapshots: every_batch | every_n_votes[:N] | "
      "manual (manual/every_n sessions are flushed once after ingest)");
  int64_t* batch = flags.AddInt("batch", 256, "votes per ingest batch");
  std::string* durability_dir = flags.AddString(
      "durability_dir", "",
      "root directory for durable sessions: every session write-ahead logs "
      "its votes and checkpoints under <dir>/<session-name>; pair with "
      "--recover to rebuild after a crash");
  std::string* wal_group_commit = flags.AddString(
      "wal_group_commit", "",
      "WAL group-commit spelling: \"N\" (fsync once N votes buffered) or "
      "\"Nms\" (fsync at most N ms after a vote was buffered); default 256");
  int64_t* checkpoint_every = flags.AddInt(
      "checkpoint_every", 0,
      "checkpoint the compacted session state every N committed votes, "
      "truncating the WAL (0 = WAL-only durability)");
  bool* recover = flags.AddBool(
      "recover", false,
      "instead of ingesting, rebuild every session found under "
      "--durability_dir (manifest + checkpoint + WAL tail) and print the "
      "report");
  bool* recover_keep_going = flags.AddBool(
      "recover_keep_going", false,
      "with --recover: a broken session directory no longer aborts the "
      "scan — print recovered / skipped / failed per directory and exit "
      "non-zero only if any session actually failed");
  std::string* replicate_to = flags.AddString(
      "replicate_to", "",
      "hot-standby shipping root (requires --durability_dir): every durable "
      "session streams its checkpoints and fsync-acknowledged WAL segments "
      "into <dir>/<session-name>/ while ingest runs, ready for --standby on "
      "the other side");
  std::string* standby = flags.AddString(
      "standby", "",
      "standby mode: replay every session transport found under this "
      "--replicate_to root into warm sessions and print the standby report "
      "(pair with --durability_dir to make the standby itself durable); "
      "add --promote to take over");
  bool* promote = flags.AddBool(
      "promote", false,
      "with --standby: after the final drain, raise the fencing token past "
      "every one observed (the old primary's late pushes are rejected from "
      "then on) and print the promoted serving report");
  std::string* durability_failure_policy = flags.AddString(
      "durability_failure_policy", "fail_stop",
      "what a durable session does when its WAL permanently fails: "
      "fail_stop (reject further ingest) or degrade_to_volatile (keep "
      "committing in memory, flagged degraded until a checkpoint re-arms "
      "durability)");
  std::string* failpoints = flags.AddString(
      "failpoints", "",
      "arm fault-injection points before any I/O, e.g. "
      "\"dqm.wal.fsync=error(EIO)%0.3;dqm.checkpoint.rename=crash\" "
      "(same grammar as DQM_FAILPOINTS; see common/failpoint.h)");
  int64_t* io_retry_max_attempts = flags.AddInt(
      "io_retry_max_attempts", 0,
      "total attempts per WAL/checkpoint syscall for transient errno "
      "classes (EINTR/EAGAIN) before the error surfaces; 0 keeps the "
      "built-in default");
  bool* crash_after_ingest = flags.AddBool(
      "crash_after_ingest", false,
      "simulate a crash: _Exit(0) immediately after ingest, skipping "
      "publishes, flushes, and destructors (the crash half of the "
      "crash/recover smoke)");
  int64_t* demo_datasets = flags.AddInt(
      "demo_datasets", 6, "datasets simulated when no CSV files are given");
  int64_t* demo_tasks =
      flags.AddInt("demo_tasks", 300, "tasks per simulated demo dataset");
  int64_t* seed = flags.AddInt("seed", 42, "demo simulation seed");
  std::string* metrics_json = flags.AddString(
      "metrics_json", "",
      "write the engine's telemetry registry as JSON to this path (refreshed "
      "after ingest; see --metrics_every for mid-stream refreshes)");
  std::string* metrics_prom = flags.AddString(
      "metrics_prom", "",
      "write the telemetry registry in Prometheus text exposition format to "
      "this path");
  int64_t* metrics_every = flags.AddInt(
      "metrics_every", 0,
      "rewrite the --metrics_json/--metrics_prom files every N seconds while "
      "ingest runs (0 = only after ingest completes)");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    // --help parses as FailedPrecondition after printing usage.
    if (status.code() == dqm::StatusCode::kFailedPrecondition) return 0;
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }

  // Fault-injection setup runs before any engine I/O so even the first
  // manifest write sees the armed failpoints.
  if (!failpoints->empty()) {
    dqm::Status armed = dqm::failpoint::Configure(*failpoints);
    if (!armed.ok()) {
      std::fprintf(stderr, "--failpoints: %s\n", armed.ToString().c_str());
      return 1;
    }
  }
  if (*io_retry_max_attempts != 0) {
    if (*io_retry_max_attempts < 1) {
      std::fprintf(stderr, "--io_retry_max_attempts must be >= 1\n");
      return 1;
    }
    dqm::crowd::io::RetryOptions retry = dqm::crowd::io::GetRetryOptions();
    retry.max_attempts = static_cast<int>(*io_retry_max_attempts);
    dqm::crowd::io::SetRetryOptions(retry);
  }

  // --method (deprecated) maps 1:1 onto a single-entry spec list; the old
  // enum names are all registered spec names (or aliases).
  if (!method_name->empty() && !methods->empty()) {
    std::fprintf(stderr,
                 "--method is a deprecated alias of --methods; pass only "
                 "--methods\n");
    return 1;
  }
  if (!method_name->empty()) {
    std::fprintf(stderr, "note: --method is deprecated, use --methods=%s\n",
                 method_name->c_str());
  }
  std::string spec_list = !method_name->empty() ? *method_name
                          : methods->empty()    ? "switch"
                                                : *methods;
  std::vector<std::string> specs = dqm::estimators::SplitSpecList(spec_list);
  if (specs.empty()) {
    std::fprintf(stderr, "--methods must name at least one estimator\n");
    return 1;
  }
  for (const std::string& spec : specs) {
    dqm::Result<dqm::estimators::EstimatorFactory> factory =
        dqm::estimators::EstimatorRegistry::Global().FactoryFor(spec);
    if (!factory.ok()) {
      std::fprintf(stderr, "bad estimator spec '%s': %s\n", spec.c_str(),
                   factory.status().ToString().c_str());
      return 1;
    }
  }
  dqm::Result<dqm::engine::SessionOptions> session_options =
      dqm::engine::ParsePublishCadenceSpec(*publish_cadence);
  if (!session_options.ok()) {
    std::fprintf(stderr, "%s\n", session_options.status().ToString().c_str());
    return 1;
  }
  // Asking for several producers per session is the explicit multi-writer
  // opt-in: request striping even under the every_batch default (auto
  // striping only engages for coalesced cadences).
  if (*ingest_threads > 1 && session_options->ingest_stripes == 0) {
    session_options->ingest_stripes = std::max<size_t>(
        2, static_cast<size_t>(std::min<int64_t>(*ingest_threads, 16)));
  }
  session_options->durability_dir = *durability_dir;
  {
    dqm::Result<dqm::engine::DurabilityFailurePolicy> policy =
        dqm::engine::ParseDurabilityFailurePolicy(*durability_failure_policy);
    if (!policy.ok()) {
      std::fprintf(stderr, "--durability_failure_policy: %s\n",
                   policy.status().ToString().c_str());
      return 1;
    }
    session_options->durability_failure_policy = *policy;
  }
  if (!wal_group_commit->empty()) {
    dqm::Result<dqm::engine::SessionOptions> with_wal =
        dqm::engine::ParseWalGroupCommitSpec(*wal_group_commit,
                                             *session_options);
    if (!with_wal.ok()) {
      std::fprintf(stderr, "%s\n", with_wal.status().ToString().c_str());
      return 1;
    }
    *session_options = *with_wal;
  }
  session_options->checkpoint_every_votes =
      static_cast<uint64_t>(std::max<int64_t>(0, *checkpoint_every));

  if (*recover_keep_going && !*recover) {
    std::fprintf(stderr, "--recover_keep_going needs --recover\n");
    return 1;
  }
  if (*promote && standby->empty()) {
    std::fprintf(stderr, "--promote needs --standby\n");
    return 1;
  }
  if (!replicate_to->empty() && durability_dir->empty()) {
    std::fprintf(stderr,
                 "--replicate_to ships the WAL, so sessions must be durable: "
                 "add --durability_dir\n");
    return 1;
  }

  // --standby short-circuits ingest like --recover does: the sessions are
  // whatever the shipping root says the primary had.
  if (!standby->empty()) {
    if (*recover || !replicate_to->empty()) {
      std::fprintf(stderr,
                   "--standby is a replay role; drop --recover/--replicate_to\n");
      return 1;
    }
    if (!flags.positional().empty() || !workloads->empty()) {
      std::fprintf(stderr,
                   "--standby replays shipped sessions; drop the CSV/"
                   "--workload arguments\n");
      return 1;
    }
    std::vector<std::string> transports;
    {
      std::error_code ec;
      std::filesystem::directory_iterator it(*standby, ec);
      if (ec) {
        std::fprintf(stderr, "--standby: cannot scan %s: %s\n",
                     standby->c_str(), ec.message().c_str());
        return 1;
      }
      for (const std::filesystem::directory_entry& entry : it) {
        if (entry.is_directory()) transports.push_back(entry.path().string());
      }
      std::sort(transports.begin(), transports.end());
    }
    dqm::engine::DqmEngine engine;
    std::vector<std::unique_ptr<dqm::engine::StandbyApplier>> appliers;
    size_t failed_n = 0;
    dqm::AsciiTable standby_table({"transport", "session", "votes applied",
                                   "generation", "state"});
    for (const std::string& dir : transports) {
      dqm::Result<std::unique_ptr<dqm::engine::LocalDirTransport>> transport =
          dqm::engine::LocalDirTransport::Open(dir);
      dqm::Result<std::unique_ptr<dqm::engine::StandbyApplier>> applier =
          dqm::Status::Internal("unopened");
      if (transport.ok()) {
        applier = dqm::engine::StandbyApplier::Open(
            engine, std::move(transport).value(),
            {.durability_dir = *durability_dir});
      } else {
        applier = transport.status();
      }
      if (!applier.ok()) {
        ++failed_n;
        standby_table.AddRow({dir, "-", "-", "-",
                              applier.status().ToString()});
        continue;
      }
      const dqm::engine::StandbyApplier& a = **applier;
      standby_table.AddRow(
          {dir, a.session_name(),
           dqm::StrFormat("%llu",
                          static_cast<unsigned long long>(a.applied_votes())),
           dqm::StrFormat("%llu", static_cast<unsigned long long>(
                                      a.applied_generation())),
           a.divergent() ? "DIVERGED (awaiting checkpoint)" : "in sync"});
      appliers.push_back(std::move(applier).value());
    }
    std::printf("standby %s: %zu session(s) replayed, %zu failed\n",
                standby->c_str(), appliers.size(), failed_n);
    std::fputs(standby_table.Render().c_str(), stdout);
    if (*promote) {
      dqm::AsciiTable promote_table(
          {"session", "fencing token", "votes served", "generation"});
      for (std::unique_ptr<dqm::engine::StandbyApplier>& applier : appliers) {
        dqm::Result<dqm::engine::StandbyApplier::PromotionReport> report =
            applier->Promote();
        if (!report.ok()) {
          std::fprintf(stderr, "promote %s: %s\n",
                       applier->session_name().c_str(),
                       report.status().ToString().c_str());
          ++failed_n;
          continue;
        }
        promote_table.AddRow(
            {applier->session_name(),
             dqm::StrFormat("%llu", static_cast<unsigned long long>(
                                        report->fencing_token)),
             dqm::StrFormat("%llu", static_cast<unsigned long long>(
                                        report->applied_votes)),
             dqm::StrFormat("%llu", static_cast<unsigned long long>(
                                        report->generation))});
      }
      std::printf("promoted — the old primary is fenced off\n");
      std::fputs(promote_table.Render().c_str(), stdout);
    }
    if (!appliers.empty()) {
      std::printf("engine report — %s sessions\n",
                  *promote ? "promoted" : "standby");
      PrintReport(engine);
    }
    PrintTelemetrySummary(engine);
    if (!metrics_json->empty() || !metrics_prom->empty()) {
      DumpMetrics(engine, *metrics_json, *metrics_prom);
    }
    return failed_n > 0 ? 1 : 0;
  }
  // --recover short-circuits the ingest pipeline entirely: the datasets are
  // whatever the durability root says they were.
  if (*recover) {
    if (durability_dir->empty()) {
      std::fprintf(stderr, "--recover needs --durability_dir\n");
      return 1;
    }
    if (!flags.positional().empty() || !workloads->empty()) {
      std::fprintf(stderr,
                   "--recover rebuilds sessions from --durability_dir; drop "
                   "the CSV/--workload arguments\n");
      return 1;
    }
    dqm::engine::DqmEngine engine;
    if (*recover_keep_going) {
      using Outcome = dqm::engine::DqmEngine::SessionRecoveryOutcome;
      dqm::Result<std::vector<Outcome>> outcomes =
          engine.RecoverSessionsKeepGoing(*durability_dir);
      if (!outcomes.ok()) {
        std::fprintf(stderr, "recover %s: %s\n", durability_dir->c_str(),
                     outcomes.status().ToString().c_str());
        return 1;
      }
      size_t recovered_n = 0, skipped_n = 0, failed_n = 0;
      dqm::AsciiTable outcome_table(
          {"directory", "session", "outcome", "votes restored", "detail"});
      for (const Outcome& o : *outcomes) {
        const char* state = "failed";
        std::string votes = "-";
        switch (o.state) {
          case Outcome::State::kRecovered:
            // A session can come back serving but already degraded to
            // volatile durability (or with a sealed WAL) — an operator
            // triaging the table needs that distinction up front.
            state = o.report.degraded ? "recovered (degraded)" : "recovered";
            ++recovered_n;
            votes = dqm::StrFormat(
                "%llu",
                static_cast<unsigned long long>(o.report.votes_restored));
            break;
          case Outcome::State::kSkipped:
            state = "skipped";
            ++skipped_n;
            break;
          case Outcome::State::kFailed:
            ++failed_n;
            break;
        }
        outcome_table.AddRow({o.dir, o.name.empty() ? "-" : o.name, state,
                              votes, o.detail.empty() ? "-" : o.detail});
      }
      std::printf(
          "recover (keep going) %s: %zu recovered, %zu skipped, %zu "
          "failed\n",
          durability_dir->c_str(), recovered_n, skipped_n, failed_n);
      std::fputs(outcome_table.Render().c_str(), stdout);
      if (recovered_n > 0) {
        std::printf("engine report — recovered sessions\n");
        PrintReport(engine);
      }
      PrintTelemetrySummary(engine);
      if (!metrics_json->empty() || !metrics_prom->empty()) {
        DumpMetrics(engine, *metrics_json, *metrics_prom);
      }
      // Skipped directories are the benign half-open case; only a session
      // that should have come back and didn't is an operator problem.
      return failed_n > 0 ? 1 : 0;
    }
    dqm::Result<std::vector<dqm::engine::DqmEngine::RecoveredSession>> recovered =
        engine.RecoverSessions(*durability_dir);
    if (!recovered.ok()) {
      std::fprintf(stderr, "recover %s: %s\n", durability_dir->c_str(),
                   recovered.status().ToString().c_str());
      return 1;
    }
    std::printf("recovered %zu session(s) from %s\n", recovered->size(),
                durability_dir->c_str());
    dqm::AsciiTable recovery_table({"session", "items", "votes restored",
                                    "torn records", "checkpoint", "durability"});
    for (const dqm::engine::DqmEngine::RecoveredSession& r : *recovered) {
      recovery_table.AddRow(
          {r.name,
           dqm::StrFormat("%llu", static_cast<unsigned long long>(r.num_items)),
           dqm::StrFormat("%llu",
                          static_cast<unsigned long long>(r.votes_restored)),
           dqm::StrFormat("%llu",
                          static_cast<unsigned long long>(r.torn_records)),
           r.had_checkpoint ? "yes" : "no", r.degraded ? "DEGRADED" : "ok"});
    }
    std::fputs(recovery_table.Render().c_str(), stdout);
    std::printf("engine report — recovered sessions\n");
    PrintReport(engine);
    PrintTelemetrySummary(engine);
    if (!metrics_json->empty() || !metrics_prom->empty()) {
      DumpMetrics(engine, *metrics_json, *metrics_prom);
    }
    return 0;
  }

  // One dataset per positional CSV file, generated workload, or simulated
  // demo scenario.
  struct Dataset {
    std::string name;
    std::vector<dqm::crowd::VoteEvent> events;
    size_t num_items = 0;
    /// Ingest partition from the workload's arrival process; empty = fixed
    /// --batch chunks.
    std::vector<size_t> batches;
  };
  std::vector<Dataset> datasets;
  if (!workloads->empty()) {
    if (!flags.positional().empty()) {
      std::fprintf(stderr,
                   "--workload generates its own datasets; drop the CSV "
                   "file arguments\n");
      return 1;
    }
    std::set<std::string> used_names;
    std::vector<std::string> specs_list =
        dqm::estimators::SplitSpecList(*workloads);
    if (specs_list.empty()) {
      std::fprintf(stderr, "--workload must name at least one workload\n");
      return 1;
    }
    for (size_t w = 0; w < specs_list.size(); ++w) {
      dqm::Result<std::unique_ptr<dqm::workload::Workload>> generator =
          dqm::workload::WorkloadRegistry::Global().Create(specs_list[w]);
      if (!generator.ok()) {
        std::fprintf(stderr, "bad workload spec '%s': %s\n",
                     specs_list[w].c_str(),
                     generator.status().ToString().c_str());
        return 1;
      }
      dqm::workload::GeneratedWorkload run = (*generator)->Generate(
          static_cast<uint64_t>(*seed) + static_cast<uint64_t>(w));
      // Session named after the family; duplicates get a numeric suffix.
      std::string family = (*generator)->spec();
      family = family.substr(0, family.find('?'));
      std::string name = UniqueSessionName(family, used_names);
      std::printf("workload '%s' -> session '%s': %zu items, %zu true "
                  "dirty, %zu votes in %zu batches\n",
                  (*generator)->spec().c_str(), name.c_str(),
                  (*generator)->num_items(), run.NumDirty(),
                  run.log.num_events(), run.batch_sizes.size());
      datasets.push_back(Dataset{name, run.log.events(),
                                 (*generator)->num_items(),
                                 std::move(run.batch_sizes)});
    }
  } else if (flags.positional().empty()) {
    std::printf("no CSV files given — running the simulated demo "
                "(%lld datasets)\n",
                static_cast<long long>(*demo_datasets));
    for (int64_t d = 0; d < *demo_datasets; ++d) {
      // Sweep the worker error regime so the per-dataset scores differ.
      double fp = 0.005 * static_cast<double>(d);
      double fn = 0.05 + 0.03 * static_cast<double>(d);
      dqm::core::Scenario scenario = dqm::core::SimulationScenario(fp, fn);
      dqm::core::SimulatedRun run = dqm::core::SimulateScenario(
          scenario, static_cast<size_t>(*demo_tasks),
          static_cast<uint64_t>(*seed) + static_cast<uint64_t>(d));
      datasets.push_back(Dataset{
          dqm::StrFormat("demo-%02lld", static_cast<long long>(d)),
          run.log.events(), scenario.num_items, {}});
    }
  } else {
    std::set<std::string> used_names;
    for (const std::string& path : flags.positional()) {
      dqm::Result<dqm::crowd::ResponseLog> log =
          dqm::crowd::ResponseLogIo::ReadFile(path,
                                              static_cast<size_t>(*num_items));
      if (!log.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     log.status().ToString().c_str());
        return 1;
      }
      datasets.push_back(Dataset{SessionNameForPath(path, used_names),
                                 log->events(),
                                 static_cast<size_t>(*num_items),
                                 {}});
    }
  }

  dqm::engine::DqmEngine engine;
  for (const Dataset& dataset : datasets) {
    dqm::Result<std::shared_ptr<dqm::engine::EstimationSession>> session =
        engine.OpenSession(dataset.name, dataset.num_items,
                           std::span<const std::string>(specs),
                           *session_options);
    if (!session.ok()) {
      std::fprintf(stderr, "open %s: %s\n", dataset.name.c_str(),
                   session.status().ToString().c_str());
      return 1;
    }
    if (*ingest_threads > 1 && !(*session)->concurrent_ingest()) {
      std::fprintf(stderr,
                   "note: session '%s' has an order-sensitive panel and uses "
                   "the serialized commit path; with --ingest_threads=%lld "
                   "the batch order is unspecified\n",
                   dataset.name.c_str(),
                   static_cast<long long>(*ingest_threads));
    }
  }

  // Hot-standby shipping: one replicator per session, each with its own
  // transport directory, installed before the first vote so the standby
  // sees the complete durable stream. They stay alive through ingest (and
  // through a --crash_after_ingest _Exit — dying with segments shipped is
  // exactly the failover drill).
  std::vector<std::unique_ptr<dqm::engine::SessionReplicator>> replicators;
  if (!replicate_to->empty()) {
    for (const Dataset& dataset : datasets) {
      dqm::Result<std::shared_ptr<dqm::engine::EstimationSession>> session =
          engine.GetSession(dataset.name);
      if (!session.ok()) continue;
      dqm::Result<std::unique_ptr<dqm::engine::LocalDirTransport>> transport =
          dqm::engine::LocalDirTransport::Open(
              *replicate_to + "/" + dqm::engine::PercentEncode(dataset.name));
      dqm::Result<std::unique_ptr<dqm::engine::SessionReplicator>> replicator =
          dqm::Status::Internal("unopened");
      if (transport.ok()) {
        replicator = dqm::engine::SessionReplicator::Start(
            std::move(session).value(), std::move(transport).value());
      } else {
        replicator = transport.status();
      }
      if (!replicator.ok()) {
        std::fprintf(stderr, "replicate %s: %s\n", dataset.name.c_str(),
                     replicator.status().ToString().c_str());
        return 1;
      }
      replicators.push_back(std::move(replicator).value());
    }
    std::printf("replicating %zu session(s) to %s\n", replicators.size(),
                replicate_to->c_str());
  }

  size_t workers = *threads <= 0 ? dqm::ThreadPool::DefaultThreadCount()
                                 : static_cast<size_t>(*threads);
  size_t producers_per_session =
      static_cast<size_t>(std::max<int64_t>(1, *ingest_threads));
  std::vector<dqm::Status> outcomes(datasets.size());
  {
    PeriodicMetricsDumper dumper(engine, *metrics_json, *metrics_prom,
                                 *metrics_every);
    dqm::ThreadPool pool(std::max<size_t>(1, workers));
    dqm::ParallelFor(&pool, datasets.size(), [&](size_t d) {
      outcomes[d] = StreamVotes(engine, datasets[d].name, datasets[d].events,
                                datasets[d].batches,
                                static_cast<size_t>(std::max<int64_t>(1, *batch)),
                                producers_per_session);
    });
  }
  for (size_t d = 0; d < datasets.size(); ++d) {
    if (!outcomes[d].ok()) {
      std::fprintf(stderr, "ingest %s: %s\n", datasets[d].name.c_str(),
                   outcomes[d].ToString().c_str());
      return 1;
    }
  }
  if (*crash_after_ingest) {
    // The crash half of the crash/recover smoke: die with the sessions
    // still open. _Exit skips destructors and stdio flushes, so anything a
    // real crash would lose (the unsynced WAL group-commit tail) is lost
    // here too; recovery must come entirely from what fsync already pinned.
    std::printf("crash_after_ingest: exiting without clean shutdown\n");
    std::fflush(stdout);
    std::_Exit(0);
  }
  // Manual / coalesced cadences leave a committed tail unpublished; flush
  // every session so the report reflects the full stream.
  if (session_options->cadence != dqm::engine::PublishCadence::kEveryBatch) {
    for (const Dataset& dataset : datasets) {
      dqm::Status published = engine.Publish(dataset.name);
      if (!published.ok()) {
        std::fprintf(stderr, "publish %s: %s\n", dataset.name.c_str(),
                     published.ToString().c_str());
        return 1;
      }
    }
  }

  if (!replicators.empty()) {
    dqm::AsciiTable replication_table({"session", "token", "generation",
                                       "segments", "checkpoints",
                                       "votes shipped", "ship errors"});
    for (const std::unique_ptr<dqm::engine::SessionReplicator>& replicator :
         replicators) {
      dqm::engine::ReplicationStats stats = replicator->stats();
      replication_table.AddRow(
          {replicator->session_name(),
           dqm::StrFormat("%llu", static_cast<unsigned long long>(
                                      replicator->fencing_token())),
           dqm::StrFormat("%llu", static_cast<unsigned long long>(
                                      stats.shipped_generation)),
           dqm::StrFormat("%llu", static_cast<unsigned long long>(
                                      stats.segments_shipped)),
           dqm::StrFormat("%llu", static_cast<unsigned long long>(
                                      stats.checkpoints_shipped)),
           dqm::StrFormat("%llu",
                          static_cast<unsigned long long>(stats.shipped_votes)),
           dqm::StrFormat("%llu",
                          static_cast<unsigned long long>(stats.ship_errors))});
    }
    std::printf("replication — shipped to %s\n", replicate_to->c_str());
    std::fputs(replication_table.Render().c_str(), stdout);
  }

  std::printf("engine report — methods=%s, %zu sessions\n",
              dqm::Join(specs, ",").c_str(), engine.num_sessions());
  PrintReport(engine);
  PrintTelemetrySummary(engine);
  if (!metrics_json->empty() || !metrics_prom->empty()) {
    // Summary above already refreshed the roll-up gauges; this writes the
    // final post-ingest fold to the requested files.
    DumpMetrics(engine, *metrics_json, *metrics_prom);
    if (!metrics_json->empty()) {
      std::printf("metrics json: %s\n", metrics_json->c_str());
    }
    if (!metrics_prom->empty()) {
      std::printf("metrics prom: %s\n", metrics_prom->c_str());
    }
  }
  return 0;
}
