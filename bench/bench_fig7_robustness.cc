// Reproduces Figure 7 of the paper: estimator robustness on the simulated
// workload (1000 candidate pairs, 100 duplicates, 15 items per task) under
// three worker-error regimes:
//   (a) false negatives only (10%)  — Chao92 performs best, all converge
//   (b) false positives only (1%)   — Chao92 overestimates badly;
//                                     V-CHAO and SWITCH stay accurate
//   (c) both (10% FN + 1% FP)       — SWITCH is the most robust
// ("SWITCH is the most robust estimator against all error types.")

#include "figure_common.h"

int main() {
  struct Panel {
    const char* name;
    double fp;
    double fn;
  };
  const Panel panels[] = {
      {"Figure 7(a) — 10% false negatives only", 0.0, 0.10},
      {"Figure 7(b) — 1% false positives only", 0.01, 0.0},
      {"Figure 7(c) — both error types", 0.01, 0.10},
  };
  for (const Panel& panel : panels) {
    dqm::bench::FigureSpec spec;
    spec.title = panel.name;
    spec.scenario = dqm::core::SimulationScenario(panel.fp, panel.fn, 15);
    spec.num_tasks = 800;
    spec.permutations = 10;
    spec.seed = 7117;
    spec.methods = {
        {"CHAO92", "chao92"},
        {"V-CHAO", "vchao92"},
        {"SWITCH", "switch"},
        {"VOTING", "voting"},
    };
    dqm::bench::RunTotalErrorFigure(spec);
  }
  dqm::bench::WriteBenchArtifact("fig7_robustness");
  return 0;
}
