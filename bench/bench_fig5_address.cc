// Reproduces Figure 5 of the paper: the Address workload (1000 records, 90
// malformed, fair amounts of both false positives and false negatives).
//
// Expected shape (paper): VOTING barely improves for the first ~300 tasks
// (the two error types cancel); SWITCH overestimates early on (positive
// switch correction), then converges to the truth once workers start
// correcting the false positives and the negative switch estimates take
// over.

#include "figure_common.h"

int main() {
  dqm::bench::FigureSpec spec;
  spec.title = "Figure 5 — Address";
  spec.scenario = dqm::core::AddressScenario();
  spec.num_tasks = 1600;
  spec.permutations = 10;
  spec.seed = 2017;
  spec.methods = {
      {"SWITCH", "switch"},
      {"V-CHAO", "vchao92"},
      {"VOTING", "voting"},
  };
  spec.extrapol_fraction = 0.05;
  spec.show_scm = true;
  dqm::bench::RunTotalErrorFigure(spec);
  dqm::bench::RunSwitchPanels(spec);
  dqm::bench::WriteBenchArtifact("fig5_address");
  return 0;
}
