// Scenario x estimator robustness grid over the hostile-crowd workload
// families.
//
// The paper evaluates its estimator panel under benign, fixed-quality
// crowds; this bench stresses every *registered* estimator against every
// requested workload family — drifting worker quality, adversarial cohorts,
// bursty arrival, heavy-tailed item difficulty — and reports each cell's
// final estimate and its absolute error against the workload's hidden
// ground truth. The grid is printed as an ASCII table (rows = workloads,
// columns = estimators) and emitted as a BenchJsonWriter line for
// downstream diffing: one JSON result row per workload with per-estimator
// `<spec>:total` / `<spec>:abs_err` metrics.
//
//   --workloads   comma-separated workload specs (default: all 5 families)
//   --methods     comma-separated estimator specs (default: every
//                 registered estimator, no params)
//   --smoke       shrink any workload that does not pin its own n/tasks to
//                 a tiny universe — the CI-sized run
//
// Robustness headline to look for: SWITCH and EM-VOTING stay near the true
// dirty count while the coverage-based family (CHAO92 etc.) inflates under
// adversarial false positives and drift.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/ascii.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "estimators/registry.h"
#include "figure_common.h"
#include "workload/workload.h"

namespace {

/// --smoke: bolt tiny sizes onto `spec` unless it already pins them, so an
/// explicitly sized workload is respected — including keeping the appended
/// dirty count inside a user-pinned universe.
std::string SmokeSpec(const std::string& spec) {
  dqm::Result<dqm::estimators::EstimatorSpec> parsed =
      dqm::estimators::ParseEstimatorSpec(spec);
  if (!parsed.ok()) return spec;  // let the registry report the error
  auto find = [&](const char* key) -> const std::string* {
    for (const auto& [k, v] : parsed->params) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  std::string smoke = spec;
  auto append = [&](const std::string& param) {
    smoke += smoke.find('?') == std::string::npos ? '?' : '&';
    smoke += param;
  };
  unsigned long long n = 150;
  if (const std::string* pinned_n = find("n")) {
    errno = 0;
    char* end = nullptr;
    n = std::strtoull(pinned_n->c_str(), &end, 10);
    if (errno != 0 || end == pinned_n->c_str() || *end != '\0') {
      return spec;  // malformed n: let the registry report it
    }
  } else {
    append("n=150");
  }
  if (find("dirty") == nullptr) {
    append(dqm::StrFormat("dirty=%llu", std::min<unsigned long long>(
                                            20, std::max<unsigned long long>(
                                                    n / 5, 1))));
  }
  if (find("tasks") == nullptr) append("tasks=60");
  return smoke;
}

}  // namespace

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  std::string* workloads = flags.AddString(
      "workloads",
      "benign,drift,adversarial,burst,heavytail",
      "comma-separated workload specs (families: " +
          dqm::Join(dqm::workload::WorkloadRegistry::Global().Names(), ", ") +
          ")");
  std::string* methods = flags.AddString(
      "methods", "",
      "comma-separated estimator specs (default: every registered "
      "estimator)");
  bool* smoke = flags.AddBool(
      "smoke", false, "tiny sizes for CI (unless a spec pins n/dirty/tasks)");
  int64_t* seed = flags.AddInt("seed", 42, "workload generation seed");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == dqm::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  std::vector<std::string> workload_specs =
      dqm::estimators::SplitSpecList(*workloads);
  if (workload_specs.empty()) {
    std::fprintf(stderr, "--workloads must name at least one workload\n");
    return 1;
  }
  if (*smoke) {
    for (std::string& spec : workload_specs) spec = SmokeSpec(spec);
  }

  std::vector<std::string> estimator_specs;
  if (methods->empty()) {
    estimator_specs = dqm::estimators::EstimatorRegistry::Global().Names();
  } else {
    estimator_specs = dqm::estimators::SplitSpecList(*methods);
  }
  if (estimator_specs.empty()) {
    std::fprintf(stderr, "--methods must name at least one estimator\n");
    return 1;
  }

  dqm::core::ExperimentRunner::Config config;
  config.seed = static_cast<uint64_t>(*seed);
  dqm::core::ExperimentRunner runner(config);

  std::printf("== workload x estimator robustness matrix ==\n");
  std::printf("%zu workloads x %zu estimators, seed %lld%s\n",
              workload_specs.size(), estimator_specs.size(),
              static_cast<long long>(*seed), *smoke ? " (smoke sizes)" : "");

  std::vector<std::string> header = {"workload", "truth", "votes", "batches"};
  for (const std::string& spec : estimator_specs) header.push_back(spec);
  dqm::AsciiTable table(header);

  dqm::bench::BenchJsonWriter json("workload_matrix");
  std::vector<double> abs_error_sums(estimator_specs.size(), 0.0);
  for (const std::string& workload_spec : workload_specs) {
    dqm::Result<dqm::core::ExperimentRunner::WorkloadReport> report =
        runner.RunWorkload(workload_spec, estimator_specs);
    if (!report.ok()) {
      std::fprintf(stderr, "workload '%s': %s\n", workload_spec.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> cells = {
        report->workload_spec, dqm::StrFormat("%zu", report->num_dirty),
        dqm::StrFormat("%zu", report->num_votes),
        dqm::StrFormat("%zu", report->num_batches)};
    std::vector<std::pair<std::string, double>> metrics = {
        {"true_dirty", static_cast<double>(report->num_dirty)},
        {"votes", static_cast<double>(report->num_votes)},
        {"batches", static_cast<double>(report->num_batches)}};
    for (size_t e = 0; e < report->cells.size(); ++e) {
      const dqm::core::ExperimentRunner::WorkloadCell& cell =
          report->cells[e];
      cells.push_back(dqm::StrFormat("%.1f (err %.1f)", cell.total_errors,
                                     cell.abs_error));
      metrics.emplace_back(cell.spec + ":total", cell.total_errors);
      metrics.emplace_back(cell.spec + ":abs_err", cell.abs_error);
      abs_error_sums[e] += cell.abs_error;
    }
    table.AddRow(std::move(cells));
    json.AddResult(report->workload_spec, std::move(metrics));
  }
  std::fputs(table.Render().c_str(), stdout);

  std::printf("mean absolute error across workloads:\n");
  for (size_t e = 0; e < estimator_specs.size(); ++e) {
    std::printf("  %-20s %.1f\n", estimator_specs[e].c_str(),
                abs_error_sums[e] / static_cast<double>(workload_specs.size()));
  }
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("workload_matrix");
  return 0;
}
