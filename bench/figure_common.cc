#include "figure_common.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <sys/resource.h>

#include "common/ascii.h"
#include "common/string_util.h"
#include "estimators/extrapolation.h"
#include "estimators/registry.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace dqm::bench {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// %g prints nan/inf, which no JSON parser accepts; emit null instead.
std::string JsonNumber(double value) {
  return std::isfinite(value) ? StrFormat("%.6g", value) : "null";
}

}  // namespace

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchJsonWriter::AddResult(
    std::string name, std::vector<std::pair<std::string, double>> metrics) {
  results_.emplace_back(std::move(name), std::move(metrics));
}

namespace {

/// Lines queued by EmitBenchJson for the binary's artifact file.
std::vector<std::string>& QueuedBenchLines() {
  static auto& lines = *new std::vector<std::string>();
  return lines;
}

}  // namespace

double PeakRssMb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // ru_maxrss is KiB on Linux, bytes on macOS.
#ifdef __APPLE__
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

void EmitBenchJson(const BenchJsonWriter& json) {
  std::string line = json.Render();
  std::printf("%s\n", line.c_str());
  QueuedBenchLines().push_back(std::move(line));
}

bool WriteBenchArtifact(std::string_view bench_name) {
  const char* dir = std::getenv("DQM_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/"
                         : std::string();
  path += "BENCH_";
  path += bench_name;
  path += ".json";

  // hardware_concurrency lets the floor gate (tools/check_bench_json.py)
  // skip multi-writer scaling floors when the artifact came from a
  // single-core machine, where "4 writers" measures scheduler thrash.
  std::string body = StrFormat(
      "{\"bench\":\"%s\",\"peak_rss_mb\":%s,\"hardware_concurrency\":%u,"
      "\"runs\":[",
      JsonEscape(std::string(bench_name)).c_str(),
      JsonNumber(PeakRssMb()).c_str(), std::thread::hardware_concurrency());
  const std::vector<std::string>& lines = QueuedBenchLines();
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) body += ",";
    body += lines[i];
  }
  // Every bench artifact carries the process's telemetry fold: seqlock
  // retries, stripe lock waits, publish phase latencies — the "why did the
  // number move" context that makes a perf regression diagnosable from the
  // artifact alone.
  body += "],\"telemetry\":";
  body += telemetry::RenderJson(telemetry::MetricsRegistry::Global());
  body += "}\n";

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size();
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) {
    std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
    return false;
  }
  std::printf("bench artifact: %s\n", path.c_str());
  return true;
}

std::string BenchJsonWriter::Render() const {
  std::string out = StrFormat("{\"bench\":\"%s\",\"results\":[",
                              JsonEscape(bench_name_).c_str());
  for (size_t i = 0; i < results_.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("{\"name\":\"%s\"",
                     JsonEscape(results_[i].first).c_str());
    for (const auto& [metric, value] : results_[i].second) {
      out += StrFormat(",\"%s\":%s", JsonEscape(metric).c_str(),
                       JsonNumber(value).c_str());
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::vector<size_t> SampleIndices(size_t n, size_t count) {
  std::vector<size_t> indices;
  if (n == 0) return indices;
  count = std::min(count, n);
  for (size_t i = 0; i < count; ++i) {
    indices.push_back((i + 1) * n / count - 1);
  }
  return indices;
}

void PrintSeriesTable(const std::vector<std::string>& names,
                      const std::vector<core::SeriesResult>& series,
                      size_t table_points, double ground_truth) {
  if (series.empty() || series.front().mean.empty()) return;
  size_t n = series.front().mean.size();
  std::vector<std::string> header = {"tasks"};
  for (const auto& name : names) {
    header.push_back(name);
    header.push_back("+/-");
  }
  header.push_back("truth");
  AsciiTable table(header);
  for (size_t x : SampleIndices(n, table_points)) {
    std::vector<std::string> row = {StrFormat("%zu", x + 1)};
    for (const auto& s : series) {
      row.push_back(StrFormat("%.1f", s.mean[x]));
      row.push_back(StrFormat("%.1f", s.std_dev[x]));
    }
    row.push_back(StrFormat("%.0f", ground_truth));
    table.AddRow(std::move(row));
  }
  std::fputs(table.Render().c_str(), stdout);
}

std::vector<double> RunTotalErrorFigure(const FigureSpec& spec) {
  std::printf("== %s ==\n", spec.title.c_str());
  std::printf(
      "items=%zu true-errors=%zu items/task=%zu tasks=%zu "
      "fp=%.3f fn=%.3f permutations=%zu seed=%llu\n",
      spec.scenario.num_items, spec.scenario.num_dirty(),
      spec.scenario.items_per_task, spec.num_tasks,
      spec.scenario.workers.base.false_positive_rate,
      spec.scenario.workers.base.false_negative_rate, spec.permutations,
      static_cast<unsigned long long>(spec.seed));

  core::SimulatedRun run =
      core::SimulateScenario(spec.scenario, spec.num_tasks, spec.seed);
  double truth = static_cast<double>(spec.scenario.num_dirty());

  std::vector<std::pair<std::string, estimators::EstimatorFactory>> factories;
  std::vector<std::string> names;
  for (const auto& [name, estimator_spec] : spec.methods) {
    // Registry lookup; a typo'd spec in a bench config aborts with the
    // status message (benches are trusted callers).
    factories.emplace_back(
        name, estimators::EstimatorRegistry::Global()
                  .FactoryFor(estimator_spec)
                  .value());
    names.push_back(name);
  }
  core::ExperimentRunner runner(
      {.permutations = spec.permutations, .seed = spec.seed ^ 0xbeef});
  std::vector<core::SeriesResult> series =
      runner.Run(run.log, spec.scenario.num_items, factories);

  PrintSeriesTable(names, series, spec.table_points, truth);

  if (spec.extrapol_fraction > 0.0) {
    Rng rng(spec.seed ^ 0x1234);
    estimators::ExtrapolationBand band = estimators::OracleExtrapolationBand(
        run.truth, spec.extrapol_fraction, spec.extrapol_trials, rng);
    std::printf(
        "EXTRAPOL (oracle %.0f%% sample, %zu trials): %.1f +/- %.1f\n",
        spec.extrapol_fraction * 100.0, spec.extrapol_trials, band.mean,
        band.std_dev);
  }
  if (spec.show_scm) {
    std::printf("SCM (3 votes x %zu items / %zu per task): %.0f tasks\n",
                spec.scenario.num_items, spec.scenario.items_per_task,
                core::SampleCleanMinimumTasks(spec.scenario.num_items,
                                              spec.scenario.items_per_task));
  }

  std::vector<double> x(series.front().mean.size());
  for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i + 1);
  AsciiChart chart(spec.title + " — total error estimates vs tasks", x);
  for (const auto& s : series) chart.AddSeries(s.name, s.mean);
  chart.AddHorizontalLine("ground truth", truth);
  std::fputs(chart.Render().c_str(), stdout);

  std::vector<double> finals;
  for (const auto& s : series) finals.push_back(s.mean.back());
  std::printf("final estimates:");
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("  %s=%.1f", names[i].c_str(), finals[i]);
  }
  std::printf("  truth=%.0f\n", truth);
  BenchJsonWriter json(spec.title);
  for (size_t i = 0; i < names.size(); ++i) {
    json.AddResult(names[i], {{"final_estimate", finals[i]},
                              {"final_std", series[i].std_dev.back()},
                              {"truth", truth}});
  }
  EmitBenchJson(json);
  std::printf("\n");
  return finals;
}

void RunSwitchPanels(const FigureSpec& spec) {
  core::SimulatedRun run =
      core::SimulateScenario(spec.scenario, spec.num_tasks, spec.seed);
  core::ExperimentRunner runner(
      {.permutations = spec.permutations, .seed = spec.seed ^ 0xbeef});
  estimators::SwitchTotalErrorEstimator::Config config;
  core::ExperimentRunner::SwitchDiagnostics diagnostics =
      runner.RunSwitchDiagnostics(run.log, spec.scenario.num_items, run.truth,
                                  config);

  std::printf("-- %s — remaining positive switches (panel b) --\n",
              spec.title.c_str());
  PrintSeriesTable(
      {"xi+ (est)", "needed+ (truth)"},
      {diagnostics.remaining_positive_estimate, diagnostics.needed_positive_truth},
      spec.table_points, 0.0);
  std::printf("-- %s — remaining negative switches (panel c) --\n",
              spec.title.c_str());
  PrintSeriesTable(
      {"xi- (est)", "needed- (truth)"},
      {diagnostics.remaining_negative_estimate, diagnostics.needed_negative_truth},
      spec.table_points, 0.0);

  std::vector<double> x(diagnostics.remaining_positive_estimate.mean.size());
  for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i + 1);
  AsciiChart chart(spec.title + " — remaining switches vs tasks", x);
  chart.AddSeries("xi+ est", diagnostics.remaining_positive_estimate.mean);
  chart.AddSeries("needed+", diagnostics.needed_positive_truth.mean);
  chart.AddSeries("xi- est", diagnostics.remaining_negative_estimate.mean);
  chart.AddSeries("needed-", diagnostics.needed_negative_truth.mean);
  std::fputs(chart.Render().c_str(), stdout);
  std::printf("\n");
}

}  // namespace dqm::bench
