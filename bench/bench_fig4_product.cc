// Reproduces Figure 4 of the paper: the Product workload (13022 candidate
// pairs, 607 true duplicates, FN-heavy crowd — the harder matching task).
//
// Expected shape (paper): VOTING increases monotonically; SWITCH uses the
// remaining positive switch estimate and reaches the truth earliest; V-CHAO
// is reasonable early (< ~1200 tasks) but then overestimates because a
// fixed shift s=1 cannot absorb items where several workers erred; the
// negative switch estimate is unreliable (few observations) with large
// error bars.

#include "figure_common.h"

int main() {
  dqm::bench::FigureSpec spec;
  spec.title = "Figure 4 — Product";
  spec.scenario = dqm::core::ProductScenario();
  spec.num_tasks = 8000;
  spec.permutations = 10;
  spec.seed = 2017;
  spec.methods = {
      {"SWITCH", "switch"},
      {"V-CHAO", "vchao92"},
      {"VOTING", "voting"},
  };
  spec.extrapol_fraction = 0.05;
  spec.show_scm = true;
  dqm::bench::RunTotalErrorFigure(spec);
  dqm::bench::RunSwitchPanels(spec);
  dqm::bench::WriteBenchArtifact("fig4_product");
  return 0;
}
