// Reproduces Figure 2 of the paper: why the EXTRAPOL baseline fails.
//
//   (a) Four independent, oracle-cleaned 2% samples of the full restaurant
//       pair space (858 records -> 367,653 pairs, 106 duplicates): the
//       extrapolated totals scatter wildly around the truth because rare
//       errors make small samples unrepresentative.
//   (b) A 100-pair sample of the 1264 candidate pairs cleaned by a growing
//       number of fallible (FP-heavy) workers with majority labels: the
//       estimate shifts as earlier false positives are corrected — even
//       "cleaning the sample harder" does not yield a stable estimate.

#include <cstdio>

#include "common/ascii.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/scenario.h"
#include "crowd/response_log.h"
#include "crowd/worker.h"
#include "er/pair.h"
#include "estimators/extrapolation.h"
#include "figure_common.h"

namespace {

void PanelA() {
  std::printf("== Figure 2(a) — oracle extrapolation from 2%% samples ==\n");
  const uint32_t num_records = 858;
  dqm::er::PairIndexer indexer(num_records);
  const uint64_t num_pairs = indexer.num_pairs();
  const size_t num_duplicates = 106;
  std::printf("pair space: %llu pairs, %zu true duplicates\n",
              static_cast<unsigned long long>(num_pairs), num_duplicates);

  // Hidden truth over the full pair space.
  dqm::Rng rng(20170202);
  std::vector<bool> truth(num_pairs, false);
  for (size_t index : rng.SampleIndices(num_pairs, num_duplicates)) {
    truth[index] = true;
  }

  auto sample_size = static_cast<size_t>(0.02 * static_cast<double>(num_pairs));
  dqm::AsciiTable table({"sample", "errors found", "extrapolated total"});
  for (int sample = 1; sample <= 4; ++sample) {
    double estimate =
        dqm::estimators::OracleExtrapolationTrial(truth, sample_size, rng);
    auto found = static_cast<size_t>(
        estimate * static_cast<double>(sample_size) /
            static_cast<double>(num_pairs) +
        0.5);
    table.AddRow({dqm::StrFormat("#%d (2%% = %zu pairs)", sample, sample_size),
                  dqm::StrFormat("%zu", found),
                  dqm::StrFormat("%.1f", estimate)});
  }
  table.AddRow({"ground truth", "-", dqm::StrFormat("%zu", num_duplicates)});
  std::fputs(table.Render().c_str(), stdout);

  dqm::Rng band_rng(555);
  dqm::estimators::ExtrapolationBand band =
      dqm::estimators::OracleExtrapolationBand(truth, 0.02, 50, band_rng);
  std::printf("over 50 samples: mean %.1f +/- %.1f (truth %zu)\n\n",
              band.mean, band.std_dev, num_duplicates);
}

void PanelB(dqm::bench::BenchJsonWriter& json) {
  std::printf(
      "== Figure 2(b) — extrapolation with more workers cleaning the "
      "sample ==\n");
  // 1264 candidates with 12 duplicates; a fixed random sample of 100 pairs
  // is reviewed by k workers each (FP-heavy crowd as on the real dataset).
  const size_t num_candidates = 1264;
  const size_t num_duplicates = 12;
  const size_t sample_size = 100;
  dqm::core::Scenario scenario = dqm::core::RestaurantScenario();

  dqm::AsciiTable table(
      {"workers", "sample#1", "sample#2", "sample#3", "sample#4", "mean"});
  std::vector<double> x;
  std::vector<double> mean_series;
  for (size_t workers : {1u, 2u, 3u, 5u, 8u, 12u, 16u, 25u}) {
    std::vector<std::string> row = {dqm::StrFormat("%zu", workers)};
    std::vector<double> estimates;
    for (uint64_t sample_id = 1; sample_id <= 4; ++sample_id) {
      dqm::Rng rng(sample_id * 7919);
      // The sample's hidden truth.
      std::vector<bool> truth(num_candidates, false);
      for (size_t index :
           rng.SampleIndices(num_candidates, num_duplicates)) {
        truth[index] = true;
      }
      std::vector<size_t> sample =
          rng.SampleIndices(num_candidates, sample_size);
      // k workers each review the whole sample; majority labels.
      dqm::crowd::WorkerPool pool(scenario.workers, dqm::Rng(sample_id * 31));
      std::vector<uint32_t> positive(sample_size, 0);
      for (size_t w = 0; w < workers; ++w) {
        dqm::crowd::WorkerProfile profile = pool.DrawWorker();
        for (size_t i = 0; i < sample_size; ++i) {
          if (profile.Answer(truth[sample[i]], rng) ==
              dqm::crowd::Vote::kDirty) {
            ++positive[i];
          }
        }
      }
      size_t errors_in_sample = 0;
      for (size_t i = 0; i < sample_size; ++i) {
        if (positive[i] * 2 > workers) ++errors_in_sample;
      }
      double estimate = dqm::estimators::ExtrapolateTotal(
          errors_in_sample, sample_size, num_candidates);
      estimates.push_back(estimate);
      row.push_back(dqm::StrFormat("%.1f", estimate));
    }
    row.push_back(dqm::StrFormat("%.1f", dqm::Mean(estimates)));
    table.AddRow(std::move(row));
    x.push_back(static_cast<double>(workers));
    mean_series.push_back(dqm::Mean(estimates));
    json.AddResult(dqm::StrFormat("panel_b_workers%zu", workers),
                   {{"mean_estimate", dqm::Mean(estimates)},
                    {"truth", static_cast<double>(num_duplicates)}});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf("ground truth: %zu duplicates among the %zu candidates\n",
              num_duplicates, num_candidates);
  dqm::AsciiChart chart("Figure 2(b) — mean extrapolated total vs workers", x);
  chart.AddSeries("EXTRAPOL mean", mean_series);
  chart.AddHorizontalLine("ground truth", static_cast<double>(num_duplicates));
  std::fputs(chart.Render(72, 12).c_str(), stdout);
}

}  // namespace

int main() {
  dqm::bench::BenchJsonWriter json("fig2_extrapolation");
  PanelA();
  PanelB(json);
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("fig2_extrapolation");
  return 0;
}
