// One-pass multi-estimator evaluation vs the pre-registry workflow.
//
// The paper's comparisons (Figs. 2, 4, 6) score the whole estimator panel —
// SWITCH, CHAO92, GOOD-TURING, V-CHAO, VOTING, NOMINAL — on the same vote
// stream. With the closed Method enum that meant six independent
// single-method `DataQualityMetric` replays: six response-log copies, six
// sets of per-item tallies, six duplicated positive-vote fingerprints. The
// multi-estimator pipeline attaches all six to ONE log and shares the
// descriptive statistics, so the comparison costs one replay.
//
// The workload is the Figure 2(b) regime: the restaurant candidate-pair
// space cleaned by an FP-heavy crowd. The bench cross-checks that both
// modes produce bit-identical finals before it reports any timing.

#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "figure_common.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

const std::vector<std::string> kPanel = {
    "switch", "chao92", "good-turing", "vchao92", "voting", "nominal"};

const std::vector<dqm::core::Method> kPanelMethods = {
    dqm::core::Method::kSwitch,  dqm::core::Method::kChao92,
    dqm::core::Method::kGoodTuring, dqm::core::Method::kVChao92,
    dqm::core::Method::kVoting,  dqm::core::Method::kNominal};

struct Timed {
  double seconds = 0.0;
  std::vector<double> finals;  // one per panel estimator
};

/// The old workflow: one full single-method replay per estimator.
Timed RunSixReplays(const std::vector<dqm::crowd::VoteEvent>& events,
                    size_t num_items) {
  Timed result;
  Clock::time_point start = Clock::now();
  for (dqm::core::Method method : kPanelMethods) {
    dqm::core::DataQualityMetric::Options options;
    options.method = method;
    dqm::core::DataQualityMetric metric(num_items, options);
    for (const dqm::crowd::VoteEvent& event : events) {
      metric.AddVote(event.task, event.worker, event.item,
                     event.vote == dqm::crowd::Vote::kDirty);
    }
    result.finals.push_back(metric.EstimatedTotalErrors());
  }
  result.seconds = SecondsSince(start);
  return result;
}

/// The registry workflow: all six estimators on one pass.
Timed RunOnePass(const std::vector<dqm::crowd::VoteEvent>& events,
                 size_t num_items) {
  Timed result;
  Clock::time_point start = Clock::now();
  dqm::core::DataQualityMetric metric =
      dqm::core::DataQualityMetric::Create(
          num_items, std::span<const std::string>(kPanel))
          .value();
  for (const dqm::crowd::VoteEvent& event : events) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == dqm::crowd::Vote::kDirty);
  }
  for (const auto& row : metric.Report().estimators) {
    result.finals.push_back(row.total_errors);
  }
  result.seconds = SecondsSince(start);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  int64_t* tasks = flags.AddInt("tasks", 800, "crowd tasks to simulate");
  int64_t* repeats =
      flags.AddInt("repeats", 5, "timing repetitions (best-of is reported)");
  int64_t* seed = flags.AddInt("seed", 20170202, "simulation seed");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == dqm::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // Figure 2(b) regime: restaurant candidate pairs, FP-heavy workers.
  dqm::core::Scenario scenario = dqm::core::RestaurantScenario();
  dqm::core::SimulatedRun run = dqm::core::SimulateScenario(
      scenario, static_cast<size_t>(*tasks), static_cast<uint64_t>(*seed));
  const std::vector<dqm::crowd::VoteEvent>& events = run.log.events();
  std::printf(
      "== multi-estimator report: one pass vs six single-method replays ==\n");
  std::printf("workload: %s — %zu items, %zu votes, %lld tasks, panel of %zu\n",
              scenario.name.c_str(), scenario.num_items, events.size(),
              static_cast<long long>(*tasks), kPanel.size());

  Timed best_replays, best_one_pass;
  for (int64_t rep = 0; rep < std::max<int64_t>(1, *repeats); ++rep) {
    Timed replays = RunSixReplays(events, scenario.num_items);
    Timed one_pass = RunOnePass(events, scenario.num_items);
    // Equivalence first, timing second: every panel estimate must be
    // bit-identical across the two modes.
    DQM_CHECK_EQ(replays.finals.size(), one_pass.finals.size());
    for (size_t i = 0; i < replays.finals.size(); ++i) {
      DQM_CHECK(replays.finals[i] == one_pass.finals[i])
          << kPanel[i] << ": " << replays.finals[i]
          << " != " << one_pass.finals[i];
    }
    if (rep == 0 || replays.seconds < best_replays.seconds) {
      best_replays = replays;
    }
    if (rep == 0 || one_pass.seconds < best_one_pass.seconds) {
      best_one_pass = one_pass;
    }
  }

  double speedup = best_replays.seconds / best_one_pass.seconds;
  double votes = static_cast<double>(events.size());
  std::printf("six sequential replays: %8.2f ms  (%6.2f Mvotes/s effective)\n",
              best_replays.seconds * 1e3,
              votes * static_cast<double>(kPanel.size()) /
                  best_replays.seconds / 1e6);
  std::printf("one-pass pipeline:      %8.2f ms  (%6.2f Mvotes/s effective)\n",
              best_one_pass.seconds * 1e3,
              votes * static_cast<double>(kPanel.size()) /
                  best_one_pass.seconds / 1e6);
  std::printf("speedup: %.2fx (bit-identical panel estimates)\n", speedup);
  for (size_t i = 0; i < kPanel.size(); ++i) {
    std::printf("  %-12s %.1f\n", kPanel[i].c_str(), best_one_pass.finals[i]);
  }

  dqm::bench::BenchJsonWriter json("multi_estimator");
  json.AddResult("six_single_method_replays",
                 {{"seconds", best_replays.seconds},
                  {"votes", votes},
                  {"estimators", static_cast<double>(kPanel.size())}});
  json.AddResult("one_pass_report",
                 {{"seconds", best_one_pass.seconds},
                  {"votes", votes},
                  {"estimators", static_cast<double>(kPanel.size())},
                  {"speedup", speedup}});
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("multi_estimator");
  return 0;
}
