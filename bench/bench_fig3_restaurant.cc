// Reproduces Figure 3 of the paper: total error estimation plus positive
// and negative remaining-switch estimation on the Restaurant workload
// (1264 candidate pairs, 12 true duplicates, FP-heavy crowd).
//
// Expected shape (paper): VOTING decreases monotonically toward the truth;
// SWITCH overestimates briefly, then traces the ground truth using the
// negative switch estimates; V-CHAO converges more slowly from above;
// EXTRAPOL has a wide band. SWITCH should be near the truth well before
// the SCM task budget.

#include "figure_common.h"

int main() {
  dqm::bench::FigureSpec spec;
  spec.title = "Figure 3 — Restaurant";
  spec.scenario = dqm::core::RestaurantScenario();
  spec.num_tasks = 1200;
  spec.permutations = 10;
  spec.seed = 2017;
  spec.methods = {
      {"SWITCH", "switch"},
      {"V-CHAO", "vchao92"},
      {"VOTING", "voting"},
  };
  spec.extrapol_fraction = 0.05;
  spec.show_scm = true;
  dqm::bench::RunTotalErrorFigure(spec);
  dqm::bench::RunSwitchPanels(spec);
  dqm::bench::WriteBenchArtifact("fig3_restaurant");
  return 0;
}
