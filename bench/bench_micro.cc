// google-benchmark microbenchmarks: the per-vote cost of every estimator,
// the f-statistics bookkeeping, the text-similarity kernels, and candidate
// generation. These bound the library's overhead when monitoring a live
// crowdsourcing deployment (votes/second far beyond any crowd's rate).

#include <benchmark/benchmark.h>

#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "dataset/restaurant_generator.h"
#include "er/blocking.h"
#include "estimators/chao92.h"
#include "estimators/f_statistics.h"
#include "estimators/registry.h"
#include "estimators/switch_total.h"
#include "text/levenshtein.h"
#include "text/similarity.h"
#include "figure_common.h"

namespace {

// Shared simulated vote stream (1000 items, mixed noise).
const dqm::core::SimulatedRun& SharedRun() {
  static const auto& run = *new dqm::core::SimulatedRun(
      dqm::core::SimulateScenario(dqm::core::SimulationScenario(0.01, 0.1, 15),
                                  500, 7));
  return run;
}

void BM_EstimatorObserve(benchmark::State& state, const char* spec) {
  const auto& events = SharedRun().log.events();
  dqm::estimators::EstimatorFactory factory =
      dqm::estimators::EstimatorRegistry::Global().FactoryFor(spec).value();
  for (auto _ : state) {
    auto estimator = factory(1000);
    for (const auto& event : events) {
      estimator->Observe(event);
    }
    benchmark::DoNotOptimize(estimator->Estimate());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK_CAPTURE(BM_EstimatorObserve, voting, "voting");
BENCHMARK_CAPTURE(BM_EstimatorObserve, chao92, "chao92");
BENCHMARK_CAPTURE(BM_EstimatorObserve, vchao92, "vchao92");
BENCHMARK_CAPTURE(BM_EstimatorObserve, switch_est, "switch");

void BM_EstimateEveryTask(benchmark::State& state) {
  // Full estimate series (estimate after each of the 500 tasks).
  for (auto _ : state) {
    dqm::estimators::SwitchTotalErrorEstimator estimator(1000);
    std::vector<double> series =
        dqm::estimators::EstimateSeriesByTask(SharedRun().log, estimator);
    benchmark::DoNotOptimize(series.back());
  }
}
BENCHMARK(BM_EstimateEveryTask);

void BM_FStatisticsPromote(benchmark::State& state) {
  for (auto _ : state) {
    dqm::estimators::FStatistics f;
    for (int species = 0; species < 100; ++species) {
      f.AddSingleton();
    }
    for (uint32_t freq = 1; freq <= 50; ++freq) {
      for (int species = 0; species < 100; ++species) {
        f.Promote(freq);
      }
    }
    benchmark::DoNotOptimize(f.SumIiMinus1());
  }
}
BENCHMARK(BM_FStatisticsPromote);

void BM_Levenshtein(benchmark::State& state) {
  std::string a = "golden dragon cafe and grill house";
  std::string b = "goldan dragn cafe & grill hse";
  for (auto _ : state) {
    benchmark::DoNotOptimize(dqm::text::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_BoundedLevenshtein(benchmark::State& state) {
  std::string a = "golden dragon cafe and grill house";
  std::string b = "completely different product name!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(dqm::text::BoundedLevenshteinDistance(a, b, 3));
  }
}
BENCHMARK(BM_BoundedLevenshtein);

void BM_HybridSimilarity(benchmark::State& state) {
  std::string a = "Ritz-Carlton Cafe (buckhead)";
  std::string b = "Cafe Ritz-Carlton Buckhead";
  for (auto _ : state) {
    benchmark::DoNotOptimize(dqm::text::HybridSimilarity(a, b));
  }
}
BENCHMARK(BM_HybridSimilarity);

void BM_TokenBlocking(benchmark::State& state) {
  static const auto& dataset = *new dqm::dataset::ErDataset([] {
    dqm::dataset::RestaurantConfig config;
    config.num_entities = 400;
    config.num_duplicates = 50;
    auto result = dqm::dataset::GenerateRestaurantDataset(config);
    return std::move(result).value();
  }());
  dqm::er::CandidateGenerator generator(0.45, 0.95, "name");
  for (auto _ : state) {
    auto partition = generator.TokenBlocking(dataset.table);
    benchmark::DoNotOptimize(partition.value().candidates.size());
  }
}
BENCHMARK(BM_TokenBlocking);

void BM_PermuteTasks(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dqm::core::PermuteTasks(SharedRun().log, seed++).num_events());
  }
}
BENCHMARK(BM_PermuteTasks);

}  // namespace

// Expanded BENCHMARK_MAIN() so the run also writes BENCH_micro.json (peak
// RSS + any queued lines) like every other bench binary; the per-benchmark
// numbers stay in google-benchmark's own --benchmark_format output.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dqm::bench::WriteBenchArtifact("micro");
  return 0;
}
