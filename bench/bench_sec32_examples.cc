// Regenerates the two worked examples of Section 3.2.1: the Chao92
// estimate with and without false positives (the singleton-error
// entanglement).
//
// Paper numbers: Example 1 (no FPs): cnominal ~83, n+ ~180, f1 ~30,
// remaining estimate ~16.6 — "almost a perfect estimate". Example 2
// (1% FPs): ~19 wrongly marked duplicates push f1 to ~46, n+ to ~208, and
// the remaining estimate to ~131 — overestimating by more than 30%.

#include <cstdio>

#include "core/experiment.h"
#include "core/scenario.h"
#include "estimators/chao92.h"
#include "figure_common.h"

namespace {

void RunExample(const char* title, const char* tag, double fp_rate,
                uint64_t seed, dqm::bench::BenchJsonWriter& json) {
  // 1000 critical pairs, 100 duplicates, 20 pairs per task, detection rate
  // 0.9 (fn = 0.1), 100 tasks.
  dqm::core::Scenario scenario =
      dqm::core::SimulationScenario(fp_rate, 0.1, 20);
  dqm::core::SimulatedRun run = dqm::core::SimulateScenario(scenario, 100, seed);
  dqm::estimators::Chao92Estimator chao(scenario.num_items,
                                        /*skew_correction=*/false);
  for (const dqm::crowd::VoteEvent& event : run.log.events()) {
    chao.Observe(event);
  }
  size_t nominal = run.log.NominalCount();
  std::printf("%s\n", title);
  std::printf("  c_nominal = %zu unique marked errors\n", nominal);
  std::printf("  n+        = %llu positive votes\n",
              static_cast<unsigned long long>(run.log.total_positive_votes()));
  std::printf("  f1        = %llu singletons\n",
              static_cast<unsigned long long>(
                  chao.f_statistics().singletons()));
  std::printf("  D_hat     = %.1f total (remaining = %.1f)\n",
              chao.Estimate(),
              chao.Estimate() - static_cast<double>(nominal));
  std::printf("  truth     = 100 duplicates\n\n");
  json.AddResult(tag,
                 {{"c_nominal", static_cast<double>(nominal)},
                  {"n_positive",
                   static_cast<double>(run.log.total_positive_votes())},
                  {"f1", static_cast<double>(chao.f_statistics().singletons())},
                  {"estimate", chao.Estimate()},
                  {"truth", 100.0}});
}

}  // namespace

int main() {
  std::printf("== Section 3.2.1 worked examples ==\n");
  dqm::bench::BenchJsonWriter json("sec32_examples");
  RunExample("Example 1 — no false positives (paper: remaining ~16.6)",
             "example1_no_fp", 0.0, 7, json);
  RunExample("Example 2 — 1% false positives (paper: estimate ~131, >30% over)",
             "example2_fp", 0.01, 7, json);
  std::printf(
      "The false positives inflate both c and f1 (the singleton-error\n"
      "entanglement, Section 3.2.2), driving Chao92 far above the truth.\n");
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("sec32_examples");
  return 0;
}
