#ifndef DQM_BENCH_FIGURE_COMMON_H_
#define DQM_BENCH_FIGURE_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"

namespace dqm::bench {

/// Everything needed to regenerate one total-error panel of Figures 3-5 / 7:
/// simulate the scenario once, evaluate each method over task-order
/// permutations, print a sampled table and an ASCII chart with the ground
/// truth (and optionally the EXTRAPOL band and the SCM marker).
struct FigureSpec {
  std::string title;
  core::Scenario scenario;
  size_t num_tasks = 500;
  size_t permutations = 10;
  uint64_t seed = 42;
  /// (display label, registry spec string) pairs, e.g.
  /// {"V-CHAO", "vchao92?shift=2"}.
  std::vector<std::pair<std::string, std::string>> methods;
  /// Oracle extrapolation band (Figures 3-5): sample fraction; 0 disables.
  double extrapol_fraction = 0.0;
  size_t extrapol_trials = 20;
  /// Print the Sample Clean Minimum marker (Figures 3-5).
  bool show_scm = false;
  /// Number of x positions in the sampled table.
  size_t table_points = 12;
};

/// Runs the spec's total-error panel and prints it to stdout.
/// Returns the per-method final mean estimates (same order as methods).
std::vector<double> RunTotalErrorFigure(const FigureSpec& spec);

/// Runs the (b)/(c) panels of Figures 3-5: estimated remaining positive and
/// negative switches vs the ground-truth switches still needed.
void RunSwitchPanels(const FigureSpec& spec);

/// Prints a mean +/- std series as a sampled table.
void PrintSeriesTable(const std::vector<std::string>& names,
                      const std::vector<core::SeriesResult>& series,
                      size_t table_points, double ground_truth);

/// Evenly spaced sample indices over [0, n).
std::vector<size_t> SampleIndices(size_t n, size_t count);

/// Machine-readable metrics emitter shared by the bench executables. Every
/// bench prints one line per run:
///
///   {"bench":"<name>","results":[{"name":"...","<metric>":<value>,...},...]}
///
/// so downstream tooling can diff runs without scraping the ASCII tables.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name);

  /// Adds one result row: a label plus numeric metrics (insertion order is
  /// preserved in the output).
  void AddResult(std::string name,
                 std::vector<std::pair<std::string, double>> metrics);

  std::string Render() const;

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>>
      results_;
};

/// Peak resident set size of this process in MiB (getrusage; 0 when the
/// platform does not report it) — recorded into every bench artifact so the
/// perf trajectory tracks memory alongside throughput.
double PeakRssMb();

/// Prints `json`'s line to stdout and queues it for this binary's
/// BENCH_<name>.json artifact (see WriteBenchArtifact). Every bench emits
/// through this so one call at the end of main persists everything.
void EmitBenchJson(const BenchJsonWriter& json);

/// Writes all queued lines, wrapped as
///
///   {"bench":"<bench_name>","peak_rss_mb":<mb>,
///    "hardware_concurrency":<threads>,"runs":[<line>, ...]}
///
/// to BENCH_<bench_name>.json in $DQM_BENCH_JSON_DIR (default: the current
/// directory). Call once at the end of main. Returns false — after printing
/// a warning to stderr — when the file cannot be written; benches treat
/// that as non-fatal so read-only environments still get stdout output.
bool WriteBenchArtifact(std::string_view bench_name);

}  // namespace dqm::bench

#endif  // DQM_BENCH_FIGURE_COMMON_H_
