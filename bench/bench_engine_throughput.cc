// Engine-layer throughput: (a) multi-threaded batched vote ingest + query
// rates through DqmEngine — per estimator panel (--methods=), at 1/4/8
// threads against 1 and 64 sessions, with p50/p99 batch commit latency;
// (b) the multi-producer single-session scaling sweep (--writer_threads):
// 1/2/4/8 producers committing into ONE striped session, per-commit p50/p99
// latency and aggregate votes/s, under both the coalesced every-N-votes
// cadence and the bit-compatible every-batch default — the scaling curve
// behind the "one hot stream scales with writer threads" claim; (c) the
// parallel ExperimentRunner speedup over the serial replay (bit identity
// checked); (d) the long-session sweep: one session with `em-voting`
// attached ingesting until 100k+ accumulated votes, showing that
// warm-started EM keeps per-batch latency flat in history while the
// cold-refit path ("em-voting?warm=0") pays a full EM fit per batch — plus
// the kCounts vs kFullEvents retained-memory curve and (f) the durability
// overhead rows: the same single-producer striped workload with the
// write-ahead log off vs on across group-commit cadences, reporting
// absolute durable throughput (the gated number), the on/off ratio, WAL
// bytes written, and fsync count.
//
//   $ ./bench_engine_throughput [--tasks=500] [--batch=512]
//       [--methods=chao92,em-voting] [--writer_threads=1,2,4,8]
//       [--writer_cadence=every_n_votes:4096] [--sweep_votes=120000]
//       [--smoke]
//
// Emits the shared bench JSON lines after the tables and writes the whole
// run to BENCH_engine_throughput.json (see BenchJsonWriter /
// WriteBenchArtifact) for the CI perf-smoke gate.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/ascii.h"
#include "common/logging.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "engine/engine.h"
#include "engine/replication.h"
#include "estimators/registry.h"
#include "figure_common.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double Percentile(std::vector<double>& sorted_in_place, double q) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_in_place.size() - 1) + 0.5);
  return sorted_in_place[std::min(index, sorted_in_place.size() - 1)];
}

struct IngestResult {
  double votes_per_sec = 0.0;
  double p50_batch_ms = 0.0;
  double p99_batch_ms = 0.0;
};

/// Ingests `batches_per_thread` batches from each of `threads` workers,
/// round-robin over `num_sessions` sessions, querying each session after
/// every batch (the serving pattern: write a batch, read the fresh score).
/// Queries reuse a per-thread Snapshot (the allocation-free read path).
IngestResult MeasureIngest(const std::vector<std::string>& specs,
                           size_t threads, size_t num_sessions,
                           const std::vector<dqm::crowd::VoteEvent>& events,
                           size_t batch_size, size_t batches_per_thread,
                           size_t num_items) {
  dqm::engine::DqmEngine engine;
  std::vector<std::string> names;
  for (size_t s = 0; s < num_sessions; ++s) {
    names.push_back(dqm::StrFormat("dataset-%02zu", s));
    engine
        .OpenSession(names.back(), num_items,
                     std::span<const std::string>(specs))
        .value();
  }

  size_t total_batches = threads * batches_per_thread;
  std::vector<std::vector<double>> batch_ms(threads);
  dqm::ThreadPool pool(threads);
  Clock::time_point start = Clock::now();
  dqm::ParallelFor(&pool, threads, [&](size_t t) {
    batch_ms[t].reserve(batches_per_thread);
    dqm::engine::Snapshot scratch;  // reused across queries: no allocs
    for (size_t b = 0; b < batches_per_thread; ++b) {
      size_t global = t * batches_per_thread + b;
      size_t begin = (global * batch_size) % (events.size() - batch_size + 1);
      const std::string& name = names[global % num_sessions];
      Clock::time_point batch_start = Clock::now();
      dqm::Status status = engine.Ingest(
          name, std::span<const dqm::crowd::VoteEvent>(&events[begin],
                                                       batch_size));
      DQM_CHECK(status.ok()) << status.ToString();
      DQM_CHECK(engine.QueryInto(name, scratch).ok());
      batch_ms[t].push_back(SecondsSince(batch_start) * 1e3);
    }
  });
  double seconds = SecondsSince(start);

  IngestResult result;
  std::vector<double> all_ms;
  for (const std::vector<double>& per_thread : batch_ms) {
    all_ms.insert(all_ms.end(), per_thread.begin(), per_thread.end());
  }
  result.votes_per_sec =
      static_cast<double>(total_batches) * static_cast<double>(batch_size) /
      seconds;
  result.p50_batch_ms = Percentile(all_ms, 0.5);
  result.p99_batch_ms = Percentile(all_ms, 0.99);
  return result;
}

/// One multi-producer single-session measurement: `writers` threads each
/// commit `batches_per_writer` batches into ONE session opened with
/// `options` (striped commit path for order-independent panels), measuring
/// per-commit latency at the producer. After the producers join the session
/// is flushed with an explicit Publish and the final snapshot is checked
/// against the committed vote count — the sweep never reports a number a
/// torn pipeline produced.
IngestResult MeasureMultiWriter(
    const std::vector<std::string>& panel,
    const dqm::engine::SessionOptions& options, size_t writers,
    const std::vector<dqm::crowd::VoteEvent>& events, size_t batch_size,
    size_t batches_per_writer, size_t num_items,
    std::shared_ptr<dqm::engine::ReplicationTransport> replicate_to =
        nullptr) {
  dqm::engine::DqmEngine engine;
  std::shared_ptr<dqm::engine::EstimationSession> session =
      engine
          .OpenSession("hot", num_items, std::span<const std::string>(panel),
                       options)
          .value();
  DQM_CHECK(session->concurrent_ingest())
      << "the writer sweep measures the striped path; panel "
      << dqm::Join(panel, ",") << " fell back to serialized commits";
  // Replication rides the commit path (the ship hook runs inside the WAL
  // flush), so the replicator must be live for the timed window.
  std::unique_ptr<dqm::engine::SessionReplicator> replicator;
  if (replicate_to != nullptr) {
    replicator = dqm::engine::SessionReplicator::Start(session,
                                                       std::move(replicate_to))
                     .value();
  }

  std::vector<std::vector<double>> commit_ms(writers);
  dqm::ThreadPool pool(writers);
  Clock::time_point start = Clock::now();
  dqm::ParallelFor(&pool, writers, [&](size_t w) {
    commit_ms[w].reserve(batches_per_writer);
    for (size_t b = 0; b < batches_per_writer; ++b) {
      size_t global = w * batches_per_writer + b;
      size_t begin = (global * batch_size) % (events.size() - batch_size + 1);
      Clock::time_point commit_start = Clock::now();
      dqm::Status status = session->AddVotes(
          std::span<const dqm::crowd::VoteEvent>(&events[begin], batch_size));
      DQM_CHECK(status.ok()) << status.ToString();
      commit_ms[w].push_back(SecondsSince(commit_start) * 1e3);
    }
  });
  double seconds = SecondsSince(start);
  session->Publish();
  dqm::engine::Snapshot final_snapshot = session->snapshot();
  DQM_CHECK_EQ(final_snapshot.num_votes,
               static_cast<uint64_t>(writers) * batches_per_writer *
                   batch_size);
  if (replicator != nullptr) {
    // A row measured while the ship pipeline silently errored would gate
    // nothing — the overhead being measured includes every successful Put.
    DQM_CHECK_EQ(replicator->stats().ship_errors, uint64_t{0})
        << "replication fell behind during the measurement";
  }

  IngestResult result;
  std::vector<double> all_ms;
  for (const std::vector<double>& per_writer : commit_ms) {
    all_ms.insert(all_ms.end(), per_writer.begin(), per_writer.end());
  }
  result.votes_per_sec = static_cast<double>(writers) *
                         static_cast<double>(batches_per_writer) *
                         static_cast<double>(batch_size) / seconds;
  result.p50_batch_ms = Percentile(all_ms, 0.5);
  result.p99_batch_ms = Percentile(all_ms, 0.99);
  return result;
}

/// One timed ExperimentRunner::Run; returns {seconds, series} for the
/// bit-identity check.
struct TimedRun {
  double seconds = 0.0;
  std::vector<dqm::core::SeriesResult> series;
};

TimedRun MeasureRunner(const dqm::crowd::ResponseLog& log, size_t num_items,
                       size_t permutations, size_t threads) {
  const std::vector<std::string> specs = {"switch", "chao92", "vchao92",
                                          "voting"};
  dqm::core::ExperimentRunner runner(
      {.permutations = permutations, .seed = 42, .threads = threads});
  TimedRun result;
  Clock::time_point start = Clock::now();
  result.series = runner.Run(log, num_items, specs).value();
  result.seconds = SecondsSince(start);
  return result;
}

/// Faithful reproduction of the pre-change EM-VOTING serving path: a full
/// event-sweeping Dawid-Skene fit from cold after every batch, iterating
/// `log.events()` (two passes and two std::log calls per *event* per
/// sweep). This is the baseline the ≥10x acceptance claim is measured
/// against; the library itself no longer contains this code path.
double LegacyEventSweepFit(const dqm::crowd::ResponseLog& log,
                           size_t max_iterations, double tolerance) {
  const size_t num_items = log.num_items();
  const size_t num_workers = std::max<size_t>(log.num_workers(), 1);
  const double s = 1.0;  // smoothing default
  std::vector<double> posterior(num_items, 0.5);
  std::vector<double> sensitivity(num_workers, 0.8);
  std::vector<double> specificity(num_workers, 0.8);
  for (size_t i = 0; i < num_items; ++i) {
    posterior[i] = (log.positive_votes(i) + 1.0) / (log.total_votes(i) + 2.0);
  }
  double prior = 0.5;
  for (size_t iteration = 1; iteration <= max_iterations; ++iteration) {
    std::vector<double> dirty_agree(num_workers, s);
    std::vector<double> dirty_total(num_workers, 2 * s);
    std::vector<double> clean_agree(num_workers, s);
    std::vector<double> clean_total(num_workers, 2 * s);
    for (const dqm::crowd::VoteEvent& event : log.events()) {
      double p = posterior[event.item];
      dirty_total[event.worker] += p;
      clean_total[event.worker] += 1.0 - p;
      if (event.vote == dqm::crowd::Vote::kDirty) {
        dirty_agree[event.worker] += p;
      } else {
        clean_agree[event.worker] += 1.0 - p;
      }
    }
    for (size_t w = 0; w < num_workers; ++w) {
      sensitivity[w] = dirty_agree[w] / dirty_total[w];
      specificity[w] = clean_agree[w] / clean_total[w];
    }
    double prior_num = s;
    for (size_t i = 0; i < num_items; ++i) prior_num += posterior[i];
    prior = prior_num / (static_cast<double>(num_items) + 2 * s);

    std::vector<double> log_dirty(num_items, std::log(prior));
    std::vector<double> log_clean(num_items, std::log(1.0 - prior));
    for (const dqm::crowd::VoteEvent& event : log.events()) {
      double sens = std::clamp(sensitivity[event.worker], 1e-6, 1.0 - 1e-6);
      double spec = std::clamp(specificity[event.worker], 1e-6, 1.0 - 1e-6);
      if (event.vote == dqm::crowd::Vote::kDirty) {
        log_dirty[event.item] += std::log(sens);
        log_clean[event.item] += std::log(1.0 - spec);
      } else {
        log_dirty[event.item] += std::log(1.0 - sens);
        log_clean[event.item] += std::log(spec);
      }
    }
    double max_delta = 0.0;
    for (size_t i = 0; i < num_items; ++i) {
      double m = std::max(log_dirty[i], log_clean[i]);
      double dirty = std::exp(log_dirty[i] - m);
      double clean = std::exp(log_clean[i] - m);
      double next = dirty / (dirty + clean);
      max_delta = std::max(max_delta, std::abs(next - posterior[i]));
      posterior[i] = next;
    }
    if (max_delta < tolerance) break;
  }
  size_t count = 0;
  for (double p : posterior) {
    if (p > 0.5) ++count;
  }
  return static_cast<double>(count);
}

/// One checkpoint of the long-session sweep: batch latency measured over
/// the most recent window of batches, at `votes` accumulated history.
struct SweepPoint {
  uint64_t votes = 0;
  double window_batch_ms = 0.0;
  double window_votes_per_sec = 0.0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  double total_seconds = 0.0;
  double votes_per_sec = 0.0;
  double p50_batch_ms = 0.0;
  double p99_batch_ms = 0.0;
};

/// Streams `target_votes` votes (cycling over `events`) into ONE session
/// running `spec`, committing `batch_size` votes per batch and querying
/// after every batch. Ten evenly spaced checkpoints record the batch
/// latency of the window that ended there — the "flat in history" evidence.
SweepResult MeasureLongSession(const std::string& spec,
                               const std::vector<dqm::crowd::VoteEvent>& events,
                               size_t batch_size, uint64_t target_votes,
                               size_t num_items) {
  dqm::engine::DqmEngine engine;
  const std::vector<std::string> specs = {spec};
  engine.OpenSession("long", num_items, std::span<const std::string>(specs))
      .value();

  SweepResult result;
  size_t num_batches = static_cast<size_t>(target_votes / batch_size);
  size_t checkpoint_every = std::max<size_t>(num_batches / 10, 1);
  std::vector<double> all_ms;
  all_ms.reserve(num_batches);
  double window_seconds = 0.0;
  size_t window_batches = 0;
  dqm::engine::Snapshot scratch;
  Clock::time_point start = Clock::now();
  for (size_t b = 0; b < num_batches; ++b) {
    size_t begin = (b * batch_size) % (events.size() - batch_size + 1);
    Clock::time_point batch_start = Clock::now();
    dqm::Status status = engine.Ingest(
        "long",
        std::span<const dqm::crowd::VoteEvent>(&events[begin], batch_size));
    DQM_CHECK(status.ok()) << status.ToString();
    DQM_CHECK(engine.QueryInto("long", scratch).ok());
    double seconds = SecondsSince(batch_start);
    all_ms.push_back(seconds * 1e3);
    window_seconds += seconds;
    ++window_batches;
    if ((b + 1) % checkpoint_every == 0 || b + 1 == num_batches) {
      SweepPoint point;
      point.votes = static_cast<uint64_t>(b + 1) * batch_size;
      point.window_batch_ms = window_seconds * 1e3 /
                              static_cast<double>(window_batches);
      point.window_votes_per_sec =
          static_cast<double>(window_batches) *
          static_cast<double>(batch_size) / window_seconds;
      result.points.push_back(point);
      window_seconds = 0.0;
      window_batches = 0;
    }
  }
  result.total_seconds = SecondsSince(start);
  result.votes_per_sec = static_cast<double>(num_batches) *
                         static_cast<double>(batch_size) /
                         result.total_seconds;
  std::vector<double> sorted = all_ms;
  result.p50_batch_ms = Percentile(sorted, 0.5);
  result.p99_batch_ms = Percentile(sorted, 0.99);
  return result;
}

/// The same long-session protocol against the pre-change serving path:
/// kFullEvents retention and a cold event-sweeping EM fit after every batch
/// (see LegacyEventSweepFit). Kept outside the engine because the library
/// no longer offers this path — the point is the before/after ratio.
SweepResult MeasureLegacyLongSession(
    const std::vector<dqm::crowd::VoteEvent>& events, size_t batch_size,
    uint64_t target_votes, size_t num_items) {
  dqm::crowd::ResponseLog log(num_items,
                              dqm::crowd::RetentionPolicy::kFullEvents);
  SweepResult result;
  size_t num_batches = static_cast<size_t>(target_votes / batch_size);
  size_t checkpoint_every = std::max<size_t>(num_batches / 10, 1);
  std::vector<double> all_ms;
  all_ms.reserve(num_batches);
  double window_seconds = 0.0;
  size_t window_batches = 0;
  Clock::time_point start = Clock::now();
  for (size_t b = 0; b < num_batches; ++b) {
    size_t begin = (b * batch_size) % (events.size() - batch_size + 1);
    Clock::time_point batch_start = Clock::now();
    for (size_t e = 0; e < batch_size; ++e) {
      log.Append(events[begin + e]);
    }
    double estimate = LegacyEventSweepFit(log, 50, 1e-6);
    DQM_CHECK(std::isfinite(estimate));
    double seconds = SecondsSince(batch_start);
    all_ms.push_back(seconds * 1e3);
    window_seconds += seconds;
    ++window_batches;
    if ((b + 1) % checkpoint_every == 0 || b + 1 == num_batches) {
      SweepPoint point;
      point.votes = static_cast<uint64_t>(b + 1) * batch_size;
      point.window_batch_ms =
          window_seconds * 1e3 / static_cast<double>(window_batches);
      point.window_votes_per_sec = static_cast<double>(window_batches) *
                                   static_cast<double>(batch_size) /
                                   window_seconds;
      result.points.push_back(point);
      window_seconds = 0.0;
      window_batches = 0;
    }
  }
  result.total_seconds = SecondsSince(start);
  result.votes_per_sec = static_cast<double>(num_batches) *
                         static_cast<double>(batch_size) /
                         result.total_seconds;
  std::vector<double> sorted = all_ms;
  result.p50_batch_ms = Percentile(sorted, 0.5);
  result.p99_batch_ms = Percentile(sorted, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  int64_t* tasks = flags.AddInt("tasks", 500, "simulated tasks in the log");
  int64_t* permutations =
      flags.AddInt("permutations", 10, "r — runner permutations");
  int64_t* batch = flags.AddInt("batch", 512, "votes per ingest batch");
  int64_t* batches_per_thread =
      flags.AddInt("batches_per_thread", 200, "ingest batches per worker");
  std::string* methods = flags.AddString(
      "methods", "chao92,em-voting",
      "comma-separated estimator panels for the ingest matrix; each entry "
      "runs as its own single-estimator panel");
  std::string* writer_threads_flag = flags.AddString(
      "writer_threads", "1,2,4,8",
      "comma-separated producer counts for the multi-writer single-session "
      "sweep");
  std::string* writer_cadence_flag = flags.AddString(
      "writer_cadence", "every_n_votes:4096",
      "publish cadence of the multi-writer sweep's coalesced configuration "
      "(every_batch | every_n_votes[:N] | manual)");
  int64_t* sweep_votes = flags.AddInt(
      "sweep_votes", 120000,
      "accumulated votes the long-session em-voting sweep reaches");
  bool* smoke = flags.AddBool(
      "smoke", false,
      "CI sizes: fewer threads/batches and a 24k-vote sweep");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == dqm::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // The paper's simulation workload (Section 6.1 / Figure 2(b) regime):
  // 1000 items, FP-light FN-heavy crowd, 15 items per task.
  dqm::core::Scenario scenario = dqm::core::SimulationScenario(0.01, 0.1, 15);
  dqm::core::SimulatedRun run = dqm::core::SimulateScenario(
      scenario, static_cast<size_t>(*tasks), 7);
  const std::vector<dqm::crowd::VoteEvent>& events = run.log.events();
  DQM_CHECK(!events.empty()) << "--tasks must produce at least one vote";
  std::printf("workload: %zu items, %zu votes, hardware threads=%zu\n\n",
              scenario.num_items, events.size(),
              dqm::ThreadPool::DefaultThreadCount());

  size_t batch_size =
      std::min(static_cast<size_t>(std::max<int64_t>(1, *batch)),
               events.size());
  size_t ingest_batches = static_cast<size_t>(*batches_per_thread);
  uint64_t target_votes = static_cast<uint64_t>(*sweep_votes);
  std::vector<size_t> thread_counts = {1, 4, 8};
  std::vector<size_t> session_counts = {1, 64};
  if (*smoke) {
    thread_counts = {1, 4};
    session_counts = {1, 8};
    ingest_batches = std::min<size_t>(ingest_batches, 40);
    target_votes = std::min<uint64_t>(target_votes, 24000);
  }

  dqm::bench::BenchJsonWriter json("engine_throughput");

  // --- (a) Engine ingest + query throughput, per estimator panel. ---
  std::vector<std::string> method_specs =
      dqm::estimators::SplitSpecList(*methods);
  if (method_specs.empty()) {
    std::fprintf(stderr, "--methods must name at least one estimator\n");
    return 1;
  }
  std::printf("== engine ingest+query throughput ==\n");
  dqm::AsciiTable ingest_table(
      {"method", "threads", "sessions", "votes/sec", "p50 ms", "p99 ms"});
  for (const std::string& spec : method_specs) {
    const std::vector<std::string> panel = {spec};
    for (size_t threads : thread_counts) {
      for (size_t sessions : session_counts) {
        IngestResult r =
            MeasureIngest(panel, threads, sessions, events, batch_size,
                          ingest_batches, scenario.num_items);
        ingest_table.AddRow(
            {spec, dqm::StrFormat("%zu", threads),
             dqm::StrFormat("%zu", sessions),
             dqm::StrFormat("%.0f", r.votes_per_sec),
             dqm::StrFormat("%.3f", r.p50_batch_ms),
             dqm::StrFormat("%.3f", r.p99_batch_ms)});
        json.AddResult(
            dqm::StrFormat("ingest_%s_t%zu_s%zu", spec.c_str(), threads,
                           sessions),
            {{"threads", static_cast<double>(threads)},
             {"sessions", static_cast<double>(sessions)},
             {"votes_per_sec", r.votes_per_sec},
             {"p50_batch_ms", r.p50_batch_ms},
             {"p99_batch_ms", r.p99_batch_ms}});
      }
    }
  }
  std::fputs(ingest_table.Render().c_str(), stdout);

  // --- (b) Multi-producer single-session scaling (--writer_threads): the
  // striped commit path under N concurrent producers, coalesced cadence vs
  // the bit-compatible every-batch default. ---
  std::vector<size_t> writer_counts;
  for (const std::string& token :
       dqm::estimators::SplitSpecList(*writer_threads_flag)) {
    writer_counts.push_back(
        static_cast<size_t>(std::max(1L, std::atol(token.c_str()))));
  }
  if (*smoke) {
    std::erase_if(writer_counts, [](size_t w) { return w > 4; });
  }
  if (writer_counts.empty()) writer_counts = {1, 4};
  dqm::engine::SessionOptions coalesced =
      dqm::engine::ParsePublishCadenceSpec(*writer_cadence_flag).value();
  dqm::engine::SessionOptions per_batch;  // every_batch default
  // Fixed stripe count for both cadences: the sweep measures the striped
  // commit path (auto striping deliberately stays off under every_batch),
  // and the rows stay comparable across machines with different core
  // counts.
  coalesced.ingest_stripes = 8;
  per_batch.ingest_stripes = 8;
  // Keep the per-writer measurement window >= ~50k votes even in smoke:
  // the sweep's ratios are meaningless when a writer finishes in under a
  // millisecond of wall clock.
  size_t writer_batches = *smoke ? 100 : std::max<size_t>(ingest_batches, 100);
  struct WriterConfig {
    const char* panel_key;
    std::vector<std::string> panel;
    const char* cadence_key;
    const dqm::engine::SessionOptions* options;
  };
  // "tally" is the producer-order-independent panel of the acceptance
  // criterion (pure counter commits, no response matrix); em-voting shows
  // the same commit path when the publish side runs a real EM fit.
  const std::vector<std::string> tally_panel = {"chao92", "voting", "nominal"};
  const std::vector<std::string> em_panel = {"em-voting"};
  std::vector<WriterConfig> writer_configs = {
      {"tally", tally_panel, "coalesced", &coalesced},
      {"tally", tally_panel, "every_batch", &per_batch},
      {"em-voting", em_panel, "coalesced", &coalesced},
  };
  std::printf("\n== multi-producer single-session scaling ==\n");
  std::printf("one session, %zu-vote batches, %zu batches per producer; "
              "coalesced = %s\n",
              batch_size, writer_batches, writer_cadence_flag->c_str());
  dqm::AsciiTable writer_table({"panel", "cadence", "writers", "votes/sec",
                                "p50 commit ms", "p99 commit ms", "scaling"});
  std::map<std::string, double> writer_votes_per_sec;
  for (const WriterConfig& config : writer_configs) {
    double base_votes_per_sec = 0.0;
    for (size_t writers : writer_counts) {
      IngestResult r = MeasureMultiWriter(config.panel, *config.options,
                                          writers, events, batch_size,
                                          writer_batches, scenario.num_items);
      std::string key = dqm::StrFormat("%s_%s_t%zu", config.panel_key,
                                       config.cadence_key, writers);
      writer_votes_per_sec[key] = r.votes_per_sec;
      if (writers == writer_counts.front()) {
        base_votes_per_sec = r.votes_per_sec;
      }
      writer_table.AddRow(
          {config.panel_key, config.cadence_key,
           dqm::StrFormat("%zu", writers),
           dqm::StrFormat("%.0f", r.votes_per_sec),
           dqm::StrFormat("%.4f", r.p50_batch_ms),
           dqm::StrFormat("%.4f", r.p99_batch_ms),
           dqm::StrFormat("%.2fx", r.votes_per_sec /
                                       std::max(base_votes_per_sec, 1e-9))});
      json.AddResult(
          dqm::StrFormat("multiwriter_%s", key.c_str()),
          {{"writers", static_cast<double>(writers)},
           {"votes_per_sec", r.votes_per_sec},
           {"p50_commit_ms", r.p50_batch_ms},
           {"p99_commit_ms", r.p99_batch_ms}});
    }
  }
  std::fputs(writer_table.Render().c_str(), stdout);
  // The acceptance ratio: aggregate tally-panel throughput at 4 producers
  // over 1 producer, coalesced cadence (the scaling configuration).
  {
    std::vector<std::pair<std::string, double>> summary;
    for (const char* cfg : {"tally_coalesced", "tally_every_batch",
                            "em-voting_coalesced"}) {
      auto t1 = writer_votes_per_sec.find(std::string(cfg) + "_t1");
      auto t4 = writer_votes_per_sec.find(std::string(cfg) + "_t4");
      if (t1 != writer_votes_per_sec.end() &&
          t4 != writer_votes_per_sec.end()) {
        double speedup = t4->second / std::max(t1->second, 1e-9);
        std::printf("%s: 4-producer aggregate = %.2fx of 1-producer\n", cfg,
                    speedup);
        summary.emplace_back(std::string(cfg) + "_speedup_4v1", speedup);
      }
    }
    if (!summary.empty()) json.AddResult("multiwriter_summary", summary);
  }

  // --- (c) Parallel ExperimentRunner speedup (bit-identity checked). ---
  std::printf("\n== ExperimentRunner::Run — serial vs pool ==\n");
  size_t r = static_cast<size_t>(*permutations);
  TimedRun serial = MeasureRunner(run.log, scenario.num_items, r, 1);
  dqm::AsciiTable runner_table({"threads", "seconds", "speedup", "identical"});
  runner_table.AddRow({"1", dqm::StrFormat("%.3f", serial.seconds), "1.00",
                       "-"});
  json.AddResult("runner_serial", {{"threads", 1.0},
                                   {"seconds", serial.seconds},
                                   {"speedup", 1.0}});
  bool all_identical = true;
  for (size_t threads : {4u, 8u}) {
    TimedRun parallel = MeasureRunner(run.log, scenario.num_items, r, threads);
    bool identical = parallel.series.size() == serial.series.size();
    for (size_t f = 0; identical && f < parallel.series.size(); ++f) {
      identical = parallel.series[f].mean == serial.series[f].mean &&
                  parallel.series[f].std_dev == serial.series[f].std_dev;
    }
    all_identical = all_identical && identical;
    double speedup = serial.seconds / parallel.seconds;
    runner_table.AddRow({dqm::StrFormat("%zu", threads),
                         dqm::StrFormat("%.3f", parallel.seconds),
                         dqm::StrFormat("%.2f", speedup),
                         identical ? "yes" : "NO"});
    json.AddResult(dqm::StrFormat("runner_t%zu", threads),
                   {{"threads", static_cast<double>(threads)},
                    {"seconds", parallel.seconds},
                    {"speedup", speedup}});
  }
  std::fputs(runner_table.Render().c_str(), stdout);

  // --- (d) Long-session sweep: warm-started vs cold-refit EM at 100k+
  // accumulated votes. Per-batch latency must stay flat in history for the
  // warm path; the headline ratio is the acceptance number. ---
  std::printf("\n== long session: em-voting per-batch latency vs history ==\n");
  std::printf("one session, %zu-vote batches, %llu total votes\n", batch_size,
              static_cast<unsigned long long>(target_votes));
  // Three paths over the identical vote stream:
  //   warm   — the serving default: compacted counts + warm-started EM
  //   cold   — ablation: compacted counts, but every batch refits from cold
  //   legacy — the pre-change path: full event log, event-sweeping cold fit
  SweepResult warm = MeasureLongSession("em-voting", events, batch_size,
                                        target_votes, scenario.num_items);
  SweepResult cold = MeasureLongSession("em-voting?warm=0", events, batch_size,
                                        target_votes, scenario.num_items);
  SweepResult legacy = MeasureLegacyLongSession(events, batch_size,
                                                target_votes,
                                                scenario.num_items);
  dqm::AsciiTable sweep_table({"votes", "warm ms", "cold ms", "legacy ms",
                               "legacy/warm"});
  size_t points =
      std::min({warm.points.size(), cold.points.size(), legacy.points.size()});
  for (size_t p = 0; p < points; ++p) {
    sweep_table.AddRow(
        {dqm::StrFormat("%llu",
                        static_cast<unsigned long long>(warm.points[p].votes)),
         dqm::StrFormat("%.3f", warm.points[p].window_batch_ms),
         dqm::StrFormat("%.3f", cold.points[p].window_batch_ms),
         dqm::StrFormat("%.3f", legacy.points[p].window_batch_ms),
         dqm::StrFormat("%.1fx", legacy.points[p].window_batch_ms /
                                     std::max(warm.points[p].window_batch_ms,
                                              1e-9))});
    json.AddResult(
        dqm::StrFormat("sweep_ck%zu", p),
        {{"votes", static_cast<double>(warm.points[p].votes)},
         {"warm_batch_ms", warm.points[p].window_batch_ms},
         {"cold_batch_ms", cold.points[p].window_batch_ms},
         {"legacy_batch_ms", legacy.points[p].window_batch_ms},
         {"warm_votes_per_sec", warm.points[p].window_votes_per_sec},
         {"cold_votes_per_sec", cold.points[p].window_votes_per_sec},
         {"legacy_votes_per_sec", legacy.points[p].window_votes_per_sec}});
  }
  std::fputs(sweep_table.Render().c_str(), stdout);
  double cold_speedup = warm.votes_per_sec / std::max(cold.votes_per_sec, 1e-9);
  double legacy_speedup =
      warm.votes_per_sec / std::max(legacy.votes_per_sec, 1e-9);
  // The acceptance ratio is measured where history is deepest — the final
  // checkpoint window — not diluted by the cheap early batches.
  double final_speedup =
      legacy.points.empty()
          ? 0.0
          : legacy.points.back().window_batch_ms /
                std::max(warm.points.back().window_batch_ms, 1e-9);
  std::printf(
      "warm:   %.0f votes/sec (p50 %.3f ms, p99 %.3f ms)\n"
      "cold:   %.0f votes/sec (p50 %.3f ms, p99 %.3f ms)\n"
      "legacy: %.0f votes/sec (p50 %.3f ms, p99 %.3f ms)\n"
      "speedup vs cold-compacted: %.1fx; vs pre-change event refit: %.1fx "
      "overall, %.1fx at deepest history\n",
      warm.votes_per_sec, warm.p50_batch_ms, warm.p99_batch_ms,
      cold.votes_per_sec, cold.p50_batch_ms, cold.p99_batch_ms,
      legacy.votes_per_sec, legacy.p50_batch_ms, legacy.p99_batch_ms,
      cold_speedup, legacy_speedup, final_speedup);
  json.AddResult("sweep_summary",
                 {{"warm_votes_per_sec", warm.votes_per_sec},
                  {"warm_p50_batch_ms", warm.p50_batch_ms},
                  {"warm_p99_batch_ms", warm.p99_batch_ms},
                  {"cold_votes_per_sec", cold.votes_per_sec},
                  {"cold_p50_batch_ms", cold.p50_batch_ms},
                  {"cold_p99_batch_ms", cold.p99_batch_ms},
                  {"legacy_votes_per_sec", legacy.votes_per_sec},
                  {"legacy_p50_batch_ms", legacy.p50_batch_ms},
                  {"legacy_p99_batch_ms", legacy.p99_batch_ms},
                  {"warm_vs_cold_speedup", cold_speedup},
                  {"warm_vs_legacy_speedup", legacy_speedup},
                  {"warm_vs_legacy_speedup_at_max_history", final_speedup}});

  // --- (e) Retained memory: kCounts is flat in history, kFullEvents is
  // linear. Pure storage measurement (no estimators attached). ---
  std::printf("\n== retained vote-storage memory vs history ==\n");
  dqm::AsciiTable mem_table({"votes", "kFullEvents MiB", "kCounts MiB"});
  {
    dqm::crowd::ResponseLog full_log(scenario.num_items,
                                     dqm::crowd::RetentionPolicy::kFullEvents);
    dqm::crowd::ResponseLog counts_log(scenario.num_items,
                                       dqm::crowd::RetentionPolicy::kCounts);
    uint64_t ingested = 0;
    size_t checkpoint = 0;
    uint64_t checkpoint_every = std::max<uint64_t>(target_votes / 6, 1);
    while (ingested < target_votes) {
      const dqm::crowd::VoteEvent& event =
          events[static_cast<size_t>(ingested % events.size())];
      full_log.Append(event);
      counts_log.Append(event);
      ++ingested;
      if (ingested % checkpoint_every == 0 || ingested == target_votes) {
        double full_mb =
            static_cast<double>(full_log.RetainedBytes()) / (1024.0 * 1024.0);
        double counts_mb = static_cast<double>(counts_log.RetainedBytes()) /
                           (1024.0 * 1024.0);
        mem_table.AddRow(
            {dqm::StrFormat("%llu", static_cast<unsigned long long>(ingested)),
             dqm::StrFormat("%.2f", full_mb),
             dqm::StrFormat("%.2f", counts_mb)});
        json.AddResult(dqm::StrFormat("memory_ck%zu", checkpoint++),
                       {{"votes", static_cast<double>(ingested)},
                        {"full_events_mib", full_mb},
                        {"counts_mib", counts_mb}});
      }
    }
  }
  std::fputs(mem_table.Render().c_str(), stdout);

  // --- (f) Durability overhead: the identical single-producer striped
  // workload with the write-ahead log off vs on, across group-commit
  // cadences (all >= 256 votes). Checkpoints stay off so the rows isolate
  // the WAL append + fsync cost. The on/off ratio is informative — the
  // in-memory tally path is a pure counter increment, so NO disk-backed
  // log tracks it — while the gated acceptance number is absolute durable
  // throughput: within 1.5x of the in-memory single-writer ingest floor
  // (bench/floors.json, "durability_wal4096.votes_per_sec"). ---
  std::printf("\n== durability: WAL group-commit overhead ==\n");
  {
    namespace fs = std::filesystem;
    const fs::path scratch = fs::temp_directory_path() / "dqm_bench_durability";
    const size_t writers = 1;
    IngestResult off =
        MeasureMultiWriter(tally_panel, coalesced, writers, events, batch_size,
                           writer_batches, scenario.num_items);
    json.AddResult("durability_off",
                   {{"votes_per_sec", off.votes_per_sec},
                    {"p50_commit_ms", off.p50_batch_ms},
                    {"p99_commit_ms", off.p99_batch_ms}});
    dqm::AsciiTable durability_table({"config", "votes/sec", "p50 commit ms",
                                      "p99 commit ms", "on/off", "wal MiB",
                                      "fsyncs"});
    durability_table.AddRow({"off", dqm::StrFormat("%.0f", off.votes_per_sec),
                             dqm::StrFormat("%.4f", off.p50_batch_ms),
                             dqm::StrFormat("%.4f", off.p99_batch_ms), "1.00",
                             "-", "-"});
    auto& registry = dqm::telemetry::MetricsRegistry::Global();
    dqm::telemetry::Counter* wal_bytes = registry.GetCounter(
        dqm::telemetry::metric_names::kWalBytesWrittenTotal);
    dqm::telemetry::Counter* wal_fsyncs =
        registry.GetCounter(dqm::telemetry::metric_names::kWalFsyncsTotal);
    for (uint64_t group_commit :
         {uint64_t{16384}, uint64_t{4096}, uint64_t{256}}) {
      std::error_code ec;
      fs::remove_all(scratch, ec);  // Create() refuses a non-empty dir
      dqm::engine::SessionOptions durable = coalesced;
      durable.durability_dir = scratch.string();
      durable.wal_group_commit_votes = group_commit;
      durable.checkpoint_every_votes = 0;
      uint64_t bytes_before = wal_bytes->Value();
      uint64_t fsyncs_before = wal_fsyncs->Value();
      IngestResult on =
          MeasureMultiWriter(tally_panel, durable, writers, events, batch_size,
                             writer_batches, scenario.num_items);
      double wal_mib =
          static_cast<double>(wal_bytes->Value() - bytes_before) /
          (1024.0 * 1024.0);
      double fsync_count =
          static_cast<double>(wal_fsyncs->Value() - fsyncs_before);
      double ratio = on.votes_per_sec / std::max(off.votes_per_sec, 1e-9);
      std::string key = dqm::StrFormat("durability_wal%llu",
                                       static_cast<unsigned long long>(
                                           group_commit));
      durability_table.AddRow(
          {dqm::StrFormat("wal gc=%llu",
                          static_cast<unsigned long long>(group_commit)),
           dqm::StrFormat("%.0f", on.votes_per_sec),
           dqm::StrFormat("%.4f", on.p50_batch_ms),
           dqm::StrFormat("%.4f", on.p99_batch_ms),
           dqm::StrFormat("%.2f", ratio), dqm::StrFormat("%.2f", wal_mib),
           dqm::StrFormat("%.0f", fsync_count)});
      json.AddResult(key, {{"votes_per_sec", on.votes_per_sec},
                           {"p50_commit_ms", on.p50_batch_ms},
                           {"p99_commit_ms", on.p99_batch_ms},
                           {"on_off_ratio", ratio},
                           {"wal_mib_written", wal_mib},
                           {"wal_fsyncs", fsync_count}});
      fs::remove_all(scratch, ec);
    }
    std::fputs(durability_table.Render().c_str(), stdout);

    // --- (g) Replication overhead: the gc=4096 durable workload with a
    // hot-standby ship pipeline attached (LocalDirTransport, every WAL
    // flush ships a segment before the barrier returns) vs the same
    // workload shipping nothing. The gated number is absolute replicated
    // throughput (bench/floors.json, "replication_on.votes_per_sec") —
    // like the durability rows, the per-segment write+fsync+rename cost
    // does not scale with CPU speed. ---
    std::printf("\n== replication: hot-standby shipping overhead ==\n");
    const fs::path ship_scratch =
        fs::temp_directory_path() / "dqm_bench_repl_ship";
    dqm::AsciiTable replication_table(
        {"config", "votes/sec", "p50 commit ms", "p99 commit ms", "on/off",
         "segments"});
    {
      std::error_code ec;
      fs::remove_all(scratch, ec);
      dqm::engine::SessionOptions durable = coalesced;
      durable.durability_dir = scratch.string();
      durable.wal_group_commit_votes = 4096;
      durable.checkpoint_every_votes = 0;
      IngestResult off =
          MeasureMultiWriter(tally_panel, durable, writers, events, batch_size,
                             writer_batches, scenario.num_items);
      json.AddResult("replication_off",
                     {{"votes_per_sec", off.votes_per_sec},
                      {"p50_commit_ms", off.p50_batch_ms},
                      {"p99_commit_ms", off.p99_batch_ms}});
      replication_table.AddRow(
          {"replication off", dqm::StrFormat("%.0f", off.votes_per_sec),
           dqm::StrFormat("%.4f", off.p50_batch_ms),
           dqm::StrFormat("%.4f", off.p99_batch_ms), "1.00", "-"});

      fs::remove_all(scratch, ec);
      fs::remove_all(ship_scratch, ec);
      std::shared_ptr<dqm::engine::ReplicationTransport> transport =
          dqm::engine::LocalDirTransport::Open(ship_scratch.string()).value();
      dqm::telemetry::Counter* segments =
          dqm::telemetry::MetricsRegistry::Global().GetCounter(
              dqm::telemetry::metric_names::kReplicaSegmentsShippedTotal);
      uint64_t segments_before = segments->Value();
      IngestResult on =
          MeasureMultiWriter(tally_panel, durable, writers, events, batch_size,
                             writer_batches, scenario.num_items, transport);
      double shipped =
          static_cast<double>(segments->Value() - segments_before);
      double ratio = on.votes_per_sec / std::max(off.votes_per_sec, 1e-9);
      replication_table.AddRow(
          {"replication on", dqm::StrFormat("%.0f", on.votes_per_sec),
           dqm::StrFormat("%.4f", on.p50_batch_ms),
           dqm::StrFormat("%.4f", on.p99_batch_ms),
           dqm::StrFormat("%.2f", ratio), dqm::StrFormat("%.0f", shipped)});
      json.AddResult("replication_on", {{"votes_per_sec", on.votes_per_sec},
                                        {"p50_commit_ms", on.p50_batch_ms},
                                        {"p99_commit_ms", on.p99_batch_ms},
                                        {"on_off_ratio", ratio},
                                        {"segments_shipped", shipped}});
      fs::remove_all(scratch, ec);
      fs::remove_all(ship_scratch, ec);
    }
    std::fputs(replication_table.Render().c_str(), stdout);
  }

  std::printf("\n");
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("engine_throughput");
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: parallel runner diverged from serial replay\n");
    return 1;
  }
  return 0;
}
