// Engine-layer throughput: (a) multi-threaded batched vote ingest + query
// rates through DqmEngine at 1/4/8 threads against 1 and 64 sessions, and
// (b) the parallel ExperimentRunner speedup over the serial replay on the
// paper's simulation workload (r = 10 permutations), with a bit-identity
// check between the two modes.
//
//   $ ./bench_engine_throughput [--tasks=500] [--batch=512] ...
//
// Emits the shared bench JSON shape (see BenchJsonWriter) after the tables.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "common/ascii.h"
#include "common/logging.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "engine/engine.h"
#include "estimators/registry.h"
#include "figure_common.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Ingests `batches_per_thread` batches from each of `threads` workers,
/// round-robin over `num_sessions` sessions, querying each session after
/// every batch (the serving pattern: write a batch, read the fresh score).
/// Returns votes ingested per second.
double MeasureIngest(size_t threads, size_t num_sessions,
                     const std::vector<dqm::crowd::VoteEvent>& events,
                     size_t batch_size, size_t batches_per_thread,
                     size_t num_items) {
  dqm::engine::DqmEngine engine;
  // Tally-based method: ingest order across threads does not change it.
  const std::vector<std::string> specs = {"chao92"};
  std::vector<std::string> names;
  for (size_t s = 0; s < num_sessions; ++s) {
    names.push_back(dqm::StrFormat("dataset-%02zu", s));
    engine
        .OpenSession(names.back(), num_items,
                     std::span<const std::string>(specs))
        .value();
  }

  size_t total_batches = threads * batches_per_thread;
  uint64_t total_votes = 0;
  dqm::ThreadPool pool(threads);
  Clock::time_point start = Clock::now();
  dqm::ParallelFor(&pool, threads, [&](size_t t) {
    for (size_t b = 0; b < batches_per_thread; ++b) {
      size_t global = t * batches_per_thread + b;
      size_t begin = (global * batch_size) % (events.size() - batch_size + 1);
      const std::string& name = names[global % num_sessions];
      dqm::Status status = engine.Ingest(
          name, std::span<const dqm::crowd::VoteEvent>(&events[begin],
                                                       batch_size));
      DQM_CHECK(status.ok()) << status.ToString();
      DQM_CHECK(engine.Query(name).ok());
    }
  });
  double seconds = SecondsSince(start);
  total_votes = static_cast<uint64_t>(total_batches) * batch_size;
  return static_cast<double>(total_votes) / seconds;
}

/// One timed ExperimentRunner::Run; returns {seconds, series} for the
/// bit-identity check.
struct TimedRun {
  double seconds = 0.0;
  std::vector<dqm::core::SeriesResult> series;
};

TimedRun MeasureRunner(const dqm::crowd::ResponseLog& log, size_t num_items,
                       size_t permutations, size_t threads) {
  const std::vector<std::string> specs = {"switch", "chao92", "vchao92",
                                          "voting"};
  dqm::core::ExperimentRunner runner(
      {.permutations = permutations, .seed = 42, .threads = threads});
  TimedRun result;
  Clock::time_point start = Clock::now();
  result.series = runner.Run(log, num_items, specs).value();
  result.seconds = SecondsSince(start);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  int64_t* tasks = flags.AddInt("tasks", 500, "simulated tasks in the log");
  int64_t* permutations =
      flags.AddInt("permutations", 10, "r — runner permutations");
  int64_t* batch = flags.AddInt("batch", 512, "votes per ingest batch");
  int64_t* batches_per_thread =
      flags.AddInt("batches_per_thread", 200, "ingest batches per worker");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == dqm::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // The paper's simulation workload (Section 6.1 / Figure 2(b) regime):
  // 1000 items, FP-light FN-heavy crowd, 15 items per task.
  dqm::core::Scenario scenario = dqm::core::SimulationScenario(0.01, 0.1, 15);
  dqm::core::SimulatedRun run = dqm::core::SimulateScenario(
      scenario, static_cast<size_t>(*tasks), 7);
  const std::vector<dqm::crowd::VoteEvent>& events = run.log.events();
  DQM_CHECK(!events.empty()) << "--tasks must produce at least one vote";
  std::printf("workload: %zu items, %zu votes, hardware threads=%zu\n\n",
              scenario.num_items, events.size(),
              dqm::ThreadPool::DefaultThreadCount());

  dqm::bench::BenchJsonWriter json("engine_throughput");

  // --- (a) Engine ingest + query throughput. ---
  std::printf("== engine ingest+query throughput ==\n");
  dqm::AsciiTable ingest_table({"threads", "sessions", "votes/sec"});
  size_t batch_size =
      std::min(static_cast<size_t>(std::max<int64_t>(1, *batch)),
               events.size());
  for (size_t threads : {1u, 4u, 8u}) {
    for (size_t sessions : {1u, 64u}) {
      double rate = MeasureIngest(
          threads, sessions, events, batch_size,
          static_cast<size_t>(*batches_per_thread), scenario.num_items);
      ingest_table.AddRow({dqm::StrFormat("%zu", threads),
                           dqm::StrFormat("%zu", sessions),
                           dqm::StrFormat("%.0f", rate)});
      json.AddResult(
          dqm::StrFormat("ingest_t%zu_s%zu", threads, sessions),
          {{"threads", static_cast<double>(threads)},
           {"sessions", static_cast<double>(sessions)},
           {"votes_per_sec", rate}});
    }
  }
  std::fputs(ingest_table.Render().c_str(), stdout);

  // --- (b) Parallel ExperimentRunner speedup (bit-identity checked). ---
  std::printf("\n== ExperimentRunner::Run — serial vs pool ==\n");
  size_t r = static_cast<size_t>(*permutations);
  TimedRun serial = MeasureRunner(run.log, scenario.num_items, r, 1);
  dqm::AsciiTable runner_table({"threads", "seconds", "speedup", "identical"});
  runner_table.AddRow({"1", dqm::StrFormat("%.3f", serial.seconds), "1.00",
                       "-"});
  json.AddResult("runner_serial", {{"threads", 1.0},
                                   {"seconds", serial.seconds},
                                   {"speedup", 1.0}});
  bool all_identical = true;
  for (size_t threads : {4u, 8u}) {
    TimedRun parallel = MeasureRunner(run.log, scenario.num_items, r, threads);
    bool identical = parallel.series.size() == serial.series.size();
    for (size_t f = 0; identical && f < parallel.series.size(); ++f) {
      identical = parallel.series[f].mean == serial.series[f].mean &&
                  parallel.series[f].std_dev == serial.series[f].std_dev;
    }
    all_identical = all_identical && identical;
    double speedup = serial.seconds / parallel.seconds;
    runner_table.AddRow({dqm::StrFormat("%zu", threads),
                         dqm::StrFormat("%.3f", parallel.seconds),
                         dqm::StrFormat("%.2f", speedup),
                         identical ? "yes" : "NO"});
    json.AddResult(dqm::StrFormat("runner_t%zu", threads),
                   {{"threads", static_cast<double>(threads)},
                    {"seconds", parallel.seconds},
                    {"speedup", speedup}});
  }
  std::fputs(runner_table.Render().c_str(), stdout);

  std::printf("\n%s\n", json.Render().c_str());
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: parallel runner diverged from serial replay\n");
    return 1;
  }
  return 0;
}
