// Telemetry tax: the same striped multi-producer ingest workload measured
// with the timed instrumentation enabled and disabled, interleaved rep by
// rep so machine drift hits both sides equally. The headline number is
// on/off votes-per-second (best rep each side); the CI floor demands the
// enabled side stays within 5% of disabled — the "compiled-in-always is
// affordable" proof behind shipping telemetry unconditionally.
//
//   $ ./bench_telemetry_overhead [--tasks=500] [--batch=512] [--writers=4]
//       [--batches_per_writer=200] [--reps=5] [--smoke]
//
// Counters and size histograms stay on in BOTH configurations (they are one
// relaxed fetch_add and are not gated); the toggle covers clock reads,
// latency histograms, and flight-recorder spans — the part of the
// instrumentation with real per-batch cost.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/ascii.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/scenario.h"
#include "engine/engine.h"
#include "figure_common.h"
#include "telemetry/metrics.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One measured rep: `writers` producers each commit `batches_per_writer`
/// batches into one striped session (order-independent tally panel,
/// coalesced cadence), then a final Publish; returns aggregate votes/sec.
/// The session is rebuilt per rep so on/off reps see identical state.
double MeasureRep(const std::vector<dqm::crowd::VoteEvent>& events,
                  size_t num_items, size_t batch_size, size_t writers,
                  size_t batches_per_writer) {
  dqm::engine::DqmEngine engine;
  const std::vector<std::string> panel = {"chao92", "voting", "nominal"};
  dqm::engine::SessionOptions options =
      dqm::engine::ParsePublishCadenceSpec("every_n_votes:4096").value();
  options.ingest_stripes = 8;
  std::shared_ptr<dqm::engine::EstimationSession> session =
      engine
          .OpenSession("hot", num_items, std::span<const std::string>(panel),
                       options)
          .value();
  DQM_CHECK(session->concurrent_ingest());

  dqm::ThreadPool pool(writers);
  Clock::time_point start = Clock::now();
  dqm::ParallelFor(&pool, writers, [&](size_t w) {
    for (size_t b = 0; b < batches_per_writer; ++b) {
      size_t global = w * batches_per_writer + b;
      size_t begin = (global * batch_size) % (events.size() - batch_size + 1);
      dqm::Status status = session->AddVotes(
          std::span<const dqm::crowd::VoteEvent>(&events[begin], batch_size));
      DQM_CHECK(status.ok()) << status.ToString();
    }
  });
  session->Publish();
  double seconds = SecondsSince(start);
  uint64_t total_votes = static_cast<uint64_t>(writers) * batches_per_writer *
                         batch_size;
  DQM_CHECK_EQ(session->snapshot().num_votes, total_votes);
  return static_cast<double>(total_votes) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  int64_t* tasks = flags.AddInt("tasks", 500, "simulated tasks in the log");
  int64_t* batch = flags.AddInt("batch", 512, "votes per ingest batch");
  int64_t* writers =
      flags.AddInt("writers", 4, "concurrent producers into the one session");
  int64_t* batches_per_writer =
      flags.AddInt("batches_per_writer", 200, "batches each producer commits");
  int64_t* reps = flags.AddInt(
      "reps", 5, "interleaved on/off measurement pairs (best rep wins)");
  bool* smoke =
      flags.AddBool("smoke", false, "CI sizes: 3 reps, 60 batches per writer");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == dqm::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  dqm::core::Scenario scenario = dqm::core::SimulationScenario(0.01, 0.1, 15);
  dqm::core::SimulatedRun run = dqm::core::SimulateScenario(
      scenario, static_cast<size_t>(*tasks), 7);
  const std::vector<dqm::crowd::VoteEvent>& events = run.log.events();
  DQM_CHECK(!events.empty());

  size_t batch_size = std::min(
      static_cast<size_t>(std::max<int64_t>(1, *batch)), events.size());
  size_t writer_count = static_cast<size_t>(std::max<int64_t>(1, *writers));
  size_t batches = static_cast<size_t>(std::max<int64_t>(1, *batches_per_writer));
  size_t rep_count = static_cast<size_t>(std::max<int64_t>(1, *reps));
  if (*smoke) {
    rep_count = std::min<size_t>(rep_count, 3);
    batches = std::min<size_t>(batches, 60);
  }

  std::printf("== telemetry overhead: %zu writers x %zu batches x %zu votes, "
              "%zu interleaved reps ==\n",
              writer_count, batches, batch_size, rep_count);

  // One untimed warmup (telemetry on) absorbs first-touch costs — page
  // faults, registry creation, thread-pool spin-up — before either side is
  // scored.
  dqm::telemetry::SetEnabled(true);
  MeasureRep(events, scenario.num_items, batch_size, writer_count, batches);

  dqm::AsciiTable table({"rep", "on votes/sec", "off votes/sec", "on/off"});
  double best_on = 0.0;
  double best_off = 0.0;
  for (size_t rep = 0; rep < rep_count; ++rep) {
    dqm::telemetry::SetEnabled(true);
    double on = MeasureRep(events, scenario.num_items, batch_size,
                           writer_count, batches);
    dqm::telemetry::SetEnabled(false);
    double off = MeasureRep(events, scenario.num_items, batch_size,
                            writer_count, batches);
    best_on = std::max(best_on, on);
    best_off = std::max(best_off, off);
    table.AddRow({dqm::StrFormat("%zu", rep + 1),
                  dqm::StrFormat("%.0f", on), dqm::StrFormat("%.0f", off),
                  dqm::StrFormat("%.3f", on / std::max(off, 1e-9))});
  }
  // Leave the process in the production configuration: the artifact's
  // telemetry block should reflect instrumented runs.
  dqm::telemetry::SetEnabled(true);
  std::fputs(table.Render().c_str(), stdout);

  double ratio = best_on / std::max(best_off, 1e-9);
  std::printf("best-of-%zu: on=%.0f votes/sec, off=%.0f votes/sec, "
              "on/off=%.3f\n",
              rep_count, best_on, best_off, ratio);

  dqm::bench::BenchJsonWriter json("telemetry_overhead");
  json.AddResult("overhead", {{"on_votes_per_sec", best_on},
                              {"off_votes_per_sec", best_off},
                              {"on_off_ratio", ratio}});
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("telemetry_overhead");
  return 0;
}
