// Ablation of vChao92's shift parameter s (Section 3.3): the paper argues
// s is hard to tune a priori — too small leaves false-positive singletons
// in charge, too large destroys the predictive power. This bench sweeps s
// on the FP-heavy Restaurant workload and the mixed simulation workload.

#include <cstdio>

#include "common/ascii.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "estimators/chao92.h"
#include "figure_common.h"

namespace {

void RunSweep(const char* title, const char* tag,
              const dqm::core::Scenario& scenario, size_t num_tasks,
              uint64_t seed, dqm::bench::BenchJsonWriter& json) {
  std::printf("-- %s (%zu tasks, truth=%zu) --\n", title, num_tasks,
              scenario.num_dirty());
  dqm::core::SimulatedRun run =
      dqm::core::SimulateScenario(scenario, num_tasks, seed);
  double truth = static_cast<double>(scenario.num_dirty());
  dqm::AsciiTable table({"shift s", "mid-run est", "final est", "SRMSE"});
  for (uint32_t shift = 0; shift <= 4; ++shift) {
    std::vector<double> finals, mids;
    for (uint64_t p = 0; p < 5; ++p) {
      dqm::crowd::ResponseLog permuted =
          dqm::core::PermuteTasks(run.log, seed + p);
      dqm::estimators::VChao92Estimator estimator(scenario.num_items, shift);
      std::vector<double> series =
          dqm::estimators::EstimateSeriesByTask(permuted, estimator);
      mids.push_back(series[series.size() / 2]);
      finals.push_back(series.back());
    }
    table.AddRow({dqm::StrFormat("%u", shift),
                  dqm::StrFormat("%.1f", dqm::Mean(mids)),
                  dqm::StrFormat("%.1f", dqm::Mean(finals)),
                  dqm::StrFormat("%.3f", dqm::ScaledRmse(finals, truth))});
    json.AddResult(dqm::StrFormat("%s_shift%u", tag, shift),
                   {{"final_estimate", dqm::Mean(finals)},
                    {"srmse", dqm::ScaledRmse(finals, truth)},
                    {"truth", truth}});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== vChao92 shift-parameter ablation ==\n");
  dqm::bench::BenchJsonWriter json("ablation_shift");
  RunSweep("Restaurant workload (FP-heavy)", "restaurant",
           dqm::core::RestaurantScenario(), 1000, 333, json);
  RunSweep("Simulation workload (1% FP + 10% FN)", "simulation",
           dqm::core::SimulationScenario(0.01, 0.10, 15), 700, 333, json);
  std::printf(
      "reading: no single s wins on both workloads — the paper's argument\n"
      "for the parameter-free SWITCH estimator.\n");
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("ablation_shift");
  return 0;
}
