// Extension bench (beyond the paper's evaluation): how does the DQM family
// interact with *better label aggregation*? The related work (Section 7)
// aggregates noisy votes with EM (Dawid–Skene); that sharpens the
// descriptive count but — like VOTING — cannot see errors that have no
// votes yet. SWITCH remains the forward-looking component.
//
// Series: VOTING, EM-VOTING (Dawid–Skene posterior count), SWITCH, truth.

#include <cstdio>
#include <memory>

#include "common/ascii.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "estimators/em_voting.h"
#include "figure_common.h"

int main() {
  std::printf("== Extension — EM label aggregation vs DQM ==\n");
  // A noisy crowd with real spread in worker quality, where EM has
  // something to learn (identical workers make EM equal to VOTING).
  dqm::core::Scenario scenario = dqm::core::SimulationScenario(0.03, 0.20, 15);
  scenario.workers.variation = 0.10;
  scenario.workers.qualification_max_fp = 0.45;
  scenario.workers.qualification_max_fn = 0.60;
  scenario.tasks_per_worker = 5;  // enough votes per worker to profile them
  const size_t num_tasks = 500;
  dqm::core::SimulatedRun run =
      dqm::core::SimulateScenario(scenario, num_tasks, 909);

  // The estimator lineup comes from the registry — EM-VOTING included,
  // which the old hand-maintained factory list had to special-case.
  const std::vector<std::string> specs = {"voting", "em-voting", "switch"};
  dqm::core::ExperimentRunner runner({.permutations = 5, .seed = 11});
  std::vector<dqm::core::SeriesResult> series =
      runner.Run(run.log, scenario.num_items, specs).value();

  dqm::bench::PrintSeriesTable({"VOTING", "EM-VOTING", "SWITCH"}, series, 10,
                               static_cast<double>(scenario.num_dirty()));
  dqm::bench::BenchJsonWriter json("ext_aggregation");
  for (const dqm::core::SeriesResult& s : series) {
    json.AddResult(s.name,
                   {{"final_estimate", s.mean.back()},
                    {"final_std", s.std_dev.back()},
                    {"truth", static_cast<double>(scenario.num_dirty())}});
  }
  std::vector<double> x(series.front().mean.size());
  for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i + 1);
  dqm::AsciiChart chart("EM aggregation vs DQM (truth = 100)", x);
  for (const auto& s : series) chart.AddSeries(s.name, s.mean);
  chart.AddHorizontalLine("truth", 100.0);
  std::fputs(chart.Render().c_str(), stdout);
  std::printf(
      "reading: EM sharpens the descriptive count over VOTING by profiling\n"
      "workers, but neither is forward-looking — SWITCH still supplies the\n"
      "undiscovered-error tail. The techniques compose, not compete.\n");
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("ext_aggregation");
  return 0;
}
