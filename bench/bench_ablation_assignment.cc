// Ablation of the worker-assignment strategy (Sections 1.2 and 6.1): the
// species estimators need *random* assignment with overlap, which looks
// wasteful next to the conventional fixed-quorum scheme (exactly three
// votes per item). This bench quantifies the added redundancy: on the same
// workload, how many tasks does each scheme need before (i) the majority
// labels are accurate and (ii) SWITCH's estimate is within 10% of truth —
// compared against the SCM task budget.

#include <cstdio>

#include "common/ascii.h"
#include "common/string_util.h"
#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "estimators/switch_total.h"
#include "figure_common.h"

namespace {

struct RunResult {
  double final_estimate = 0.0;
  size_t tasks_to_10pct = 0;  // 0 = never reached
  size_t final_majority = 0;
};

RunResult Evaluate(const dqm::core::Scenario& scenario, bool fixed_quorum,
                   size_t num_tasks, uint64_t seed) {
  std::vector<bool> truth = dqm::core::BuildTruth(scenario, seed);
  dqm::crowd::CrowdSimulator simulator =
      fixed_quorum
          ? dqm::core::MakeFixedQuorumSimulator(scenario, truth, 3,
                                                seed ^ 0xabc)
          : dqm::core::MakeSimulator(scenario, truth, seed ^ 0xabc);
  dqm::crowd::ResponseLog log(scenario.num_items);
  dqm::estimators::SwitchTotalErrorEstimator estimator(scenario.num_items);
  double truth_count = static_cast<double>(scenario.num_dirty());

  RunResult result;
  size_t processed = 0;
  for (size_t task = 0; task < num_tasks; ++task) {
    simulator.RunTask(log);
    while (processed < log.num_events()) {
      estimator.Observe(log.events()[processed++]);
    }
    double estimate = estimator.Estimate();
    if (result.tasks_to_10pct == 0 &&
        std::abs(estimate - truth_count) <= 0.1 * truth_count) {
      result.tasks_to_10pct = task + 1;
    }
  }
  result.final_estimate = estimator.Estimate();
  result.final_majority = log.MajorityCount();
  return result;
}

}  // namespace

int main() {
  std::printf("== Assignment-strategy ablation: random vs fixed quorum ==\n");
  dqm::core::Scenario scenario = dqm::core::SimulationScenario(0.01, 0.10, 10);
  const size_t num_tasks = 600;
  double scm = dqm::core::SampleCleanMinimumTasks(scenario.num_items,
                                                  scenario.items_per_task);
  std::printf("workload: %zu items, %zu true errors, %zu tasks max; "
              "SCM = %.0f tasks\n",
              scenario.num_items, scenario.num_dirty(), num_tasks, scm);

  dqm::AsciiTable table({"assignment", "seed", "tasks to +/-10%",
                         "final estimate", "final VOTING"});
  dqm::bench::BenchJsonWriter json("ablation_assignment");
  auto add_json = [&](const char* kind, uint64_t seed, const RunResult& r) {
    json.AddResult(dqm::StrFormat("%s_seed%llu", kind,
                                  static_cast<unsigned long long>(seed)),
                   {{"tasks_to_10pct", static_cast<double>(r.tasks_to_10pct)},
                    {"final_estimate", r.final_estimate},
                    {"final_majority", static_cast<double>(r.final_majority)}});
  };
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunResult random_run = Evaluate(scenario, false, num_tasks, seed);
    RunResult quorum_run = Evaluate(scenario, true, num_tasks, seed);
    table.AddRow({"uniform random", dqm::StrFormat("%llu",
                                                   static_cast<unsigned long long>(seed)),
                  random_run.tasks_to_10pct == 0
                      ? "never"
                      : dqm::StrFormat("%zu", random_run.tasks_to_10pct),
                  dqm::StrFormat("%.1f", random_run.final_estimate),
                  dqm::StrFormat("%zu", random_run.final_majority)});
    table.AddRow({"fixed 3-quorum", dqm::StrFormat("%llu",
                                                   static_cast<unsigned long long>(seed)),
                  quorum_run.tasks_to_10pct == 0
                      ? "never"
                      : dqm::StrFormat("%zu", quorum_run.tasks_to_10pct),
                  dqm::StrFormat("%.1f", quorum_run.final_estimate),
                  dqm::StrFormat("%zu", quorum_run.final_majority)});
    add_json("random", seed, random_run);
    add_json("quorum", seed, quorum_run);
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "reading: random assignment reaches a reliable estimate in a task\n"
      "budget comparable to SCM — the added redundancy the estimators need\n"
      "is marginal versus the conventional fixed-quorum deployment\n"
      "(Section 6.1), and unlike SCM it comes with an error estimate.\n");
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("ablation_assignment");
  return 0;
}
