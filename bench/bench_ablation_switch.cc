// Ablation of the SWITCH estimator's design choices (DESIGN.md):
//
//   * memory      — live-only fingerprint (default) vs keeping every frozen
//                   switch (the overestimation the paper's Section 4.2
//                   discusses: corrected FPs stay singletons forever)
//   * n mode      — all counted votes (paper's final choice) vs the species
//                   sum (the paper's first, discarded definition)
//   * tie policy  — Eq. (7)'s tie-as-switch vs strict majority changes
//   * correction  — dynamic one-sided (Section 4.3) vs always two-sided
//
// Each variant runs on the Figure 7(c) workload (1000 pairs, 100 dups,
// 1% FP + 10% FN) and on the FP-heavy Restaurant workload, where the
// differences are most visible.

#include <cstdio>

#include "common/ascii.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "estimators/switch_total.h"
#include "figure_common.h"

namespace {

using dqm::estimators::SwitchMemory;
using dqm::estimators::SwitchNMode;
using dqm::estimators::SwitchTotalErrorEstimator;
using dqm::estimators::TiePolicy;

struct Variant {
  std::string name;
  SwitchTotalErrorEstimator::Config config;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  Variant base{"default (live, all-votes, tie-switch, 1-sided)", {}};
  variants.push_back(base);

  Variant frozen = base;
  frozen.name = "memory: keep frozen switches";
  frozen.config.tracker.memory = SwitchMemory::kAllSwitches;
  variants.push_back(frozen);

  Variant species_sum = base;
  species_sum.name = "n: species sum (paper's first def)";
  species_sum.config.tracker.n_mode = SwitchNMode::kSpeciesSum;
  variants.push_back(species_sum);

  Variant strict = base;
  strict.name = "tie policy: strict majority";
  strict.config.tracker.tie_policy = TiePolicy::kStrictMajority;
  variants.push_back(strict);

  Variant two_sided = base;
  two_sided.name = "correction: two-sided";
  two_sided.config.two_sided = true;
  variants.push_back(two_sided);

  Variant no_skew = base;
  no_skew.name = "no gamma^2 skew correction";
  no_skew.config.tracker.skew_correction = false;
  variants.push_back(no_skew);
  return variants;
}

void RunWorkload(const char* title, const char* tag,
                 const dqm::core::Scenario& scenario, size_t num_tasks,
                 uint64_t seed, dqm::bench::BenchJsonWriter& json) {
  std::printf("-- %s (%zu tasks, truth=%zu) --\n", title, num_tasks,
              scenario.num_dirty());
  dqm::core::SimulatedRun run =
      dqm::core::SimulateScenario(scenario, num_tasks, seed);
  double truth = static_cast<double>(scenario.num_dirty());

  dqm::AsciiTable table({"variant", "mid-run est", "final est", "SRMSE"});
  for (const Variant& variant : Variants()) {
    // Average over task-order permutations, as in the paper.
    std::vector<double> finals, mids;
    for (uint64_t p = 0; p < 5; ++p) {
      dqm::crowd::ResponseLog permuted =
          dqm::core::PermuteTasks(run.log, seed + 100 + p);
      SwitchTotalErrorEstimator estimator(scenario.num_items, variant.config);
      std::vector<double> series =
          dqm::estimators::EstimateSeriesByTask(permuted, estimator);
      mids.push_back(series[series.size() / 2]);
      finals.push_back(series.back());
    }
    table.AddRow({variant.name, dqm::StrFormat("%.1f", dqm::Mean(mids)),
                  dqm::StrFormat("%.1f", dqm::Mean(finals)),
                  dqm::StrFormat("%.3f", dqm::ScaledRmse(finals, truth))});
    json.AddResult(std::string(tag) + ":" + variant.name,
                   {{"final_estimate", dqm::Mean(finals)},
                    {"srmse", dqm::ScaledRmse(finals, truth)},
                    {"truth", truth}});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== SWITCH design ablation ==\n");
  dqm::bench::BenchJsonWriter json("ablation_switch");
  RunWorkload("Figure 7(c) workload (1% FP + 10% FN)", "fig7c",
              dqm::core::SimulationScenario(0.01, 0.10, 15), 700, 4242, json);
  RunWorkload("Restaurant workload (FP-heavy)", "restaurant",
              dqm::core::RestaurantScenario(), 1000, 4242, json);
  std::printf(
      "reading: frozen-switch memory and the species-sum n keep a positive\n"
      "bias on FP-heavy data; the live-only default converges.\n");
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("ablation_switch");
  return 0;
}
