// Reproduces Figure 6 of the paper: scaled error (SRMSE) of the estimators
//   (a) as a function of worker quality (precision), 50 tasks x 15 items;
//   (b) as a function of items per task (coverage), no false positives.
//
// Expected shape (paper): (a) Chao92 degrades sharply as precision drops
// (false positives appear); SWITCH follows VOTING closely and beats it at
// high precision; below ~50% precision nothing works (the majority
// assumption is violated). (b) without false positives Chao92 is excellent
// even at low coverage; SWITCH handles both regimes.

#include <cstdio>

#include "common/ascii.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "estimators/registry.h"
#include "figure_common.h"

namespace {

// SRMSE of each method at `num_tasks`, averaged over r fresh simulations.
// `methods` are registry spec strings.
std::vector<double> SrmseAt(const dqm::core::Scenario& scenario,
                            size_t num_tasks, uint64_t seed,
                            const std::vector<std::string>& methods, size_t r) {
  std::vector<dqm::estimators::EstimatorFactory> factories;
  for (const std::string& method : methods) {
    factories.push_back(
        dqm::estimators::EstimatorRegistry::Global().FactoryFor(method)
            .value());
  }
  std::vector<std::vector<double>> estimates(methods.size());
  for (size_t rep = 0; rep < r; ++rep) {
    dqm::core::SimulatedRun run =
        dqm::core::SimulateScenario(scenario, num_tasks, seed + rep * 131);
    for (size_t m = 0; m < methods.size(); ++m) {
      auto estimator = factories[m](scenario.num_items);
      for (const dqm::crowd::VoteEvent& event : run.log.events()) {
        estimator->Observe(event);
      }
      estimates[m].push_back(estimator->Estimate());
    }
  }
  std::vector<double> srmse;
  double truth = static_cast<double>(scenario.num_dirty());
  for (const auto& method_estimates : estimates) {
    srmse.push_back(dqm::ScaledRmse(method_estimates, truth));
  }
  return srmse;
}

}  // namespace

int main() {
  const std::vector<std::string> methods = {"chao92", "switch", "voting"};
  const std::vector<std::string> names = {"CHAO92", "SWITCH", "VOTING"};
  const size_t r = 10;
  dqm::bench::BenchJsonWriter json("fig6_sensitivity");

  // Panel (a): precision sweep at 50 tasks, 15 items per task. A worker
  // with precision p answers correctly with probability p on both classes.
  std::printf("== Figure 6(a) — SRMSE vs worker precision (50 tasks) ==\n");
  std::printf("sim: 1000 pairs, 100 duplicates, 15 items/task, r=%zu\n", r);
  {
    dqm::AsciiTable table({"precision", "CHAO92", "SWITCH", "VOTING"});
    std::vector<double> x;
    std::vector<std::vector<double>> ys(methods.size());
    for (double precision : {0.55, 0.65, 0.75, 0.85, 0.90, 0.95, 0.99, 1.0}) {
      dqm::core::Scenario scenario =
          dqm::core::SimulationScenario(1.0 - precision, 1.0 - precision, 15);
      std::vector<double> srmse = SrmseAt(scenario, 50, 61, methods, r);
      std::vector<std::string> row = {dqm::StrFormat("%.2f", precision)};
      for (size_t m = 0; m < srmse.size(); ++m) {
        row.push_back(dqm::StrFormat("%.2f", srmse[m]));
        ys[m].push_back(srmse[m]);
      }
      table.AddRow(std::move(row));
      x.push_back(precision);
      std::vector<std::pair<std::string, double>> metrics;
      for (size_t m = 0; m < srmse.size(); ++m) {
        metrics.emplace_back(names[m] + ":srmse", srmse[m]);
      }
      json.AddResult(dqm::StrFormat("precision_%.2f", precision),
                     std::move(metrics));
    }
    std::fputs(table.Render().c_str(), stdout);
    dqm::AsciiChart chart("Figure 6(a) — SRMSE vs precision", x);
    for (size_t m = 0; m < names.size(); ++m) chart.AddSeries(names[m], ys[m]);
    std::fputs(chart.Render(72, 14).c_str(), stdout);
  }

  // Panel (b): items-per-task sweep with false negatives only.
  std::printf(
      "\n== Figure 6(b) — SRMSE vs items per task (no false positives) ==\n");
  std::printf("sim: 1000 pairs, 100 duplicates, fn=0.10, 50 tasks, r=%zu\n",
              r);
  {
    dqm::AsciiTable table({"items/task", "CHAO92", "SWITCH", "VOTING"});
    std::vector<double> x;
    std::vector<std::vector<double>> ys(methods.size());
    for (size_t items : {5u, 10u, 20u, 40u, 60u, 80u, 100u}) {
      dqm::core::Scenario scenario =
          dqm::core::SimulationScenario(0.0, 0.10, items);
      std::vector<double> srmse = SrmseAt(scenario, 50, 67, methods, r);
      std::vector<std::string> row = {dqm::StrFormat("%zu", items)};
      for (size_t m = 0; m < srmse.size(); ++m) {
        row.push_back(dqm::StrFormat("%.2f", srmse[m]));
        ys[m].push_back(srmse[m]);
      }
      table.AddRow(std::move(row));
      x.push_back(static_cast<double>(items));
      std::vector<std::pair<std::string, double>> metrics;
      for (size_t m = 0; m < srmse.size(); ++m) {
        metrics.emplace_back(names[m] + ":srmse", srmse[m]);
      }
      json.AddResult(dqm::StrFormat("items_per_task_%zu", items),
                     std::move(metrics));
    }
    std::fputs(table.Render().c_str(), stdout);
    dqm::AsciiChart chart("Figure 6(b) — SRMSE vs items per task", x);
    for (size_t m = 0; m < names.size(); ++m) chart.AddSeries(names[m], ys[m]);
    std::fputs(chart.Render(72, 14).c_str(), stdout);
  }
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("fig6_sensitivity");
  return 0;
}
