// Reproduces Figure 8 of the paper: sensitivity of the SWITCH estimate to
// the exploration rate epsilon when the prioritization heuristic is
// imperfect (Section 5.3).
//
// Workers see candidates from R_H with probability 1-epsilon and records
// from the complement R_H^c with probability epsilon. With a mostly
// accurate heuristic (10% of the true errors misplaced into R_H^c) small
// epsilon suffices; with a bad heuristic (50% misplaced) small epsilon
// leaves half the errors invisible and the error stays high until epsilon
// grows.

#include <cstdio>

#include "common/ascii.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "figure_common.h"

namespace {

double SwitchSrmse(double heuristic_error, double epsilon, size_t num_tasks,
                   size_t repetitions, uint64_t seed) {
  std::vector<double> estimates;
  double truth = 0.0;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    dqm::core::Scenario scenario =
        dqm::core::PrioritizationScenario(heuristic_error, epsilon);
    truth = static_cast<double>(scenario.num_dirty());
    dqm::core::SimulatedRun run =
        dqm::core::SimulateScenario(scenario, num_tasks, seed + rep * 271);
    auto estimator = dqm::estimators::EstimatorRegistry::Global()
                         .Create("switch", scenario.num_items)
                         .value();
    for (const dqm::crowd::VoteEvent& event : run.log.events()) {
      estimator->Observe(event);
    }
    estimates.push_back(estimator->Estimate());
  }
  return dqm::ScaledRmse(estimates, truth);
}

}  // namespace

int main() {
  const size_t num_tasks = 400;
  const size_t repetitions = 10;
  std::printf("== Figure 8 — SWITCH accuracy vs epsilon ==\n");
  std::printf(
      "universe: 5000 records, |R_H|=1000, 100 true errors, "
      "%zu tasks x 15 items, r=%zu\n",
      num_tasks, repetitions);

  dqm::bench::BenchJsonWriter json("fig8_prioritization");
  const double epsilons[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.5};
  dqm::AsciiTable table(
      {"epsilon", "SRMSE (10% heuristic err)", "SRMSE (50% heuristic err)"});
  std::vector<double> x, good, bad;
  for (double epsilon : epsilons) {
    double srmse_good = SwitchSrmse(0.1, epsilon, num_tasks, repetitions, 81);
    double srmse_bad = SwitchSrmse(0.5, epsilon, num_tasks, repetitions, 83);
    table.AddRow({dqm::StrFormat("%.2f", epsilon),
                  dqm::StrFormat("%.2f", srmse_good),
                  dqm::StrFormat("%.2f", srmse_bad)});
    x.push_back(epsilon);
    good.push_back(srmse_good);
    bad.push_back(srmse_bad);
    json.AddResult(dqm::StrFormat("epsilon_%.2f", epsilon),
                   {{"srmse_good_heuristic", srmse_good},
                    {"srmse_bad_heuristic", srmse_bad}});
  }
  std::fputs(table.Render().c_str(), stdout);
  dqm::AsciiChart chart("Figure 8 — SRMSE vs epsilon", x);
  chart.AddSeries("10% heuristic error", good);
  chart.AddSeries("50% heuristic error", bad);
  std::fputs(chart.Render(72, 14).c_str(), stdout);
  std::printf(
      "shape check: with an accurate heuristic, small epsilon suffices; "
      "with an inaccurate one, epsilon=0 hides half the errors.\n");
  dqm::bench::EmitBenchJson(json);
  dqm::bench::WriteBenchArtifact("fig8_prioritization");
  return 0;
}
