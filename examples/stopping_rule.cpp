// Cost-aware stopping: answer the paper's motivating question — is it worth
// paying for more workers? — with a live DQM estimate and a stopping rule.
//
// Runs a crowdsourced cleaning job batch by batch; after every batch the
// DQM estimate of undetected errors is checked against a quality target,
// and the job stops as soon as the target is met, reporting the money the
// estimate saved versus a fixed-budget deployment.
//
//   $ ./stopping_rule [--target=1.0] [--max_tasks=1500] [--seed=5]

#include <cstdio>

#include "common/flags.h"
#include "core/budget.h"
#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  double* target = flags.AddDouble("target", 1.0,
                                   "stop when estimated undetected errors "
                                   "drop to this level");
  int64_t* max_tasks = flags.AddInt("max_tasks", 1500, "hard task budget");
  int64_t* seed = flags.AddInt("seed", 5, "simulation seed");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == dqm::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  dqm::core::Scenario scenario = dqm::core::SimulationScenario(0.01, 0.10);
  dqm::core::SimulatedRun run = dqm::core::SimulateScenario(
      scenario, static_cast<size_t>(*max_tasks),
      static_cast<uint64_t>(*seed));

  dqm::core::CostModel cost;  // $0.03 per 10-record task, as in the paper
  cost.items_per_task = scenario.items_per_task;
  dqm::core::StoppingRule::Options options;
  options.max_undetected_errors = *target;
  dqm::core::StoppingRule rule(options, cost);

  dqm::core::DataQualityMetric metric(scenario.num_items);
  std::printf("stopping when estimated undetected errors <= %.1f\n\n", *target);
  std::printf("%8s %10s %12s %12s %10s\n", "tasks", "VOTING", "DQM total",
              "undetected", "cost ($)");

  size_t tasks_run = 0;
  bool stopped = false;
  const size_t batch = 50;
  size_t next_checkpoint = batch;
  uint32_t current_task = 0;
  for (const dqm::crowd::VoteEvent& event : run.log.events()) {
    if (event.task != current_task && event.task >= next_checkpoint) {
      tasks_run = event.task;
      dqm::core::StoppingRule::Decision decision =
          rule.Evaluate(metric, tasks_run);
      std::printf("%8zu %10zu %12.1f %12.1f %10.2f\n", tasks_run,
                  metric.MajorityCount(), metric.EstimatedTotalErrors(),
                  decision.estimated_undetected, decision.cost_spent);
      if (decision.stop) {
        stopped = true;
        break;
      }
      next_checkpoint += batch;
    }
    current_task = event.task;
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == dqm::crowd::Vote::kDirty);
  }

  std::printf("\n");
  if (stopped) {
    double saved = cost.CostOfTasks(static_cast<size_t>(*max_tasks)) -
                   cost.CostOfTasks(tasks_run);
    std::printf("stopped at %zu tasks: quality target met.\n", tasks_run);
    std::printf("fixed-budget deployment would have run %lld tasks — the\n"
                "estimate saved $%.2f (%.0f%% of the budget).\n",
                static_cast<long long>(*max_tasks), saved,
                100.0 * saved /
                    cost.CostOfTasks(static_cast<size_t>(*max_tasks)));
  } else {
    std::printf("budget exhausted before the quality target was met;\n"
                "estimated undetected errors: %.1f\n",
                metric.EstimatedUndetectedErrors());
  }
  std::printf("(hidden ground truth: %zu errors; found by consensus: %zu)\n",
              scenario.num_dirty(), metric.MajorityCount());
  return 0;
}
