// The paper's future-work extension (Section 8): instead of semi-independent
// human workers, use several semi-independent *algorithmic* cleaners — rule
// subsets and noisy learned-classifier stand-ins — and estimate the number
// of undetected errors from their (dis)agreement.
//
// It also demonstrates the paper's scope caveat (Section 6.3): errors that
// NO worker can ever detect (here: fake-but-well-formed addresses) are
// invisible to the estimator — DQM estimates the eventually-detectable
// errors, not the black swans.
//
//   $ ./algorithmic_cleaning [--records=1000] [--errors=90] [--tasks=600]

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/dqm.h"
#include "dataset/address.h"

namespace {

using dqm::dataset::AddressErrorKind;
using dqm::dataset::AddressValidator;

// An algorithmic worker: a named classifier with its own blind spots.
struct AlgorithmicWorker {
  std::string name;
  std::function<bool(const std::string&)> is_dirty;
};

std::vector<AlgorithmicWorker> BuildWorkers() {
  std::vector<AlgorithmicWorker> workers;

  // Full rule engine.
  workers.push_back({"rule-engine", [](const std::string& address) {
    static const AddressValidator& validator = *new AddressValidator();
    return !validator.Validate(address).valid;
  }});

  // Format-only checker: four comma parts, numeric leading token, 5-digit
  // zip. Misses city typos and FD violations.
  workers.push_back({"format-checker", [](const std::string& address) {
    std::vector<std::string> parts = dqm::Split(address, ',');
    if (parts.size() != 4) return true;
    std::vector<std::string> tokens =
        dqm::SplitWhitespace(dqm::StripWhitespace(parts[0]));
    if (tokens.size() < 2 || !dqm::IsDigits(tokens[0])) return true;
    auto zip = std::string(dqm::StripWhitespace(parts[3]));
    return zip.size() != 5 || !dqm::IsDigits(zip);
  }});

  // Zip-FD specialist: only knows the zip registry.
  workers.push_back({"zip-specialist", [](const std::string& address) {
    std::vector<std::string> parts = dqm::Split(address, ',');
    if (parts.size() != 4) return true;
    auto zip = std::string(dqm::StripWhitespace(parts[3]));
    auto city = dqm::ToLower(std::string(dqm::StripWhitespace(parts[1])));
    for (const auto& entry : AddressValidator::ZipRegistry()) {
      if (entry.zip == zip) return entry.city != city;
    }
    return true;  // unknown zip
  }});

  // Keyword screen for non-home addresses.
  workers.push_back({"keyword-screen", [](const std::string& address) {
    std::string lower = dqm::ToLower(address);
    for (const char* keyword :
         {"po box", "pmb", "warehouse", "loading dock", "storefront"}) {
      if (lower.find(keyword) != std::string::npos) return true;
    }
    return false;
  }});

  // Three noisy "learned classifier" stand-ins: the rule engine's verdict
  // with independent, seeded label noise — the semi-independence the
  // paper's extension calls for.
  for (uint64_t variant = 0; variant < 3; ++variant) {
    workers.push_back(
        {dqm::StrFormat("noisy-model-%llu",
                        static_cast<unsigned long long>(variant + 1)),
         [variant](const std::string& address) {
           static const AddressValidator& validator = *new AddressValidator();
           bool verdict = !validator.Validate(address).valid;
           // Deterministic per-record noise: hash the address with the
           // variant id so each model errs on its own records.
           uint64_t hash = 1469598103934665603ULL ^ (variant * 1099511628211ULL);
           for (char c : address) {
             hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
           }
           if (hash % 100 < 8) verdict = !verdict;  // 8% label noise
           return verdict;
         }});
  }
  return workers;
}

}  // namespace

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  int64_t* records = flags.AddInt("records", 1000, "addresses to generate");
  int64_t* errors = flags.AddInt("errors", 90, "malformed addresses");
  int64_t* tasks = flags.AddInt("tasks", 600, "scan tasks to run");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == dqm::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  dqm::dataset::AddressConfig config;
  config.num_records = static_cast<size_t>(*records);
  config.num_errors = static_cast<size_t>(*errors);
  auto generated = dqm::dataset::GenerateAddressDataset(config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const auto& table = generated->data.table;

  // How many errors can the ensemble ever detect? (Fake-but-well-formed
  // errors fool every algorithmic worker.)
  size_t undetectable = 0;
  for (size_t row : generated->data.dirty_rows) {
    if (generated->row_kinds[row] == AddressErrorKind::kFakeWellFormed) {
      ++undetectable;
    }
  }
  size_t detectable =
      generated->data.dirty_rows.size() - undetectable;

  std::vector<AlgorithmicWorker> workers = BuildWorkers();
  std::printf("algorithmic ensemble: %zu semi-independent cleaners\n",
              workers.size());

  // Each task: one cleaner scans a random batch of records, exactly like a
  // crowd task, so the response matrix semantics carry over unchanged.
  dqm::core::DataQualityMetric metric(table.num_rows());
  dqm::Rng rng(101);
  const size_t batch_size = 10;
  for (uint32_t task = 0; task < static_cast<uint32_t>(*tasks); ++task) {
    auto worker_id = static_cast<uint32_t>(rng.UniformIndex(workers.size()));
    const AlgorithmicWorker& worker = workers[worker_id];
    for (size_t row : rng.SampleIndices(table.num_rows(), batch_size)) {
      metric.AddVote(task, worker_id, static_cast<uint32_t>(row),
                     worker.is_dirty(table.cell(row, 1)));
    }
  }

  std::printf("after %lld scan tasks:\n", static_cast<long long>(*tasks));
  std::printf("  flagged (majority):    %zu records\n", metric.MajorityCount());
  std::printf("  DQM total estimate:    %.1f errors\n",
              metric.EstimatedTotalErrors());
  std::printf("  DQM undetected:        %.1f errors\n",
              metric.EstimatedUndetectedErrors());
  std::printf("ground truth: %zu errors total = %zu ensemble-detectable "
              "+ %zu black swans (fake-but-well-formed)\n",
              generated->data.dirty_rows.size(), detectable, undetectable);
  std::printf("DQM estimates the *eventually detectable* errors; the %zu "
              "black swans stay out of reach (Section 6.3 caveat).\n",
              undetectable);
  return 0;
}
