// Record-level cleaning: malformed addresses (the paper's Address dataset
// and Figure 1 error taxonomy), combining a rule-based validator with a
// crowd and using DQM to quantify what both of them miss.
//
//   $ ./address_cleaning [--records=1000] [--errors=90] [--tasks=800]

#include <cstdio>

#include "common/flags.h"
#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "dataset/address.h"

namespace {

const char* KindName(dqm::dataset::AddressErrorKind kind) {
  using dqm::dataset::AddressErrorKind;
  switch (kind) {
    case AddressErrorKind::kNone:
      return "clean";
    case AddressErrorKind::kMissingField:
      return "missing field";
    case AddressErrorKind::kInvalidCity:
      return "invalid city";
    case AddressErrorKind::kInvalidZip:
      return "invalid zip";
    case AddressErrorKind::kFdViolation:
      return "zip->city FD violation";
    case AddressErrorKind::kNotHomeAddress:
      return "not a home address";
    case AddressErrorKind::kFakeWellFormed:
      return "fake but well-formed";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  int64_t* records = flags.AddInt("records", 1000, "addresses to generate");
  int64_t* errors = flags.AddInt("errors", 90, "malformed addresses");
  int64_t* tasks = flags.AddInt("tasks", 800, "crowd tasks to simulate");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == dqm::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // Generate addresses with the paper's error taxonomy.
  dqm::dataset::AddressConfig config;
  config.num_records = static_cast<size_t>(*records);
  config.num_errors = static_cast<size_t>(*errors);
  auto generated = dqm::dataset::GenerateAddressDataset(config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }

  // Pass one: the rule-based validator (cheap, incomplete).
  dqm::dataset::AddressValidator validator;
  size_t rule_hits = 0;
  size_t rule_misses = 0;
  std::printf("rule-based validator results per error class:\n");
  std::printf("%-26s %10s %10s\n", "class", "detected", "missed");
  for (int kind_value = 1; kind_value <= 6; ++kind_value) {
    auto kind = static_cast<dqm::dataset::AddressErrorKind>(kind_value);
    size_t detected = 0, missed = 0;
    for (size_t row : generated->data.dirty_rows) {
      if (generated->row_kinds[row] != kind) continue;
      if (validator.Validate(generated->data.table.cell(row, 1)).valid) {
        ++missed;
      } else {
        ++detected;
      }
    }
    rule_hits += detected;
    rule_misses += missed;
    std::printf("%-26s %10zu %10zu\n", KindName(kind), detected, missed);
  }
  std::printf("rules caught %zu of %zu errors; %zu form the long tail\n\n",
              rule_hits, generated->data.dirty_rows.size(), rule_misses);

  // Pass two: the crowd reviews everything; DQM quantifies what is left.
  dqm::core::Scenario scenario = dqm::core::AddressScenario();
  scenario.num_items = static_cast<size_t>(*records);
  scenario.num_candidates = scenario.num_items;
  scenario.dirty_in_candidates = static_cast<size_t>(*errors);
  dqm::core::SimulatedRun run = dqm::core::SimulateScenario(
      scenario, static_cast<size_t>(*tasks), 13);

  dqm::core::DataQualityMetric metric(scenario.num_items);
  std::printf("crowd pass — quality trajectory:\n");
  std::printf("%8s %10s %12s %12s %10s\n", "tasks", "VOTING", "DQM total",
              "undetected", "quality");
  size_t next_report = static_cast<size_t>(*tasks) / 8;
  size_t report_every = next_report == 0 ? 1 : next_report;
  size_t current_task = 0;
  for (const dqm::crowd::VoteEvent& event : run.log.events()) {
    if (event.task != current_task && event.task % report_every == 0) {
      std::printf("%8u %10zu %12.1f %12.1f %10.3f\n", event.task,
                  metric.MajorityCount(), metric.EstimatedTotalErrors(),
                  metric.EstimatedUndetectedErrors(), metric.QualityScore());
    }
    current_task = event.task;
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == dqm::crowd::Vote::kDirty);
  }
  std::printf("%8zu %10zu %12.1f %12.1f %10.3f\n",
              static_cast<size_t>(*tasks), metric.MajorityCount(),
              metric.EstimatedTotalErrors(),
              metric.EstimatedUndetectedErrors(), metric.QualityScore());
  std::printf("\nhidden ground truth: %lld errors\n",
              static_cast<long long>(*errors));
  return 0;
}
