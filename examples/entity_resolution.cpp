// Entity resolution end to end: the CrowdER-style two-stage pipeline from
// the paper (Section 1.2) with DQM monitoring the crowd's progress.
//
//   1. Generate a restaurant table with hidden duplicates.
//   2. Stage one: similarity heuristic partitions the pair space into
//      auto-matches, auto-non-matches, and the ambiguous candidate band.
//   3. Stage two: a simulated crowd votes on the candidates.
//   4. DQM estimates how many duplicates remain undetected after each
//      batch of tasks — the "should I pay for more workers?" signal.
//
//   $ ./entity_resolution [--entities=400] [--duplicates=50] [--seed=31]

#include <cstdio>
#include <memory>

#include "common/flags.h"
#include "core/dqm.h"
#include "crowd/assignment.h"
#include "crowd/simulator.h"
#include "dataset/restaurant_generator.h"
#include "er/crowder.h"

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  int64_t* entities = flags.AddInt("entities", 400, "distinct restaurants");
  int64_t* duplicates = flags.AddInt("duplicates", 50, "duplicated entities");
  int64_t* seed = flags.AddInt("seed", 31, "generation seed");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == dqm::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // 1. The dirty dataset.
  dqm::dataset::RestaurantConfig config;
  config.num_entities = static_cast<size_t>(*entities);
  config.num_duplicates = static_cast<size_t>(*duplicates);
  config.seed = static_cast<uint64_t>(*seed);
  auto generated = dqm::dataset::GenerateRestaurantDataset(config);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu restaurant records (%zu hidden duplicate pairs)\n",
              generated->table.num_rows(), generated->duplicate_pairs.size());

  // 2. Stage one: algorithmic partition of the quadratic pair space.
  dqm::er::GroundTruth ground_truth(generated->duplicate_pairs);
  dqm::er::CandidateGenerator generator(0.45, 0.95, "name");
  auto problem = dqm::er::BuildCrowdErProblem(
      generated->table, ground_truth, generator,
      dqm::er::BlockingStrategy::kTokenBlocking);
  if (!problem.ok()) {
    std::fprintf(stderr, "blocking failed: %s\n",
                 problem.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "stage 1 (similarity heuristic over %llu pairs):\n"
      "  auto-matched:   %zu pairs (%zu correct, %zu heuristic FPs)\n"
      "  crowd candidates: %zu pairs (%zu true duplicates among them)\n"
      "  dropped below alpha: %zu true duplicates missed by the heuristic\n",
      static_cast<unsigned long long>(problem->partition.num_total_pairs),
      problem->partition.likely_matches.size(),
      problem->quality.auto_accepted_duplicates,
      problem->quality.auto_accepted_clean, problem->candidates.size(),
      problem->num_dirty_candidates, problem->quality.missed_duplicates);

  // 3. Stage two: the crowd votes on the candidate band, 10 pairs per task.
  size_t num_candidates = problem->candidates.size();
  dqm::crowd::WorkerPool::Config pool_config;
  pool_config.base = {0.02, 0.15};  // a decent but fallible crowd
  pool_config.variation = 0.01;
  dqm::crowd::CrowdSimulator::Config sim_config;
  sim_config.seed = static_cast<uint64_t>(*seed) + 1;
  dqm::crowd::CrowdSimulator simulator(
      std::vector<bool>(problem->truth),
      std::make_unique<dqm::crowd::UniformAssignment>(num_candidates, 10),
      dqm::crowd::WorkerPool(pool_config, dqm::Rng(99)), sim_config);

  // 4. Estimate as the votes stream in.
  dqm::core::DataQualityMetric metric(num_candidates);
  dqm::crowd::ResponseLog log(num_candidates);
  std::printf("\nstage 2 (crowd) — estimates as tasks complete:\n");
  std::printf("%8s %10s %10s %12s\n", "tasks", "VOTING", "DQM est.",
              "undetected");
  size_t batch = num_candidates / 10;  // ~1 extra vote per item per batch
  for (int round = 1; round <= 10; ++round) {
    for (size_t t = 0; t < batch; ++t) {
      simulator.RunTask(log);
    }
    // Re-feed the newly arrived votes.
    while (metric.num_votes() < log.num_events()) {
      const dqm::crowd::VoteEvent& event = log.events()[metric.num_votes()];
      metric.AddVote(event.task, event.worker, event.item,
                     event.vote == dqm::crowd::Vote::kDirty);
    }
    std::printf("%8zu %10zu %10.1f %12.1f\n", log.num_tasks(),
                metric.MajorityCount(), metric.EstimatedTotalErrors(),
                metric.EstimatedUndetectedErrors());
  }
  std::printf("\nhidden truth: %zu duplicates among the candidates\n",
              problem->num_dirty_candidates);
  std::printf("full dataset accounting: %zu auto-matched + %zu crowd-found "
              "(+ %zu unreachable below alpha)\n",
              problem->quality.auto_accepted_duplicates,
              static_cast<size_t>(metric.EstimatedTotalErrors() + 0.5),
              problem->quality.missed_duplicates);
  return 0;
}
