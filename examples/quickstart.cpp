// Quickstart: estimate the number of undetected errors in a dataset from
// crowd votes, using the library's one-class facade.
//
//   $ ./quickstart [--tasks=400] [--seed=7]
//
// The example simulates a small crowdsourced cleaning job (you would feed
// real worker votes instead), then prints the DQM numbers an analyst acts
// on: how many errors the dataset is believed to contain, how many are
// still undetected, and the implied quality score.

#include <cstdio>

#include "common/flags.h"
#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"

int main(int argc, char** argv) {
  dqm::FlagParser flags;
  int64_t* tasks = flags.AddInt("tasks", 400, "crowd tasks to simulate");
  int64_t* seed = flags.AddInt("seed", 7, "simulation seed");
  dqm::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == dqm::StatusCode::kFailedPrecondition ? 0 : 1;
  }

  // A dataset of 1000 records, 100 of which are secretly dirty, cleaned by
  // fallible workers (1% false positives, 10% false negatives), 15 records
  // per task. In a real deployment this is your AMT result stream.
  dqm::core::Scenario scenario = dqm::core::SimulationScenario(0.01, 0.10);
  dqm::core::SimulatedRun run = dqm::core::SimulateScenario(
      scenario, static_cast<size_t>(*tasks), static_cast<uint64_t>(*seed));

  // Feed every vote into the metric. SWITCH is the default method — the
  // paper's estimator that stays robust when workers make mistakes.
  dqm::core::DataQualityMetric metric(scenario.num_items);
  for (const dqm::crowd::VoteEvent& event : run.log.events()) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == dqm::crowd::Vote::kDirty);
  }

  std::printf("dataset:              %zu records\n", metric.num_items());
  std::printf("votes collected:      %zu (%lld tasks)\n", metric.num_votes(),
              static_cast<long long>(*tasks));
  std::printf("marked dirty so far:  %zu (majority consensus)\n",
              metric.MajorityCount());
  std::printf("estimated total:      %.1f errors  [method: %s]\n",
              metric.EstimatedTotalErrors(),
              std::string(metric.method_name()).c_str());
  std::printf("estimated undetected: %.1f errors\n",
              metric.EstimatedUndetectedErrors());
  std::printf("quality score:        %.3f\n", metric.QualityScore());
  std::printf("(hidden ground truth: %zu errors)\n", scenario.num_dirty());

  // The paper's comparisons always look at several estimators on the same
  // votes. Attach them all in one pass: estimators are picked by registry
  // spec string and share the stream's descriptive statistics, so this
  // costs one replay, not one per method.
  dqm::Result<dqm::core::DataQualityMetric> panel =
      dqm::core::DataQualityMetric::Create(
          scenario.num_items, "switch,chao92,vchao92?shift=2,voting,nominal");
  if (!panel.ok()) {
    std::fprintf(stderr, "%s\n", panel.status().ToString().c_str());
    return 1;
  }
  for (const dqm::crowd::VoteEvent& event : run.log.events()) {
    panel->AddVote(event.task, event.worker, event.item,
                   event.vote == dqm::crowd::Vote::kDirty);
  }
  std::printf("\nestimator panel (single pass over the same votes):\n");
  for (const auto& row : panel->Report().estimators) {
    std::printf("  %-12s total=%7.1f  undetected=%6.1f  quality=%.3f\n",
                row.name.c_str(), row.total_errors, row.undetected_errors,
                row.quality_score);
  }
  return 0;
}
