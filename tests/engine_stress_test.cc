// TSan regression test for the engine's concurrency contract: sessions are
// opened, written, queried, swept (QueryAll) and closed from many threads
// at once — across shards — while readers continuously assert that every
// seqlock snapshot is *internally consistent*: all fields from one
// committed batch, scalar mirrors matching row 0, versions monotone,
// counts within bounds. Run under -DDQM_SANITIZE=thread this pins the
// SnapshotCell protocol and the shard locking; in a plain build it still
// catches torn or stale-mixed snapshots by value.

#include "engine/engine.h"

#include <atomic>
#include <cmath>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "crowd/vote.h"
#include "telemetry/metrics.h"

namespace dqm::engine {
namespace {

using crowd::Vote;
using crowd::VoteEvent;

constexpr size_t kItems = 64;
constexpr size_t kBatchSize = 8;
constexpr size_t kBatchesPerWriter = 150;
const std::vector<std::string> kPanel = {"switch", "chao92", "voting",
                                         "nominal"};

/// Asserts every internal-consistency invariant a snapshot must satisfy
/// regardless of when it was taken.
void CheckSnapshotInvariants(const Snapshot& snapshot, uint64_t min_version,
                             const char* context) {
  ASSERT_EQ(snapshot.estimates.size(), kPanel.size()) << context;
  // One committed batch = kBatchSize votes: version and vote count move in
  // lockstep, so a mixed read of the two fields is detectable.
  ASSERT_EQ(snapshot.num_votes, snapshot.version * kBatchSize) << context;
  ASSERT_GE(snapshot.version, min_version) << context;
  ASSERT_EQ(snapshot.num_items, kItems) << context;
  ASSERT_LE(snapshot.majority_count, snapshot.nominal_count) << context;
  ASSERT_LE(snapshot.nominal_count, kItems) << context;
  // Scalar header mirrors row 0 (the primary estimator) exactly.
  ASSERT_EQ(snapshot.estimated_total_errors,
            snapshot.estimates.front().total_errors)
      << context;
  ASSERT_EQ(snapshot.estimated_undetected_errors,
            snapshot.estimates.front().undetected_errors)
      << context;
  ASSERT_EQ(snapshot.quality_score, snapshot.estimates.front().quality_score)
      << context;
  for (const EstimatorEstimate& row : snapshot.estimates) {
    ASSERT_TRUE(std::isfinite(row.total_errors)) << context;
    ASSERT_GE(row.total_errors, 0.0) << context;
    ASSERT_GE(row.quality_score, 0.0) << context;
    ASSERT_LE(row.quality_score, 1.0) << context;
  }
}

/// Deterministic per-writer vote batch; contents don't matter, validity
/// does.
std::vector<VoteEvent> MakeBatch(size_t writer, size_t batch) {
  std::vector<VoteEvent> votes;
  votes.reserve(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    auto item = static_cast<uint32_t>((writer * 31 + batch * 7 + i * 3) %
                                      kItems);
    votes.push_back(VoteEvent{static_cast<uint32_t>(batch),
                              static_cast<uint32_t>(writer), item,
                              (writer + batch + i) % 3 == 0 ? Vote::kClean
                                                            : Vote::kDirty});
  }
  return votes;
}

TEST(EngineStressTest, ConcurrentOpenAddVotesQueryCloseStaysConsistent) {
  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 2;
  constexpr size_t kChurnCycles = 200;

  DqmEngine engine(DqmEngine::Options{.num_shards = 4});
  for (size_t w = 0; w < kWriters; ++w) {
    ASSERT_TRUE(engine
                    .OpenSession("stable-" + std::to_string(w), kItems,
                                 std::span<const std::string>(kPanel))
                    .ok());
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;

  // Writers: batched ingest into their own session (one producer per
  // session, the supported pattern).
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&engine, w] {
      std::string name = "stable-" + std::to_string(w);
      for (size_t b = 0; b < kBatchesPerWriter; ++b) {
        std::vector<VoteEvent> batch = MakeBatch(w, b);
        ASSERT_TRUE(engine.Ingest(name, batch).ok());
      }
    });
  }

  // Readers: hammer snapshots of every stable session (by-name queries and
  // handle polling) plus full QueryAll sweeps, asserting consistency and
  // per-session version monotonicity the whole time.
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&engine, &done] {
      std::vector<uint64_t> last_version(kWriters, 0);
      while (!done.load(std::memory_order_acquire)) {
        for (size_t w = 0; w < kWriters; ++w) {
          Result<Snapshot> snapshot =
              engine.Query("stable-" + std::to_string(w));
          ASSERT_TRUE(snapshot.ok());
          CheckSnapshotInvariants(*snapshot, last_version[w], "Query");
          last_version[w] = snapshot->version;
        }
        for (const auto& [name, snapshot] : engine.QueryAll()) {
          if (name.rfind("stable-", 0) != 0) continue;  // churn session
          size_t w = static_cast<size_t>(name.back() - '0');
          CheckSnapshotInvariants(snapshot, last_version[w], "QueryAll");
          last_version[w] = snapshot.version;
        }
      }
    });
  }

  // Churn: open/ingest/query/close short-lived sessions across the shard
  // space while the stable sessions are being written and read.
  threads.emplace_back([&engine] {
    for (size_t cycle = 0; cycle < kChurnCycles; ++cycle) {
      std::string name = "churn-" + std::to_string(cycle % 16);
      Result<std::shared_ptr<EstimationSession>> session =
          engine.OpenSession(name, kItems,
                             std::span<const std::string>(kPanel));
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      std::vector<VoteEvent> batch = MakeBatch(99, cycle);
      ASSERT_TRUE((*session)->AddVotes(batch).ok());
      Snapshot snapshot = (*session)->snapshot();
      ASSERT_EQ(snapshot.version, 1u);
      ASSERT_EQ(snapshot.num_votes, kBatchSize);
      ASSERT_TRUE(engine.CloseSession(name).ok());
      // The handle stays usable after close (documented contract).
      ASSERT_TRUE((*session)->AddVotes(batch).ok());
      ASSERT_EQ((*session)->snapshot().version, 2u);
    }
  });

  for (size_t w = 0; w < kWriters; ++w) {
    threads[w].join();  // writers finish first
  }
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) {
    threads[t].join();
  }

  // Final state: every stable session saw exactly its writer's batches.
  for (size_t w = 0; w < kWriters; ++w) {
    Result<Snapshot> snapshot = engine.Query("stable-" + std::to_string(w));
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(snapshot->version, kBatchesPerWriter);
    EXPECT_EQ(snapshot->num_votes, kBatchesPerWriter * kBatchSize);
    CheckSnapshotInvariants(*snapshot, kBatchesPerWriter, "final");
  }
  EXPECT_EQ(engine.num_sessions(), kWriters);
}

/// The striped commit path under TSan: many producers committing into ONE
/// session while readers poll and a publisher cadence coalesces — the
/// multi-producer single-session contract. Version/vote monotonicity and
/// internal snapshot consistency are asserted continuously; after the
/// producers join, an explicit Publish must expose exactly the committed
/// votes, and every tally-derived number must be bit-identical to a
/// serialized replay of the same votes.
TEST(EngineStressTest, MultiProducerSingleSessionStripedStaysConsistent) {
  constexpr size_t kProducers = 4;
  constexpr size_t kReaders = 2;
  const std::vector<std::string> kTallyPanel = {"chao92", "voting", "nominal"};

  DqmEngine engine;
  SessionOptions options;
  options.cadence = PublishCadence::kEveryNVotes;
  options.publish_every_votes = 64;
  options.ingest_stripes = 4;
  Result<std::shared_ptr<EstimationSession>> opened = engine.OpenSession(
      "hot", kItems, std::span<const std::string>(kTallyPanel), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::shared_ptr<EstimationSession> session = *opened;
  ASSERT_TRUE(session->concurrent_ingest());

  constexpr uint64_t kTotalVotes =
      kProducers * kBatchesPerWriter * kBatchSize;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&session, p] {
      for (size_t b = 0; b < kBatchesPerWriter; ++b) {
        std::vector<VoteEvent> batch = MakeBatch(p, b);
        ASSERT_TRUE(session->AddVotes(batch).ok());
      }
    });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&session, &done, kTotalVotes] {
      Snapshot snapshot;  // reused: the allocation-free polling path
      uint64_t last_version = 0;
      uint64_t last_votes = 0;
      while (!done.load(std::memory_order_acquire)) {
        session->SnapshotInto(snapshot);
        ASSERT_EQ(snapshot.estimates.size(), 3u);
        ASSERT_GE(snapshot.version, last_version);
        ASSERT_GE(snapshot.num_votes, last_votes);
        ASSERT_LE(snapshot.num_votes, kTotalVotes);
        ASSERT_EQ(snapshot.num_items, kItems);
        ASSERT_LE(snapshot.majority_count, snapshot.nominal_count);
        ASSERT_LE(snapshot.nominal_count, kItems);
        ASSERT_EQ(snapshot.estimated_total_errors,
                  snapshot.estimates.front().total_errors);
        for (const EstimatorEstimate& row : snapshot.estimates) {
          ASSERT_TRUE(std::isfinite(row.total_errors));
          ASSERT_GE(row.total_errors, 0.0);
          ASSERT_GE(row.quality_score, 0.0);
          ASSERT_LE(row.quality_score, 1.0);
        }
        last_version = snapshot.version;
        last_votes = snapshot.num_votes;
      }
    });
  }
  for (size_t p = 0; p < kProducers; ++p) threads[p].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  session->Publish();
  Snapshot final_snapshot = session->snapshot();
  EXPECT_EQ(final_snapshot.num_votes, kTotalVotes);

  // Serialized reference: same votes, one thread, forced serialized path.
  // All three estimators are tally-derived, so every number must match
  // bit for bit regardless of the concurrent interleaving above.
  SessionOptions serial_options;
  serial_options.ingest_stripes = 1;
  serial_options.cadence = PublishCadence::kManual;
  Result<std::shared_ptr<EstimationSession>> reference = engine.OpenSession(
      "reference", kItems, std::span<const std::string>(kTallyPanel),
      serial_options);
  ASSERT_TRUE(reference.ok());
  for (size_t p = 0; p < kProducers; ++p) {
    for (size_t b = 0; b < kBatchesPerWriter; ++b) {
      std::vector<VoteEvent> batch = MakeBatch(p, b);
      ASSERT_TRUE((*reference)->AddVotes(batch).ok());
    }
  }
  (*reference)->Publish();
  Snapshot expected = (*reference)->snapshot();
  EXPECT_EQ(final_snapshot.num_votes, expected.num_votes);
  EXPECT_EQ(final_snapshot.nominal_count, expected.nominal_count);
  EXPECT_EQ(final_snapshot.majority_count, expected.majority_count);
  ASSERT_EQ(final_snapshot.estimates.size(), expected.estimates.size());
  for (size_t i = 0; i < expected.estimates.size(); ++i) {
    EXPECT_EQ(final_snapshot.estimates[i].total_errors,
              expected.estimates[i].total_errors)
        << kTallyPanel[i];
    EXPECT_EQ(final_snapshot.estimates[i].undetected_errors,
              expected.estimates[i].undetected_errors)
        << kTallyPanel[i];
    EXPECT_EQ(final_snapshot.estimates[i].quality_score,
              expected.estimates[i].quality_score)
        << kTallyPanel[i];
  }
}

/// Telemetry fold under TSan: writers hammer a shared counter + histogram
/// while readers continuously fold them and Collect() the whole registry —
/// the scrape-during-ingest pattern. The relaxed sharded cells must be
/// data-race-free and lose nothing once the writers join.
TEST(EngineStressTest, TelemetryFoldUnderConcurrentWriters) {
  constexpr size_t kWriters = 4;
  constexpr size_t kOpsPerWriter = 50000;

  telemetry::MetricsRegistry registry;
  telemetry::Counter* counter = registry.GetCounter("stress_ops_total");
  telemetry::Histogram* histogram = registry.GetHistogram("stress_latency");
  telemetry::Gauge* gauge = registry.GetGauge("stress_gauge");

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (size_t i = 0; i < kOpsPerWriter; ++i) {
        counter->Increment();
        histogram->Record((w * kOpsPerWriter + i) % 8192);
        if ((i & 1023) == 0) gauge->Set(static_cast<double>(i));
      }
    });
  }
  threads.emplace_back([&] {
    uint64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      // Folds may run concurrently with writers: totals are monotone and
      // the histogram's bucket sum always equals its count.
      uint64_t count = counter->Value();
      ASSERT_GE(count, last_count);
      last_count = count;
      telemetry::HistogramSnapshot snap = histogram->Snapshot();
      uint64_t bucket_sum = 0;
      for (uint64_t bucket : snap.buckets) bucket_sum += bucket;
      ASSERT_EQ(bucket_sum, snap.count);
      telemetry::MetricsRegistry::Collection collection = registry.Collect();
      ASSERT_EQ(collection.counters.size(), 1u);
      ASSERT_EQ(collection.histograms.size(), 1u);
    }
  });
  for (size_t w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(counter->Value(), kWriters * kOpsPerWriter);
  EXPECT_EQ(histogram->Snapshot().count, kWriters * kOpsPerWriter);
}

/// RefreshTelemetry racing open/close churn: the roll-up walk must count
/// each live session exactly once (never crash, never negative) while the
/// session set changes underneath it, and must drain to zero when the churn
/// stops and every session is gone.
TEST(EngineStressTest, RefreshTelemetryDuringSessionChurn) {
  constexpr size_t kChurnThreads = 3;
  constexpr size_t kCyclesPerThread = 120;
  const std::vector<std::string> kTallyPanel = {"chao92", "voting"};

  DqmEngine engine(DqmEngine::Options{.num_shards = 4});
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kChurnThreads; ++t) {
    threads.emplace_back([&engine, &kTallyPanel, t] {
      for (size_t cycle = 0; cycle < kCyclesPerThread; ++cycle) {
        std::string name =
            "churn-" + std::to_string(t) + "-" + std::to_string(cycle % 8);
        Result<std::shared_ptr<EstimationSession>> session = engine.OpenSession(
            name, kItems, std::span<const std::string>(kTallyPanel));
        ASSERT_TRUE(session.ok()) << session.status().ToString();
        ASSERT_TRUE((*session)->AddVotes(MakeBatch(t, cycle)).ok());
        ASSERT_GT((*session)->RetainedBytes(), 0u);
        ASSERT_TRUE(engine.CloseSession(name).ok());
      }
    });
  }
  threads.emplace_back([&engine, &done] {
    while (!done.load(std::memory_order_acquire)) {
      engine.RefreshTelemetry();
    }
  });
  for (size_t t = 0; t < kChurnThreads; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  threads.back().join();

  // All churn sessions closed: the final refresh returns both gauges to 0.
  EXPECT_EQ(engine.num_sessions(), 0u);
  engine.RefreshTelemetry();
  telemetry::MetricsRegistry::Collection collection =
      telemetry::MetricsRegistry::Global().Collect();
  for (const auto& gauge : collection.gauges) {
    if (gauge.name == "dqm_engine_sessions_open" ||
        gauge.name == "dqm_engine_retained_bytes") {
      EXPECT_EQ(gauge.value, 0.0) << gauge.name;
    }
  }
}

TEST(EngineStressTest, LockOrderCheckerCatchesDeliberateInversion) {
  // The serving hierarchy is engine-shard < session < stripe < telemetry: a
  // session callback that re-entered the engine registry (shard rank) while
  // its own session lock was held would deadlock against CloseSession, which
  // nests the other way. Debug builds must catch exactly that inversion at
  // the acquisition site — with a report, not a hang — before the lock
  // blocks. Release builds compile the checker out; the CI TSan job runs the
  // Debug tree where this bites.
  if (!Mutex::OrderCheckingEnabled()) {
    GTEST_SKIP() << "lock-order checker compiled out (Release build)";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex shard(LockRank::kEngineShard, "engine-shard");
  Mutex session(LockRank::kSession, "session");
  EXPECT_DEATH(
      {
        MutexLock holding_session(session);
        MutexLock reentering_registry(shard);  // rank 100 under rank 200
      },
      "lock order inversion");
}

}  // namespace
}  // namespace dqm::engine
