// TSan regression test for the engine's concurrency contract: sessions are
// opened, written, queried, swept (QueryAll) and closed from many threads
// at once — across shards — while readers continuously assert that every
// seqlock snapshot is *internally consistent*: all fields from one
// committed batch, scalar mirrors matching row 0, versions monotone,
// counts within bounds. Run under -DDQM_SANITIZE=thread this pins the
// SnapshotCell protocol and the shard locking; in a plain build it still
// catches torn or stale-mixed snapshots by value.

#include "engine/engine.h"

#include <atomic>
#include <cmath>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "crowd/vote.h"

namespace dqm::engine {
namespace {

using crowd::Vote;
using crowd::VoteEvent;

constexpr size_t kItems = 64;
constexpr size_t kBatchSize = 8;
constexpr size_t kBatchesPerWriter = 150;
const std::vector<std::string> kPanel = {"switch", "chao92", "voting",
                                         "nominal"};

/// Asserts every internal-consistency invariant a snapshot must satisfy
/// regardless of when it was taken.
void CheckSnapshotInvariants(const Snapshot& snapshot, uint64_t min_version,
                             const char* context) {
  ASSERT_EQ(snapshot.estimates.size(), kPanel.size()) << context;
  // One committed batch = kBatchSize votes: version and vote count move in
  // lockstep, so a mixed read of the two fields is detectable.
  ASSERT_EQ(snapshot.num_votes, snapshot.version * kBatchSize) << context;
  ASSERT_GE(snapshot.version, min_version) << context;
  ASSERT_EQ(snapshot.num_items, kItems) << context;
  ASSERT_LE(snapshot.majority_count, snapshot.nominal_count) << context;
  ASSERT_LE(snapshot.nominal_count, kItems) << context;
  // Scalar header mirrors row 0 (the primary estimator) exactly.
  ASSERT_EQ(snapshot.estimated_total_errors,
            snapshot.estimates.front().total_errors)
      << context;
  ASSERT_EQ(snapshot.estimated_undetected_errors,
            snapshot.estimates.front().undetected_errors)
      << context;
  ASSERT_EQ(snapshot.quality_score, snapshot.estimates.front().quality_score)
      << context;
  for (const EstimatorEstimate& row : snapshot.estimates) {
    ASSERT_TRUE(std::isfinite(row.total_errors)) << context;
    ASSERT_GE(row.total_errors, 0.0) << context;
    ASSERT_GE(row.quality_score, 0.0) << context;
    ASSERT_LE(row.quality_score, 1.0) << context;
  }
}

/// Deterministic per-writer vote batch; contents don't matter, validity
/// does.
std::vector<VoteEvent> MakeBatch(size_t writer, size_t batch) {
  std::vector<VoteEvent> votes;
  votes.reserve(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    auto item = static_cast<uint32_t>((writer * 31 + batch * 7 + i * 3) %
                                      kItems);
    votes.push_back(VoteEvent{static_cast<uint32_t>(batch),
                              static_cast<uint32_t>(writer), item,
                              (writer + batch + i) % 3 == 0 ? Vote::kClean
                                                            : Vote::kDirty});
  }
  return votes;
}

TEST(EngineStressTest, ConcurrentOpenAddVotesQueryCloseStaysConsistent) {
  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 2;
  constexpr size_t kChurnCycles = 200;

  DqmEngine engine(DqmEngine::Options{.num_shards = 4});
  for (size_t w = 0; w < kWriters; ++w) {
    ASSERT_TRUE(engine
                    .OpenSession("stable-" + std::to_string(w), kItems,
                                 std::span<const std::string>(kPanel))
                    .ok());
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;

  // Writers: batched ingest into their own session (one producer per
  // session, the supported pattern).
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&engine, w] {
      std::string name = "stable-" + std::to_string(w);
      for (size_t b = 0; b < kBatchesPerWriter; ++b) {
        std::vector<VoteEvent> batch = MakeBatch(w, b);
        ASSERT_TRUE(engine.Ingest(name, batch).ok());
      }
    });
  }

  // Readers: hammer snapshots of every stable session (by-name queries and
  // handle polling) plus full QueryAll sweeps, asserting consistency and
  // per-session version monotonicity the whole time.
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&engine, &done] {
      std::vector<uint64_t> last_version(kWriters, 0);
      while (!done.load(std::memory_order_acquire)) {
        for (size_t w = 0; w < kWriters; ++w) {
          Result<Snapshot> snapshot =
              engine.Query("stable-" + std::to_string(w));
          ASSERT_TRUE(snapshot.ok());
          CheckSnapshotInvariants(*snapshot, last_version[w], "Query");
          last_version[w] = snapshot->version;
        }
        for (const auto& [name, snapshot] : engine.QueryAll()) {
          if (name.rfind("stable-", 0) != 0) continue;  // churn session
          size_t w = static_cast<size_t>(name.back() - '0');
          CheckSnapshotInvariants(snapshot, last_version[w], "QueryAll");
          last_version[w] = snapshot.version;
        }
      }
    });
  }

  // Churn: open/ingest/query/close short-lived sessions across the shard
  // space while the stable sessions are being written and read.
  threads.emplace_back([&engine] {
    for (size_t cycle = 0; cycle < kChurnCycles; ++cycle) {
      std::string name = "churn-" + std::to_string(cycle % 16);
      Result<std::shared_ptr<EstimationSession>> session =
          engine.OpenSession(name, kItems,
                             std::span<const std::string>(kPanel));
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      std::vector<VoteEvent> batch = MakeBatch(99, cycle);
      ASSERT_TRUE((*session)->AddVotes(batch).ok());
      Snapshot snapshot = (*session)->snapshot();
      ASSERT_EQ(snapshot.version, 1u);
      ASSERT_EQ(snapshot.num_votes, kBatchSize);
      ASSERT_TRUE(engine.CloseSession(name).ok());
      // The handle stays usable after close (documented contract).
      ASSERT_TRUE((*session)->AddVotes(batch).ok());
      ASSERT_EQ((*session)->snapshot().version, 2u);
    }
  });

  for (size_t w = 0; w < kWriters; ++w) {
    threads[w].join();  // writers finish first
  }
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) {
    threads[t].join();
  }

  // Final state: every stable session saw exactly its writer's batches.
  for (size_t w = 0; w < kWriters; ++w) {
    Result<Snapshot> snapshot = engine.Query("stable-" + std::to_string(w));
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(snapshot->version, kBatchesPerWriter);
    EXPECT_EQ(snapshot->num_votes, kBatchesPerWriter * kBatchSize);
    CheckSnapshotInvariants(*snapshot, kBatchesPerWriter, "final");
  }
  EXPECT_EQ(engine.num_sessions(), kWriters);
}

}  // namespace
}  // namespace dqm::engine
