#include "estimators/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "estimators/chao92.h"

namespace dqm::estimators {
namespace {

TEST(ParseEstimatorSpecTest, NameOnly) {
  Result<EstimatorSpec> spec = ParseEstimatorSpec("switch");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "switch");
  EXPECT_TRUE(spec->params.empty());
  EXPECT_EQ(spec->ToString(), "switch");
}

TEST(ParseEstimatorSpecTest, ParamsAndCaseFolding) {
  Result<EstimatorSpec> spec =
      ParseEstimatorSpec("  VChao92?Shift=2&SKEW=true ");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "vchao92");
  ASSERT_EQ(spec->params.size(), 2u);
  EXPECT_EQ(spec->params[0].first, "shift");
  EXPECT_EQ(spec->params[0].second, "2");
  EXPECT_EQ(spec->params[1].first, "skew");
  // Values keep their spelling (only keys/names fold).
  EXPECT_EQ(spec->params[1].second, "true");
  EXPECT_EQ(spec->ToString(), "vchao92?shift=2&skew=true");
}

TEST(ParseEstimatorSpecTest, Rejections) {
  EXPECT_EQ(ParseEstimatorSpec("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseEstimatorSpec("?shift=2").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseEstimatorSpec("switch?tau").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseEstimatorSpec("switch?=5").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseEstimatorSpec("switch?tau=5&tau=9").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SplitSpecListTest, SplitsAndTrims) {
  EXPECT_EQ(SplitSpecList("switch, vchao92?shift=2 ,,voting"),
            (std::vector<std::string>{"switch", "vchao92?shift=2", "voting"}));
  EXPECT_TRUE(SplitSpecList(" , ").empty());
}

TEST(EstimatorRegistryTest, RoundTripsEveryBuiltinName) {
  // spec string -> factory -> estimator -> display name, for every
  // registered estimator.
  const std::map<std::string, std::string> expected_display = {
      {"switch", "SWITCH"},         {"chao92", "CHAO92"},
      {"good-turing", "GOOD-TURING"}, {"vchao92", "V-CHAO"},
      {"voting", "VOTING"},         {"nominal", "NOMINAL"},
      {"chao1", "CHAO1"},           {"jackknife1", "JACKKNIFE1"},
      {"em-voting", "EM-VOTING"},
  };
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  std::vector<std::string> names = registry.Names();
  EXPECT_EQ(names.size(), expected_display.size());
  for (const std::string& name : names) {
    ASSERT_TRUE(expected_display.contains(name)) << name;
    Result<std::unique_ptr<TotalErrorEstimator>> estimator =
        registry.Create(name, 20);
    ASSERT_TRUE(estimator.ok()) << estimator.status().ToString();
    EXPECT_EQ((*estimator)->name(), expected_display.at(name)) << name;
    // The FactoryFor bridge produces the same estimator.
    Result<EstimatorFactory> factory = registry.FactoryFor(name);
    ASSERT_TRUE(factory.ok()) << factory.status().ToString();
    EXPECT_EQ((*factory)(20)->name(), expected_display.at(name)) << name;
  }
}

TEST(EstimatorRegistryTest, AliasesResolveToCanonicalEntries) {
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  EXPECT_TRUE(registry.Contains("goodturing"));
  EXPECT_TRUE(registry.Contains("v-chao"));
  EXPECT_TRUE(registry.Contains("jackknife"));
  EXPECT_EQ((*registry.Create("goodturing", 10))->name(), "GOOD-TURING");
  // Aliases are reachable but not listed twice.
  std::vector<std::string> names = registry.Names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "goodturing"), 0);
}

TEST(EstimatorRegistryTest, UnknownNameIsNotFound) {
  Result<std::unique_ptr<TotalErrorEstimator>> estimator =
      EstimatorRegistry::Global().Create("chao93", 10);
  EXPECT_EQ(estimator.status().code(), StatusCode::kNotFound);
  // The message lists what *is* registered, for discoverability.
  EXPECT_NE(estimator.status().message().find("switch"), std::string::npos);
}

TEST(EstimatorRegistryTest, UnknownAndMalformedParamsAreInvalidArgument) {
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  EXPECT_EQ(registry.Create("switch?winow=9", 10).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Create("voting?shift=1", 10).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Create("vchao92?shift=-1", 10).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Create("vchao92?shift=two", 10).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Create("switch?two_sided=perhaps", 10).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Create("switch?tie_policy=bogus", 10).status().code(),
            StatusCode::kInvalidArgument);
  // tau is an alias of trend_window; setting both is ambiguous.
  EXPECT_EQ(registry.Create("switch?tau=5&trend_window=9", 10).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(registry.Create("switch?tau=5", 10).ok());
  // FactoryFor validates eagerly, not at first construction.
  EXPECT_EQ(registry.FactoryFor("switch?winow=9").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.FactoryFor("chao93").status().code(),
            StatusCode::kNotFound);
}

TEST(EstimatorRegistryTest, SpecParamsConfigureTheEstimator) {
  // vchao92?shift=2 must behave exactly like a directly constructed
  // VChao92Estimator with shift 2.
  EstimatorRegistry& registry = EstimatorRegistry::Global();
  std::unique_ptr<TotalErrorEstimator> by_spec =
      registry.Create("vchao92?shift=2", 50).value();
  VChao92Estimator direct(50, 2);
  for (uint32_t task = 0; task < 30; ++task) {
    for (uint32_t i = 0; i < 5; ++i) {
      crowd::VoteEvent event{task, task, (task * 3 + i) % 50,
                             i % 3 == 0 ? crowd::Vote::kDirty
                                        : crowd::Vote::kClean};
      by_spec->Observe(event);
      direct.Observe(event);
    }
  }
  EXPECT_EQ(by_spec->Estimate(), direct.Estimate());
}

/// A user-provided estimator: the registry is open, not a baked-in list.
class ConstantEstimator : public TotalErrorEstimator {
 public:
  explicit ConstantEstimator(double value) : value_(value) {}
  void Observe(const crowd::VoteEvent&) override {}
  double Estimate() const override { return value_; }
  std::string_view name() const override { return "CONSTANT"; }

 private:
  double value_;
};

TEST(EstimatorRegistryTest, OpenForUserEstimators) {
  EstimatorRegistry registry;
  Status status = registry.Register(EstimatorRegistry::Entry{
      .name = "constant",
      .display_name = "CONSTANT",
      .help = "fixed answer; params: value=<float>",
      .factory = [](const EstimatorEnv&, const EstimatorSpec& spec)
          -> Result<std::unique_ptr<TotalErrorEstimator>> {
        SpecParamReader params(spec);
        DQM_ASSIGN_OR_RETURN(double value, params.GetDouble("value", 0.0));
        DQM_RETURN_NOT_OK(params.VerifyAllConsumed());
        return std::unique_ptr<TotalErrorEstimator>(
            std::make_unique<ConstantEstimator>(value));
      }});
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ((*registry.Create("constant?value=42", 10))->Estimate(), 42.0);
  // Duplicate registrations and aliases to nowhere are rejected.
  EXPECT_EQ(registry
                .Register(EstimatorRegistry::Entry{
                    .name = "constant",
                    .factory = [](const EstimatorEnv&, const EstimatorSpec&)
                        -> Result<std::unique_ptr<TotalErrorEstimator>> {
                      return Status::Internal("unreachable");
                    }})
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.RegisterAlias("c", "missing").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.Register(EstimatorRegistry::Entry{}).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dqm::estimators
