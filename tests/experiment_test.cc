#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/dqm.h"

namespace dqm::core {
namespace {

using crowd::Vote;
using crowd::VoteEvent;

crowd::ResponseLog MakeLog() {
  crowd::ResponseLog log(6);
  // Three tasks with distinct contents.
  log.Append({0, 0, 0, Vote::kDirty});
  log.Append({0, 0, 1, Vote::kClean});
  log.Append({1, 1, 2, Vote::kDirty});
  log.Append({1, 1, 3, Vote::kDirty});
  log.Append({2, 2, 4, Vote::kClean});
  log.Append({2, 2, 5, Vote::kDirty});
  return log;
}

TEST(PermuteTasksTest, PreservesEventsUpToTaskRenumbering) {
  crowd::ResponseLog log = MakeLog();
  crowd::ResponseLog permuted = PermuteTasks(log, 99);
  EXPECT_EQ(permuted.num_events(), log.num_events());
  EXPECT_EQ(permuted.num_tasks(), log.num_tasks());
  EXPECT_EQ(permuted.num_items(), log.num_items());
  // Per-item tallies unchanged.
  for (size_t i = 0; i < log.num_items(); ++i) {
    EXPECT_EQ(permuted.positive_votes(i), log.positive_votes(i));
    EXPECT_EQ(permuted.total_votes(i), log.total_votes(i));
  }
  // Task contents move together: group events by task and compare the
  // multiset of task signatures (item, vote sequences).
  auto signatures = [](const crowd::ResponseLog& l) {
    std::map<uint32_t, std::vector<std::pair<uint32_t, Vote>>> groups;
    for (const VoteEvent& e : l.events()) {
      groups[e.task].push_back({e.item, e.vote});
    }
    std::vector<std::vector<std::pair<uint32_t, Vote>>> sigs;
    for (auto& [task, sig] : groups) sigs.push_back(sig);
    std::sort(sigs.begin(), sigs.end());
    return sigs;
  };
  EXPECT_EQ(signatures(log), signatures(permuted));
}

TEST(PermuteTasksTest, TaskIdsAreDense) {
  crowd::ResponseLog permuted = PermuteTasks(MakeLog(), 7);
  std::vector<bool> seen(permuted.num_tasks(), false);
  for (const VoteEvent& e : permuted.events()) {
    ASSERT_LT(e.task, permuted.num_tasks());
    seen[e.task] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(PermuteTasksTest, DifferentSeedsGiveDifferentOrders) {
  crowd::ResponseLog log = MakeLog();
  bool any_different = false;
  crowd::ResponseLog base = PermuteTasks(log, 1);
  for (uint64_t seed = 2; seed < 10; ++seed) {
    crowd::ResponseLog other = PermuteTasks(log, seed);
    for (size_t i = 0; i < base.num_events(); ++i) {
      if (!(base.events()[i] == other.events()[i])) {
        any_different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(SimulateScenarioTest, ProducesExpectedShape) {
  Scenario s = SimulationScenario(0.0, 0.1, 12);
  SimulatedRun run = SimulateScenario(s, 25, 5);
  EXPECT_EQ(run.truth.size(), s.num_items);
  EXPECT_EQ(run.log.num_tasks(), 25u);
  EXPECT_EQ(run.log.num_events(), 25u * 12u);
}

TEST(ExperimentRunnerTest, SeriesShapeAndDeterminism) {
  Scenario s = SimulationScenario(0.01, 0.1, 10);
  SimulatedRun run = SimulateScenario(s, 30, 5);
  ExperimentRunner runner({.permutations = 4, .seed = 11});
  auto factories = std::vector<std::pair<std::string,
                                         estimators::EstimatorFactory>>{
      {"VOTING", MakeEstimatorFactory(Method::kVoting)},
      {"SWITCH", MakeEstimatorFactory(Method::kSwitch)},
  };
  auto results_a = runner.Run(run.log, s.num_items, factories);
  auto results_b = runner.Run(run.log, s.num_items, factories);
  ASSERT_EQ(results_a.size(), 2u);
  EXPECT_EQ(results_a[0].name, "VOTING");
  EXPECT_EQ(results_a[0].mean.size(), 30u);
  EXPECT_EQ(results_a[0].std_dev.size(), 30u);
  // Deterministic for a fixed config.
  EXPECT_EQ(results_a[1].mean, results_b[1].mean);
}

TEST(ExperimentRunnerTest, VotingMeanMatchesUnpermutedFinal) {
  // The final VOTING count is permutation-invariant (it only depends on
  // the tallies), so the mean at the last task equals the direct count and
  // its std-dev is zero.
  Scenario s = SimulationScenario(0.02, 0.2, 10);
  SimulatedRun run = SimulateScenario(s, 40, 9);
  ExperimentRunner runner({.permutations = 5, .seed = 3});
  auto results = runner.Run(
      run.log, s.num_items,
      {{"VOTING", MakeEstimatorFactory(Method::kVoting)}});
  EXPECT_DOUBLE_EQ(results[0].mean.back(),
                   static_cast<double>(run.log.MajorityCount()));
  EXPECT_DOUBLE_EQ(results[0].std_dev.back(), 0.0);
}

TEST(ExperimentRunnerTest, SwitchDiagnosticsShapes) {
  Scenario s = SimulationScenario(0.02, 0.1, 10);
  SimulatedRun run = SimulateScenario(s, 20, 7);
  ExperimentRunner runner({.permutations = 3, .seed = 1});
  estimators::SwitchTotalErrorEstimator::Config config;
  auto diag = runner.RunSwitchDiagnostics(run.log, s.num_items, run.truth,
                                          config);
  EXPECT_EQ(diag.remaining_positive_estimate.mean.size(), 20u);
  EXPECT_EQ(diag.remaining_negative_estimate.mean.size(), 20u);
  EXPECT_EQ(diag.needed_positive_truth.mean.size(), 20u);
  EXPECT_EQ(diag.needed_negative_truth.mean.size(), 20u);
  // Ground-truth needed-positive starts near the full error count (nothing
  // found yet) and declines as coverage grows.
  EXPECT_GT(diag.needed_positive_truth.mean.front(), 90.0);
  EXPECT_LT(diag.needed_positive_truth.mean.back(),
            diag.needed_positive_truth.mean.front());
}

TEST(ExperimentRunnerTest, RunWorkloadScoresEverySpecAgainstTruth) {
  ExperimentRunner::Config config;
  config.seed = 5;
  ExperimentRunner runner(config);
  std::vector<std::string> specs = {"switch", "chao92", "voting"};
  Result<ExperimentRunner::WorkloadReport> report = runner.RunWorkload(
      "adversarial?n=120&dirty=25&tasks=80&fraction=0.3", specs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->num_items, 120u);
  EXPECT_EQ(report->num_dirty, 25u);
  EXPECT_GT(report->num_votes, 0u);
  EXPECT_GT(report->num_batches, 0u);
  ASSERT_EQ(report->cells.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(report->cells[i].spec, specs[i]);
    EXPECT_EQ(report->cells[i].abs_error,
              std::abs(report->cells[i].total_errors - 25.0));
  }
  EXPECT_EQ(report->cells[0].name, "SWITCH");

  // Deterministic per runner seed.
  Result<ExperimentRunner::WorkloadReport> again = runner.RunWorkload(
      "adversarial?n=120&dirty=25&tasks=80&fraction=0.3", specs);
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(report->cells[i].total_errors, again->cells[i].total_errors);
  }
}

TEST(ExperimentRunnerTest, RunWorkloadReportsBadSpecsAsErrors) {
  ExperimentRunner runner(ExperimentRunner::Config{});
  std::vector<std::string> specs = {"switch"};
  EXPECT_EQ(runner.RunWorkload("tsunami", specs).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      runner.RunWorkload("drift?walk=-1", specs).status().code(),
      StatusCode::kInvalidArgument);
  std::vector<std::string> bad_estimators = {"chao93"};
  EXPECT_EQ(runner.RunWorkload("benign", bad_estimators).status().code(),
            StatusCode::kNotFound);
}

TEST(SampleCleanMinimumTest, PaperFormula) {
  // 3 workers x S records / (p records per task): S=100, p=10 -> 30 tasks.
  EXPECT_DOUBLE_EQ(SampleCleanMinimumTasks(100, 10), 30.0);
  EXPECT_DOUBLE_EQ(SampleCleanMinimumTasks(1264, 10), 379.2);
  EXPECT_DOUBLE_EQ(SampleCleanMinimumTasks(100, 10, 5), 50.0);
}

}  // namespace
}  // namespace dqm::core
