#include "crowd/dawid_skene.h"

#include <memory>

#include <gtest/gtest.h>

#include "crowd/assignment.h"
#include "crowd/simulator.h"
#include "estimators/em_voting.h"

namespace dqm::crowd {
namespace {

TEST(DawidSkeneTest, EmptyLogGivesPrior) {
  DawidSkene em;
  ResponseLog log(5);
  DawidSkene::Result result = em.Fit(log);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.posterior_dirty.size(), 5u);
  for (double p : result.posterior_dirty) {
    EXPECT_DOUBLE_EQ(p, 0.5);
  }
}

TEST(DawidSkeneTest, UnanimousVotesGiveConfidentPosteriors) {
  ResponseLog log(2);
  for (uint32_t w = 0; w < 5; ++w) {
    log.Append({w, w, 0, Vote::kDirty});
    log.Append({w, w, 1, Vote::kClean});
  }
  DawidSkene em;
  DawidSkene::Result result = em.Fit(log);
  EXPECT_GT(result.posterior_dirty[0], 0.9);
  EXPECT_LT(result.posterior_dirty[1], 0.1);
  EXPECT_EQ(DawidSkene::DirtyCount(result), 1u);
}

TEST(DawidSkeneTest, RecoversWorkerQualities) {
  // Simulate a crowd with one sloppy worker among good ones; EM should
  // assign the sloppy worker visibly lower sensitivity/specificity.
  const size_t num_items = 200;
  std::vector<bool> truth(num_items, false);
  for (size_t i = 0; i < 50; ++i) truth[i] = true;
  ResponseLog log(num_items);
  Rng rng(3);
  WorkerProfile good{0.02, 0.05};
  WorkerProfile sloppy{0.30, 0.40};
  uint32_t task = 0;
  for (uint32_t worker = 0; worker < 6; ++worker) {
    const WorkerProfile& profile = (worker == 5) ? sloppy : good;
    for (uint32_t item = 0; item < num_items; ++item) {
      log.Append({task, worker, item, profile.Answer(truth[item], rng)});
    }
    ++task;
  }
  DawidSkene em;
  DawidSkene::Result result = em.Fit(log);
  // The sloppy worker's estimated rates are clearly worse.
  for (size_t w = 0; w < 5; ++w) {
    EXPECT_GT(result.sensitivity[w], result.sensitivity[5] + 0.1);
    EXPECT_GT(result.specificity[w], result.specificity[5] + 0.1);
  }
  // And the aggregated labels are near-perfect.
  size_t wrong = 0;
  for (size_t i = 0; i < num_items; ++i) {
    if ((result.posterior_dirty[i] > 0.5) != truth[i]) ++wrong;
  }
  EXPECT_LE(wrong, 2u);
  // The prior lands near the true dirty fraction.
  EXPECT_NEAR(result.prior_dirty, 0.25, 0.05);
}

TEST(DawidSkeneTest, BeatsMajorityWithSkewedWorkerQuality) {
  // Three good workers + four random-ish workers: plain majority gets
  // confused, EM downweights the noise.
  const size_t num_items = 300;
  std::vector<bool> truth(num_items, false);
  for (size_t i = 0; i < 60; ++i) truth[i * 5] = true;
  ResponseLog log(num_items);
  Rng rng(17);
  uint32_t task = 0;
  for (uint32_t worker = 0; worker < 7; ++worker) {
    WorkerProfile profile =
        (worker < 3) ? WorkerProfile{0.02, 0.02} : WorkerProfile{0.42, 0.42};
    for (uint32_t item = 0; item < num_items; ++item) {
      log.Append({task, worker, item, profile.Answer(truth[item], rng)});
    }
    ++task;
  }
  DawidSkene em;
  DawidSkene::Result result = em.Fit(log);
  size_t em_wrong = 0, majority_wrong = 0;
  for (size_t i = 0; i < num_items; ++i) {
    if ((result.posterior_dirty[i] > 0.5) != truth[i]) ++em_wrong;
    if (log.MajorityDirty(i) != truth[i]) ++majority_wrong;
  }
  EXPECT_LT(em_wrong, majority_wrong);
}

TEST(DawidSkeneTest, ConvergesWithinIterationBudget) {
  ResponseLog log(10);
  Rng rng(5);
  for (uint32_t e = 0; e < 200; ++e) {
    log.Append({e / 10, e / 10, static_cast<uint32_t>(rng.UniformIndex(10)),
                rng.Bernoulli(0.4) ? Vote::kDirty : Vote::kClean});
  }
  DawidSkene::Options options;
  options.max_iterations = 200;
  DawidSkene em(options);
  DawidSkene::Result result = em.Fit(log);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 200u);
}

TEST(DawidSkeneTest, StripedLogFitTracksSerialFit) {
  // The same votes through a concurrently ingested (striped) log: the count
  // matrix is sharded across stripe blocks, so EM visits pairs in a
  // different slot order — float summation order changes, the fixpoint does
  // not. The posteriors must agree to numerical precision.
  constexpr size_t kItems = 60;
  ResponseLog serial(kItems, RetentionPolicy::kCounts);
  ResponseLog striped(kItems, RetentionPolicy::kCounts);
  striped.EnableConcurrentIngest(4, /*maintain_pair_counts=*/true);
  Rng rng(23);
  std::vector<VoteEvent> events;
  for (uint32_t e = 0; e < 1500; ++e) {
    events.push_back({e / 15, static_cast<uint32_t>(rng.UniformIndex(9)),
                      static_cast<uint32_t>(rng.UniformIndex(kItems)),
                      rng.Bernoulli(0.35) ? Vote::kDirty : Vote::kClean});
  }
  for (const VoteEvent& event : events) serial.Append(event);
  striped.AppendConcurrent(events);
  { auto pause = striped.PauseAndReconcile(); }

  DawidSkene em;
  DawidSkene::Result serial_fit = em.Fit(serial);
  DawidSkene::Result striped_fit = em.Fit(striped);
  ASSERT_EQ(striped_fit.posterior_dirty.size(),
            serial_fit.posterior_dirty.size());
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_NEAR(striped_fit.posterior_dirty[i], serial_fit.posterior_dirty[i],
                1e-6)
        << "item " << i;
  }
  EXPECT_EQ(DawidSkene::DirtyCount(striped_fit),
            DawidSkene::DirtyCount(serial_fit));
}

TEST(EmVotingEstimatorTest, MatchesDirectFit) {
  estimators::EmVotingEstimator estimator(4);
  ResponseLog log(4);
  for (uint32_t w = 0; w < 4; ++w) {
    for (uint32_t item = 0; item < 4; ++item) {
      Vote vote = (item < 2) ? Vote::kDirty : Vote::kClean;
      VoteEvent event{w, w, item, vote};
      estimator.Observe(event);
      log.Append(event);
    }
  }
  DawidSkene em;
  EXPECT_DOUBLE_EQ(estimator.Estimate(),
                   static_cast<double>(DawidSkene::DirtyCount(em.Fit(log))));
  EXPECT_EQ(estimator.name(), "EM-VOTING");
}

TEST(EmVotingEstimatorTest, CacheInvalidatesOnNewVotes) {
  estimators::EmVotingEstimator estimator(2);
  estimator.Observe({0, 0, 0, Vote::kDirty});
  estimator.Observe({0, 0, 1, Vote::kClean});
  double first = estimator.Estimate();
  EXPECT_DOUBLE_EQ(first, 1.0);
  // Outvote item 0 with clean votes; the estimate must drop.
  for (uint32_t w = 1; w < 6; ++w) {
    estimator.Observe({w, w, 0, Vote::kClean});
    estimator.Observe({w, w, 1, Vote::kClean});
  }
  EXPECT_DOUBLE_EQ(estimator.Estimate(), 0.0);
}

}  // namespace
}  // namespace dqm::crowd
