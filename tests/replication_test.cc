// End-to-end drills for the replicated hot-standby pipeline
// (engine/replication.h): checkpoint/WAL-segment shipping, standby replay,
// failover with fencing, and live session migration.
//
// The invariants, per drill:
//
//  - no lost acknowledgement: a vote whose Ingest returned OK on the
//    primary is either applied on the promoted standby or was never
//    acknowledged (the ship hook runs before the commit returns);
//  - durable-prefix parity: the standby's state is bit-identical (in every
//    count-derived estimate) to a reference session fed exactly the prefix
//    the standby applied — a segment is applied whole or not at all;
//  - damage is detected, never absorbed: torn, gapped, or overlapping
//    segments flag divergence and leave the applied state untouched until
//    a fresh checkpoint heals the stream;
//  - fencing is final: once a standby promotes, the old primary's pushes
//    bounce off the raised fence and a restarted primary refuses to ship.
//
// The failover matrix crosses every kill point (segment-ship write/fsync/
// rename, WAL fsync — real _Exit(77) crash failpoints) with every workload
// family, mirroring the chaos harness next door.

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "crowd/io.h"
#include "crowd/wal.h"
#include "engine/durability.h"
#include "engine/engine.h"
#include "engine/replication.h"
#include "engine/session.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "workload/workload.h"

namespace dqm::engine {
namespace {

namespace fs = std::filesystem;

using crowd::VoteEvent;

std::string ScratchDir(const std::string& tag) {
  fs::path dir = fs::path(testing::TempDir()) / ("dqm_repl_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Count-derived estimator panel (checkpointable: no SWITCH).
const std::vector<std::string>& Panel() {
  static const std::vector<std::string> panel = {
      "chao92", "good-turing", "vchao92?shift=2", "chao1", "voting",
      "nominal"};
  return panel;
}

std::vector<std::string> FamilySpecs() {
  std::vector<std::string> specs;
  for (const std::string& name :
       workload::WorkloadRegistry::Global().Names()) {
    specs.push_back(name + "?n=80&dirty=12&tasks=50&ipt=8&batch=37");
  }
  return specs;
}

std::vector<VoteEvent> GenerateVotes(const std::string& spec, uint64_t seed,
                                     size_t* num_items) {
  auto generator = workload::WorkloadRegistry::Global().Create(spec);
  EXPECT_TRUE(generator.ok()) << generator.status().ToString();
  workload::GeneratedWorkload run = (*generator)->Generate(seed);
  *num_items = run.log.num_items();
  return std::vector<VoteEvent>(run.log.events().begin(),
                                run.log.events().end());
}

void IngestRange(DqmEngine& engine, const std::string& name,
                 const std::vector<VoteEvent>& votes, size_t begin, size_t end,
                 size_t batch) {
  for (; begin < end; begin += batch) {
    size_t size = std::min(batch, end - begin);
    ASSERT_TRUE(
        engine.Ingest(name, std::span<const VoteEvent>(&votes[begin], size))
            .ok())
        << "acknowledgement lost at vote " << begin;
  }
}

void ExpectWithinEmTolerance(double a, double b, const std::string& context) {
  double tolerance = std::max(2.0, 0.02 * std::abs(b));
  EXPECT_LE(std::abs(a - b), tolerance) << context << ": " << a << " vs " << b;
}

void ExpectSnapshotParity(const Snapshot& standby, const Snapshot& reference,
                          const std::string& context) {
  EXPECT_EQ(standby.num_votes, reference.num_votes) << context;
  EXPECT_EQ(standby.majority_count, reference.majority_count) << context;
  EXPECT_EQ(standby.nominal_count, reference.nominal_count) << context;
  ASSERT_EQ(standby.estimates.size(), reference.estimates.size()) << context;
  for (size_t i = 0; i < standby.estimates.size(); ++i) {
    const std::string row = context + ", " + reference.estimates[i].name;
    if (reference.estimates[i].name == "em-voting") {
      ExpectWithinEmTolerance(standby.estimates[i].total_errors,
                              reference.estimates[i].total_errors, row);
    } else {
      EXPECT_EQ(standby.estimates[i].total_errors,
                reference.estimates[i].total_errors)
          << row;
      EXPECT_EQ(standby.estimates[i].quality_score,
                reference.estimates[i].quality_score)
          << row;
    }
  }
}

/// Checks standby parity against a fresh in-memory session fed exactly
/// `prefix` votes — the durable-prefix guarantee in executable form.
void ExpectPrefixParity(DqmEngine& standby_engine, const std::string& name,
                        const std::vector<VoteEvent>& votes, uint64_t prefix,
                        size_t num_items, const std::string& context) {
  ASSERT_LE(prefix, votes.size()) << context;
  SessionOptions reference_options;
  reference_options.cadence = PublishCadence::kEveryNVotes;
  reference_options.publish_every_votes = 128;
  DqmEngine reference_engine;
  auto reference = reference_engine.OpenSession(
      "ref", num_items, std::span<const std::string>(Panel()),
      reference_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  IngestRange(reference_engine, "ref", votes, 0,
              static_cast<size_t>(prefix), 37);
  (*reference)->Publish();
  auto snapshot = standby_engine.Query(name);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ExpectSnapshotParity(*snapshot, (*reference)->snapshot(), context);
}

SessionOptions DurableOptions(const std::string& root,
                              uint32_t group_commit_votes,
                              uint64_t checkpoint_every_votes) {
  SessionOptions options;
  options.cadence = PublishCadence::kEveryNVotes;
  options.publish_every_votes = 128;
  options.durability_dir = root;
  options.wal_group_commit_votes = group_commit_votes;
  options.checkpoint_every_votes = checkpoint_every_votes;
  return options;
}

/// Segment artifact names of the highest generation on the transport,
/// sorted (lexicographic = numeric, so this is sequence order).
std::vector<std::string> SegmentsOfMaxGeneration(ReplicationTransport& t) {
  auto list = t.List();
  EXPECT_TRUE(list.ok()) << list.status().ToString();
  uint64_t max_gen = 0;
  for (const std::string& name : *list) {
    ArtifactId id = ParseArtifactName(name);
    if (id.kind == ArtifactId::Kind::kSegment)
      max_gen = std::max(max_gen, id.generation);
  }
  std::vector<std::string> segments;
  for (const std::string& name : *list) {
    ArtifactId id = ParseArtifactName(name);
    if (id.kind == ArtifactId::Kind::kSegment && id.generation == max_gen)
      segments.push_back(name);
  }
  return segments;
}

// ---------------------------------------------------------------------------
// Transient-errno classification (the retry layer's gate; EWOULDBLOCK may
// or may not alias EAGAIN depending on the platform — both spellings must
// classify as transient either way).
// ---------------------------------------------------------------------------

TEST(TransientErrnoTest, ClassifiesRetryableErrnos) {
  EXPECT_TRUE(crowd::io::IsTransientErrno(EINTR));
  EXPECT_TRUE(crowd::io::IsTransientErrno(EAGAIN));
#if defined(EWOULDBLOCK)
  EXPECT_TRUE(crowd::io::IsTransientErrno(EWOULDBLOCK));
#endif
  EXPECT_FALSE(crowd::io::IsTransientErrno(EIO));
  EXPECT_FALSE(crowd::io::IsTransientErrno(ENOSPC));
  EXPECT_FALSE(crowd::io::IsTransientErrno(EBADF));
  EXPECT_FALSE(crowd::io::IsTransientErrno(0));
}

// ---------------------------------------------------------------------------
// Artifact naming.
// ---------------------------------------------------------------------------

TEST(ArtifactNameTest, RoundTripsAndSortsNumerically) {
  EXPECT_EQ(ParseArtifactName(kManifestArtifact).kind,
            ArtifactId::Kind::kManifest);

  ArtifactId ckpt = ParseArtifactName(CheckpointArtifactName(7));
  EXPECT_EQ(ckpt.kind, ArtifactId::Kind::kCheckpoint);
  EXPECT_EQ(ckpt.generation, 7u);

  ArtifactId seg = ParseArtifactName(SegmentArtifactName(3, 42));
  EXPECT_EQ(seg.kind, ArtifactId::Kind::kSegment);
  EXPECT_EQ(seg.generation, 3u);
  EXPECT_EQ(seg.seq, 42u);

  // Zero padding: lexicographic order equals numeric order.
  EXPECT_LT(SegmentArtifactName(2, 9), SegmentArtifactName(2, 10));
  EXPECT_LT(SegmentArtifactName(2, 10), SegmentArtifactName(10, 1));
  EXPECT_LT(CheckpointArtifactName(9), CheckpointArtifactName(11));

  EXPECT_EQ(ParseArtifactName("FENCE").kind, ArtifactId::Kind::kOther);
  EXPECT_EQ(ParseArtifactName("seg_junk.bin").kind, ArtifactId::Kind::kOther);
  EXPECT_EQ(ParseArtifactName("").kind, ArtifactId::Kind::kOther);
}

// ---------------------------------------------------------------------------
// LocalDirTransport: artifact round trips and the fence.
// ---------------------------------------------------------------------------

TEST(LocalDirTransportTest, PutGetListDeleteAndFence) {
  std::string dir = ScratchDir("transport");
  auto opened = LocalDirTransport::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  LocalDirTransport& t = **opened;

  auto fence = t.Fence();
  ASSERT_TRUE(fence.ok());
  EXPECT_EQ(*fence, 0u) << "fresh transport must start unfenced";

  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(t.Put("a.bin", payload, 1).ok());
  auto got = t.Get("a.bin");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);

  auto list = t.List();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, std::vector<std::string>{"a.bin"})
      << "FENCE and *.tmp must not appear in listings";

  // The fence is monotonic and rejects stale tokens.
  ASSERT_TRUE(t.RaiseFence(5).ok());
  Status stale = t.Put("b.bin", payload, 4);
  EXPECT_FALSE(stale.ok());
  EXPECT_TRUE(t.Put("b.bin", payload, 5).ok());
  ASSERT_TRUE(t.RaiseFence(3).ok());  // lowering is a no-op
  fence = t.Fence();
  ASSERT_TRUE(fence.ok());
  EXPECT_EQ(*fence, 5u);

  EXPECT_TRUE(t.Delete("b.bin").ok());
  EXPECT_TRUE(t.Delete("b.bin").ok()) << "deleting a missing artifact is OK";

  // The fence survives reopening (it is a durable file, not handle state).
  auto reopened = LocalDirTransport::Open(dir);
  ASSERT_TRUE(reopened.ok());
  fence = (*reopened)->Fence();
  ASSERT_TRUE(fence.ok());
  EXPECT_EQ(*fence, 5u);
}

// ---------------------------------------------------------------------------
// The healthy pipeline: primary ships, standby tracks, lag drains, promote
// serves — across every workload family.
// ---------------------------------------------------------------------------

TEST(ReplicationPipelineTest, StandbyTracksPrimaryAcrossFamilies) {
  int family = 0;
  for (const std::string& spec : FamilySpecs()) {
    SCOPED_TRACE(spec);
    size_t num_items = 0;
    std::vector<VoteEvent> votes =
        GenerateVotes(spec, 0x5EED + family, &num_items);
    ASSERT_GE(votes.size(), 300u);

    const std::string tag = StrFormat("pipe_f%d", family++);
    std::string primary_root = ScratchDir(tag + "_primary");
    std::string ship_dir = ScratchDir(tag + "_ship");
    std::string standby_root = ScratchDir(tag + "_standby");

    DqmEngine primary;
    auto session = primary.OpenSession(
        "s", num_items, std::span<const std::string>(Panel()),
        DurableOptions(primary_root, 64, 150));
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    auto transport = LocalDirTransport::Open(ship_dir);
    ASSERT_TRUE(transport.ok()) << transport.status().ToString();
    std::shared_ptr<ReplicationTransport> shared = std::move(*transport);
    auto replicator = SessionReplicator::Start(*session, shared);
    ASSERT_TRUE(replicator.ok()) << replicator.status().ToString();

    DqmEngine standby_engine;
    StandbyApplier::Options standby_options;
    standby_options.durability_dir = standby_root;
    auto applier =
        StandbyApplier::Open(standby_engine, shared, standby_options);
    ASSERT_TRUE(applier.ok()) << applier.status().ToString();

    // Interleave ingest and replay so the standby crosses checkpoint
    // rebases mid-stream, not just at the end.
    size_t polls = 0;
    for (size_t begin = 0; begin < votes.size(); begin += 37) {
      size_t size = std::min<size_t>(37, votes.size() - begin);
      ASSERT_TRUE(
          primary.Ingest("s", std::span<const VoteEvent>(&votes[begin], size))
              .ok());
      if (++polls % 3 == 0) {
        ASSERT_TRUE((*applier)->Poll().ok());
      }
    }
    ASSERT_TRUE((*session)->FlushDurability().ok());
    ASSERT_TRUE((*applier)->Poll().ok());

    // An idle pair fully drains: every durable vote is applied and the lag
    // gauge reads zero.
    EXPECT_EQ((*applier)->applied_votes(), votes.size());
    EXPECT_FALSE((*applier)->divergent());
    EXPECT_EQ((*applier)->divergences(), 0u);
    telemetry::Gauge* lag = telemetry::MetricsRegistry::Global().GetGauge(
        telemetry::metric_names::kReplicaLagVotes, {{"session", "s"}});
    EXPECT_DOUBLE_EQ(lag->Value(), 0.0);

    ReplicationStats stats = (*replicator)->stats();
    EXPECT_EQ(stats.ship_errors, 0u);
    EXPECT_GT(stats.segments_shipped, 0u);
    EXPECT_EQ(stats.shipped_votes, votes.size());

    auto promoted = (*applier)->Promote();
    ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
    EXPECT_GE(promoted->fencing_token, 2u);
    EXPECT_EQ(promoted->applied_votes, votes.size());
    ExpectPrefixParity(standby_engine, "s", votes, votes.size(), num_items,
                       spec);

    // The promoted session serves as a normal primary: new traffic lands.
    ASSERT_TRUE(
        standby_engine.Ingest("s", std::span<const VoteEvent>(&votes[0], 37))
            .ok());
  }
}

TEST(ReplicationPipelineTest, StartShipsPreexistingState) {
  size_t num_items = 0;
  std::vector<VoteEvent> votes =
      GenerateVotes(FamilySpecs().front(), 0xA77ACE, &num_items);
  std::string primary_root = ScratchDir("late_primary");
  std::string ship_dir = ScratchDir("late_ship");

  DqmEngine primary;
  auto session = primary.OpenSession(
      "s", num_items, std::span<const std::string>(Panel()),
      DurableOptions(primary_root, 16, 64));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // 100 votes BEFORE replication attaches: a checkpoint (at 64) plus a WAL
  // tail exist. Start must perform the initial sync on its own.
  IngestRange(primary, "s", votes, 0, 100, 16);
  ASSERT_TRUE((*session)->FlushDurability().ok());

  auto transport = LocalDirTransport::Open(ship_dir);
  ASSERT_TRUE(transport.ok());
  std::shared_ptr<ReplicationTransport> shared = std::move(*transport);
  auto replicator = SessionReplicator::Start(*session, shared);
  ASSERT_TRUE(replicator.ok()) << replicator.status().ToString();

  DqmEngine standby_engine;
  auto applier = StandbyApplier::Open(standby_engine, shared);
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();
  ASSERT_TRUE((*applier)->Poll().ok());
  EXPECT_EQ((*applier)->applied_votes(), 100u);
  ExpectPrefixParity(standby_engine, "s", votes, 100, num_items,
                     "late attach");
}

// ---------------------------------------------------------------------------
// Transport faults: torn, gapped, overlapping, and duplicated segments.
// Damage must be detected (never silently applied) and a later checkpoint
// must heal the stream.
// ---------------------------------------------------------------------------

/// One primary with a live replicator over a local transport; the fixture
/// the fault drills tamper with.
struct PrimaryRig {
  DqmEngine engine;
  std::shared_ptr<EstimationSession> session;
  std::shared_ptr<ReplicationTransport> transport;
  std::unique_ptr<SessionReplicator> replicator;
  std::string ship_dir;
  std::vector<VoteEvent> votes;
  size_t num_items = 0;
};

void StartRig(PrimaryRig& rig, const std::string& tag,
              uint64_t checkpoint_every_votes) {
  rig.votes = GenerateVotes(FamilySpecs().front(), 0xFAB, &rig.num_items);
  ASSERT_GE(rig.votes.size(), 300u);
  rig.ship_dir = ScratchDir(tag + "_ship");
  std::string primary_root = ScratchDir(tag + "_primary");

  auto session = rig.engine.OpenSession(
      "s", rig.num_items, std::span<const std::string>(Panel()),
      DurableOptions(primary_root, 16, checkpoint_every_votes));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  rig.session = *session;

  auto transport = LocalDirTransport::Open(rig.ship_dir);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  rig.transport = std::move(*transport);
  auto replicator = SessionReplicator::Start(rig.session, rig.transport);
  ASSERT_TRUE(replicator.ok()) << replicator.status().ToString();
  rig.replicator = std::move(*replicator);
}

void IngestAndFlush(PrimaryRig& rig, size_t begin, size_t end) {
  IngestRange(rig.engine, "s", rig.votes, begin, end, 16);
  ASSERT_TRUE(rig.session->FlushDurability().ok());
}

/// Flips one payload byte of `artifact` on disk — a torn/bit-rotted
/// segment whose whole-artifact CRC no longer matches.
void CorruptArtifact(const std::string& ship_dir,
                     const std::string& artifact) {
  const std::string path = ship_dir + "/" + artifact;
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open()) << path;
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  ASSERT_GT(size, 8);
  char byte = 0;
  file.seekg(size - 8);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0xFF);
  file.seekp(size - 8);
  file.write(&byte, 1);
}

class TransportFaultTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(TransportFaultTest, TornSegmentIsDetectedThenCheckpointHeals) {
  PrimaryRig rig;
  StartRig(rig, "torn", 100);
  if (testing::Test::HasFatalFailure()) return;
  // Past the first checkpoint (at 100): the transport holds ckpt(gen 2)
  // plus the gen-2 segments covering votes 100..160.
  IngestAndFlush(rig, 0, 160);
  std::vector<std::string> segments = SegmentsOfMaxGeneration(*rig.transport);
  ASSERT_GE(segments.size(), 2u);
  CorruptArtifact(rig.ship_dir, segments.back());

  DqmEngine standby_engine;
  StandbyApplier::Options standby_options;
  standby_options.durability_dir = ScratchDir("torn_standby");
  auto applier =
      StandbyApplier::Open(standby_engine, rig.transport, standby_options);
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();

  // Divergence, not a crash and not a partial apply: the torn segment
  // contributed nothing, and everything before it replayed cleanly.
  EXPECT_TRUE((*applier)->divergent());
  EXPECT_GE((*applier)->divergences(), 1u);
  const uint64_t applied = (*applier)->applied_votes();
  EXPECT_LT(applied, 160u);
  ExpectPrefixParity(standby_engine, "s", rig.votes, applied, rig.num_items,
                     "after torn segment");

  // The next checkpoint (crossing 200) supersedes the damaged generation;
  // replay resynchronizes from it and catches back up.
  IngestAndFlush(rig, 160, 220);
  ASSERT_TRUE((*applier)->Poll().ok());
  EXPECT_FALSE((*applier)->divergent());
  EXPECT_GE((*applier)->resyncs(), 1u);
  EXPECT_EQ((*applier)->applied_votes(), 220u);
  ExpectPrefixParity(standby_engine, "s", rig.votes, 220, rig.num_items,
                     "after heal");
}

TEST_F(TransportFaultTest, MissingSegmentIsAGapThenCheckpointHeals) {
  PrimaryRig rig;
  StartRig(rig, "gap", 100);
  if (testing::Test::HasFatalFailure()) return;
  IngestAndFlush(rig, 0, 160);
  std::vector<std::string> segments = SegmentsOfMaxGeneration(*rig.transport);
  ASSERT_GE(segments.size(), 2u);
  // Losing the FIRST gen-2 segment leaves a sequence gap right after the
  // checkpoint: nothing past the checkpoint may be applied.
  ASSERT_TRUE(fs::remove(fs::path(rig.ship_dir) / segments.front()));

  DqmEngine standby_engine;
  auto applier = StandbyApplier::Open(standby_engine, rig.transport);
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();
  EXPECT_TRUE((*applier)->divergent());
  const uint64_t applied = (*applier)->applied_votes();
  EXPECT_LT(applied, 160u);
  ExpectPrefixParity(standby_engine, "s", rig.votes, applied, rig.num_items,
                     "after gap");

  IngestAndFlush(rig, 160, 220);
  ASSERT_TRUE((*applier)->Poll().ok());
  EXPECT_FALSE((*applier)->divergent());
  EXPECT_EQ((*applier)->applied_votes(), 220u);
  ExpectPrefixParity(standby_engine, "s", rig.votes, 220, rig.num_items,
                     "after heal");
}

TEST_F(TransportFaultTest, OverlappingSegmentIsRejectedWithoutApplying) {
  PrimaryRig rig;
  StartRig(rig, "overlap", 0);  // one generation, no checkpoints
  if (testing::Test::HasFatalFailure()) return;
  IngestAndFlush(rig, 0, 160);

  DqmEngine standby_engine;
  auto applier = StandbyApplier::Open(standby_engine, rig.transport);
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();
  ASSERT_TRUE((*applier)->Poll().ok());
  ASSERT_EQ((*applier)->applied_votes(), 160u);

  // A forged next-sequence segment that rewinds start_offset over already
  // applied bytes (a replayed/reordered write). The applier must refuse it
  // on metadata alone — the payload is garbage and must never be scanned
  // into the session.
  std::vector<std::string> segments = SegmentsOfMaxGeneration(*rig.transport);
  ASSERT_FALSE(segments.empty());
  ArtifactId last = ParseArtifactName(segments.back());
  crowd::WalSegment forged;
  forged.generation = last.generation;
  forged.seq = last.seq + 1;
  forged.start_offset = crowd::kWalHeaderBytes;  // overlaps segment 1
  forged.cum_votes = 999999;
  forged.fencing_token = 1;
  forged.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  std::vector<uint8_t> bytes;
  crowd::EncodeWalSegment(forged, bytes);
  ASSERT_TRUE(
      rig.transport->Put(SegmentArtifactName(forged.generation, forged.seq),
                         bytes, 1)
          .ok());

  ASSERT_TRUE((*applier)->Poll().ok());
  EXPECT_TRUE((*applier)->divergent());
  EXPECT_EQ((*applier)->applied_votes(), 160u) << "nothing may be applied";
  auto snapshot = standby_engine.Query("s");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_votes, 160u);
}

TEST_F(TransportFaultTest, RedeliveryAndRepollAreIdempotent) {
  PrimaryRig rig;
  StartRig(rig, "dup", 0);
  if (testing::Test::HasFatalFailure()) return;
  IngestAndFlush(rig, 0, 160);

  DqmEngine standby_engine;
  auto applier = StandbyApplier::Open(standby_engine, rig.transport);
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();
  ASSERT_TRUE((*applier)->Poll().ok());
  ASSERT_EQ((*applier)->applied_votes(), 160u);

  // Every Poll re-lists every artifact — the whole history is "redelivered"
  // each heartbeat and must be skipped, not re-applied.
  ASSERT_TRUE((*applier)->Poll().ok());
  ASSERT_TRUE((*applier)->Poll().ok());
  EXPECT_EQ((*applier)->applied_votes(), 160u);
  EXPECT_EQ((*applier)->divergences(), 0u);
  ExpectPrefixParity(standby_engine, "s", rig.votes, 160, rig.num_items,
                     "after redelivery");
}

// ---------------------------------------------------------------------------
// Fencing: a promoted standby owns the stream; the old primary is a zombie.
// ---------------------------------------------------------------------------

TEST(FencingTest, PromotedStandbyFencesOffZombiePrimary) {
  PrimaryRig rig;
  StartRig(rig, "fence", 0);
  if (testing::Test::HasFatalFailure()) return;
  IngestAndFlush(rig, 0, 80);

  telemetry::Counter* rejections =
      telemetry::MetricsRegistry::Global().GetCounter(
          telemetry::metric_names::kReplicaFenceRejectionsTotal);
  const uint64_t rejections_base = rejections->Value();

  DqmEngine standby_engine;
  auto applier = StandbyApplier::Open(standby_engine, rig.transport);
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();
  ASSERT_TRUE((*applier)->Poll().ok());
  auto promoted = (*applier)->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_GE(promoted->fencing_token, 2u);
  EXPECT_EQ(promoted->applied_votes, 80u);

  // The zombie primary doesn't know it was failed over: it keeps
  // ingesting. Its own commits still succeed (its WAL is its own), but
  // every ship bounces off the fence and the transport stays untouched.
  auto list_before = rig.transport->List();
  ASSERT_TRUE(list_before.ok());
  IngestRange(rig.engine, "s", rig.votes, 80, 160, 16);
  ASSERT_TRUE(rig.session->FlushDurability().ok());
  EXPECT_GT(rig.replicator->stats().ship_errors, 0u);
  EXPECT_GT(rejections->Value(), rejections_base);
  auto list_after = rig.transport->List();
  ASSERT_TRUE(list_after.ok());
  EXPECT_EQ(*list_after, *list_before)
      << "a fenced zombie must not publish artifacts";

  // A promoted applier refuses to keep replaying, and a restarted zombie
  // refuses to ship at all.
  EXPECT_FALSE((*applier)->Poll().ok());
  auto restarted = SessionReplicator::Start(rig.session, rig.transport);
  EXPECT_FALSE(restarted.ok());
  ExpectPrefixParity(standby_engine, "s", rig.votes, 80, rig.num_items,
                     "promoted prefix");
}

// ---------------------------------------------------------------------------
// The failover matrix: kill the primary for real (_Exit(77) failpoints in
// the segment-ship write/fsync/rename and WAL-fsync edges), promote the
// standby, and check no-lost-ack + durable-prefix parity. Crossed with
// every workload family.
// ---------------------------------------------------------------------------

struct KillPoint {
  const char* tag;
  const char* spec;
};

constexpr KillPoint kKillPoints[] = {
    {"seg_ship_write", "dqm.repl.write=crash"},
    {"seg_ship_fsync", "dqm.repl.fsync=crash"},
    {"seg_ship_rename", "dqm.repl.rename=crash"},
    {"wal_fsync", "dqm.wal.fsync=crash"},
};

class ReplicationFailoverDeathTest
    : public testing::TestWithParam<std::tuple<int, int>> {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_P(ReplicationFailoverDeathTest, PromoteServesEveryAcknowledgedVote) {
  const int family = std::get<0>(GetParam());
  const KillPoint& kill = kKillPoints[std::get<1>(GetParam())];
  std::vector<std::string> families = FamilySpecs();
  ASSERT_LT(static_cast<size_t>(family), families.size());
  SCOPED_TRACE(StrFormat("kill=%s, %s", kill.spec, families[family].c_str()));

  size_t num_items = 0;
  std::vector<VoteEvent> votes =
      GenerateVotes(families[family], 0xFA170 + family, &num_items);
  ASSERT_GE(votes.size(), 300u);

  const std::string tag = StrFormat("kill_%s_f%d", kill.tag, family);
  std::string primary_root = ScratchDir(tag + "_primary");
  std::string ship_dir = ScratchDir(tag + "_ship");
  std::string standby_root = ScratchDir(tag + "_standby");
  // The child records the high-water mark of votes acknowledged as DURABLE
  // (FlushDurability returned, which fsyncs and ships before returning);
  // the no-lost-ack check reads it back in the parent. Group-committed
  // acks without the barrier are explicitly weaker — they may ride in the
  // tail the crash destroys, exactly as on a single node.
  const std::string ack_path = ScratchDir(tag + "_ack") + "/acked";
  const size_t arm_after = 185;  // past the first checkpoint boundary (150)

  EXPECT_EXIT(
      {
        DqmEngine engine;
        auto session = engine.OpenSession(
            "s", num_items, std::span<const std::string>(Panel()),
            DurableOptions(primary_root, 64, 150));
        if (!session.ok()) std::_Exit(3);
        auto transport = LocalDirTransport::Open(ship_dir);
        if (!transport.ok()) std::_Exit(3);
        std::shared_ptr<ReplicationTransport> shared = std::move(*transport);
        auto replicator = SessionReplicator::Start(*session, shared);
        if (!replicator.ok()) std::_Exit(4);
        for (size_t begin = 0; begin < votes.size(); begin += 37) {
          if (begin >= arm_after && !failpoint::AnyArmed()) {
            if (!failpoint::Configure(kill.spec).ok()) std::_Exit(4);
          }
          size_t size = std::min<size_t>(37, votes.size() - begin);
          if (!engine
                   .Ingest("s",
                           std::span<const VoteEvent>(&votes[begin], size))
                   .ok()) {
            std::_Exit(5);
          }
          // The durability barrier: when it returns, this batch is fsynced
          // AND its ship hook has run (or the crash fired and we never got
          // here) — the acknowledged durable prefix now covers it.
          if (!(*session)->FlushDurability().ok()) std::_Exit(5);
          std::ofstream(ack_path, std::ios::trunc) << (begin + size);
        }
        std::_Exit(6);  // the kill point never fired
      },
      testing::ExitedWithCode(failpoint::kCrashExitCode), "");

  // Parent: the transport holds what the dead primary managed to ship.
  uint64_t acked = 0;
  {
    std::ifstream in(ack_path);
    ASSERT_TRUE(static_cast<bool>(in >> acked))
        << "child died before acknowledging anything";
  }
  ASSERT_GT(acked, 0u);

  auto transport = LocalDirTransport::Open(ship_dir);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  std::shared_ptr<ReplicationTransport> shared = std::move(*transport);
  DqmEngine standby_engine;
  StandbyApplier::Options standby_options;
  standby_options.durability_dir = standby_root;
  auto applier =
      StandbyApplier::Open(standby_engine, shared, standby_options);
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();
  auto promoted = (*applier)->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();

  // No lost acknowledgement: every batch whose durability barrier returned
  // on the primary was shipped before the barrier returned, so the
  // promoted standby serves at least that prefix — and never more than was
  // ingested.
  EXPECT_GE(promoted->applied_votes, acked)
      << "the promoted standby lost votes acknowledged as durable";
  ASSERT_LE(promoted->applied_votes, votes.size());
  EXPECT_GE(promoted->fencing_token, 2u);

  // Durable-prefix parity: the standby is bit-identical to a reference fed
  // exactly the applied prefix.
  ExpectPrefixParity(standby_engine, "s", votes, promoted->applied_votes,
                     num_items, tag);

  // The fence is up: a zombie write with the dead primary's token bounces.
  const std::vector<uint8_t> junk = {0xBA, 0xD0};
  EXPECT_FALSE(shared->Put(SegmentArtifactName(99, 1), junk, 1).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ReplicationFailoverDeathTest,
    testing::Combine(testing::Range(0, 5),
                     testing::Range(0, static_cast<int>(
                                           sizeof(kKillPoints) /
                                           sizeof(kKillPoints[0])))));

// ---------------------------------------------------------------------------
// Live session migration.
// ---------------------------------------------------------------------------

TEST(MigrateSessionTest, MovesSessionAcrossEnginesWithDurability) {
  size_t num_items = 0;
  std::vector<VoteEvent> votes =
      GenerateVotes(FamilySpecs().front(), 0x316EA7E, &num_items);
  std::string root_a = ScratchDir("mig_a");
  std::string root_b = ScratchDir("mig_b");

  telemetry::Counter* migrations =
      telemetry::MetricsRegistry::Global().GetCounter(
          telemetry::metric_names::kSessionsMigratedTotal);
  const uint64_t migrations_base = migrations->Value();

  {
    DqmEngine a;
    auto session = a.OpenSession(
        "m", num_items, std::span<const std::string>(Panel()),
        DurableOptions(root_a, 16, 100));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    IngestRange(a, "m", votes, 0, 160, 16);
    (*session)->Publish();
    Snapshot before = a.Query("m").value();

    DqmEngine b;
    ASSERT_TRUE(a.MigrateSession("m", b, root_b).ok());
    EXPECT_EQ(migrations->Value(), migrations_base + 1);

    // The source engine no longer routes; the target serves bit-identical
    // state and accepts new traffic into its new durable home.
    EXPECT_FALSE(a.Query("m").ok());
    auto after = b.Query("m");
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    ExpectSnapshotParity(*after, before, "post-migration");
    IngestRange(b, "m", votes, 160, 200, 16);
    // b's destructor flushes the migrated session's WAL.
  }

  // The migrated session is durable at its new home: a fresh engine
  // recovers all 200 votes from root_b alone.
  DqmEngine recovered;
  auto reports = recovered.RecoverSessions(root_b);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), 1u);
  EXPECT_EQ((*reports)[0].name, "m");
  EXPECT_EQ((*reports)[0].votes_restored, 200u);
}

TEST(MigrateSessionTest, RefusesUnknownAndSpecLessSessions) {
  DqmEngine a;
  DqmEngine b;
  EXPECT_FALSE(a.MigrateSession("missing", b).ok());

  // Sessions opened without spec strings cannot be rebuilt on the target.
  auto raw = a.OpenSession("raw", 16);
  ASSERT_TRUE(raw.ok());
  Status status = a.MigrateSession("raw", b);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(a.Query("raw").ok())
      << "a failed migration must leave the source serving";
}

}  // namespace
}  // namespace dqm::engine
