#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dqm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::Internal("boom");
  Status copy = original;
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.message(), "boom");
  // Copy is deep: mutating one does not affect the other.
  copy = Status::OK();
  EXPECT_FALSE(original.ok());
}

TEST(StatusTest, MovePreservesState) {
  Status original = Status::NotFound("gone");
  Status moved = std::move(original);
  EXPECT_EQ(moved.code(), StatusCode::kNotFound);
  EXPECT_EQ(moved.message(), "gone");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_NE(Status::OK(), Status::Internal(""));
}

TEST(StatusTest, StreamOperatorUsesToString) {
  std::ostringstream os;
  os << Status::IOError("disk");
  EXPECT_EQ(os.str(), "io-error: disk");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "io-error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "unimplemented");
}

Status FailThenPropagate() {
  DQM_RETURN_NOT_OK(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  Status s = FailThenPropagate();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

Status SucceedThrough() {
  DQM_RETURN_NOT_OK(Status::OK());
  return Status::AlreadyExists("reached end");
}

TEST(StatusTest, ReturnNotOkPassesThroughOk) {
  EXPECT_EQ(SucceedThrough().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace dqm
