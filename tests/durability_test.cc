// Durability contract tests: the write-ahead vote log, checkpoint files,
// and crash recovery. The headline property is crash/recover/parity — kill
// the process (modeled as a point-in-time copy of the durability
// directory, taken by a phase hook at each commit-protocol step), recover
// from the copy, and the rebuilt session must match an uninterrupted
// session fed the same durable prefix: bit-identical tallies, pair
// counts, and count-derived estimates, with EM inside its declared
// conformance tolerance. Runs across every registered workload family.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/dqm.h"
#include "crowd/response_log.h"
#include "crowd/wal.h"
#include "engine/durability.h"
#include "engine/engine.h"
#include "engine/session.h"
#include "workload/workload.h"

namespace dqm::engine {
namespace {

namespace fs = std::filesystem;

using crowd::CheckpointData;
using crowd::Vote;
using crowd::VoteEvent;
using crowd::VoteWal;

/// Fresh empty scratch directory under the test tmpdir (wiped if a prior
/// run left one behind).
std::string ScratchDir(const std::string& tag) {
  fs::path dir = fs::path(testing::TempDir()) / ("dqm_durability_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<VoteEvent> MakeVotes(size_t count, size_t num_items) {
  std::vector<VoteEvent> votes;
  votes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    votes.push_back(VoteEvent{static_cast<uint32_t>(i % 7),
                              static_cast<uint32_t>(i % 5),
                              static_cast<uint32_t>(i % num_items),
                              (i % 3 == 0) ? Vote::kDirty : Vote::kClean});
  }
  return votes;
}

Result<std::vector<VoteEvent>> CollectReplay(VoteWal& wal, size_t num_items,
                                             VoteWal::ReplayStats* stats) {
  std::vector<VoteEvent> replayed;
  auto apply = [&](std::span<const VoteEvent> events) -> Status {
    replayed.insert(replayed.end(), events.begin(), events.end());
    return Status::OK();
  };
  DQM_ASSIGN_OR_RETURN(*stats, wal.ReplayAndTruncate(num_items, apply));
  return replayed;
}

bool SameEvents(const std::vector<VoteEvent>& a,
                const std::vector<VoteEvent>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].task != b[i].task || a[i].worker != b[i].worker ||
        a[i].item != b[i].item || a[i].vote != b[i].vote) {
      return false;
    }
  }
  return true;
}

TEST(Crc32Test, MatchesIeeeKnownAnswer) {
  // The canonical CRC-32 check vector.
  EXPECT_EQ(crowd::Crc32("123456789", 9), 0xCBF43926u);
  // Chaining across a split must equal the one-shot digest.
  uint32_t split = crowd::Crc32("6789", 4, crowd::Crc32("12345", 5));
  EXPECT_EQ(split, 0xCBF43926u);
}

TEST(ValidateVoteBoundsTest, CapsAndUniverse) {
  EXPECT_TRUE(crowd::ValidateVoteBounds(0, 0, 0, 1).ok());
  EXPECT_TRUE(crowd::ValidateVoteBounds(crowd::kMaxTaskId,
                                        crowd::kMaxWorkerId, 9, 10)
                  .ok());
  EXPECT_EQ(crowd::ValidateVoteBounds(0, 0, 10, 10).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(
      crowd::ValidateVoteBounds(0, crowd::kMaxWorkerId + 1, 0, 10).code(),
      StatusCode::kOutOfRange);
  EXPECT_EQ(
      crowd::ValidateVoteBounds(crowd::kMaxTaskId + 1, 0, 0, 10).code(),
      StatusCode::kOutOfRange);
}

TEST(VoteWalTest, AppendSyncReplayRoundTrip) {
  std::string dir = ScratchDir("wal_roundtrip");
  std::string path = dir + "/wal.log";
  std::vector<VoteEvent> votes = MakeVotes(100, 16);

  auto wal = VoteWal::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal->generation(), 1u);
  wal->Append(std::span<const VoteEvent>(votes.data(), 40));
  wal->Append(std::span<const VoteEvent>(votes.data() + 40, 60));
  ASSERT_TRUE(wal->Sync().ok());

  auto reopened = VoteWal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->generation(), 1u);
  VoteWal::ReplayStats stats;
  auto replayed = CollectReplay(*reopened, 16, &stats);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(stats.votes, 100u);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.torn_records, 0u);
  EXPECT_TRUE(SameEvents(*replayed, votes));
}

TEST(VoteWalTest, TornFinalRecordIsTruncatedAndLogStaysAppendable) {
  std::string dir = ScratchDir("wal_torn");
  std::string path = dir + "/wal.log";
  std::vector<VoteEvent> votes = MakeVotes(30, 8);
  {
    auto wal = VoteWal::Open(path);
    ASSERT_TRUE(wal.ok());
    wal->Append(std::span<const VoteEvent>(votes.data(), 30));
    ASSERT_TRUE(wal->Sync().ok());
  }
  // A record torn mid-write by the crash: trailing bytes that are not a
  // complete frame.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00\x00\xde\xad", 6);
  }
  uintmax_t torn_size = fs::file_size(path);

  auto wal = VoteWal::Open(path);
  ASSERT_TRUE(wal.ok());
  VoteWal::ReplayStats stats;
  auto replayed = CollectReplay(*wal, 8, &stats);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(stats.votes, 30u);
  EXPECT_EQ(stats.torn_records, 1u);
  EXPECT_TRUE(SameEvents(*replayed, votes));
  // The torn tail is gone from disk...
  EXPECT_LT(fs::file_size(path), torn_size);
  // ...and the log accepts new records at the truncation point.
  std::vector<VoteEvent> more = MakeVotes(5, 8);
  wal->Append(more);
  ASSERT_TRUE(wal->Sync().ok());
  auto again = VoteWal::Open(path);
  ASSERT_TRUE(again.ok());
  auto all = CollectReplay(*again, 8, &stats);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(stats.votes, 35u);
  EXPECT_EQ(stats.torn_records, 0u);
}

TEST(VoteWalTest, CorruptedCrcDropsTheRecord) {
  std::string dir = ScratchDir("wal_crc");
  std::string path = dir + "/wal.log";
  std::vector<VoteEvent> votes = MakeVotes(20, 8);
  {
    auto wal = VoteWal::Open(path);
    ASSERT_TRUE(wal.ok());
    wal->Append(std::span<const VoteEvent>(votes.data(), 10));
    wal->Append(std::span<const VoteEvent>(votes.data() + 10, 10));
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Flip one payload byte of the LAST record (13 bytes/vote, 8-byte frame,
  // 4-byte count: damage a byte safely inside the final payload).
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-5, std::ios::end);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-5, std::ios::end);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  auto wal = VoteWal::Open(path);
  ASSERT_TRUE(wal.ok());
  VoteWal::ReplayStats stats;
  auto replayed = CollectReplay(*wal, 8, &stats);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(stats.votes, 10u);
  EXPECT_EQ(stats.torn_records, 1u);
  EXPECT_TRUE(SameEvents(
      *replayed, std::vector<VoteEvent>(votes.begin(), votes.begin() + 10)));
}

TEST(VoteWalTest, OutOfBoundsVoteInTailIsRejectedAsTorn) {
  std::string dir = ScratchDir("wal_bounds");
  std::string path = dir + "/wal.log";
  std::vector<VoteEvent> good = MakeVotes(10, 8);
  {
    auto wal = VoteWal::Open(path);
    ASSERT_TRUE(wal.ok());
    wal->Append(good);
    // A record whose payload claims an impossible worker id: the frame and
    // CRC are fine, so only the shared bounds validation can catch it.
    VoteEvent bogus{0, crowd::kMaxWorkerId + 1, 0, Vote::kClean};
    wal->Append(std::span<const VoteEvent>(&bogus, 1));
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto wal = VoteWal::Open(path);
  ASSERT_TRUE(wal.ok());
  VoteWal::ReplayStats stats;
  auto replayed = CollectReplay(*wal, 8, &stats);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(stats.votes, 10u);
  EXPECT_EQ(stats.torn_records, 1u);
}

TEST(VoteWalTest, FailedSyncSealsAndDiscardsUnacknowledgedRecords) {
  // A complete write followed by a failed fsync: the batch is rejected, so
  // its CRC-valid frames must not resurrect at recovery — and the log must
  // refuse new appends, which would otherwise be acknowledged durable
  // while sitting behind bytes recovery may truncate.
  std::string dir = ScratchDir("wal_seal_sync");
  std::string path = dir + "/wal.log";
  std::vector<VoteEvent> votes = MakeVotes(30, 8);
  auto wal = VoteWal::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  wal->Append(std::span<const VoteEvent>(votes.data(), 10));
  ASSERT_TRUE(wal->Sync().ok());

  wal->Append(std::span<const VoteEvent>(votes.data() + 10, 10));
  wal->InjectSyncErrorForTest();
  ASSERT_FALSE(wal->Sync().ok());
  EXPECT_TRUE(wal->sealed());
  // Sealed: appends are no-ops, syncs keep failing with the seal error.
  wal->Append(std::span<const VoteEvent>(votes.data() + 20, 10));
  EXPECT_EQ(wal->buffered_bytes(), 0u);
  Status still_sealed = wal->Sync();
  ASSERT_FALSE(still_sealed.ok());
  EXPECT_NE(still_sealed.message().find("sealed"), std::string::npos);

  // On disk: exactly the acknowledged prefix, with no torn tail.
  {
    auto reopened = VoteWal::Open(path);
    ASSERT_TRUE(reopened.ok());
    VoteWal::ReplayStats stats;
    auto replayed = CollectReplay(*reopened, 8, &stats);
    ASSERT_TRUE(replayed.ok());
    EXPECT_EQ(stats.votes, 10u);
    EXPECT_EQ(stats.torn_records, 0u);
    EXPECT_TRUE(SameEvents(
        *replayed, std::vector<VoteEvent>(votes.begin(), votes.begin() + 10)));
  }

  // A checkpoint-style Reset re-establishes a clean, appendable log.
  ASSERT_TRUE(wal->Reset(2).ok());
  EXPECT_FALSE(wal->sealed());
  wal->Append(std::span<const VoteEvent>(votes.data() + 10, 10));
  ASSERT_TRUE(wal->Sync().ok());
  auto again = VoteWal::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->generation(), 2u);
  VoteWal::ReplayStats stats;
  auto replayed = CollectReplay(*again, 8, &stats);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(stats.votes, 10u);
}

TEST(VoteWalTest, FailedWriteSealsWithoutTearingDurablePrefix) {
  std::string dir = ScratchDir("wal_seal_write");
  std::string path = dir + "/wal.log";
  std::vector<VoteEvent> votes = MakeVotes(20, 8);
  auto wal = VoteWal::Open(path);
  ASSERT_TRUE(wal.ok());
  wal->Append(std::span<const VoteEvent>(votes.data(), 10));
  ASSERT_TRUE(wal->Sync().ok());
  wal->Append(std::span<const VoteEvent>(votes.data() + 10, 10));
  wal->InjectWriteErrorForTest();
  ASSERT_FALSE(wal->Sync().ok());
  EXPECT_TRUE(wal->sealed());
  auto reopened = VoteWal::Open(path);
  ASSERT_TRUE(reopened.ok());
  VoteWal::ReplayStats stats;
  auto replayed = CollectReplay(*reopened, 8, &stats);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(stats.votes, 10u);
  EXPECT_EQ(stats.torn_records, 0u);
}

TEST(CheckpointTest, PairsVariantRoundTripsThroughDiskAndSyntheticReplay) {
  std::string dir = ScratchDir("ckpt_pairs");
  std::vector<VoteEvent> votes = MakeVotes(500, 24);
  crowd::ResponseLog log(24, crowd::RetentionPolicy::kCounts);
  for (const VoteEvent& event : votes) log.Append(event);

  auto data = crowd::CheckpointFromLog(log, /*wal_generation=*/7);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->variant, CheckpointData::Variant::kPairs);
  std::string path = dir + "/checkpoint.bin";
  ASSERT_TRUE(crowd::WriteCheckpointFile(path, *data).ok());
  auto loaded = crowd::ReadCheckpointFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->wal_generation, 7u);
  EXPECT_EQ(loaded->num_events, 500u);
  EXPECT_EQ(loaded->workers, data->workers);
  EXPECT_EQ(loaded->items, data->items);
  EXPECT_EQ(loaded->dirty, data->dirty);
  EXPECT_EQ(loaded->clean, data->clean);

  // Synthetic replay must rebuild the same compacted matrix slot-for-slot
  // (the property that keeps EM bit-identical after recovery) and the same
  // per-item tallies.
  crowd::ResponseLog restored(24, crowd::RetentionPolicy::kCounts);
  auto apply = [&](std::span<const VoteEvent> events) -> Status {
    for (const VoteEvent& event : events) restored.Append(event);
    return Status::OK();
  };
  ASSERT_TRUE(crowd::EmitCheckpointVotes(*loaded, apply).ok());
  EXPECT_EQ(restored.num_events(), log.num_events());
  ASSERT_NE(restored.compacted(), nullptr);
  ASSERT_NE(log.compacted(), nullptr);
  EXPECT_EQ(restored.compacted()->workers(), log.compacted()->workers());
  EXPECT_EQ(restored.compacted()->items(), log.compacted()->items());
  EXPECT_EQ(restored.compacted()->dirty_counts(),
            log.compacted()->dirty_counts());
  EXPECT_EQ(restored.compacted()->clean_counts(),
            log.compacted()->clean_counts());
  for (size_t i = 0; i < 24; ++i) {
    ASSERT_EQ(restored.positive_votes(i), log.positive_votes(i)) << i;
    ASSERT_EQ(restored.total_votes(i), log.total_votes(i)) << i;
  }
  EXPECT_EQ(restored.NominalCount(), log.NominalCount());
  EXPECT_EQ(restored.MajorityCount(), log.MajorityCount());
}

TEST(CheckpointTest, CorruptionFailsLoudly) {
  std::string dir = ScratchDir("ckpt_corrupt");
  std::vector<VoteEvent> votes = MakeVotes(200, 16);
  crowd::ResponseLog log(16, crowd::RetentionPolicy::kCounts);
  for (const VoteEvent& event : votes) log.Append(event);
  auto data = crowd::CheckpointFromLog(log, 1);
  ASSERT_TRUE(data.ok());
  std::string path = dir + "/checkpoint.bin";
  ASSERT_TRUE(crowd::WriteCheckpointFile(path, *data).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    byte = static_cast<char>(byte ^ 0xff);
    f.write(&byte, 1);
  }
  auto loaded = crowd::ReadCheckpointFile(path);
  ASSERT_FALSE(loaded.ok());
  // A rename-committed checkpoint that fails its CRC is real corruption —
  // never silently treated as absent.
  EXPECT_NE(loaded.status().message().find("corrupt checkpoint"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(CheckpointTest, OverflowingColumnCountIsRejectedNotAllocated) {
  // A crafted 61-byte kPairs checkpoint whose column count n = 2^60 wraps
  // the shape arithmetic (4 * n * 4 columns == 0 mod 2^64), so an
  // unguarded equality check passes and the loader attempts a 2^60-slot
  // resize. The CRC is honest over the crafted bytes, so only the bound
  // check can catch it — expect a loud corruption error, not bad_alloc.
  std::string dir = ScratchDir("ckpt_overflow");
  std::string path = dir + "/checkpoint.bin";
  std::vector<uint8_t> bytes;
  auto put32 = [&](uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  auto put64 = [&](uint64_t v) {
    put32(static_cast<uint32_t>(v));
    put32(static_cast<uint32_t>(v >> 32));
  };
  put32(0x50435144u);  // magic "DQCP"
  put32(1);            // version
  put64(1);            // wal_generation
  put64(8);            // num_items
  put64(0);            // num_events
  put64(1);            // num_tasks
  put64(1);            // num_workers
  bytes.push_back(0);  // variant kPairs
  put64(uint64_t{1} << 60);  // column count
  put32(crowd::Crc32(bytes.data(), bytes.size()));
  {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = crowd::ReadCheckpointFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("corrupt checkpoint"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(ManifestTest, RoundTripsHostileNamesAndSpecs) {
  std::string dir = ScratchDir("manifest");
  SessionManifest manifest;
  manifest.name = "prod/us east=1%done,really";
  manifest.num_items = 1234;
  manifest.specs = {"chao92", "vchao92?shift=2", "workload?a=1&b=2,c"};
  manifest.cadence = "every_n_votes:8192";
  manifest.ingest_stripes = 4;
  manifest.publish_every_votes = 8192;
  manifest.wal_group_commit_votes = 512;
  manifest.wal_group_commit_ms = 25;
  manifest.checkpoint_every_votes = 100000;
  std::string path = dir + "/MANIFEST";
  ASSERT_TRUE(WriteManifestFile(path, manifest).ok());
  auto loaded = ReadManifestFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, manifest.name);
  EXPECT_EQ(loaded->num_items, manifest.num_items);
  EXPECT_EQ(loaded->specs, manifest.specs);
  EXPECT_EQ(loaded->cadence, manifest.cadence);
  EXPECT_EQ(loaded->ingest_stripes, manifest.ingest_stripes);
  EXPECT_EQ(loaded->publish_every_votes, manifest.publish_every_votes);
  EXPECT_EQ(loaded->wal_group_commit_votes, manifest.wal_group_commit_votes);
  EXPECT_EQ(loaded->wal_group_commit_ms, manifest.wal_group_commit_ms);
  EXPECT_EQ(loaded->checkpoint_every_votes, manifest.checkpoint_every_votes);
}

TEST(ManifestTest, PercentCodecRoundTripsAndRejectsBadHex) {
  const std::string hostile = "a/b c%d=e,f\ng\x7f";
  auto decoded = PercentDecode(PercentEncode(hostile));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, hostile);
  EXPECT_FALSE(PercentDecode("%zz").ok());
  EXPECT_FALSE(PercentDecode("%4").ok());
}

TEST(SessionDurabilityTest, CreateRefusesDirectoryWithExistingState) {
  std::string root = ScratchDir("create_refuse");
  DurabilityOptions options;
  options.dir = root + "/s";
  options.session_name = "s";
  SessionManifest manifest;
  manifest.name = "s";
  manifest.num_items = 8;
  auto first = SessionDurability::Create(options, manifest);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  first->reset();  // release the WAL fd and flusher before re-creating
  auto second = SessionDurability::Create(options, manifest);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineDurabilityTest, OpenSessionRefusesExistingDurableDir) {
  std::string root = ScratchDir("open_refuse");
  std::vector<std::string> specs = {"chao92"};
  SessionOptions options;
  options.durability_dir = root;
  {
    DqmEngine engine;
    auto session = engine.OpenSession("s", 16, specs, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
  }
  DqmEngine fresh;
  auto reopened = fresh.OpenSession("s", 16, specs, options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineDurabilityTest, RetainedBytesCountsWalBuffers) {
  std::string root = ScratchDir("retained");
  std::vector<std::string> specs = {"chao92"};
  SessionOptions plain;
  SessionOptions durable = plain;
  durable.durability_dir = root;
  // Huge group commit: everything stays in the user-space WAL buffer, so
  // the durable session's accounting must exceed the in-memory twin's by
  // at least the buffered record bytes.
  durable.wal_group_commit_votes = 1u << 20;

  DqmEngine engine;
  auto in_memory = engine.OpenSession("m", 32, specs, plain);
  auto on_disk = engine.OpenSession("d", 32, specs, durable);
  ASSERT_TRUE(in_memory.ok());
  ASSERT_TRUE(on_disk.ok());
  std::vector<VoteEvent> votes = MakeVotes(300, 32);
  ASSERT_TRUE((*in_memory)->AddVotes(votes).ok());
  ASSERT_TRUE((*on_disk)->AddVotes(votes).ok());
  EXPECT_GT((*on_disk)->RetainedBytes(), (*in_memory)->RetainedBytes());
}

TEST(SessionDurabilityTest, FlushFailureSealsWalUntilCheckpointHeals) {
  std::string root = ScratchDir("seal_heal");
  DurabilityOptions options;
  options.dir = root + "/s";
  options.session_name = "s";
  options.group_commit_votes = 1;  // fsync every batch
  SessionManifest manifest;
  manifest.name = "s";
  manifest.num_items = 8;
  auto durability = SessionDurability::Create(options, manifest);
  ASSERT_TRUE(durability.ok()) << durability.status().ToString();
  std::vector<VoteEvent> votes = MakeVotes(15, 8);

  ASSERT_TRUE(
      (*durability)
          ->AppendBatch(std::span<const VoteEvent>(votes.data(), 5))
          .ok());
  (*durability)->NoteApplied();

  (*durability)->InjectWalSyncErrorForTest();
  Status failed =
      (*durability)
          ->AppendBatch(std::span<const VoteEvent>(votes.data() + 5, 5));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE((*durability)->wal_sealed());
  // Sealed: later batches and explicit flushes fail fast with the seal
  // error instead of piling doomed fsyncs or claiming a durability point.
  Status rejected =
      (*durability)
          ->AppendBatch(std::span<const VoteEvent>(votes.data() + 10, 5));
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.message().find("sealed"), std::string::npos);
  EXPECT_FALSE((*durability)->Flush().ok());

  // A checkpoint commit re-snapshots the full in-memory state (here: the
  // one applied batch) and resets the WAL, healing the seal.
  crowd::ResponseLog log(8, crowd::RetentionPolicy::kCounts);
  for (size_t i = 0; i < 5; ++i) log.Append(votes[i]);
  Status healed = (*durability)
                      ->CommitCheckpoint([&](uint64_t generation) {
                        return crowd::CheckpointFromLog(log, generation);
                      });
  ASSERT_TRUE(healed.ok()) << healed.ToString();
  EXPECT_FALSE((*durability)->wal_sealed());
  ASSERT_TRUE(
      (*durability)
          ->AppendBatch(std::span<const VoteEvent>(votes.data() + 5, 5))
          .ok());
  (*durability)->NoteApplied();
  ASSERT_TRUE((*durability)->Flush().ok());

  // Recovery over the healed directory sees checkpoint + tail = 10 votes.
  durability->reset();
  DurabilityOptions attach_options = options;
  auto attached = SessionDurability::Attach(attach_options);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  uint64_t restored = 0;
  auto recovered = (*attached)->Recover(
      8, [&](std::span<const VoteEvent> events) -> Status {
        restored += events.size();
        return Status::OK();
      });
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->had_checkpoint);
  EXPECT_EQ(recovered->checkpoint_votes + recovered->replayed_votes, 10u);
  EXPECT_EQ(restored, 10u);
}

// --- crash / recover / parity ---------------------------------------------

/// The serving estimator panel for durable-session tests: every
/// count-derived estimator the engine can attach (SWITCH excluded — an
/// order-sensitive panel disables checkpoints; it gets its own WAL-only
/// test below).
const std::vector<std::string>& CheckpointablePanel() {
  static const std::vector<std::string> panel = {
      "chao92",     "good-turing", "vchao92?shift=2", "chao1",
      "jackknife1", "voting",      "nominal",         "em-voting"};
  return panel;
}

std::vector<std::string> FamilySpecs() {
  std::vector<std::string> specs;
  for (const std::string& name :
       workload::WorkloadRegistry::Global().Names()) {
    specs.push_back(name + "?n=80&dirty=12&tasks=50&ipt=8&batch=37");
  }
  return specs;
}

std::vector<VoteEvent> GenerateVotes(const std::string& spec, uint64_t seed,
                                     size_t* num_items) {
  auto generator = workload::WorkloadRegistry::Global().Create(spec);
  EXPECT_TRUE(generator.ok()) << generator.status().ToString();
  workload::GeneratedWorkload run = (*generator)->Generate(seed);
  *num_items = run.log.num_items();
  return std::vector<VoteEvent>(run.log.events().begin(),
                                run.log.events().end());
}

/// Ingests `votes` into `name` in fixed-size batches (single producer, so
/// the durable prefix is a prefix of this exact order).
void IngestBatches(DqmEngine& engine, const std::string& name,
                   const std::vector<VoteEvent>& votes, size_t batch) {
  for (size_t begin = 0; begin < votes.size(); begin += batch) {
    size_t size = std::min(batch, votes.size() - begin);
    ASSERT_TRUE(
        engine.Ingest(name, std::span<const VoteEvent>(&votes[begin], size))
            .ok());
  }
}

/// EM conformance tolerance (declared in the striped-ingest conformance
/// suite): |a-b| <= max(2.0, 0.02 * |b|).
void ExpectWithinEmTolerance(double a, double b, const std::string& context) {
  double tolerance = std::max(2.0, 0.02 * std::abs(b));
  EXPECT_LE(std::abs(a - b), tolerance) << context << ": " << a << " vs " << b;
}

void ExpectSnapshotParity(const Snapshot& recovered, const Snapshot& reference,
                          const std::string& context) {
  EXPECT_EQ(recovered.num_votes, reference.num_votes) << context;
  EXPECT_EQ(recovered.majority_count, reference.majority_count) << context;
  EXPECT_EQ(recovered.nominal_count, reference.nominal_count) << context;
  ASSERT_EQ(recovered.estimates.size(), reference.estimates.size()) << context;
  for (size_t i = 0; i < recovered.estimates.size(); ++i) {
    const std::string row = context + ", " + reference.estimates[i].name;
    if (reference.estimates[i].name == "em-voting") {
      // EM's float accumulation order may legally differ; everything
      // count-derived must not.
      ExpectWithinEmTolerance(recovered.estimates[i].total_errors,
                              reference.estimates[i].total_errors, row);
      ExpectWithinEmTolerance(recovered.estimates[i].undetected_errors,
                              reference.estimates[i].undetected_errors, row);
    } else {
      EXPECT_EQ(recovered.estimates[i].total_errors,
                reference.estimates[i].total_errors)
          << row;
      EXPECT_EQ(recovered.estimates[i].quality_score,
                reference.estimates[i].quality_score)
          << row;
    }
  }
}

struct KillPoint {
  SessionDurability::Phase phase;
  const char* name;
};

class CrashRecoverParityTest : public testing::TestWithParam<int> {};

TEST_P(CrashRecoverParityTest, RecoveredPrefixMatchesUninterruptedRun) {
  const KillPoint kill_points[] = {
      {SessionDurability::Phase::kAppend, "append"},
      {SessionDurability::Phase::kFsync, "fsync"},
      {SessionDurability::Phase::kCheckpointWrite, "checkpoint_write"},
      {SessionDurability::Phase::kWalReset, "wal_reset"},
  };
  const KillPoint& kill = kill_points[GetParam()];
  const std::vector<std::string>& panel = CheckpointablePanel();

  for (const std::string& spec : FamilySpecs()) {
    SCOPED_TRACE(spec + " @ " + kill.name);
    size_t num_items = 0;
    std::vector<VoteEvent> votes = GenerateVotes(spec, 20260807, &num_items);
    ASSERT_GE(votes.size(), 300u);

    std::string root =
        ScratchDir(std::string("crash_") + kill.name + "_live");
    std::string crash_root =
        ScratchDir(std::string("crash_") + kill.name + "_image");

    SessionOptions options;
    options.cadence = PublishCadence::kEveryNVotes;
    options.publish_every_votes = 128;
    options.ingest_stripes = 4;
    options.durability_dir = root;
    options.wal_group_commit_votes = 64;
    options.checkpoint_every_votes = 150;

    DqmEngine live;
    auto session = live.OpenSession("s", num_items,
                                    std::span<const std::string>(panel),
                                    options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ASSERT_TRUE((*session)->durable());

    // The "kill": on the second firing of the target phase, copy the whole
    // durability directory. The copy sees exactly the bytes a process
    // killed at that instant would leave on disk (the hook holds the WAL
    // mutex, so no write races the copy).
    SessionDurability* durability = (*session)->durability_for_test();
    ASSERT_NE(durability, nullptr);
    int fired = 0;
    bool copied = false;
    durability->SetPhaseHookForTest([&](SessionDurability::Phase phase) {
      if (phase != kill.phase || copied) return;
      if (++fired < 2) return;
      fs::copy(root, crash_root, fs::copy_options::recursive |
                                     fs::copy_options::overwrite_existing);
      copied = true;
    });
    IngestBatches(live, "s", votes, 37);
    ASSERT_TRUE(copied) << "kill point never fired";

    // Recover from the crash image into a fresh engine.
    DqmEngine recovered_engine;
    auto reports = recovered_engine.RecoverSessions(crash_root);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    ASSERT_EQ(reports->size(), 1u);
    const DqmEngine::RecoveredSession& report = (*reports)[0];
    EXPECT_EQ(report.name, "s");
    EXPECT_EQ(report.num_items, num_items);
    EXPECT_EQ(report.torn_records, 0u);  // fsync'd prefixes are never torn
    ASSERT_LE(report.votes_restored, votes.size());
    if (kill.phase != SessionDurability::Phase::kAppend) {
      // Past the first group commit something durable must exist.
      EXPECT_GT(report.votes_restored, 0u);
    }

    // Parity: an uninterrupted in-memory session with the identical
    // configuration, fed exactly the durable prefix.
    SessionOptions reference_options = options;
    reference_options.durability_dir.clear();
    reference_options.checkpoint_every_votes = 0;
    DqmEngine reference_engine;
    auto reference = reference_engine.OpenSession(
        "ref", num_items, std::span<const std::string>(panel),
        reference_options);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    std::vector<VoteEvent> prefix(
        votes.begin(),
        votes.begin() + static_cast<ptrdiff_t>(report.votes_restored));
    IngestBatches(reference_engine, "ref", prefix, 37);
    (*reference)->Publish();

    auto recovered_snapshot = recovered_engine.Query("s");
    ASSERT_TRUE(recovered_snapshot.ok());
    ExpectSnapshotParity(*recovered_snapshot, (*reference)->snapshot(),
                         spec + " @ " + kill.name);
  }
}

INSTANTIATE_TEST_SUITE_P(KillPoints, CrashRecoverParityTest,
                         testing::Values(0, 1, 2, 3));

TEST(EngineDurabilityTest, TornTailInCrashImageIsHealedOnRecovery) {
  size_t num_items = 0;
  std::vector<VoteEvent> votes =
      GenerateVotes(FamilySpecs().front(), 7, &num_items);
  std::string root = ScratchDir("torn_tail");
  SessionOptions options;
  options.durability_dir = root;
  options.wal_group_commit_votes = 64;
  {
    DqmEngine engine;
    auto session = engine.OpenSession(
        "s", num_items,
        std::span<const std::string>(CheckpointablePanel()), options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    IngestBatches(engine, "s", votes, 37);
    ASSERT_TRUE((*session)->FlushDurability().ok());
  }
  // The crash tore the final record: leave half a frame at the tail.
  {
    std::ofstream f(root + "/s/wal.log", std::ios::binary | std::ios::app);
    f.write("\x28\x00\x00\x00\x99", 5);
  }
  DqmEngine recovered;
  auto reports = recovered.RecoverSessions(root);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), 1u);
  EXPECT_EQ((*reports)[0].votes_restored, votes.size());
  EXPECT_EQ((*reports)[0].torn_records, 1u);
}

TEST(EngineDurabilityTest, OrderSensitivePanelRecoversViaFullWalReplay) {
  // SWITCH consumes arrival order, so its panel gets WAL-only durability
  // (checkpoints are refused by the session) — and full-WAL replay
  // preserves order exactly, making even SWITCH bit-identical after
  // recovery from a clean flush.
  size_t num_items = 0;
  std::vector<VoteEvent> votes =
      GenerateVotes(FamilySpecs().front(), 11, &num_items);
  const std::vector<std::string> panel = {"switch", "chao92", "em-voting"};
  std::string root = ScratchDir("switch_wal_only");
  SessionOptions options;
  options.durability_dir = root;
  options.wal_group_commit_votes = 64;
  options.checkpoint_every_votes = 100;  // requested, but the panel refuses
  Snapshot final_snapshot;
  {
    DqmEngine engine;
    auto session = engine.OpenSession(
        "s", num_items, std::span<const std::string>(panel), options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    IngestBatches(engine, "s", votes, 37);
    ASSERT_TRUE((*session)->FlushDurability().ok());
    final_snapshot = (*session)->snapshot();
  }
  EXPECT_FALSE(fs::exists(root + "/s/checkpoint.bin"));
  DqmEngine recovered;
  auto reports = recovered.RecoverSessions(root);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), 1u);
  EXPECT_FALSE((*reports)[0].had_checkpoint);
  EXPECT_EQ((*reports)[0].votes_restored, votes.size());
  auto snapshot = recovered.Query("s");
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->estimates.size(), final_snapshot.estimates.size());
  for (size_t i = 0; i < snapshot->estimates.size(); ++i) {
    EXPECT_EQ(snapshot->estimates[i].total_errors,
              final_snapshot.estimates[i].total_errors)
        << panel[i];
  }
}

TEST(EngineDurabilityTest, RecoverSessionsRebuildsManyAndSkipsStrayDirs) {
  std::string root = ScratchDir("multi");
  std::vector<std::string> specs = {"chao92", "voting"};
  SessionOptions options;
  options.durability_dir = root;
  options.wal_group_commit_votes = 1;  // fsync every batch
  {
    DqmEngine engine;
    for (std::string name : std::vector<std::string>{"beta", "alpha"}) {
      auto session = engine.OpenSession(name, 16, specs, options);
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      std::vector<VoteEvent> votes = MakeVotes(50, 16);
      ASSERT_TRUE(engine.Ingest(name, votes).ok());
    }
  }
  // A stray directory without a manifest (a crash before the manifest
  // rename-committed) is skipped, not fatal.
  fs::create_directories(root + "/junk");
  DqmEngine recovered;
  auto reports = recovered.RecoverSessions(root);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_EQ((*reports)[0].name, "alpha");
  EXPECT_EQ((*reports)[1].name, "beta");
  EXPECT_EQ((*reports)[0].votes_restored, 50u);
  EXPECT_EQ((*reports)[1].votes_restored, 50u);
  EXPECT_EQ(recovered.num_sessions(), 2u);
}

TEST(EngineDurabilityTest, RecoverSessionsFailsLoudlyOnCorruptCheckpoint) {
  std::string root = ScratchDir("corrupt_ckpt");
  SessionOptions options;
  options.durability_dir = root;
  options.wal_group_commit_votes = 1;
  options.checkpoint_every_votes = 64;
  {
    DqmEngine engine;
    auto session = engine.OpenSession(
        "s", 16, std::span<const std::string>(CheckpointablePanel()),
        options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    std::vector<VoteEvent> votes = MakeVotes(200, 16);
    IngestBatches(engine, "s", votes, 37);
  }
  std::string checkpoint = root + "/s/checkpoint.bin";
  ASSERT_TRUE(fs::exists(checkpoint));
  {
    std::fstream f(checkpoint,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(12);
    byte = static_cast<char>(byte ^ 0x33);
    f.write(&byte, 1);
  }
  DqmEngine recovered;
  auto reports = recovered.RecoverSessions(root);
  ASSERT_FALSE(reports.ok());
  EXPECT_NE(reports.status().message().find("corrupt checkpoint"),
            std::string::npos)
      << reports.status().ToString();
}

}  // namespace
}  // namespace dqm::engine
