// Tests for the annotated synchronization wrappers (src/common/mutex.h) and
// the debug lock-order checker behind them.
//
// The death tests drive deliberate discipline violations — inversion against
// the rank hierarchy, same-rank descending-address acquisition, recursive
// acquisition — and assert the checker aborts with its diagnostic token. In
// Release builds the checker is compiled out (Lock() is exactly one
// std::mutex::lock()), so those tests skip; OrderCheckingMatchesBuildMode
// pins the compile-out contract itself.

#include "common/mutex.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dqm {
namespace {

TEST(MutexAnnotationTest, MacrosCompileToNoOpsWhereUnsupported) {
  // Under GCC the DQM_* annotation macros must vanish entirely; under Clang
  // they must still permit this (correct) usage. Either way this test is a
  // compile-time proof, and the runtime assertions are trivial.
  struct Annotated {
    Mutex mu;
    int value DQM_GUARDED_BY(mu) = 0;

    int Get() DQM_EXCLUDES(mu) {
      MutexLock lock(mu);
      return value;
    }
    int GetLocked() DQM_REQUIRES(mu) { return value; }
  };
  Annotated annotated;
  EXPECT_EQ(annotated.Get(), 0);
  annotated.mu.Lock();
  annotated.mu.AssertHeld();
  EXPECT_EQ(annotated.GetLocked(), 0);
  annotated.mu.Unlock();
}

TEST(MutexTest, ExclusionUnderContention) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockAndAdopt) {
  Mutex mu(LockRank::kStripe, "adopt-test");
  ASSERT_TRUE(mu.TryLock());
  {
    // The contention-probe idiom from ResponseLog::AppendConcurrent: the
    // lock is already held; the scoped object adopts and releases it.
    MutexLock lock(mu, kAdoptLock);
  }
  // Released by the adopting scope: a fresh TryLock must succeed.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockContendedFails) {
  Mutex mu;
  mu.Lock();
  std::thread other([&] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
}

TEST(SharedMutexTest, ReadersOverlapWritersExclude) {
  SharedMutex mu(LockRank::kEstimatorRegistry, "shared-test");
  int value = 0;
  {
    WriterMutexLock writer(mu);
    value = 42;
  }
  // Two simultaneous readers: the second ReaderLock must not block on the
  // first (a deadlock here would hang the test).
  mu.ReaderLock();
  std::thread other([&] {
    ReaderMutexLock reader(mu);
    EXPECT_EQ(value, 42);
  });
  other.join();
  mu.ReaderUnlock();
}

TEST(CondVarTest, WakesPredicateLoop) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(LockOrderTest, OrderCheckingMatchesBuildMode) {
#ifdef NDEBUG
  EXPECT_FALSE(Mutex::OrderCheckingEnabled())
      << "Release builds must compile the lock-order checker out";
#else
  EXPECT_TRUE(Mutex::OrderCheckingEnabled())
      << "debug builds must compile the lock-order checker in";
#endif
}

TEST(LockOrderTest, ConsistentOrderAllowed) {
  // Ascending-rank nesting mirroring a real serving path: session publish
  // pauses a stripe, whose reconcile touches telemetry, which may log.
  Mutex session(LockRank::kSession, "session");
  Mutex stripe(LockRank::kStripe, "stripe");
  Mutex telemetry(LockRank::kTelemetry, "telemetry");
  Mutex logging(LockRank::kLogging, "logging");
  for (int i = 0; i < 3; ++i) {
    MutexLock a(session);
    MutexLock b(stripe);
    MutexLock c(telemetry);
    MutexLock d(logging);
  }
}

TEST(LockOrderTest, SameRankAddressAscendingAllowed) {
  // LockAllStripes order: same rank is legal when addresses ascend (array
  // index order). Heap/stack layout of distinct locals is unspecified, so
  // sort by address rather than assuming declaration order.
  Mutex a(LockRank::kStripe, "stripe-a");
  Mutex b(LockRank::kStripe, "stripe-b");
  Mutex* lo = &a < &b ? &a : &b;
  Mutex* hi = &a < &b ? &b : &a;
  lo->Lock();
  hi->Lock();
  hi->Unlock();
  lo->Unlock();
}

TEST(LockOrderTest, UnrankedSkipsOrderChecks) {
  // kUnranked locks interleave freely with ranked ones in any order.
  Mutex ranked(LockRank::kTelemetry, "ranked");
  Mutex adhoc;  // kUnranked
  MutexLock a(ranked);
  MutexLock b(adhoc);
}

TEST(LockOrderTest, OutOfOrderReleaseSupported) {
  // RAII scopes always release LIFO, but manual Lock/Unlock may not; the
  // held-stack must tolerate releasing from the middle.
  Mutex first(LockRank::kSession, "first");
  Mutex second(LockRank::kStripe, "second");
  first.Lock();
  second.Lock();
  first.Unlock();
  second.Unlock();
}

TEST(LockOrderDeathTest, InversionCaught) {
  if (!Mutex::OrderCheckingEnabled()) {
    GTEST_SKIP() << "lock-order checker compiled out (Release build)";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex stripe(LockRank::kStripe, "stripe");
  Mutex session(LockRank::kSession, "session");
  EXPECT_DEATH(
      {
        MutexLock a(stripe);
        MutexLock b(session);  // kSession(200) under kStripe(300): inversion
      },
      "lock order inversion");
}

TEST(LockOrderDeathTest, SameRankDescendingCaught) {
  if (!Mutex::OrderCheckingEnabled()) {
    GTEST_SKIP() << "lock-order checker compiled out (Release build)";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex a(LockRank::kStripe, "stripe-a");
  Mutex b(LockRank::kStripe, "stripe-b");
  Mutex* lo = &a < &b ? &a : &b;
  Mutex* hi = &a < &b ? &b : &a;
  EXPECT_DEATH(
      {
        hi->Lock();
        lo->Lock();  // descending address at equal rank
      },
      "lock order inversion");
}

TEST(LockOrderDeathTest, RecursionCaught) {
  if (!Mutex::OrderCheckingEnabled()) {
    GTEST_SKIP() << "lock-order checker compiled out (Release build)";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Unranked on purpose: recursion checking must not depend on a rank.
  Mutex mu;
  EXPECT_DEATH(
      {
        mu.Lock();
        mu.Lock();  // self-deadlock; the checker aborts instead of hanging
      },
      "recursive acquisition");
}

TEST(LockOrderDeathTest, AssertHeldCatchesUnheldMutex) {
  if (!Mutex::OrderCheckingEnabled()) {
    GTEST_SKIP() << "lock-order checker compiled out (Release build)";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu(LockRank::kSession, "assert-held");
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld failed");
}

}  // namespace
}  // namespace dqm
