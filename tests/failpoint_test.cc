// Fault-injection substrate tests: the failpoint spec grammar, arming /
// budget / probability semantics, the telemetry export bridge, and the
// retrying I/O wrappers (crowd/io.h) the durability stack issues every
// syscall through — including the VoteWal regression for transient
// EINTR/short-I/O faults riding through appends and replay unharmed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"
#include "crowd/io.h"
#include "crowd/wal.h"
#include "telemetry/failpoints.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace dqm {
namespace {

namespace fs = std::filesystem;
namespace io = crowd::io;
namespace fpn = crowd::io::fpn;

using failpoint::Action;
using failpoint::EvalResult;
using failpoint::Registry;

/// Every test in this file arms global state; the fixture guarantees a
/// clean registry and default retry budget on both sides.
class FailpointTest : public testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisarmAll();
    saved_retry_ = io::GetRetryOptions();
    // Keep injected-transient tests fast: no real sleeping between retries.
    io::RetryOptions fast = saved_retry_;
    fast.backoff_initial_us = 0;
    fast.backoff_max_us = 0;
    io::SetRetryOptions(fast);
  }
  void TearDown() override {
    failpoint::DisarmAll();
    io::SetRetryOptions(saved_retry_);
  }

  std::string ScratchDir(const std::string& tag) {
    fs::path dir = fs::path(testing::TempDir()) / ("dqm_failpoint_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
  }

  static uint64_t CounterValue(const char* name) {
    return static_cast<uint64_t>(
        telemetry::MetricsRegistry::Global().GetCounter(name)->Value());
  }

  io::RetryOptions saved_retry_;
};

TEST_F(FailpointTest, ParseActionGrammar) {
  Result<Action> error = failpoint::ParseAction("error(EIO)");
  ASSERT_TRUE(error.ok()) << error.status().ToString();
  EXPECT_EQ(error->kind, Action::Kind::kError);
  EXPECT_EQ(error->error_errno, EIO);
  EXPECT_EQ(error->budget, UINT64_MAX);

  Result<Action> numeric = failpoint::ParseAction("error(5)");
  ASSERT_TRUE(numeric.ok()) << numeric.status().ToString();
  EXPECT_EQ(numeric->error_errno, 5);

  Result<Action> ret = failpoint::ParseAction("return");
  ASSERT_TRUE(ret.ok()) << ret.status().ToString();
  EXPECT_EQ(ret->kind, Action::Kind::kReturn);

  Result<Action> delay = failpoint::ParseAction("delay(5ms)");
  ASSERT_TRUE(delay.ok()) << delay.status().ToString();
  EXPECT_EQ(delay->kind, Action::Kind::kDelay);
  EXPECT_EQ(delay->delay_ms, 5u);

  Result<Action> crash = failpoint::ParseAction("crash");
  ASSERT_TRUE(crash.ok()) << crash.status().ToString();
  EXPECT_EQ(crash->kind, Action::Kind::kCrash);

  Result<Action> probe = failpoint::ParseAction("count(3)");
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(probe->kind, Action::Kind::kProbe);
  EXPECT_EQ(probe->budget, 3u);

  Result<Action> bounded = failpoint::ParseAction("count(2):error(EINTR)");
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_EQ(bounded->kind, Action::Kind::kError);
  EXPECT_EQ(bounded->error_errno, EINTR);
  EXPECT_EQ(bounded->budget, 2u);

  Result<Action> prob = failpoint::ParseAction("error(EIO)%0.25");
  ASSERT_TRUE(prob.ok()) << prob.status().ToString();
  EXPECT_EQ(prob->kind, Action::Kind::kError);
  EXPECT_LT(prob->fire_threshold, ~0ull);

  // A certain probability is the same as no probability clause.
  Result<Action> certain = failpoint::ParseAction("return%1");
  ASSERT_TRUE(certain.ok()) << certain.status().ToString();
  EXPECT_EQ(certain->fire_threshold, ~0ull);
}

TEST_F(FailpointTest, ParseActionRejectsMalformedSpecs) {
  EXPECT_FALSE(failpoint::ParseAction("").ok());
  EXPECT_FALSE(failpoint::ParseAction("explode").ok());
  EXPECT_FALSE(failpoint::ParseAction("error()").ok());
  EXPECT_FALSE(failpoint::ParseAction("error(EWHAT)").ok());
  EXPECT_FALSE(failpoint::ParseAction("error(0)").ok());
  EXPECT_FALSE(failpoint::ParseAction("error(-5)").ok());
  EXPECT_FALSE(failpoint::ParseAction("delay(5)").ok());    // missing ms
  EXPECT_FALSE(failpoint::ParseAction("delay(xms)").ok());
  EXPECT_FALSE(failpoint::ParseAction("count(0)").ok());    // inert
  EXPECT_FALSE(failpoint::ParseAction("count(x):crash").ok());
  EXPECT_FALSE(failpoint::ParseAction("error(EIO)%0").ok());
  EXPECT_FALSE(failpoint::ParseAction("error(EIO)%1.5").ok());
  EXPECT_FALSE(failpoint::ParseAction("error(EIO)%nope").ok());
}

TEST_F(FailpointTest, DisabledEvalIsNoneAndCountsNothing) {
  EXPECT_FALSE(failpoint::AnyArmed());
  EvalResult r = failpoint::Eval("dqm.test.unarmed");
  EXPECT_EQ(r.op, EvalResult::Op::kNone);
  EXPECT_EQ(Registry::Global().hits("dqm.test.unarmed"), 0u);
}

TEST_F(FailpointTest, ConfigureArmsAndRejectsAtomically) {
  // One bad spec poisons the whole string: nothing arms.
  Status bad = failpoint::Configure(
      "dqm.test.a=error(EIO);dqm.test.b=banana");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_EQ(failpoint::Eval("dqm.test.a").op, EvalResult::Op::kNone);

  ASSERT_TRUE(
      failpoint::Configure("dqm.test.a=error(EIO);dqm.test.b=return").ok());
  EXPECT_TRUE(failpoint::AnyArmed());
  EvalResult a = failpoint::Eval("dqm.test.a");
  EXPECT_EQ(a.op, EvalResult::Op::kError);
  EXPECT_EQ(a.injected_errno, EIO);
  EXPECT_EQ(failpoint::Eval("dqm.test.b").op, EvalResult::Op::kReturnEarly);
  // An armed registry still answers kNone for names nobody armed.
  EXPECT_EQ(failpoint::Eval("dqm.test.other").op, EvalResult::Op::kNone);

  failpoint::DisarmAll();
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_EQ(failpoint::Eval("dqm.test.a").op, EvalResult::Op::kNone);
}

TEST_F(FailpointTest, CountBudgetDisarmsAfterNTriggers) {
  ASSERT_TRUE(failpoint::Configure("dqm.test.budget=count(2):error(EINTR)").ok());
  EXPECT_EQ(failpoint::Eval("dqm.test.budget").op, EvalResult::Op::kError);
  EXPECT_EQ(failpoint::Eval("dqm.test.budget").op, EvalResult::Op::kError);
  // Budget exhausted — the point went inert (and, with nothing else armed,
  // the fast path short-circuits again).
  EXPECT_EQ(failpoint::Eval("dqm.test.budget").op, EvalResult::Op::kNone);
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_EQ(Registry::Global().hits("dqm.test.budget"), 2u);
}

TEST_F(FailpointTest, HitsCountArmedEvaluationsTriggeredCountsFires) {
  ASSERT_TRUE(failpoint::Configure("dqm.test.probe=count(5)").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(failpoint::Eval("dqm.test.probe").op, EvalResult::Op::kNone);
  }
  std::vector<failpoint::FailpointInfo> infos = Registry::Global().Collect();
  bool found = false;
  for (const failpoint::FailpointInfo& info : infos) {
    if (info.name != "dqm.test.probe") continue;
    found = true;
    EXPECT_EQ(info.hits, 5u);
    EXPECT_EQ(info.triggered, 5u);  // a probe "fires" by counting
    EXPECT_FALSE(info.armed);       // budget spent
  }
  EXPECT_TRUE(found);
}

TEST_F(FailpointTest, ProbabilityStreamsReplayUnderSameSeed) {
  auto run = [&](uint64_t seed) {
    failpoint::DisarmAll();
    failpoint::SetSeed(seed);
    EXPECT_TRUE(failpoint::Configure("dqm.test.prob=error(EIO)%0.5").ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(failpoint::Eval("dqm.test.prob").op ==
                      EvalResult::Op::kError);
    }
    return fired;
  };
  std::vector<bool> first = run(1234);
  std::vector<bool> second = run(1234);
  std::vector<bool> other = run(99);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
  // p=0.5 over 64 draws: both outcomes must appear.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FailpointTest, SyncFailpointMetricsExportsHitDeltas) {
  ASSERT_TRUE(failpoint::Configure("dqm.test.export=count(3)").ok());
  failpoint::Eval("dqm.test.export");
  failpoint::Eval("dqm.test.export");

  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  telemetry::Counter* exported = registry.GetCounter(
      telemetry::metric_names::kFailpointHitsTotal,
      {{"failpoint", "dqm.test.export"}});
  const double before = exported->Value();
  telemetry::SyncFailpointMetrics(registry);
  EXPECT_DOUBLE_EQ(exported->Value(), before + 2.0);
  // Re-syncing without new hits must not double-count.
  telemetry::SyncFailpointMetrics(registry);
  EXPECT_DOUBLE_EQ(exported->Value(), before + 2.0);
  failpoint::Eval("dqm.test.export");
  telemetry::SyncFailpointMetrics(registry);
  EXPECT_DOUBLE_EQ(exported->Value(), before + 3.0);
}

// ---------------------------------------------------------------------------
// Retrying I/O wrappers.
// ---------------------------------------------------------------------------

TEST_F(FailpointTest, WriteAllRidesOutTransientErrnos) {
  std::string dir = ScratchDir("write_transient");
  std::string path = dir + "/file";
  Result<int> fd = io::Open(fpn::kWalOpen, path, O_RDWR | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  const uint64_t retries_before = CounterValue(
      telemetry::metric_names::kWalRetriesTotal);
  ASSERT_TRUE(
      failpoint::Configure("dqm.wal.write=count(2):error(EINTR)").ok());
  const uint8_t payload[] = {1, 2, 3, 4, 5};
  Status written = io::WriteAll(fpn::kWalWrite, *fd, payload, sizeof(payload),
                                path);
  EXPECT_TRUE(written.ok()) << written.ToString();
  EXPECT_EQ(CounterValue(telemetry::metric_names::kWalRetriesTotal),
            retries_before + 2);
  EXPECT_EQ(fs::file_size(path), sizeof(payload));

  // And the bytes are real: read them back through the read wrapper.
  uint8_t back[sizeof(payload)] = {};
  Status read = io::ReadExactAt(fpn::kWalRead, *fd, back, sizeof(back), 0,
                                path);
  EXPECT_TRUE(read.ok()) << read.ToString();
  EXPECT_EQ(0, std::memcmp(back, payload, sizeof(payload)));
  ::close(*fd);
}

TEST_F(FailpointTest, PersistentTransientErrnoExhaustsBudget) {
  std::string dir = ScratchDir("write_exhausted");
  std::string path = dir + "/file";
  Result<int> fd = io::Open(fpn::kWalOpen, path, O_RDWR | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  io::RetryOptions tight = io::GetRetryOptions();
  tight.max_attempts = 3;
  io::SetRetryOptions(tight);
  const uint64_t exhausted_before = CounterValue(
      telemetry::metric_names::kWalRetryExhaustedTotal);

  ASSERT_TRUE(failpoint::Configure("dqm.wal.write=error(EAGAIN)").ok());
  const uint8_t payload[] = {9, 9, 9};
  Status written = io::WriteAll(fpn::kWalWrite, *fd, payload, sizeof(payload),
                                path);
  EXPECT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kIOError);
  EXPECT_EQ(CounterValue(telemetry::metric_names::kWalRetryExhaustedTotal),
            exhausted_before + 1);
  ::close(*fd);
}

TEST_F(FailpointTest, NonTransientErrnoSurfacesWithoutRetry) {
  std::string dir = ScratchDir("write_enospc");
  std::string path = dir + "/file";
  Result<int> fd = io::Open(fpn::kWalOpen, path, O_RDWR | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  const uint64_t retries_before = CounterValue(
      telemetry::metric_names::kWalRetriesTotal);
  ASSERT_TRUE(failpoint::Configure("dqm.wal.fsync=error(EIO)").ok());
  Status synced = io::Fsync(fpn::kWalFsync, *fd, path);
  EXPECT_FALSE(synced.ok());
  EXPECT_EQ(synced.code(), StatusCode::kIOError);
  EXPECT_EQ(CounterValue(telemetry::metric_names::kWalRetriesTotal),
            retries_before);
  ::close(*fd);
}

TEST_F(FailpointTest, ReturnActionSkipsTheSyscallSilently) {
  std::string dir = ScratchDir("write_lost");
  std::string path = dir + "/file";
  Result<int> fd = io::Open(fpn::kWalOpen, path, O_RDWR | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();

  ASSERT_TRUE(failpoint::Configure("dqm.wal.write=return").ok());
  const uint8_t payload[] = {1, 2, 3};
  Status written = io::WriteAll(fpn::kWalWrite, *fd, payload, sizeof(payload),
                                path);
  EXPECT_TRUE(written.ok()) << written.ToString();
  // The op reported success but never reached the kernel — lost I/O.
  EXPECT_EQ(fs::file_size(path), 0u);
  ::close(*fd);
}

// ---------------------------------------------------------------------------
// VoteWal regression: transient faults on the append / replay paths must
// ride through the retry layer without sealing the log or corrupting the
// stream.
// ---------------------------------------------------------------------------

std::vector<crowd::VoteEvent> SomeVotes(size_t count, size_t num_items) {
  std::vector<crowd::VoteEvent> votes;
  votes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    votes.push_back(crowd::VoteEvent{
        static_cast<uint32_t>(i % 7), static_cast<uint32_t>(i % 5),
        static_cast<uint32_t>(i % num_items),
        (i % 3 == 0) ? crowd::Vote::kDirty : crowd::Vote::kClean});
  }
  return votes;
}

TEST_F(FailpointTest, WalSurvivesTransientWriteAndFsyncFaults) {
  std::string dir = ScratchDir("wal_transient");
  std::string path = dir + "/wal.log";
  std::vector<crowd::VoteEvent> votes = SomeVotes(50, 16);

  Result<crowd::VoteWal> wal = crowd::VoteWal::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  const uint64_t retries_before = CounterValue(
      telemetry::metric_names::kWalRetriesTotal);
  ASSERT_TRUE(failpoint::Configure("dqm.wal.write=count(2):error(EINTR);"
                                   "dqm.wal.fsync=count(1):error(EINTR)")
                  .ok());
  wal->Append(std::span<const crowd::VoteEvent>(votes));
  Status synced = wal->Sync();
  EXPECT_TRUE(synced.ok()) << synced.ToString();
  EXPECT_FALSE(wal->sealed());
  EXPECT_GE(CounterValue(telemetry::metric_names::kWalRetriesTotal),
            retries_before + 3);
  failpoint::DisarmAll();

  // Replay with transient read faults injected: same stream comes back.
  ASSERT_TRUE(
      failpoint::Configure("dqm.wal.read=count(2):error(EINTR)").ok());
  Result<crowd::VoteWal> reopened = crowd::VoteWal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::vector<crowd::VoteEvent> replayed;
  auto apply = [&](std::span<const crowd::VoteEvent> events) -> Status {
    replayed.insert(replayed.end(), events.begin(), events.end());
    return Status::OK();
  };
  Result<crowd::VoteWal::ReplayStats> stats =
      reopened->ReplayAndTruncate(16, apply);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->votes, votes.size());
  EXPECT_EQ(stats->torn_records, 0u);
  ASSERT_EQ(replayed.size(), votes.size());
  for (size_t i = 0; i < votes.size(); ++i) {
    EXPECT_EQ(replayed[i].item, votes[i].item);
    EXPECT_EQ(replayed[i].vote, votes[i].vote);
  }
}

TEST_F(FailpointTest, WalSealsOnPersistentFsyncFailure) {
  std::string dir = ScratchDir("wal_sealed");
  std::string path = dir + "/wal.log";
  std::vector<crowd::VoteEvent> votes = SomeVotes(20, 16);

  Result<crowd::VoteWal> wal = crowd::VoteWal::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  ASSERT_TRUE(failpoint::Configure("dqm.wal.fsync=error(EIO)").ok());
  wal->Append(std::span<const crowd::VoteEvent>(votes));
  Status synced = wal->Sync();
  EXPECT_FALSE(synced.ok());
  EXPECT_TRUE(wal->sealed());
  failpoint::DisarmAll();

  // A sealed log refuses further traffic until Reset.
  EXPECT_FALSE(wal->Sync().ok());
  ASSERT_TRUE(wal->Reset(wal->generation() + 1).ok());
  EXPECT_FALSE(wal->sealed());
  wal->Append(std::span<const crowd::VoteEvent>(votes));
  EXPECT_TRUE(wal->Sync().ok());
}

}  // namespace
}  // namespace dqm
