// Integration tests for the engine's telemetry instrumentation: commit /
// publish counters and histograms move with ingest, per-session quality
// gauges appear on publish and vanish when the session dies, the engine
// roll-up gauges count every session exactly once and return to zero after
// churn, the deferred-publish counter tracks the coalesced cadence, striped
// sessions export per-stripe lock counters, and the per-session flight
// recorder captures commit/publish spans.
//
// Everything here reads the process-global registry, which other tests in
// this binary also write — so every assertion is a *delta* against a
// baseline taken at test start, never an absolute.

#include "engine/engine.h"

#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crowd/vote.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace dqm::engine {
namespace {

using crowd::Vote;
using crowd::VoteEvent;
using telemetry::MetricsRegistry;

constexpr size_t kItems = 48;
const std::vector<std::string> kPanel = {"chao92", "voting"};

std::vector<VoteEvent> MakeBatch(size_t salt, size_t size) {
  std::vector<VoteEvent> votes;
  votes.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    votes.push_back(VoteEvent{
        static_cast<uint32_t>(salt), static_cast<uint32_t>(salt % 5),
        static_cast<uint32_t>((salt * 13 + i * 3) % kItems),
        (salt + i) % 3 == 0 ? Vote::kClean : Vote::kDirty});
  }
  return votes;
}

/// Value of the (name, labels) counter in `collection`; 0 when absent.
uint64_t CounterValue(const MetricsRegistry::Collection& collection,
                      const std::string& name,
                      const telemetry::LabelSet& labels = {}) {
  for (const auto& counter : collection.counters) {
    if (counter.name == name && counter.labels == labels) {
      return counter.value;
    }
  }
  return 0;
}

/// Count of gauges named `name` carrying a `session` label equal to
/// `session`; `value` (if non-null) receives the last match's value.
size_t SessionGaugeCount(const MetricsRegistry::Collection& collection,
                         const std::string& name, const std::string& session,
                         double* value = nullptr) {
  size_t count = 0;
  for (const auto& gauge : collection.gauges) {
    if (gauge.name != name) continue;
    for (const auto& [k, v] : gauge.labels) {
      if (k == "session" && v == session) {
        ++count;
        if (value != nullptr) *value = gauge.value;
      }
    }
  }
  return count;
}

double GaugeValue(const MetricsRegistry::Collection& collection,
                  const std::string& name) {
  for (const auto& gauge : collection.gauges) {
    if (gauge.name == name && gauge.labels.empty()) return gauge.value;
  }
  return 0.0;
}

uint64_t HistogramCount(const MetricsRegistry::Collection& collection,
                        const std::string& name) {
  for (const auto& histogram : collection.histograms) {
    if (histogram.name == name && histogram.labels.empty()) {
      return histogram.snapshot.count;
    }
  }
  return 0;
}

TEST(EngineTelemetryTest, CommitCountersAndHistogramsMoveWithIngest) {
  MetricsRegistry::Collection before = MetricsRegistry::Global().Collect();
  ASSERT_TRUE(telemetry::Enabled());

  DqmEngine engine;
  ASSERT_TRUE(engine
                  .OpenSession("telem-commit", kItems,
                               std::span<const std::string>(kPanel))
                  .ok());
  constexpr size_t kBatches = 7;
  constexpr size_t kBatchSize = 12;
  for (size_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(engine.Ingest("telem-commit", MakeBatch(b, kBatchSize)).ok());
  }
  // The retry counter registers on the first seqlock *read* — take one.
  ASSERT_TRUE(engine.Query("telem-commit").ok());

  MetricsRegistry::Collection after = MetricsRegistry::Global().Collect();
  EXPECT_EQ(CounterValue(after, "dqm_commit_batches_total") -
                CounterValue(before, "dqm_commit_batches_total"),
            kBatches);
  EXPECT_EQ(CounterValue(after, "dqm_commit_votes_total") -
                CounterValue(before, "dqm_commit_votes_total"),
            kBatches * kBatchSize);
  // every_batch default: one publish per commit.
  EXPECT_EQ(CounterValue(after, "dqm_publishes_total") -
                CounterValue(before, "dqm_publishes_total"),
            kBatches);
  EXPECT_EQ(HistogramCount(after, "dqm_commit_batch_votes") -
                HistogramCount(before, "dqm_commit_batch_votes"),
            kBatches);
  // Telemetry is enabled, so the timed histograms moved too.
  EXPECT_EQ(HistogramCount(after, "dqm_commit_latency_ns") -
                HistogramCount(before, "dqm_commit_latency_ns"),
            kBatches);
  EXPECT_EQ(HistogramCount(after, "dqm_publish_latency_ns") -
                HistogramCount(before, "dqm_publish_latency_ns"),
            kBatches);
  // The seqlock retry counter exists even when no retry ever happened —
  // a scrape can always tell "zero retries" apart from "not instrumented".
  bool seqlock_registered = false;
  for (const auto& counter : after.counters) {
    seqlock_registered |= counter.name == "dqm_seqlock_read_retries_total";
  }
  EXPECT_TRUE(seqlock_registered);
}

TEST(EngineTelemetryTest, QualityGaugesTrackSessionLifetime) {
  const std::string name = "telem-gauges";
  DqmEngine engine;
  {
    Result<std::shared_ptr<EstimationSession>> session = engine.OpenSession(
        name, kItems, std::span<const std::string>(kPanel));
    ASSERT_TRUE(session.ok());
    // Gauges exist from open (quality starts at 1.0: an empty dataset is
    // presumed clean until evidence arrives).
    MetricsRegistry::Collection at_open = MetricsRegistry::Global().Collect();
    double quality = -1.0;
    EXPECT_EQ(SessionGaugeCount(at_open, "dqm_session_quality", name,
                                &quality),
              kPanel.size());
    EXPECT_EQ(quality, 1.0);

    ASSERT_TRUE(engine.Ingest(name, MakeBatch(3, 40)).ok());
    MetricsRegistry::Collection at_publish =
        MetricsRegistry::Global().Collect();
    double published = -1.0;
    EXPECT_EQ(SessionGaugeCount(at_publish, "dqm_session_quality", name,
                                &published),
              kPanel.size());
    EXPECT_EQ(published, (*session)->snapshot().estimates.back().quality_score);
    EXPECT_EQ(SessionGaugeCount(at_publish, "dqm_session_total_errors", name),
              kPanel.size());
    ASSERT_TRUE(engine.CloseSession(name).ok());
    // Handle still held: close only unregisters the name.
    EXPECT_EQ(SessionGaugeCount(MetricsRegistry::Global().Collect(),
                                "dqm_session_quality", name),
              kPanel.size());
  }
  // Last handle dropped -> session destroyed -> gauges leave the surface.
  MetricsRegistry::Collection after = MetricsRegistry::Global().Collect();
  EXPECT_EQ(SessionGaugeCount(after, "dqm_session_quality", name), 0u);
  EXPECT_EQ(SessionGaugeCount(after, "dqm_session_total_errors", name), 0u);
}

TEST(EngineTelemetryTest, EngineRollupCountsEachSessionOnceAndDrains) {
  DqmEngine engine;
  constexpr size_t kSessions = 5;
  for (size_t s = 0; s < kSessions; ++s) {
    std::string name = "telem-rollup-" + std::to_string(s);
    ASSERT_TRUE(engine
                    .OpenSession(name, kItems,
                                 std::span<const std::string>(kPanel))
                    .ok());
    ASSERT_TRUE(engine.Ingest(name, MakeBatch(s, 25)).ok());
  }
  engine.RefreshTelemetry();
  MetricsRegistry::Collection with_sessions =
      MetricsRegistry::Global().Collect();
  EXPECT_EQ(GaugeValue(with_sessions, "dqm_engine_sessions_open"),
            static_cast<double>(kSessions));
  // Exactly-once: the roll-up equals the sum over the session handles, no
  // double counting across shards.
  size_t expected_retained = 0;
  for (const std::string& name : engine.SessionNames()) {
    expected_retained += engine.GetSession(name).value()->RetainedBytes();
  }
  EXPECT_GT(expected_retained, 0u);
  EXPECT_EQ(GaugeValue(with_sessions, "dqm_engine_retained_bytes"),
            static_cast<double>(expected_retained));

  // Refresh is idempotent — Set semantics, so a second walk cannot
  // accumulate.
  engine.RefreshTelemetry();
  EXPECT_EQ(GaugeValue(MetricsRegistry::Global().Collect(),
                       "dqm_engine_retained_bytes"),
            static_cast<double>(expected_retained));

  for (const std::string& name : engine.SessionNames()) {
    ASSERT_TRUE(engine.CloseSession(name).ok());
  }
  engine.RefreshTelemetry();
  MetricsRegistry::Collection drained = MetricsRegistry::Global().Collect();
  EXPECT_EQ(GaugeValue(drained, "dqm_engine_sessions_open"), 0.0);
  EXPECT_EQ(GaugeValue(drained, "dqm_engine_retained_bytes"), 0.0);
}

TEST(EngineTelemetryTest, CoalescedCadenceCountsDeferredPublishes) {
  MetricsRegistry::Collection before = MetricsRegistry::Global().Collect();
  DqmEngine engine;
  SessionOptions options;
  options.cadence = PublishCadence::kEveryNVotes;
  options.publish_every_votes = 1000;  // never reached below
  Result<std::shared_ptr<EstimationSession>> session = engine.OpenSession(
      "telem-deferred", kItems, std::span<const std::string>(kPanel), options);
  ASSERT_TRUE(session.ok());
  constexpr size_t kBatches = 6;
  for (size_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE((*session)->AddVotes(MakeBatch(b, 10)).ok());
  }
  MetricsRegistry::Collection after = MetricsRegistry::Global().Collect();
  EXPECT_EQ(CounterValue(after, "dqm_publish_deferred_total") -
                CounterValue(before, "dqm_publish_deferred_total"),
            kBatches);
  EXPECT_EQ(CounterValue(after, "dqm_publishes_total"),
            CounterValue(before, "dqm_publishes_total"));
}

TEST(EngineTelemetryTest, StripedSessionExportsPerStripeLockCounters) {
  MetricsRegistry::Collection before = MetricsRegistry::Global().Collect();
  DqmEngine engine;
  SessionOptions options;
  options.cadence = PublishCadence::kEveryNVotes;
  options.publish_every_votes = 64;
  options.ingest_stripes = 4;
  Result<std::shared_ptr<EstimationSession>> session = engine.OpenSession(
      "telem-striped", kItems, std::span<const std::string>(kPanel), options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->concurrent_ingest());
  for (size_t b = 0; b < 20; ++b) {
    ASSERT_TRUE((*session)->AddVotes(MakeBatch(b, 16)).ok());
  }
  (*session)->Publish();
  MetricsRegistry::Collection after = MetricsRegistry::Global().Collect();
  uint64_t acquisitions = 0;
  for (size_t stripe = 0; stripe < 4; ++stripe) {
    telemetry::LabelSet labels = {{"stripe", std::to_string(stripe)}};
    acquisitions +=
        CounterValue(after, "dqm_stripe_lock_acquisitions_total", labels) -
        CounterValue(before, "dqm_stripe_lock_acquisitions_total", labels);
  }
  // Every batch routes each vote's stripe once per distinct stripe touched;
  // at minimum each committed batch acquired one stripe lock.
  EXPECT_GE(acquisitions, 20u);
  // The publish phase split was recorded (striped path only).
  EXPECT_GT(HistogramCount(after, "dqm_publish_pause_ns") -
                HistogramCount(before, "dqm_publish_pause_ns"),
            0u);
  EXPECT_GT(HistogramCount(after, "dqm_publish_fold_ns") -
                HistogramCount(before, "dqm_publish_fold_ns"),
            0u);
}

TEST(EngineTelemetryTest, FlightRecorderCapturesCommitAndPublishSpans) {
  DqmEngine engine;
  Result<std::shared_ptr<EstimationSession>> session = engine.OpenSession(
      "telem-flight", kItems, std::span<const std::string>(kPanel));
  ASSERT_TRUE(session.ok());
  constexpr size_t kBatches = 5;
  constexpr size_t kBatchSize = 20;
  for (size_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE((*session)->AddVotes(MakeBatch(b, kBatchSize)).ok());
  }
  std::vector<telemetry::Span> spans =
      (*session)->flight_recorder().Snapshot();
  size_t commits = 0;
  size_t publishes = 0;
  for (const telemetry::Span& span : spans) {
    EXPECT_GE(span.end_nanos, span.start_nanos);
    if (span.kind == telemetry::SpanKind::kCommit) {
      ++commits;
      EXPECT_EQ(span.value, kBatchSize);  // commit spans carry batch size
    }
    if (span.kind == telemetry::SpanKind::kPublish) ++publishes;
  }
  EXPECT_EQ(commits, kBatches);
  EXPECT_EQ(publishes, kBatches);  // every_batch cadence
  // Tickets are unique and sorted.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].ticket, spans[i].ticket);
  }
}

}  // namespace
}  // namespace dqm::engine
