#include "estimators/switch_total.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenario.h"
#include "estimators/chao92.h"

namespace dqm::estimators {
namespace {

using crowd::Vote;
using crowd::VoteEvent;

TEST(SwitchTotalTest, EmptyEstimateIsZero) {
  SwitchTotalErrorEstimator estimator(10);
  EXPECT_DOUBLE_EQ(estimator.Estimate(), 0.0);
  EXPECT_EQ(estimator.name(), "SWITCH");
}

TEST(SwitchTotalTest, EstimateNeverNegative) {
  SwitchTotalErrorEstimator estimator(5);
  // Feed many clean votes plus one retracted dirty vote.
  uint32_t task = 0;
  estimator.Observe({task, task, 0, Vote::kDirty});
  for (uint32_t t = 1; t < 30; ++t) {
    estimator.Observe({t, t, 0, Vote::kClean});
    estimator.Observe({t, t, 1, Vote::kClean});
    EXPECT_GE(estimator.Estimate(), 0.0);
  }
}

TEST(SwitchTotalTest, InitialDirectionIsPositive) {
  SwitchTotalErrorEstimator estimator(5);
  EXPECT_EQ(estimator.direction(), 1);
}

TEST(SwitchTotalTest, DirectionFlipsWhenVotingFalls) {
  SwitchTotalErrorEstimator::Config config;
  config.smooth_window = 1;
  config.flip_threshold_abs = 2.0;
  SwitchTotalErrorEstimator estimator(20, config);
  // Tasks 0..9: one fresh dirty vote each -> VOTING rises to 10.
  for (uint32_t t = 0; t < 10; ++t) {
    estimator.Observe({t, t, t, Vote::kDirty});
  }
  // Tasks 10..29: two clean votes per item -> VOTING falls toward 0.
  uint32_t task = 10;
  for (uint32_t round = 0; round < 2; ++round) {
    for (uint32_t i = 0; i < 10; ++i) {
      estimator.Observe({task, task, i, Vote::kClean});
      ++task;
    }
  }
  EXPECT_EQ(estimator.direction(), -1);
}

TEST(SwitchTotalTest, TwoSidedModeAppliesBothCorrections) {
  SwitchTotalErrorEstimator::Config two_sided;
  two_sided.two_sided = true;
  SwitchTotalErrorEstimator both(10, two_sided);
  SwitchTotalErrorEstimator one_sided(10);
  core::Scenario scenario = core::SimulationScenario(0.05, 0.2, 5);
  scenario.num_items = 10;
  scenario.dirty_in_candidates = 3;
  scenario.num_candidates = 10;
  core::SimulatedRun run = core::SimulateScenario(scenario, 40, 3);
  for (const VoteEvent& event : run.log.events()) {
    both.Observe(event);
    one_sided.Observe(event);
  }
  // two-sided = majority + xi+ - xi-; one-sided uses only one branch.
  double majority = both.MajorityCount();
  EXPECT_NEAR(both.Estimate(),
              std::max(0.0, majority + both.RemainingPositive() -
                                both.RemainingNegative()),
              1e-9);
  double expected_one =
      (one_sided.direction() >= 0)
          ? majority + one_sided.RemainingPositive()
          : majority - one_sided.RemainingNegative();
  EXPECT_NEAR(one_sided.Estimate(), std::max(0.0, expected_one), 1e-9);
}

TEST(SwitchTotalTest, ConvergesOnCleanCrowd) {
  // With near-perfect workers and full coverage, SWITCH converges to the
  // true error count.
  core::Scenario scenario = core::SimulationScenario(0.0, 0.02, 20);
  core::SimulatedRun run = core::SimulateScenario(scenario, 600, 5);
  SwitchTotalErrorEstimator estimator(scenario.num_items);
  for (const VoteEvent& event : run.log.events()) estimator.Observe(event);
  EXPECT_NEAR(estimator.Estimate(), 100.0, 8.0);
}

TEST(SwitchTotalTest, RobustToFalsePositivesAtScale) {
  // The paper's headline claim (Figure 7(b)/(c)): with FP noise, SWITCH
  // stays near the truth where Chao92 overestimates severely.
  core::Scenario scenario = core::SimulationScenario(0.01, 0.1, 15);
  core::SimulatedRun run = core::SimulateScenario(scenario, 800, 17);
  SwitchTotalErrorEstimator switch_est(scenario.num_items);
  Chao92Estimator chao(scenario.num_items);
  for (const VoteEvent& event : run.log.events()) {
    switch_est.Observe(event);
    chao.Observe(event);
  }
  double switch_error = std::abs(switch_est.Estimate() - 100.0);
  double chao_error = std::abs(chao.Estimate() - 100.0);
  EXPECT_LT(switch_error, 25.0);
  EXPECT_GT(chao_error, switch_error);
}

TEST(SwitchTotalTest, VotingTrendReflectsHistory) {
  SwitchTotalErrorEstimator estimator(50);
  for (uint32_t t = 0; t < 20; ++t) {
    estimator.Observe({t, t, t, Vote::kDirty});  // VOTING rises by 1/task
  }
  EXPECT_GT(estimator.VotingTrend(), 0.5);
}

}  // namespace
}  // namespace dqm::estimators
