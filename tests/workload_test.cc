#include "workload/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "workload/families.h"

namespace dqm::workload {
namespace {

std::unique_ptr<Workload> MustCreate(const std::string& spec) {
  Result<std::unique_ptr<Workload>> workload =
      WorkloadRegistry::Global().Create(spec);
  EXPECT_TRUE(workload.ok()) << spec << ": " << workload.status().ToString();
  return std::move(workload).value();
}

/// Fraction of votes disagreeing with the hidden truth.
double DisagreementRate(const GeneratedWorkload& run) {
  size_t wrong = 0;
  for (const crowd::VoteEvent& event : run.log.events()) {
    bool voted_dirty = event.vote == crowd::Vote::kDirty;
    if (voted_dirty != run.truth[event.item]) ++wrong;
  }
  return static_cast<double>(wrong) /
         static_cast<double>(run.log.num_events());
}

TEST(WorkloadRegistryTest, RegistersTheFiveBuiltinFamilies) {
  std::vector<std::string> names = WorkloadRegistry::Global().Names();
  for (const char* family :
       {"benign", "drift", "adversarial", "burst", "heavytail"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), family) != names.end())
        << family;
    EXPECT_TRUE(WorkloadRegistry::Global().Contains(family)) << family;
    Result<std::string> help = WorkloadRegistry::Global().Help(family);
    ASSERT_TRUE(help.ok()) << family;
    EXPECT_FALSE(help->empty()) << family;
  }
}

TEST(WorkloadRegistryTest, RejectsUnknownNamesAndBadParams) {
  EXPECT_EQ(WorkloadRegistry::Global().Create("tsunami").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(WorkloadRegistry::Global().Create("").status().code(),
            StatusCode::kInvalidArgument);
  // Unknown param, malformed value, out-of-range value, inconsistent sizes.
  EXPECT_EQ(
      WorkloadRegistry::Global().Create("drift?walk=0.02&wobble=1").status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(WorkloadRegistry::Global().Create("drift?walk=fast").status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      WorkloadRegistry::Global().Create("adversarial?fraction=1.5").status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      WorkloadRegistry::Global().Create("adversarial?mode=bribe").status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(WorkloadRegistry::Global().Create("benign?dirty=50&n=20").status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      WorkloadRegistry::Global().Create("burst?min_batch=64&max_batch=8")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(WorkloadTest, GenerationIsDeterministicPerSeed) {
  for (const std::string& name : WorkloadRegistry::Global().Names()) {
    std::string spec = name + "?n=60&dirty=10&tasks=30";
    GeneratedWorkload a = MustCreate(spec)->Generate(7);
    GeneratedWorkload b = MustCreate(spec)->Generate(7);
    EXPECT_EQ(a.truth, b.truth) << spec;
    EXPECT_EQ(a.log.events(), b.log.events()) << spec;
    EXPECT_EQ(a.batch_sizes, b.batch_sizes) << spec;

    GeneratedWorkload c = MustCreate(spec)->Generate(8);
    EXPECT_NE(a.log.events(), c.log.events()) << spec;
  }
}

TEST(WorkloadTest, EveryFamilyHonorsTheCommonShapeParams) {
  for (const std::string& name : WorkloadRegistry::Global().Names()) {
    std::string spec = name + "?n=90&dirty=15&tasks=40&ipt=9";
    std::unique_ptr<Workload> workload = MustCreate(spec);
    EXPECT_EQ(workload->num_items(), 90u) << spec;
    GeneratedWorkload run = workload->Generate(3);
    EXPECT_EQ(run.truth.size(), 90u) << spec;
    EXPECT_EQ(run.NumDirty(), 15u) << spec;
    EXPECT_EQ(run.log.num_items(), 90u) << spec;
    EXPECT_EQ(run.log.num_events(), 40u * 9u) << spec;
    // The batch partition always covers the log exactly.
    EXPECT_EQ(std::accumulate(run.batch_sizes.begin(), run.batch_sizes.end(),
                              size_t{0}),
              run.log.num_events())
        << spec;
    for (size_t size : run.batch_sizes) EXPECT_GT(size, 0u) << spec;
  }
}

TEST(WorkloadTest, AdversarialCohortRaisesDisagreementSharply) {
  const std::string shape = "?n=200&dirty=40&tasks=150";
  GeneratedWorkload honest = MustCreate("benign" + shape)->Generate(5);
  GeneratedWorkload hostile =
      MustCreate("adversarial" + shape + "&fraction=0.5&mode=invert")
          ->Generate(5);
  // Half the workers voting truth-inverted pushes disagreement toward 50%;
  // the honest crowd stays near its ~3% base error rate.
  EXPECT_LT(DisagreementRate(honest), 0.10);
  EXPECT_GT(DisagreementRate(hostile), 0.30);
}

TEST(WorkloadTest, SpamDirtyCohortOnlyAffectsCleanItems) {
  GeneratedWorkload run =
      MustCreate("adversarial?n=150&dirty=30&tasks=120&fraction=1.0"
                 "&mode=spam-dirty&fp=0&fn=0")
          ->Generate(9);
  // An all-spam-dirty crowd votes dirty on everything: every clean-item
  // vote is wrong, every dirty-item vote is (accidentally) right.
  for (const crowd::VoteEvent& event : run.log.events()) {
    EXPECT_EQ(event.vote, crowd::Vote::kDirty);
  }
}

TEST(WorkloadTest, DriftDegradesTheCrowdOverTime) {
  // Strong upward trend: by construction the late tasks must be answered
  // far less accurately than the early ones.
  GeneratedWorkload run =
      MustCreate("drift?n=200&dirty=40&tasks=200&walk=0.01&trend=0.002")
          ->Generate(11);
  const std::vector<crowd::VoteEvent>& events = run.log.events();
  size_t half = events.size() / 2;
  auto disagreement = [&](size_t begin, size_t end) {
    size_t wrong = 0;
    for (size_t i = begin; i < end; ++i) {
      bool voted_dirty = events[i].vote == crowd::Vote::kDirty;
      if (voted_dirty != run.truth[events[i].item]) ++wrong;
    }
    return static_cast<double>(wrong) / static_cast<double>(end - begin);
  };
  EXPECT_GT(disagreement(half, events.size()),
            disagreement(0, half) + 0.05);
}

TEST(WorkloadTest, BurstBatchesAreHeavyTailedAndBounded) {
  GeneratedWorkload run =
      MustCreate("burst?n=200&dirty=40&tasks=300&alpha=1.1&min_batch=8"
                 "&max_batch=256")
          ->Generate(13);
  ASSERT_GT(run.batch_sizes.size(), 1u);
  size_t smallest = *std::min_element(run.batch_sizes.begin(),
                                      run.batch_sizes.end());
  size_t largest = *std::max_element(run.batch_sizes.begin(),
                                     run.batch_sizes.end());
  EXPECT_LE(largest, 256u);
  // Heavy tail: the spread must actually show up (not a fixed cadence).
  EXPECT_GE(largest, smallest * 4);
}

TEST(WorkloadTest, HeavyTailDifficultyRaisesErrorsAboveBenign) {
  const std::string shape = "?n=200&dirty=60&tasks=200";
  GeneratedWorkload benign = MustCreate("benign" + shape)->Generate(17);
  GeneratedWorkload hard =
      MustCreate("heavytail" + shape + "&hard_fraction=0.5&scale=0.3")
          ->Generate(17);
  EXPECT_GT(DisagreementRate(hard), DisagreementRate(benign) + 0.02);
}

TEST(WorkloadTest, UserFamiliesCanRegisterAndResolve) {
  // The registry is open: a custom family registers once and resolves via
  // the same spec grammar as the builtins.
  WorkloadRegistry registry;
  Status status = registry.Register(WorkloadRegistry::Entry{
      .name = "Custom",
      .help = "test-only",
      .factory = [](const EstimatorSpec& spec)
          -> Result<std::unique_ptr<Workload>> {
        SpecParamReader reader(spec);
        DQM_ASSIGN_OR_RETURN(CommonParams common, ReadCommonParams(reader));
        DQM_RETURN_NOT_OK(reader.VerifyAllConsumed());
        Result<std::unique_ptr<Workload>> benign =
            WorkloadRegistry::Global().Create(
                "benign?dirty=5&n=" + std::to_string(common.num_items));
        return benign;
      }});
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(registry.Contains("custom"));  // names fold to lower case
  EXPECT_EQ(registry.Register(WorkloadRegistry::Entry{
                                  .name = "custom",
                                  .help = "",
                                  .factory = [](const EstimatorSpec&)
                                      -> Result<std::unique_ptr<Workload>> {
                                    return Status::InvalidArgument("unused");
                                  }})
                .code(),
            StatusCode::kAlreadyExists);
  Result<std::unique_ptr<Workload>> created =
      registry.Create("CUSTOM?n=44&dirty=4");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ((*created)->num_items(), 44u);
}

}  // namespace
}  // namespace dqm::workload
