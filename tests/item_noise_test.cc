// Tests for per-item difficulty (CrowdSimulator::SetItemNoise) and the
// Chao1 extra baseline.

#include <memory>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenario.h"
#include "crowd/assignment.h"
#include "crowd/simulator.h"
#include "estimators/chao92.h"

namespace dqm {
namespace {

using crowd::CrowdSimulator;
using crowd::ItemNoise;
using crowd::ResponseLog;
using crowd::UniformAssignment;
using crowd::Vote;
using crowd::WorkerPool;

CrowdSimulator MakePerfectWorkerSim(size_t num_items, size_t dirty_prefix,
                                    uint64_t seed) {
  std::vector<bool> truth(num_items, false);
  for (size_t i = 0; i < dirty_prefix; ++i) truth[i] = true;
  WorkerPool::Config pool;  // perfect workers; only item noise causes errors
  CrowdSimulator::Config config;
  config.seed = seed;
  return CrowdSimulator(
      std::move(truth),
      std::make_unique<UniformAssignment>(num_items, num_items),
      WorkerPool(pool, Rng(seed)), config);
}

TEST(ItemNoiseTest, HardDirtyItemsGetMissed) {
  const size_t num_items = 400;
  CrowdSimulator sim = MakePerfectWorkerSim(num_items, 200, 9);
  std::vector<ItemNoise> noise(num_items);
  for (size_t i = 0; i < 100; ++i) {
    noise[i].extra_false_negative = 0.5f;  // items 0..99 are hard
  }
  sim.SetItemNoise(std::move(noise));
  ResponseLog log(num_items);
  sim.RunTasks(log, 30);  // every task covers all items

  size_t hard_missed = 0, easy_missed = 0;
  for (const crowd::VoteEvent& event : log.events()) {
    if (event.item < 100 && event.vote == Vote::kClean) ++hard_missed;
    if (event.item >= 100 && event.item < 200 &&
        event.vote == Vote::kClean) {
      ++easy_missed;
    }
  }
  // Hard items are missed ~50% of the time; easy dirty items never
  // (workers themselves are perfect).
  EXPECT_EQ(easy_missed, 0u);
  EXPECT_NEAR(static_cast<double>(hard_missed) / (100.0 * 30.0), 0.5, 0.05);
}

TEST(ItemNoiseTest, ConfusingCleanItemsGetFlagged) {
  const size_t num_items = 300;
  CrowdSimulator sim = MakePerfectWorkerSim(num_items, 0, 11);
  std::vector<ItemNoise> noise(num_items);
  for (size_t i = 0; i < 50; ++i) {
    noise[i].extra_false_positive = 0.3f;
  }
  sim.SetItemNoise(std::move(noise));
  ResponseLog log(num_items);
  sim.RunTasks(log, 40);
  size_t confusing_fp = 0, plain_fp = 0;
  for (const crowd::VoteEvent& event : log.events()) {
    if (event.vote != Vote::kDirty) continue;
    if (event.item < 50) {
      ++confusing_fp;
    } else {
      ++plain_fp;
    }
  }
  EXPECT_EQ(plain_fp, 0u);
  EXPECT_NEAR(static_cast<double>(confusing_fp) / (50.0 * 40.0), 0.3, 0.05);
}

TEST(ItemNoiseTest, EmptyNoiseIsNoOp) {
  CrowdSimulator a = MakePerfectWorkerSim(50, 10, 13);
  CrowdSimulator b = MakePerfectWorkerSim(50, 10, 13);
  b.SetItemNoise({});
  ResponseLog log_a(50), log_b(50);
  a.RunTasks(log_a, 5);
  b.RunTasks(log_b, 5);
  ASSERT_EQ(log_a.num_events(), log_b.num_events());
  for (size_t i = 0; i < log_a.num_events(); ++i) {
    EXPECT_EQ(log_a.events()[i], log_b.events()[i]);
  }
}

TEST(ItemNoiseDeathTest, MisalignedNoiseAborts) {
  CrowdSimulator sim = MakePerfectWorkerSim(50, 10, 13);
  EXPECT_DEATH(sim.SetItemNoise(std::vector<ItemNoise>(7)), "align");
}

TEST(ItemNoiseTest, ScenarioBuildsNoiseDeterministically) {
  core::Scenario scenario = core::ProductScenario();
  scenario.num_items = 500;
  scenario.num_candidates = 500;
  scenario.dirty_in_candidates = 50;
  core::SimulatedRun a = core::SimulateScenario(scenario, 20, 21);
  core::SimulatedRun b = core::SimulateScenario(scenario, 20, 21);
  ASSERT_EQ(a.log.num_events(), b.log.num_events());
  for (size_t i = 0; i < a.log.num_events(); ++i) {
    EXPECT_EQ(a.log.events()[i], b.log.events()[i]);
  }
}

TEST(Chao1EstimatorTest, HandComputedValue) {
  estimators::Chao1Estimator chao1(10);
  EXPECT_DOUBLE_EQ(chao1.Estimate(), 0.0);
  // 3 singletons, 1 doubleton: c=4, f1=3, f2=1.
  // D = 4 + 3*2 / (2*(1+1)) = 5.5.
  for (uint32_t i = 0; i < 3; ++i) {
    chao1.Observe({0, 0, i, Vote::kDirty});
  }
  chao1.Observe({1, 1, 5, Vote::kDirty});
  chao1.Observe({2, 2, 5, Vote::kDirty});
  EXPECT_DOUBLE_EQ(chao1.Estimate(), 5.5);
  EXPECT_EQ(chao1.name(), "CHAO1");
}

TEST(Chao1EstimatorTest, NoSingletonsGivesObservedCount) {
  estimators::Chao1Estimator chao1(5);
  for (uint32_t round = 0; round < 2; ++round) {
    for (uint32_t i = 0; i < 5; ++i) {
      chao1.Observe({round, round, i, Vote::kDirty});
    }
  }
  EXPECT_DOUBLE_EQ(chao1.Estimate(), 5.0);
}

TEST(Chao1EstimatorTest, SharesChao92FalsePositiveFragility) {
  // Under FP noise Chao1, like Chao92, overestimates — the reason the
  // paper needed a different estimator.
  core::Scenario scenario = core::SimulationScenario(0.01, 0.1, 15);
  core::SimulatedRun run = core::SimulateScenario(scenario, 400, 5);
  estimators::Chao1Estimator chao1(scenario.num_items);
  for (const crowd::VoteEvent& event : run.log.events()) {
    chao1.Observe(event);
  }
  EXPECT_GT(chao1.Estimate(), 130.0);  // truth is 100
}

}  // namespace
}  // namespace dqm
