#include "estimators/chao92.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenario.h"
#include "crowd/simulator.h"

namespace dqm::estimators {
namespace {

using crowd::Vote;
using crowd::VoteEvent;

TEST(Chao92EstimatorTest, EmptyGivesZero) {
  Chao92Estimator chao(10);
  EXPECT_DOUBLE_EQ(chao.Estimate(), 0.0);
}

TEST(Chao92EstimatorTest, CleanVotesAreNoOps) {
  Chao92Estimator chao(10);
  for (uint32_t i = 0; i < 10; ++i) {
    chao.Observe({0, 0, i, Vote::kClean});
  }
  EXPECT_DOUBLE_EQ(chao.Estimate(), 0.0);
}

TEST(Chao92EstimatorTest, FullCoverageConverges) {
  // Every item marked dirty twice: no singletons, D = c exactly.
  Chao92Estimator chao(5);
  for (uint32_t round = 0; round < 2; ++round) {
    for (uint32_t i = 0; i < 5; ++i) {
      chao.Observe({round, round, i, Vote::kDirty});
    }
  }
  EXPECT_DOUBLE_EQ(chao.Estimate(), 5.0);
}

TEST(Chao92EstimatorTest, SingletonsInflateEstimate) {
  // 4 doubletons + 2 singletons: estimate must exceed c = 6.
  Chao92Estimator chao(10, /*skew_correction=*/false);
  for (uint32_t i = 0; i < 4; ++i) {
    chao.Observe({0, 0, i, Vote::kDirty});
    chao.Observe({1, 1, i, Vote::kDirty});
  }
  chao.Observe({2, 2, 8, Vote::kDirty});
  chao.Observe({2, 2, 9, Vote::kDirty});
  EXPECT_GT(chao.Estimate(), 6.0);
}

TEST(Chao92EstimatorTest, PaperExampleOneRegression) {
  // Section 3.2.1 Example 1 regenerated end-to-end: 1000 pairs / 100 dups,
  // 20 items per task, 0.9 detection rate, no false positives, 100 tasks.
  // The remaining-error estimate should be small and nearly unbiased
  // (paper: ~16.6 with cnominal ~83; exact values depend on the stream).
  core::Scenario scenario = core::SimulationScenario(0.0, 0.1, 20);
  core::SimulatedRun run = core::SimulateScenario(scenario, 100, 7);
  Chao92Estimator chao(scenario.num_items, /*skew_correction=*/false);
  for (const VoteEvent& event : run.log.events()) chao.Observe(event);
  double nominal = static_cast<double>(run.log.NominalCount());
  EXPECT_GT(nominal, 70.0);
  EXPECT_LT(nominal, 100.0);
  // Total estimate lands near the true 100 (within 15%).
  EXPECT_NEAR(chao.Estimate(), 100.0, 15.0);
}

TEST(Chao92EstimatorTest, FalsePositivesCauseOverestimate) {
  // The singleton-error entanglement (Section 3.2.2): with 1% FP the
  // estimate overshoots the true 100 markedly.
  core::Scenario clean = core::SimulationScenario(0.0, 0.1, 20);
  core::Scenario noisy = core::SimulationScenario(0.01, 0.1, 20);
  core::SimulatedRun run_clean = core::SimulateScenario(clean, 100, 7);
  core::SimulatedRun run_noisy = core::SimulateScenario(noisy, 100, 7);
  Chao92Estimator chao_clean(clean.num_items, false);
  Chao92Estimator chao_noisy(noisy.num_items, false);
  for (const VoteEvent& e : run_clean.log.events()) chao_clean.Observe(e);
  for (const VoteEvent& e : run_noisy.log.events()) chao_noisy.Observe(e);
  EXPECT_GT(chao_noisy.Estimate(), chao_clean.Estimate() + 20.0);
}

TEST(Chao92EstimatorTest, SkewCorrectionAtLeastNoskew) {
  core::Scenario scenario = core::SimulationScenario(0.01, 0.1, 15);
  core::SimulatedRun run = core::SimulateScenario(scenario, 60, 11);
  Chao92Estimator skew(scenario.num_items, true);
  Chao92Estimator noskew(scenario.num_items, false);
  for (const VoteEvent& e : run.log.events()) {
    skew.Observe(e);
    noskew.Observe(e);
  }
  EXPECT_GE(skew.Estimate(), noskew.Estimate());
}

TEST(JackknifeEstimatorTest, BasicBehavior) {
  JackknifeEstimator jk(10);
  EXPECT_DOUBLE_EQ(jk.Estimate(), 0.0);
  // 3 species, 1 singleton, n = 5: D = 3 + 1 * 4/5.
  jk.Observe({0, 0, 0, Vote::kDirty});
  jk.Observe({0, 0, 1, Vote::kDirty});
  jk.Observe({1, 1, 0, Vote::kDirty});
  jk.Observe({1, 1, 1, Vote::kDirty});
  jk.Observe({2, 2, 2, Vote::kDirty});
  EXPECT_NEAR(jk.Estimate(), 3.0 + 0.8, 1e-12);
  EXPECT_EQ(jk.name(), "JACKKNIFE1");
}

TEST(VChao92EstimatorTest, UsesMajorityNotNominal) {
  // One item: 1 dirty vote then 2 clean votes -> majority clean.
  // Plain Chao92 would report ~1+ species; vChao92's c is 0.
  VChao92Estimator vchao(5, /*shift=*/1);
  vchao.Observe({0, 0, 0, Vote::kDirty});
  vchao.Observe({1, 1, 0, Vote::kClean});
  vchao.Observe({2, 2, 0, Vote::kClean});
  // c_majority = 0, and the shifted f-stats have no f_2 either.
  EXPECT_DOUBLE_EQ(vchao.Estimate(), 0.0);
}

TEST(VChao92EstimatorTest, ShiftSuppressesSingletonNoise) {
  // The false-positive regime vChao92 was designed for: 8 true errors each
  // confirmed by four workers, and 6 false-positive singletons that other
  // workers voted clean (majority clean). Chao92's c_nominal counts the
  // FPs and its f1 is inflated; vChao92 suppresses both.
  auto feed = [](TotalErrorEstimator& estimator) {
    for (uint32_t round = 0; round < 4; ++round) {
      for (uint32_t i = 0; i < 8; ++i) {
        estimator.Observe({round, round, i, Vote::kDirty});
      }
    }
    for (uint32_t i = 8; i < 14; ++i) {
      estimator.Observe({4, 4, i, Vote::kDirty});
      estimator.Observe({5, 5, i, Vote::kClean});
      estimator.Observe({6, 6, i, Vote::kClean});
    }
  };
  Chao92Estimator chao(20, false);
  VChao92Estimator vchao(20, 1, false);
  feed(chao);
  feed(vchao);
  EXPECT_LT(vchao.Estimate(), chao.Estimate());
  // vChao92 lands on the true count (8); Chao92 overestimates it.
  EXPECT_DOUBLE_EQ(vchao.Estimate(), 8.0);
  EXPECT_GT(chao.Estimate(), 14.0);
}

TEST(VChao92EstimatorTest, LargerShiftIsMoreConservative) {
  core::Scenario scenario = core::SimulationScenario(0.02, 0.1, 15);
  core::SimulatedRun run = core::SimulateScenario(scenario, 80, 13);
  VChao92Estimator shift1(scenario.num_items, 1);
  VChao92Estimator shift2(scenario.num_items, 2);
  for (const VoteEvent& e : run.log.events()) {
    shift1.Observe(e);
    shift2.Observe(e);
  }
  EXPECT_LE(shift2.Estimate(), shift1.Estimate() * 1.2);
  EXPECT_EQ(shift1.name(), "V-CHAO");
}

}  // namespace
}  // namespace dqm::estimators
