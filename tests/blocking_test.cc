#include "er/blocking.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "dataset/table.h"

namespace dqm::er {
namespace {

dataset::Table MakeNameTable(const std::vector<std::string>& names) {
  dataset::Table table{dataset::Schema({"id", "name"})};
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_TRUE(table.AppendRow({std::to_string(i), names[i]}).ok());
  }
  return table;
}

TEST(CandidateGeneratorTest, PartitionRespectsThresholds) {
  dataset::Table table = MakeNameTable({
      "golden dragon cafe",   // 0
      "golden dragon cafe",   // 1: exact dup of 0 -> likely match
      "golden dragon caffe",  // 2: near dup -> candidate band
      "quantum flux router",  // 3: unrelated -> unlikely
  });
  CandidateGenerator generator(0.5, 0.95, "name");
  auto result = generator.AllPairs(table);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_total_pairs, 6u);

  auto contains = [](const std::vector<ScoredPair>& pairs, RecordPair p) {
    return std::any_of(pairs.begin(), pairs.end(),
                       [&](const ScoredPair& sp) { return sp.pair == p; });
  };
  EXPECT_TRUE(contains(result->likely_matches, RecordPair(0, 1)));
  EXPECT_TRUE(contains(result->candidates, RecordPair(0, 2)));
  EXPECT_TRUE(contains(result->candidates, RecordPair(1, 2)));
  // Accounting: likely + candidates + unlikely == total.
  EXPECT_EQ(result->likely_matches.size() + result->candidates.size() +
                result->num_unlikely,
            result->num_total_pairs);
}

TEST(CandidateGeneratorTest, ScoresWithinBand) {
  dataset::Table table = MakeNameTable(
      {"alpha beta gamma", "alpha beta gamm", "alpha beta", "delta epsilon"});
  CandidateGenerator generator(0.4, 0.9, "name");
  auto result = generator.AllPairs(table);
  ASSERT_TRUE(result.ok());
  for (const ScoredPair& sp : result->candidates) {
    EXPECT_GE(sp.similarity, 0.4);
    EXPECT_LE(sp.similarity, 0.9);
  }
  for (const ScoredPair& sp : result->likely_matches) {
    EXPECT_GT(sp.similarity, 0.9);
  }
}

TEST(CandidateGeneratorTest, TokenBlockingFindsTokenSharingPairs) {
  dataset::Table table = MakeNameTable({
      "golden dragon cafe",
      "golden dragon caffe",
      "zzz qqq www",
  });
  CandidateGenerator generator(0.3, 0.95, "name");
  auto all = generator.AllPairs(table);
  auto blocked = generator.TokenBlocking(table);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(blocked.ok());
  // The near-duplicate pair shares tokens, so blocking must find it too.
  ASSERT_EQ(blocked->candidates.size() + blocked->likely_matches.size(),
            all->candidates.size() + all->likely_matches.size());
}

TEST(CandidateGeneratorTest, TokenBlockingSubsetOfAllPairs) {
  // Blocked candidates are always a subset of the all-pairs candidates.
  std::vector<std::string> names;
  const char* words[] = {"red", "blue", "green", "fox", "wolf", "bear"};
  for (const char* w1 : words) {
    for (const char* w2 : words) {
      names.push_back(std::string(w1) + " " + w2);
    }
  }
  dataset::Table table = MakeNameTable(names);
  CandidateGenerator generator(0.4, 0.99, "name");
  auto all = generator.AllPairs(table);
  auto blocked = generator.TokenBlocking(table);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(blocked.ok());
  std::set<uint64_t> all_keys;
  for (const auto& sp : all->candidates) all_keys.insert(sp.pair.Key());
  for (const auto& sp : blocked->candidates) {
    EXPECT_TRUE(all_keys.contains(sp.pair.Key()));
  }
  EXPECT_LE(blocked->candidates.size(), all->candidates.size());
}

TEST(CandidateGeneratorTest, TwoSidedBlockingOnlyCrossSide) {
  dataset::Table table{dataset::Schema({"id", "name", "side"})};
  ASSERT_TRUE(table.AppendRow({"0", "widget pro", "a"}).ok());
  ASSERT_TRUE(table.AppendRow({"1", "widget pro", "a"}).ok());
  ASSERT_TRUE(table.AppendRow({"2", "widget pro", "b"}).ok());
  CandidateGenerator generator(0.3, 0.99, "name");
  auto result = generator.TokenBlockingTwoSided(table, "side");
  ASSERT_TRUE(result.ok());
  // Cross product: 2 (side a) x 1 (side b) = 2 pairs; the same-side exact
  // duplicate (0, 1) must not appear anywhere.
  EXPECT_EQ(result->num_total_pairs, 2u);
  for (const auto& sp : result->likely_matches) {
    EXPECT_NE(sp.pair, RecordPair(0, 1));
  }
  EXPECT_EQ(result->likely_matches.size(), 2u);
}

TEST(CandidateGeneratorTest, TooFewRecordsRejected) {
  dataset::Table table = MakeNameTable({"only one"});
  CandidateGenerator generator(0.3, 0.9, "name");
  EXPECT_FALSE(generator.AllPairs(table).ok());
  EXPECT_FALSE(generator.TokenBlocking(table).ok());
}

TEST(CandidateGeneratorTest, UnknownColumnRejected) {
  dataset::Table table = MakeNameTable({"a", "b"});
  CandidateGenerator generator(0.3, 0.9, "nonexistent");
  EXPECT_FALSE(generator.AllPairs(table).ok());
}

TEST(CandidateGeneratorDeathTest, InvalidThresholdsAbort) {
  EXPECT_DEATH({ CandidateGenerator g(0.9, 0.5, "name"); }, "alpha");
  EXPECT_DEATH({ CandidateGenerator g(-0.1, 0.5, "name"); }, "alpha");
  EXPECT_DEATH({ CandidateGenerator g(0.5, 1.5, "name"); }, "alpha");
}

}  // namespace
}  // namespace dqm::er
