#include "estimators/baselines.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "crowd/response_log.h"

namespace dqm::estimators {
namespace {

using crowd::Vote;
using crowd::VoteEvent;

TEST(NominalEstimatorTest, CountsItemsWithAnyDirtyVote) {
  NominalEstimator nominal(4);
  EXPECT_DOUBLE_EQ(nominal.Estimate(), 0.0);
  nominal.Observe({0, 0, 0, Vote::kDirty});
  nominal.Observe({0, 0, 1, Vote::kClean});
  EXPECT_DOUBLE_EQ(nominal.Estimate(), 1.0);
  // Repeat votes on the same item do not double count.
  nominal.Observe({1, 1, 0, Vote::kDirty});
  EXPECT_DOUBLE_EQ(nominal.Estimate(), 1.0);
  nominal.Observe({1, 1, 2, Vote::kDirty});
  EXPECT_DOUBLE_EQ(nominal.Estimate(), 2.0);
  // Clean votes never reduce the nominal count.
  nominal.Observe({2, 2, 0, Vote::kClean});
  nominal.Observe({2, 2, 2, Vote::kClean});
  EXPECT_DOUBLE_EQ(nominal.Estimate(), 2.0);
  EXPECT_EQ(nominal.name(), "NOMINAL");
}

TEST(VotingEstimatorTest, TracksStrictMajority) {
  VotingEstimator voting(2);
  voting.Observe({0, 0, 0, Vote::kDirty});
  EXPECT_DOUBLE_EQ(voting.Estimate(), 1.0);  // 1-0
  voting.Observe({1, 1, 0, Vote::kClean});
  EXPECT_DOUBLE_EQ(voting.Estimate(), 0.0);  // tie -> clean
  voting.Observe({2, 2, 0, Vote::kDirty});
  EXPECT_DOUBLE_EQ(voting.Estimate(), 1.0);  // 2-1
  EXPECT_EQ(voting.name(), "VOTING");
  EXPECT_EQ(voting.MajorityCount(), 1u);
}

TEST(VotingEstimatorTest, AgreesWithResponseLog) {
  Rng rng(42);
  const size_t num_items = 15;
  crowd::ResponseLog log(num_items);
  VotingEstimator voting(num_items);
  NominalEstimator nominal(num_items);
  for (uint32_t i = 0; i < 600; ++i) {
    VoteEvent event{i / 10, i / 10,
                    static_cast<uint32_t>(rng.UniformIndex(num_items)),
                    rng.Bernoulli(0.4) ? Vote::kDirty : Vote::kClean};
    log.Append(event);
    voting.Observe(event);
    nominal.Observe(event);
    ASSERT_DOUBLE_EQ(voting.Estimate(),
                     static_cast<double>(log.MajorityCount()));
    ASSERT_DOUBLE_EQ(nominal.Estimate(),
                     static_cast<double>(log.NominalCount()));
  }
}

TEST(BaselinesDeathTest, OutOfRangeItemAborts) {
  NominalEstimator nominal(2);
  EXPECT_DEATH(nominal.Observe({0, 0, 5, Vote::kDirty}), "");
  VotingEstimator voting(2);
  EXPECT_DEATH(voting.Observe({0, 0, 5, Vote::kDirty}), "");
}

TEST(EstimateSeriesTest, EmptyLogGivesEmptySeries) {
  crowd::ResponseLog log(3);
  VotingEstimator voting(3);
  EXPECT_TRUE(EstimateSeriesByTask(log, voting).empty());
}

TEST(EstimateSeriesTest, OneEntryPerTask) {
  crowd::ResponseLog log(3);
  log.Append({0, 0, 0, Vote::kDirty});
  log.Append({0, 0, 1, Vote::kClean});
  log.Append({1, 1, 2, Vote::kDirty});
  log.Append({2, 2, 0, Vote::kClean});
  VotingEstimator voting(3);
  std::vector<double> series = EstimateSeriesByTask(log, voting);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);  // after task 0: item 0 dirty
  EXPECT_DOUBLE_EQ(series[1], 2.0);  // after task 1: items 0, 2
  EXPECT_DOUBLE_EQ(series[2], 1.0);  // after task 2: item 0 tied -> clean
}

TEST(EstimateSeriesTest, SingleTaskLog) {
  crowd::ResponseLog log(2);
  log.Append({0, 0, 0, Vote::kDirty});
  NominalEstimator nominal(2);
  std::vector<double> series = EstimateSeriesByTask(log, nominal);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
}

}  // namespace
}  // namespace dqm::estimators
