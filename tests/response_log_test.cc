#include "crowd/response_log.h"

#include <algorithm>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace dqm::crowd {
namespace {

TEST(ResponseLogTest, EmptyLog) {
  ResponseLog log(5);
  EXPECT_EQ(log.num_items(), 5u);
  EXPECT_EQ(log.num_events(), 0u);
  EXPECT_EQ(log.NominalCount(), 0u);
  EXPECT_EQ(log.MajorityCount(), 0u);
  EXPECT_FALSE(log.MajorityDirty(0));
}

TEST(ResponseLogTest, TalliesPerItem) {
  ResponseLog log(3);
  log.Append({0, 0, 1, Vote::kDirty});
  log.Append({0, 0, 1, Vote::kClean});
  log.Append({1, 1, 1, Vote::kDirty});
  EXPECT_EQ(log.positive_votes(1), 2u);
  EXPECT_EQ(log.total_votes(1), 3u);
  EXPECT_EQ(log.positive_votes(0), 0u);
  EXPECT_EQ(log.total_positive_votes(), 2u);
  EXPECT_EQ(log.total_votes_all(), 3u);
}

TEST(ResponseLogTest, MajorityRequiresStrictMajority) {
  ResponseLog log(1);
  log.Append({0, 0, 0, Vote::kDirty});
  EXPECT_TRUE(log.MajorityDirty(0));  // 1-0
  log.Append({1, 1, 0, Vote::kClean});
  EXPECT_FALSE(log.MajorityDirty(0));  // 1-1 tie -> default clean
  log.Append({2, 2, 0, Vote::kDirty});
  EXPECT_TRUE(log.MajorityDirty(0));  // 2-1
}

TEST(ResponseLogTest, NominalAndMajorityCountsIncremental) {
  ResponseLog log(4);
  log.Append({0, 0, 0, Vote::kDirty});
  log.Append({0, 0, 1, Vote::kClean});
  EXPECT_EQ(log.NominalCount(), 1u);
  EXPECT_EQ(log.MajorityCount(), 1u);
  log.Append({1, 1, 0, Vote::kClean});  // ties item 0 -> majority drops
  EXPECT_EQ(log.NominalCount(), 1u);
  EXPECT_EQ(log.MajorityCount(), 0u);
  log.Append({2, 2, 1, Vote::kDirty});  // item 1: 1 dirty, 1 clean -> tie
  EXPECT_EQ(log.NominalCount(), 2u);
  EXPECT_EQ(log.MajorityCount(), 0u);
  log.Append({3, 3, 1, Vote::kDirty});  // item 1: 2-1 dirty
  EXPECT_EQ(log.MajorityCount(), 1u);
}

TEST(ResponseLogTest, TaskAndWorkerCounts) {
  ResponseLog log(2);
  log.Append({0, 0, 0, Vote::kClean});
  log.Append({0, 0, 1, Vote::kClean});
  log.Append({3, 2, 0, Vote::kClean});
  EXPECT_EQ(log.num_tasks(), 4u);   // max task id + 1
  EXPECT_EQ(log.num_workers(), 3u);
}

TEST(ResponseLogTest, EventsPreserveArrivalOrder) {
  ResponseLog log(2);
  VoteEvent a{0, 0, 0, Vote::kDirty};
  VoteEvent b{0, 0, 1, Vote::kClean};
  log.Append(a);
  log.Append(b);
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0], a);
  EXPECT_EQ(log.events()[1], b);
}

// Property: incremental counters always agree with a brute-force recount.
class ResponseLogPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ResponseLogPropertyTest, CountersMatchBruteForce) {
  Rng rng(GetParam());
  const size_t num_items = 20;
  ResponseLog log(num_items);
  for (uint32_t event_index = 0; event_index < 400; ++event_index) {
    VoteEvent event{event_index / 10,
                    event_index / 10,
                    static_cast<uint32_t>(rng.UniformIndex(num_items)),
                    rng.Bernoulli(0.3) ? Vote::kDirty : Vote::kClean};
    log.Append(event);

    // Brute-force recount.
    std::vector<uint32_t> pos(num_items, 0), tot(num_items, 0);
    for (const VoteEvent& e : log.events()) {
      ++tot[e.item];
      if (e.vote == Vote::kDirty) ++pos[e.item];
    }
    size_t nominal = 0, majority = 0;
    for (size_t i = 0; i < num_items; ++i) {
      if (pos[i] > 0) ++nominal;
      if (pos[i] * 2 > tot[i]) ++majority;
    }
    ASSERT_EQ(log.NominalCount(), nominal) << "event " << event_index;
    ASSERT_EQ(log.MajorityCount(), majority) << "event " << event_index;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseLogPropertyTest,
                         testing::Values(11, 22, 33, 44));

TEST(ResponseLogDeathTest, ItemOutOfRangeAborts) {
  ResponseLog log(2);
  EXPECT_DEATH(log.Append({0, 0, 2, Vote::kClean}), "out of range");
}

TEST(TallyScanTest, MatchesIncrementalCounters) {
  ResponseLog log(64, RetentionPolicy::kCounts);
  Rng rng(99);
  for (size_t e = 0; e < 2000; ++e) {
    log.Append({static_cast<uint32_t>(e / 10),
                static_cast<uint32_t>(rng.UniformInt(0, 7)),
                static_cast<uint32_t>(rng.UniformInt(0, 63)),
                rng.Bernoulli(0.4) ? Vote::kDirty : Vote::kClean});
  }
  TallyScanResult scan = ScanTallies(log.positive_counts(), log.total_counts());
  EXPECT_EQ(scan.nominal_count, log.NominalCount());
  EXPECT_EQ(scan.majority_count, log.MajorityCount());
  EXPECT_EQ(scan.total_votes, log.num_events());
  EXPECT_EQ(scan.positive_votes, log.total_positive_votes());
}

/// Deterministic little workload reused by the concurrent-ingest tests.
std::vector<VoteEvent> StripedTestEvents(size_t num_items, size_t count,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<VoteEvent> events;
  events.reserve(count);
  for (size_t e = 0; e < count; ++e) {
    events.push_back({static_cast<uint32_t>(e / 16),
                      static_cast<uint32_t>(rng.UniformInt(0, 11)),
                      static_cast<uint32_t>(
                          rng.UniformInt(0, static_cast<int>(num_items) - 1)),
                      rng.Bernoulli(0.3) ? Vote::kDirty : Vote::kClean});
  }
  return events;
}

TEST(ResponseLogConcurrentTest, SingleThreadStripedMatchesSerialAppend) {
  constexpr size_t kItems = 200;
  std::vector<VoteEvent> events = StripedTestEvents(kItems, 3000, 5);

  ResponseLog serial(kItems, RetentionPolicy::kCounts);
  for (const VoteEvent& event : events) serial.Append(event);

  ResponseLog striped(kItems, RetentionPolicy::kCounts);
  striped.EnableConcurrentIngest(4, /*maintain_pair_counts=*/true);
  EXPECT_TRUE(striped.concurrent_ingest());
  EXPECT_GE(striped.num_stripes(), 1u);
  striped.AppendConcurrent(events);
  { auto pause = striped.PauseAndReconcile(); }

  EXPECT_EQ(striped.num_events(), serial.num_events());
  EXPECT_EQ(striped.total_positive_votes(), serial.total_positive_votes());
  EXPECT_EQ(striped.NominalCount(), serial.NominalCount());
  EXPECT_EQ(striped.MajorityCount(), serial.MajorityCount());
  EXPECT_EQ(striped.num_tasks(), serial.num_tasks());
  EXPECT_EQ(striped.num_workers(), serial.num_workers());
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(striped.positive_votes(i), serial.positive_votes(i)) << i;
    ASSERT_EQ(striped.total_votes(i), serial.total_votes(i)) << i;
  }
}

TEST(ResponseLogConcurrentTest, StripeShardsUnionEqualsSerialMatrix) {
  constexpr size_t kItems = 200;
  std::vector<VoteEvent> events = StripedTestEvents(kItems, 2500, 6);

  ResponseLog serial(kItems, RetentionPolicy::kCounts);
  for (const VoteEvent& event : events) serial.Append(event);
  ASSERT_NE(serial.compacted(), nullptr);

  ResponseLog striped(kItems, RetentionPolicy::kCounts);
  striped.EnableConcurrentIngest(4, /*maintain_pair_counts=*/true);
  striped.AppendConcurrent(events);
  { auto pause = striped.PauseAndReconcile(); }
  // The striped matrix is consumed block-wise; compacted() deliberately
  // reports "no single store" in this mode.
  EXPECT_EQ(striped.compacted(), nullptr);
  std::vector<const CompactedVoteStore*> blocks;
  ASSERT_TRUE(striped.AppendCountMatrixBlocks(blocks));
  EXPECT_EQ(blocks.size(), striped.num_stripes());

  // Same pair multiset with the same per-pair counts, independent of slot
  // order: compare as sorted (worker, item, dirty, clean) tuples.
  using PairRow = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>;
  auto collect = [](std::span<const CompactedVoteStore* const> stores) {
    std::vector<PairRow> rows;
    for (const CompactedVoteStore* store : stores) {
      for (size_t p = 0; p < store->num_pairs(); ++p) {
        rows.emplace_back(store->workers()[p], store->items()[p],
                          store->dirty_counts()[p], store->clean_counts()[p]);
      }
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  const CompactedVoteStore* serial_store = serial.compacted();
  EXPECT_EQ(collect(blocks), collect({&serial_store, 1}));
}

TEST(ResponseLogConcurrentTest, ManyProducersReconcileToSerialTallies) {
  constexpr size_t kItems = 128;
  constexpr size_t kProducers = 4;
  std::vector<VoteEvent> events = StripedTestEvents(kItems, 4000, 7);

  ResponseLog serial(kItems, RetentionPolicy::kCounts);
  for (const VoteEvent& event : events) serial.Append(event);

  ResponseLog striped(kItems, RetentionPolicy::kCounts);
  striped.EnableConcurrentIngest(4, /*maintain_pair_counts=*/false);
  std::vector<std::thread> producers;
  size_t chunk = events.size() / kProducers;
  for (size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      size_t begin = t * chunk;
      size_t end = t + 1 == kProducers ? events.size() : begin + chunk;
      // Commit in small batches so producers interleave at stripe level.
      for (size_t b = begin; b < end; b += 32) {
        size_t size = std::min<size_t>(32, end - b);
        striped.AppendConcurrent(
            std::span<const VoteEvent>(&events[b], size));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  { auto pause = striped.PauseAndReconcile(); }

  EXPECT_EQ(striped.num_events(), serial.num_events());
  EXPECT_EQ(striped.NominalCount(), serial.NominalCount());
  EXPECT_EQ(striped.MajorityCount(), serial.MajorityCount());
  EXPECT_EQ(striped.total_positive_votes(), serial.total_positive_votes());
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(striped.positive_votes(i), serial.positive_votes(i)) << i;
    ASSERT_EQ(striped.total_votes(i), serial.total_votes(i)) << i;
  }
}

TEST(ResponseLogConcurrentTest, RetainedBytesCoversStripeShards) {
  ResponseLog striped(256, RetentionPolicy::kCounts);
  striped.EnableConcurrentIngest(4, /*maintain_pair_counts=*/true);
  size_t empty_bytes = striped.RetainedBytes();
  std::vector<VoteEvent> events = StripedTestEvents(256, 3000, 8);
  striped.AppendConcurrent(events);
  { auto pause = striped.PauseAndReconcile(); }
  // Stripe shard storage must show up in the accounting.
  EXPECT_GT(striped.RetainedBytes(), empty_bytes);
}

TEST(ResponseLogConcurrentDeathTest, OutOfRangeItemAbortsNotDropped) {
  // Ids past the last stripe match no stripe filter; without the up-front
  // batch validation they would vanish silently instead of aborting like
  // the serialized Append.
  ResponseLog striped(1000, RetentionPolicy::kCounts);
  striped.EnableConcurrentIngest(1, /*maintain_pair_counts=*/true);
  std::vector<VoteEvent> batch = {{0, 0, 5000, Vote::kDirty}};
  EXPECT_DEATH(striped.AppendConcurrent(batch), "out of range");
}

TEST(ResponseLogConcurrentDeathTest, SerialAppendAbortsOnceStriped) {
  ResponseLog striped(16, RetentionPolicy::kCounts);
  striped.EnableConcurrentIngest(2, /*maintain_pair_counts=*/true);
  EXPECT_DEATH(striped.Append({0, 0, 0, Vote::kDirty}), "serialized path");
}

TEST(ResponseLogConcurrentDeathTest, RequiresCountsRetention) {
  ResponseLog full(16, RetentionPolicy::kFullEvents);
  EXPECT_DEATH(full.EnableConcurrentIngest(2, true), "kCounts");
}

TEST(ResponseLogConcurrentDeathTest, MatrixBlocksAbortWithoutPairCounts) {
  ResponseLog striped(16, RetentionPolicy::kCounts);
  striped.EnableConcurrentIngest(2, /*maintain_pair_counts=*/false);
  std::vector<const CompactedVoteStore*> blocks;
  EXPECT_DEATH(striped.AppendCountMatrixBlocks(blocks), "pair-count");
}

}  // namespace
}  // namespace dqm::crowd
