#include "crowd/response_log.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dqm::crowd {
namespace {

TEST(ResponseLogTest, EmptyLog) {
  ResponseLog log(5);
  EXPECT_EQ(log.num_items(), 5u);
  EXPECT_EQ(log.num_events(), 0u);
  EXPECT_EQ(log.NominalCount(), 0u);
  EXPECT_EQ(log.MajorityCount(), 0u);
  EXPECT_FALSE(log.MajorityDirty(0));
}

TEST(ResponseLogTest, TalliesPerItem) {
  ResponseLog log(3);
  log.Append({0, 0, 1, Vote::kDirty});
  log.Append({0, 0, 1, Vote::kClean});
  log.Append({1, 1, 1, Vote::kDirty});
  EXPECT_EQ(log.positive_votes(1), 2u);
  EXPECT_EQ(log.total_votes(1), 3u);
  EXPECT_EQ(log.positive_votes(0), 0u);
  EXPECT_EQ(log.total_positive_votes(), 2u);
  EXPECT_EQ(log.total_votes_all(), 3u);
}

TEST(ResponseLogTest, MajorityRequiresStrictMajority) {
  ResponseLog log(1);
  log.Append({0, 0, 0, Vote::kDirty});
  EXPECT_TRUE(log.MajorityDirty(0));  // 1-0
  log.Append({1, 1, 0, Vote::kClean});
  EXPECT_FALSE(log.MajorityDirty(0));  // 1-1 tie -> default clean
  log.Append({2, 2, 0, Vote::kDirty});
  EXPECT_TRUE(log.MajorityDirty(0));  // 2-1
}

TEST(ResponseLogTest, NominalAndMajorityCountsIncremental) {
  ResponseLog log(4);
  log.Append({0, 0, 0, Vote::kDirty});
  log.Append({0, 0, 1, Vote::kClean});
  EXPECT_EQ(log.NominalCount(), 1u);
  EXPECT_EQ(log.MajorityCount(), 1u);
  log.Append({1, 1, 0, Vote::kClean});  // ties item 0 -> majority drops
  EXPECT_EQ(log.NominalCount(), 1u);
  EXPECT_EQ(log.MajorityCount(), 0u);
  log.Append({2, 2, 1, Vote::kDirty});  // item 1: 1 dirty, 1 clean -> tie
  EXPECT_EQ(log.NominalCount(), 2u);
  EXPECT_EQ(log.MajorityCount(), 0u);
  log.Append({3, 3, 1, Vote::kDirty});  // item 1: 2-1 dirty
  EXPECT_EQ(log.MajorityCount(), 1u);
}

TEST(ResponseLogTest, TaskAndWorkerCounts) {
  ResponseLog log(2);
  log.Append({0, 0, 0, Vote::kClean});
  log.Append({0, 0, 1, Vote::kClean});
  log.Append({3, 2, 0, Vote::kClean});
  EXPECT_EQ(log.num_tasks(), 4u);   // max task id + 1
  EXPECT_EQ(log.num_workers(), 3u);
}

TEST(ResponseLogTest, EventsPreserveArrivalOrder) {
  ResponseLog log(2);
  VoteEvent a{0, 0, 0, Vote::kDirty};
  VoteEvent b{0, 0, 1, Vote::kClean};
  log.Append(a);
  log.Append(b);
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0], a);
  EXPECT_EQ(log.events()[1], b);
}

// Property: incremental counters always agree with a brute-force recount.
class ResponseLogPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ResponseLogPropertyTest, CountersMatchBruteForce) {
  Rng rng(GetParam());
  const size_t num_items = 20;
  ResponseLog log(num_items);
  for (uint32_t event_index = 0; event_index < 400; ++event_index) {
    VoteEvent event{event_index / 10,
                    event_index / 10,
                    static_cast<uint32_t>(rng.UniformIndex(num_items)),
                    rng.Bernoulli(0.3) ? Vote::kDirty : Vote::kClean};
    log.Append(event);

    // Brute-force recount.
    std::vector<uint32_t> pos(num_items, 0), tot(num_items, 0);
    for (const VoteEvent& e : log.events()) {
      ++tot[e.item];
      if (e.vote == Vote::kDirty) ++pos[e.item];
    }
    size_t nominal = 0, majority = 0;
    for (size_t i = 0; i < num_items; ++i) {
      if (pos[i] > 0) ++nominal;
      if (pos[i] * 2 > tot[i]) ++majority;
    }
    ASSERT_EQ(log.NominalCount(), nominal) << "event " << event_index;
    ASSERT_EQ(log.MajorityCount(), majority) << "event " << event_index;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseLogPropertyTest,
                         testing::Values(11, 22, 33, 44));

TEST(ResponseLogDeathTest, ItemOutOfRangeAborts) {
  ResponseLog log(2);
  EXPECT_DEATH(log.Append({0, 0, 2, Vote::kClean}), "out of range");
}

}  // namespace
}  // namespace dqm::crowd
