// Deterministic chaos harness for the durability stack. Each schedule is
// derived from a seed: a mix of transient-error / delay failpoint specs
// armed across the WAL, checkpoint, and manifest syscall edges, optionally
// combined with a point-in-time crash image cut by a commit-protocol phase
// hook. The invariants, per schedule:
//
//  - every ingested batch is acknowledged (the retry layer must absorb the
//    injected transient faults);
//  - recovery from the crash image (or the final on-disk state) succeeds
//    with zero torn records, and the rebuilt session is bit-identical (in
//    every count-derived estimate) to an uninterrupted session fed exactly
//    the durable prefix;
//  - the same seed regenerates the same schedule, byte for byte.
//
// Real kill points — the process dies mid-syscall via the `crash` action —
// run as death tests against the fsync, checkpoint-rename, and
// dirent-sync edges, and graceful degradation (`degrade_to_volatile`) gets
// an end-to-end accounting test: a permanently failing WAL must not stop
// commits, must report exactly what it dropped, and must re-arm at the
// next successful checkpoint.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "crowd/io.h"
#include "engine/durability.h"
#include "engine/engine.h"
#include "engine/session.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"
#include "workload/workload.h"

namespace dqm::engine {
namespace {

namespace fs = std::filesystem;

using crowd::Vote;
using crowd::VoteEvent;

std::string ScratchDir(const std::string& tag) {
  fs::path dir = fs::path(testing::TempDir()) / ("dqm_chaos_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Count-derived estimator panel (checkpointable: no SWITCH).
const std::vector<std::string>& Panel() {
  static const std::vector<std::string> panel = {
      "chao92", "good-turing", "vchao92?shift=2", "chao1", "voting",
      "nominal"};
  return panel;
}

std::vector<std::string> FamilySpecs() {
  std::vector<std::string> specs;
  for (const std::string& name :
       workload::WorkloadRegistry::Global().Names()) {
    specs.push_back(name + "?n=80&dirty=12&tasks=50&ipt=8&batch=37");
  }
  return specs;
}

std::vector<VoteEvent> GenerateVotes(const std::string& spec, uint64_t seed,
                                     size_t* num_items) {
  auto generator = workload::WorkloadRegistry::Global().Create(spec);
  EXPECT_TRUE(generator.ok()) << generator.status().ToString();
  workload::GeneratedWorkload run = (*generator)->Generate(seed);
  *num_items = run.log.num_items();
  return std::vector<VoteEvent>(run.log.events().begin(),
                                run.log.events().end());
}

void IngestBatches(DqmEngine& engine, const std::string& name,
                   const std::vector<VoteEvent>& votes, size_t batch) {
  for (size_t begin = 0; begin < votes.size(); begin += batch) {
    size_t size = std::min(batch, votes.size() - begin);
    ASSERT_TRUE(
        engine.Ingest(name, std::span<const VoteEvent>(&votes[begin], size))
            .ok())
        << "acknowledgement lost at vote " << begin;
  }
}

void ExpectWithinEmTolerance(double a, double b, const std::string& context) {
  double tolerance = std::max(2.0, 0.02 * std::abs(b));
  EXPECT_LE(std::abs(a - b), tolerance) << context << ": " << a << " vs " << b;
}

void ExpectSnapshotParity(const Snapshot& recovered, const Snapshot& reference,
                          const std::string& context) {
  EXPECT_EQ(recovered.num_votes, reference.num_votes) << context;
  EXPECT_EQ(recovered.majority_count, reference.majority_count) << context;
  EXPECT_EQ(recovered.nominal_count, reference.nominal_count) << context;
  ASSERT_EQ(recovered.estimates.size(), reference.estimates.size()) << context;
  for (size_t i = 0; i < recovered.estimates.size(); ++i) {
    const std::string row = context + ", " + reference.estimates[i].name;
    if (reference.estimates[i].name == "em-voting") {
      ExpectWithinEmTolerance(recovered.estimates[i].total_errors,
                              reference.estimates[i].total_errors, row);
    } else {
      EXPECT_EQ(recovered.estimates[i].total_errors,
                reference.estimates[i].total_errors)
          << row;
      EXPECT_EQ(recovered.estimates[i].quality_score,
                reference.estimates[i].quality_score)
          << row;
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule generation.
// ---------------------------------------------------------------------------

/// One seeded chaos schedule: which failpoints to arm (spec string in the
/// Configure grammar), the per-registry decision seed, and an optional
/// crash image cut at the Nth firing of a commit-protocol phase.
struct ChaosSchedule {
  std::string failpoints;
  uint64_t failpoint_seed = 0;
  bool crash_image = false;
  SessionDurability::Phase kill_phase = SessionDurability::Phase::kAppend;
  int kill_firing = 1;
  const char* kill_name = "none";
};

/// Every schedule draws from this pool. All error actions are transient
/// errnos with a small trigger budget: the retry layer (default budget 8
/// attempts) must absorb any burst a schedule can produce, so every ingest
/// is acknowledged and the no-lost-ack invariant is checkable. Hard
/// unretryable faults get their own deterministic tests below — in a
/// randomized schedule they would make "what must survive" unpredictable.
const char* const kFaultPoints[] = {
    "dqm.wal.write",        "dqm.wal.fsync",      "dqm.wal.truncate",
    "dqm.checkpoint.write", "dqm.checkpoint.fsync",
    "dqm.checkpoint.rename", "dqm.checkpoint.dirsync",
    "dqm.manifest.write",   "dqm.manifest.fsync", "dqm.manifest.rename",
    "dqm.durability.dirsync",
};

ChaosSchedule MakeSchedule(uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 1);
  ChaosSchedule schedule;
  schedule.failpoint_seed = rng();

  const size_t num_points = 1 + rng() % 3;
  std::vector<std::string> specs;
  std::vector<size_t> used;
  for (size_t i = 0; i < num_points; ++i) {
    size_t point = rng() % (sizeof(kFaultPoints) / sizeof(kFaultPoints[0]));
    if (std::find(used.begin(), used.end(), point) != used.end()) continue;
    used.push_back(point);
    std::string action;
    switch (rng() % 4) {
      case 0:
        action = StrFormat("count(%d):error(EINTR)",
                           static_cast<int>(1 + rng() % 5));
        break;
      case 1:
        action = StrFormat("count(%d):error(EAGAIN)",
                           static_cast<int>(1 + rng() % 5));
        break;
      case 2:
        // Probabilistic transient error: the count budget still caps total
        // triggers, so a burst can never exhaust the retry budget.
        action = StrFormat("count(%d):error(EINTR)%%0.%d",
                           static_cast<int>(1 + rng() % 5),
                           static_cast<int>(25 + rng() % 50));
        break;
      default:
        action = StrFormat("count(%d):delay(1ms)",
                           static_cast<int>(1 + rng() % 3));
        break;
    }
    specs.push_back(std::string(kFaultPoints[point]) + "=" + action);
  }
  schedule.failpoints = Join(specs, ";");

  // Half the schedules also cut a crash image at a commit-protocol phase.
  struct KillPoint {
    SessionDurability::Phase phase;
    const char* name;
  };
  static constexpr KillPoint kKillPoints[] = {
      {SessionDurability::Phase::kAppend, "append"},
      {SessionDurability::Phase::kFsync, "fsync"},
      {SessionDurability::Phase::kCheckpointWrite, "checkpoint_write"},
      {SessionDurability::Phase::kWalReset, "wal_reset"},
  };
  if (rng() % 2 == 0) {
    const KillPoint& kill = kKillPoints[rng() % 4];
    schedule.crash_image = true;
    schedule.kill_phase = kill.phase;
    schedule.kill_name = kill.name;
    // Checkpoint-protocol phases only fire at every checkpoint boundary
    // (twice per ~400-vote run); append/fsync fire constantly.
    const bool rare =
        kill.phase == SessionDurability::Phase::kCheckpointWrite ||
        kill.phase == SessionDurability::Phase::kWalReset;
    schedule.kill_firing = static_cast<int>(1 + rng() % (rare ? 2 : 3));
  }
  return schedule;
}

std::string ScheduleString(const ChaosSchedule& s) {
  return StrFormat("fp=[%s] seed=%llu kill=%s@%d", s.failpoints.c_str(),
                   static_cast<unsigned long long>(s.failpoint_seed),
                   s.kill_name, s.kill_firing);
}

TEST(ChaosScheduleTest, SameSeedSameSchedule) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    EXPECT_EQ(ScheduleString(MakeSchedule(seed)),
              ScheduleString(MakeSchedule(seed)))
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// The harness: 40 seeds x every workload family = 200+ schedules.
// ---------------------------------------------------------------------------

class ChaosHarnessTest : public testing::TestWithParam<int> {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_P(ChaosHarnessTest, AcksSurviveAndRecoveryMatchesDurablePrefix) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const ChaosSchedule schedule = MakeSchedule(seed);
  const std::vector<std::string>& panel = Panel();

  int family = 0;
  for (const std::string& spec : FamilySpecs()) {
    SCOPED_TRACE(StrFormat("seed %llu, %s, %s",
                           static_cast<unsigned long long>(seed),
                           spec.c_str(), ScheduleString(schedule).c_str()));
    size_t num_items = 0;
    std::vector<VoteEvent> votes =
        GenerateVotes(spec, 0xC0FFEE + seed, &num_items);
    ASSERT_GE(votes.size(), 300u);

    const std::string tag =
        StrFormat("s%llu_f%d", static_cast<unsigned long long>(seed),
                  family++);
    std::string root = ScratchDir(tag + "_live");
    std::string crash_root = ScratchDir(tag + "_image");

    SessionOptions options;
    options.cadence = PublishCadence::kEveryNVotes;
    options.publish_every_votes = 128;
    options.ingest_stripes = 2;
    options.durability_dir = root;
    options.wal_group_commit_votes = 64;
    options.checkpoint_every_votes = 150;

    // Arm before OpenSession so the manifest / WAL-creation edges are in
    // play too; the retry layer has to carry the session all the way up.
    failpoint::SetSeed(schedule.failpoint_seed);
    ASSERT_TRUE(failpoint::Configure(schedule.failpoints).ok())
        << schedule.failpoints;

    uint64_t durable_prefix = 0;
    {
      DqmEngine live;
      auto session = live.OpenSession(
          "s", num_items, std::span<const std::string>(panel), options);
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      ASSERT_TRUE((*session)->durable());

      SessionDurability* durability = (*session)->durability_for_test();
      ASSERT_NE(durability, nullptr);
      int fired = 0;
      bool copied = false;
      if (schedule.crash_image) {
        durability->SetPhaseHookForTest([&](SessionDurability::Phase phase) {
          if (phase != schedule.kill_phase || copied) return;
          if (++fired < schedule.kill_firing) return;
          fs::copy(root, crash_root,
                   fs::copy_options::recursive |
                       fs::copy_options::overwrite_existing);
          copied = true;
        });
      }

      // Invariant 1: every batch is acknowledged despite the faults.
      IngestBatches(live, "s", votes, 37);
      if (schedule.crash_image) {
        ASSERT_TRUE(copied) << "kill point never fired";
      }
      // The live engine's destructor flushes — after it, `root` holds the
      // complete durable state for the no-crash schedules.
    }
    failpoint::DisarmAll();

    // Invariant 2: recovery succeeds, nothing is torn, and the rebuilt
    // session matches a reference fed exactly the durable prefix.
    const std::string& recover_from =
        schedule.crash_image ? crash_root : root;
    DqmEngine recovered_engine;
    auto reports = recovered_engine.RecoverSessions(recover_from);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    ASSERT_EQ(reports->size(), 1u);
    const DqmEngine::RecoveredSession& report = (*reports)[0];
    EXPECT_EQ(report.torn_records, 0u);
    ASSERT_LE(report.votes_restored, votes.size());
    if (!schedule.crash_image) {
      // Nothing crashed: every acknowledged vote must have survived.
      EXPECT_EQ(report.votes_restored, votes.size());
    }
    durable_prefix = report.votes_restored;

    SessionOptions reference_options = options;
    reference_options.durability_dir.clear();
    reference_options.checkpoint_every_votes = 0;
    DqmEngine reference_engine;
    auto reference = reference_engine.OpenSession(
        "ref", num_items, std::span<const std::string>(panel),
        reference_options);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    std::vector<VoteEvent> prefix(
        votes.begin(), votes.begin() + static_cast<ptrdiff_t>(durable_prefix));
    IngestBatches(reference_engine, "ref", prefix, 37);
    (*reference)->Publish();

    auto recovered_snapshot = recovered_engine.Query("s");
    ASSERT_TRUE(recovered_snapshot.ok());
    ExpectSnapshotParity(*recovered_snapshot, (*reference)->snapshot(), spec);
    // A cleanly recovered session never reports itself degraded.
    EXPECT_FALSE(recovered_snapshot->durability_degraded);
    EXPECT_EQ(recovered_snapshot->dropped_durability_votes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosHarnessTest, testing::Range(0, 40));

// CI's randomized leg: one extra schedule whose seed comes from the
// environment (and gets logged by the job), so every run explores a fresh
// point in schedule space on top of the fixed 0..39 matrix. Defaults to a
// seed outside the fixed range when the variable is unset.
int ExtraSeedFromEnv() {
  const char* raw = std::getenv("DQM_CHAOS_EXTRA_SEED");
  if (raw == nullptr || *raw == '\0') return 1000;
  return static_cast<int>(std::strtol(raw, nullptr, 10));
}

INSTANTIATE_TEST_SUITE_P(ExtraSeed, ChaosHarnessTest,
                         testing::Values(ExtraSeedFromEnv()));

// ---------------------------------------------------------------------------
// Real kill points: the process dies mid-syscall (failpoint `crash`
// action, _Exit(77)), the parent recovers what hit the disk.
// ---------------------------------------------------------------------------

class ChaosCrashDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
  void TearDown() override { failpoint::DisarmAll(); }
};

/// Runs a durable session in a death-test child, arming `crash_spec` after
/// `arm_after` votes so real traffic precedes the kill, then recovers in
/// the parent and checks prefix parity. `tag` keys the scratch directory
/// (recomputed identically in the child, which re-executes the test).
void CrashAtFailpointAndRecover(const std::string& tag,
                                const std::string& crash_spec) {
  size_t num_items = 0;
  std::vector<VoteEvent> votes =
      GenerateVotes(FamilySpecs().front(), 20260807, &num_items);
  ASSERT_GE(votes.size(), 300u);
  const size_t arm_after = 185;  // past the first checkpoint boundary (150)

  std::string root = ScratchDir("kill_" + tag);
  SessionOptions options;
  options.cadence = PublishCadence::kEveryNVotes;
  options.publish_every_votes = 128;
  options.durability_dir = root;
  options.wal_group_commit_votes = 64;
  options.checkpoint_every_votes = 150;

  EXPECT_EXIT(
      {
        DqmEngine engine;
        auto session = engine.OpenSession(
            "s", num_items, std::span<const std::string>(Panel()), options);
        if (!session.ok()) std::_Exit(3);
        for (size_t begin = 0; begin < votes.size(); begin += 37) {
          if (begin >= arm_after && !failpoint::AnyArmed()) {
            if (!failpoint::Configure(crash_spec).ok()) std::_Exit(4);
          }
          size_t size = std::min<size_t>(37, votes.size() - begin);
          if (!engine
                   .Ingest("s", std::span<const VoteEvent>(&votes[begin],
                                                           size))
                   .ok()) {
            std::_Exit(5);
          }
        }
        // The kill point never fired — fail with a distinct code.
        std::_Exit(6);
      },
      testing::ExitedWithCode(failpoint::kCrashExitCode), "");

  // Parent: the directory holds whatever the dead process left behind.
  DqmEngine recovered_engine;
  auto reports = recovered_engine.RecoverSessions(root);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), 1u);
  const DqmEngine::RecoveredSession& report = (*reports)[0];
  EXPECT_EQ(report.name, "s");
  EXPECT_EQ(report.torn_records, 0u);
  // Real traffic preceded the kill: something durable must exist, and the
  // durable prefix can never exceed what was ingested.
  EXPECT_GT(report.votes_restored, 0u);
  ASSERT_LE(report.votes_restored, votes.size());

  SessionOptions reference_options = options;
  reference_options.durability_dir.clear();
  reference_options.checkpoint_every_votes = 0;
  DqmEngine reference_engine;
  auto reference = reference_engine.OpenSession(
      "ref", num_items, std::span<const std::string>(Panel()),
      reference_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  std::vector<VoteEvent> prefix(
      votes.begin(),
      votes.begin() + static_cast<ptrdiff_t>(report.votes_restored));
  IngestBatches(reference_engine, "ref", prefix, 37);
  (*reference)->Publish();
  auto snapshot = recovered_engine.Query("s");
  ASSERT_TRUE(snapshot.ok());
  ExpectSnapshotParity(*snapshot, (*reference)->snapshot(), tag);
}

TEST_F(ChaosCrashDeathTest, CrashInsideWalFsync) {
  CrashAtFailpointAndRecover("wal_fsync", "dqm.wal.fsync=crash");
}

TEST_F(ChaosCrashDeathTest, CrashInsideCheckpointRename) {
  CrashAtFailpointAndRecover("cp_rename", "dqm.checkpoint.rename=crash");
}

TEST_F(ChaosCrashDeathTest, CrashInsideCheckpointDirsync) {
  CrashAtFailpointAndRecover("cp_dirsync", "dqm.checkpoint.dirsync=crash");
}

// ---------------------------------------------------------------------------
// Graceful degradation end to end.
// ---------------------------------------------------------------------------

std::vector<VoteEvent> SimpleVotes(size_t count, size_t num_items) {
  std::vector<VoteEvent> votes;
  for (size_t i = 0; i < count; ++i) {
    votes.push_back(VoteEvent{static_cast<uint32_t>(i % 7),
                              static_cast<uint32_t>(i % 5),
                              static_cast<uint32_t>(i % num_items),
                              (i % 3 == 0) ? Vote::kDirty : Vote::kClean});
  }
  return votes;
}

class DegradationTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(DegradationTest, SessionSurvivesPermanentWalFailureAndRearms) {
  const size_t kNumItems = 16;
  std::string root = ScratchDir("degrade");
  std::vector<VoteEvent> votes = SimpleVotes(80, kNumItems);

  SessionOptions options;
  options.durability_dir = root;
  options.wal_group_commit_votes = 8;
  options.checkpoint_every_votes = 64;
  options.durability_failure_policy =
      DurabilityFailurePolicy::kDegradeToVolatile;

  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  telemetry::Gauge* degraded_gauge =
      registry.GetGauge(telemetry::metric_names::kSessionsDegraded);
  telemetry::Counter* degraded_votes =
      registry.GetCounter(telemetry::metric_names::kDegradedVotesTotal);
  telemetry::Counter* rearms =
      registry.GetCounter(telemetry::metric_names::kDegradedRearmsTotal);
  const double gauge_base = degraded_gauge->Value();
  const double votes_base = degraded_votes->Value();
  const double rearms_base = rearms->Value();

  auto ingest = [&](DqmEngine& engine, size_t begin, size_t end) {
    for (size_t i = begin; i < end; i += 8) {
      ASSERT_TRUE(engine
                      .Ingest("s", std::span<const VoteEvent>(&votes[i], 8))
                      .ok())
          << "commit rejected at vote " << i;
    }
  };

  {
    DqmEngine engine;
    auto session = engine.OpenSession(
        "s", kNumItems, std::span<const std::string>(Panel()), options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    // 16 clean votes, fully group-committed (multiples of 8).
    ingest(engine, 0, 16);
    (*session)->Publish();
    EXPECT_FALSE((*session)->snapshot().durability_degraded);

    // The WAL device "dies": every fsync fails hard. Commits must keep
    // being acknowledged, and the session must account exactly the votes
    // it accepted without a durable record.
    ASSERT_TRUE(failpoint::Configure("dqm.wal.fsync=error(EIO)").ok());
    ingest(engine, 16, 32);
    (*session)->Publish();
    Snapshot degraded = (*session)->snapshot();
    EXPECT_TRUE(degraded.durability_degraded);
    EXPECT_EQ(degraded.dropped_durability_votes, 16u);
    EXPECT_EQ(degraded.num_votes, 32u);  // nothing lost in memory
    EXPECT_DOUBLE_EQ(degraded_gauge->Value(), gauge_base + 1.0);
    EXPECT_DOUBLE_EQ(degraded_votes->Value(), votes_base + 16.0);

    // Device heals, but the WAL stays sealed — and every vote accepted
    // before the next checkpoint still lacks a durable record.
    failpoint::DisarmAll();
    // Votes 33..64: still degraded; the append crossing 64 triggers the
    // checkpoint, which snapshots ALL in-memory state (including every
    // degraded vote) and re-arms the WAL.
    ingest(engine, 32, 64);
    (*session)->Publish();
    Snapshot rearmed = (*session)->snapshot();
    EXPECT_FALSE(rearmed.durability_degraded);
    // The audit trail of acked-without-durability votes survives re-arm.
    EXPECT_EQ(rearmed.dropped_durability_votes, 48u);
    EXPECT_DOUBLE_EQ(degraded_gauge->Value(), gauge_base);
    EXPECT_DOUBLE_EQ(rearms->Value(), rearms_base + 1.0);

    // Fully durable again: these 16 land in the fresh WAL.
    ingest(engine, 64, 80);
  }

  // Nothing was lost end to end: the checkpoint carried the degraded
  // votes, the reset WAL carried the rest.
  DqmEngine recovered_engine;
  auto reports = recovered_engine.RecoverSessions(root);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), 1u);
  EXPECT_EQ((*reports)[0].votes_restored, 80u);
  EXPECT_TRUE((*reports)[0].had_checkpoint);
  auto snapshot = recovered_engine.Query("s");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_votes, 80u);
  EXPECT_FALSE(snapshot->durability_degraded);
}

TEST_F(DegradationTest, FailStopKeepsRejectingUntilCheckpointReset) {
  const size_t kNumItems = 16;
  std::string root = ScratchDir("failstop");
  std::vector<VoteEvent> votes = SimpleVotes(32, kNumItems);

  SessionOptions options;
  options.durability_dir = root;
  options.wal_group_commit_votes = 8;
  options.durability_failure_policy = DurabilityFailurePolicy::kFailStop;

  DqmEngine engine;
  auto session = engine.OpenSession(
      "s", kNumItems, std::span<const std::string>(Panel()), options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE(
      engine.Ingest("s", std::span<const VoteEvent>(&votes[0], 8)).ok());

  ASSERT_TRUE(failpoint::Configure("dqm.wal.fsync=error(EIO)").ok());
  Status rejected =
      engine.Ingest("s", std::span<const VoteEvent>(&votes[8], 8));
  EXPECT_FALSE(rejected.ok());
  failpoint::DisarmAll();

  // Still sealed: fail-stop sessions refuse ingest until a checkpoint
  // resets the WAL, and they never report degraded (they dropped nothing).
  EXPECT_FALSE(
      engine.Ingest("s", std::span<const VoteEvent>(&votes[16], 8)).ok());
  (*session)->Publish();
  EXPECT_FALSE((*session)->snapshot().durability_degraded);
  EXPECT_EQ((*session)->snapshot().dropped_durability_votes, 0u);
}

// ---------------------------------------------------------------------------
// Keep-going recovery.
// ---------------------------------------------------------------------------

TEST(KeepGoingRecoveryTest, BrokenSessionDoesNotAbortTheScan) {
  const size_t kNumItems = 16;
  std::string root = ScratchDir("keepgoing");
  std::vector<VoteEvent> votes = SimpleVotes(64, kNumItems);

  SessionOptions options;
  options.durability_dir = root;
  options.wal_group_commit_votes = 8;

  {
    DqmEngine engine;
    for (const char* name : {"alpha", "bravo"}) {
      auto session = engine.OpenSession(
          name, kNumItems, std::span<const std::string>(Panel()), options);
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      ASSERT_TRUE(
          engine.Ingest(name, std::span<const VoteEvent>(votes.data(), 64))
              .ok());
    }
  }

  // Corrupt bravo's WAL header (foreign magic) and drop a half-created
  // directory with an unreadable manifest next to them.
  {
    std::fstream wal(root + "/bravo/wal.log",
                     std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(wal.is_open());
    wal.write("XXXX", 4);
  }
  fs::create_directories(root + "/halfopen");
  std::ofstream(root + "/halfopen/MANIFEST") << "garbage\n";

  // Strict recovery refuses the root: silent partial recovery is not OK
  // by default.
  {
    DqmEngine engine;
    EXPECT_FALSE(engine.RecoverSessions(root).ok());
  }

  // Keep-going recovery triages: alpha up, bravo failed with a reason,
  // halfopen skipped as the benign crashed-OpenSession case.
  DqmEngine engine;
  auto outcomes = engine.RecoverSessionsKeepGoing(root);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), 3u);
  using Outcome = DqmEngine::SessionRecoveryOutcome;

  EXPECT_EQ((*outcomes)[0].name, "alpha");
  EXPECT_EQ((*outcomes)[0].state, Outcome::State::kRecovered);
  EXPECT_EQ((*outcomes)[0].report.votes_restored, 64u);

  EXPECT_EQ((*outcomes)[1].name, "bravo");
  EXPECT_EQ((*outcomes)[1].state, Outcome::State::kFailed);
  EXPECT_FALSE((*outcomes)[1].detail.empty());

  EXPECT_EQ((*outcomes)[2].state, Outcome::State::kSkipped);
  EXPECT_FALSE((*outcomes)[2].detail.empty());

  // The healthy session is genuinely serving.
  auto snapshot = engine.Query("alpha");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_votes, 64u);
  EXPECT_FALSE(engine.Query("bravo").ok());
}

}  // namespace
}  // namespace dqm::engine
