#include "text/similarity.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dqm::text {
namespace {

TEST(JaccardTest, IdenticalSetsGiveOne) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "a"}), 1.0);
}

TEST(JaccardTest, DisjointSetsGiveZero) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"b"}), 0.0);
}

TEST(JaccardTest, BothEmptyGiveOne) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
}

TEST(JaccardTest, OneEmptyGivesZero) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
}

TEST(JaccardTest, DuplicateTokensCollapse) {
  // {a} vs {a, b}: 1/2 regardless of multiplicity.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a", "a"}, {"a", "b"}), 0.5);
}

TEST(JaccardTest, PartialOverlap) {
  // {a,b,c} vs {b,c,d}: 2/4.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b", "c"}, {"b", "c", "d"}), 0.5);
}

TEST(TokenJaccardTest, TokenReorderingInvariant) {
  // The paper's duplicate example: same tokens, different order/punctuation.
  EXPECT_DOUBLE_EQ(
      TokenJaccard("Ritz-Carlton Cafe (buckhead)",
                   "Cafe Ritz-Carlton Buckhead"),
      1.0);
}

TEST(QGramJaccardTest, RobustToSmallTypos) {
  double sim = QGramJaccard("golden dragon", "goldan dragon", 3);
  EXPECT_GT(sim, 0.6);
  EXPECT_LT(sim, 1.0);
}

TEST(HybridSimilarityTest, Range) {
  Rng rng(3);
  const char* samples[] = {"", "a", "golden dragon cafe",
                           "Cafe Ritz-Carlton Buckhead", "1234 main st"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      double sim = HybridSimilarity(a, b);
      EXPECT_GE(sim, 0.0);
      EXPECT_LE(sim, 1.0);
      // Symmetry.
      EXPECT_DOUBLE_EQ(sim, HybridSimilarity(b, a));
    }
  }
}

TEST(HybridSimilarityTest, IdenticalGiveOne) {
  EXPECT_DOUBLE_EQ(HybridSimilarity("golden dragon", "golden dragon"), 1.0);
}

TEST(HybridSimilarityTest, ReorderedTokensScoreHigh) {
  EXPECT_GE(HybridSimilarity("alpha beta gamma", "gamma alpha beta"), 1.0);
}

TEST(HybridSimilarityTest, TypoScoresAboveEditOnlyFloor) {
  // One typo in a 13-char string: edit similarity ~0.92.
  EXPECT_GT(HybridSimilarity("golden dragon", "goldan dragon"), 0.9);
}

TEST(HybridSimilarityTest, UnrelatedStringsScoreLow) {
  EXPECT_LT(HybridSimilarity("golden dragon cafe", "quantum flux capacitor"),
            0.4);
}

}  // namespace
}  // namespace dqm::text
