// Regression coverage for the parallel ExperimentRunner and the explicit
// per-permutation seeding contract it depends on.

#include <gtest/gtest.h>

#include "core/dqm.h"
#include "core/experiment.h"
#include "estimators/switch_total.h"

namespace dqm::core {
namespace {

std::vector<std::pair<std::string, estimators::EstimatorFactory>>
DefaultFactories() {
  return {
      {"VOTING", MakeEstimatorFactory(Method::kVoting)},
      {"CHAO92", MakeEstimatorFactory(Method::kChao92)},
      {"SWITCH", MakeEstimatorFactory(Method::kSwitch)},
  };
}

TEST(PermutationSeedTest, PinnedValues) {
  // The seed schedule is a compatibility contract: serial and pool-parallel
  // replays, and any external tool re-deriving a permutation, must all agree.
  // These constants were produced by PermutationSeed itself and pin the
  // base ^ splitmix64(index) formula.
  EXPECT_EQ(PermutationSeed(42, 0), 16294208416658607493ULL);
  EXPECT_EQ(PermutationSeed(42, 1), 10451216379200822507ULL);
  EXPECT_EQ(PermutationSeed(42, 2), 10905525725756348132ULL);
  EXPECT_EQ(PermutationSeed(7, 0), 16294208416658607528ULL);
  EXPECT_EQ(PermutationSeed(7, 1), 10451216379200822470ULL);
  EXPECT_EQ(PermutationSeed(7, 2), 10905525725756348105ULL);
}

TEST(PermutationSeedTest, DependsOnlyOnBaseAndIndex) {
  EXPECT_EQ(PermutationSeed(42, 5), PermutationSeed(42, 5));
  EXPECT_NE(PermutationSeed(42, 5), PermutationSeed(42, 6));
  EXPECT_NE(PermutationSeed(42, 5), PermutationSeed(43, 5));
}

TEST(ExperimentRunnerParallelTest, RunnerUsesThePermutationSeedSchedule) {
  // Pins the runner to the documented schedule: permutation p replays
  // PermuteTasks(log, PermutationSeed(seed, p)). If the runner's internal
  // seeding drifts, this known series stops matching.
  Scenario s = SimulationScenario(0.01, 0.1, 10);
  SimulatedRun run = SimulateScenario(s, 25, 5);
  const uint64_t kSeed = 11;
  const size_t kPermutations = 3;

  ExperimentRunner runner({.permutations = kPermutations, .seed = kSeed});
  auto results = runner.Run(run.log, s.num_items,
                            {{"SWITCH", MakeEstimatorFactory(Method::kSwitch)}});

  std::vector<std::vector<double>> expected_rows;
  for (size_t p = 0; p < kPermutations; ++p) {
    crowd::ResponseLog permuted =
        PermuteTasks(run.log, PermutationSeed(kSeed, p));
    estimators::SwitchTotalErrorEstimator estimator(s.num_items);
    expected_rows.push_back(
        estimators::EstimateSeriesByTask(permuted, estimator));
  }
  SeriesBand expected = AggregateSeries(expected_rows);
  EXPECT_EQ(results[0].mean, expected.mean);
  EXPECT_EQ(results[0].std_dev, expected.std_dev);
}

TEST(ExperimentRunnerParallelTest, ParallelRunBitIdenticalToSerial) {
  Scenario s = SimulationScenario(0.01, 0.1, 10);
  SimulatedRun run = SimulateScenario(s, 40, 9);
  auto factories = DefaultFactories();

  ExperimentRunner serial({.permutations = 6, .seed = 17, .threads = 1});
  auto serial_results = serial.Run(run.log, s.num_items, factories);
  for (size_t threads : {2u, 4u, 8u}) {
    ExperimentRunner parallel(
        {.permutations = 6, .seed = 17, .threads = threads});
    auto parallel_results = parallel.Run(run.log, s.num_items, factories);
    ASSERT_EQ(parallel_results.size(), serial_results.size());
    for (size_t f = 0; f < serial_results.size(); ++f) {
      EXPECT_EQ(parallel_results[f].name, serial_results[f].name);
      // Element-wise double equality: bit-identical, not approximately equal.
      EXPECT_EQ(parallel_results[f].mean, serial_results[f].mean)
          << "threads=" << threads << " factory=" << serial_results[f].name;
      EXPECT_EQ(parallel_results[f].std_dev, serial_results[f].std_dev)
          << "threads=" << threads << " factory=" << serial_results[f].name;
    }
  }
}

TEST(ExperimentRunnerParallelTest, HardwareThreadsModeMatchesSerial) {
  Scenario s = SimulationScenario(0.02, 0.15, 8);
  SimulatedRun run = SimulateScenario(s, 20, 13);
  auto factories = DefaultFactories();
  ExperimentRunner serial({.permutations = 4, .seed = 3, .threads = 1});
  ExperimentRunner hardware({.permutations = 4, .seed = 3, .threads = 0});
  auto a = serial.Run(run.log, s.num_items, factories);
  auto b = hardware.Run(run.log, s.num_items, factories);
  for (size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(a[f].mean, b[f].mean);
    EXPECT_EQ(a[f].std_dev, b[f].std_dev);
  }
}

TEST(ExperimentRunnerParallelTest, SwitchDiagnosticsBitIdenticalToSerial) {
  Scenario s = SimulationScenario(0.02, 0.1, 10);
  SimulatedRun run = SimulateScenario(s, 20, 7);
  estimators::SwitchTotalErrorEstimator::Config config;

  ExperimentRunner serial({.permutations = 3, .seed = 1, .threads = 1});
  ExperimentRunner parallel({.permutations = 3, .seed = 1, .threads = 4});
  auto a = serial.RunSwitchDiagnostics(run.log, s.num_items, run.truth, config);
  auto b =
      parallel.RunSwitchDiagnostics(run.log, s.num_items, run.truth, config);

  EXPECT_EQ(a.remaining_positive_estimate.mean,
            b.remaining_positive_estimate.mean);
  EXPECT_EQ(a.remaining_negative_estimate.mean,
            b.remaining_negative_estimate.mean);
  EXPECT_EQ(a.needed_positive_truth.mean, b.needed_positive_truth.mean);
  EXPECT_EQ(a.needed_negative_truth.mean, b.needed_negative_truth.mean);
  EXPECT_EQ(a.remaining_positive_estimate.std_dev,
            b.remaining_positive_estimate.std_dev);
  EXPECT_EQ(a.needed_negative_truth.std_dev, b.needed_negative_truth.std_dev);
}

}  // namespace
}  // namespace dqm::core
