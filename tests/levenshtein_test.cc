#include "text/levenshtein.h"

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace dqm::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("intention", "execution"), 5u);
  EXPECT_EQ(LevenshteinDistance("a", "b"), 1u);
}

TEST(LevenshteinTest, SingleEditOperations) {
  EXPECT_EQ(LevenshteinDistance("cafe", "caffe"), 1u);   // insert
  EXPECT_EQ(LevenshteinDistance("cafe", "cae"), 1u);     // delete
  EXPECT_EQ(LevenshteinDistance("cafe", "cafq"), 1u);    // substitute
}

// Property tests over random string pairs.
class LevenshteinPropertyTest : public testing::TestWithParam<uint64_t> {};

std::string RandomString(Rng& rng, size_t max_len) {
  size_t len = rng.UniformIndex(max_len + 1);
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.UniformIndex(4)));  // small alphabet
  }
  return s;
}

TEST_P(LevenshteinPropertyTest, SymmetryBoundsAndTriangle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::string a = RandomString(rng, 12);
    std::string b = RandomString(rng, 12);
    std::string c = RandomString(rng, 12);
    size_t dab = LevenshteinDistance(a, b);
    size_t dba = LevenshteinDistance(b, a);
    size_t dac = LevenshteinDistance(a, c);
    size_t dcb = LevenshteinDistance(c, b);
    // Symmetry.
    EXPECT_EQ(dab, dba);
    // Identity of indiscernibles.
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);
    // Bounds: |len diff| <= d <= max len.
    size_t lo = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    EXPECT_GE(dab, lo);
    EXPECT_LE(dab, std::max(a.size(), b.size()));
    // Triangle inequality.
    EXPECT_LE(dab, dac + dcb);
  }
}

TEST_P(LevenshteinPropertyTest, BoundedAgreesWithExact) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 80; ++trial) {
    std::string a = RandomString(rng, 14);
    std::string b = RandomString(rng, 14);
    size_t exact = LevenshteinDistance(a, b);
    for (size_t bound : {0u, 1u, 2u, 5u, 20u}) {
      size_t bounded = BoundedLevenshteinDistance(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << "a=" << a << " b=" << b
                                  << " bound=" << bound;
      } else {
        EXPECT_GT(bounded, bound) << "a=" << a << " b=" << b
                                  << " bound=" << bound;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(NormalizedSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(NormalizedEditSimilarity("abcd", "abcx"), 0.75, 1e-12);
}

TEST(NormalizedSimilarityTest, AsymmetricLengths) {
  // distance("ab", "abxx") = 2, max len 4 -> 0.5
  EXPECT_NEAR(NormalizedEditSimilarity("ab", "abxx"), 0.5, 1e-12);
}

TEST(BoundedSimilarityTest, MatchesExactWhenAbove) {
  EXPECT_NEAR(BoundedEditSimilarity("abcd", "abcx", 0.5), 0.75, 1e-12);
}

TEST(BoundedSimilarityTest, ZeroWhenBelowThreshold) {
  EXPECT_DOUBLE_EQ(BoundedEditSimilarity("abcdefgh", "zzzzzzzz", 0.9), 0.0);
}

TEST(BoundedSimilarityTest, EmptyStrings) {
  EXPECT_DOUBLE_EQ(BoundedEditSimilarity("", "", 0.9), 1.0);
}

}  // namespace
}  // namespace dqm::text
