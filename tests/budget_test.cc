#include "core/budget.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenario.h"

namespace dqm::core {
namespace {

TEST(CostModelTest, PaperPricing) {
  CostModel cost;  // $0.03 per task, as in Section 6.1
  EXPECT_DOUBLE_EQ(cost.CostOfTasks(100), 3.0);
  EXPECT_DOUBLE_EQ(cost.CostOfTasks(0), 0.0);
}

TEST(StoppingRuleTest, DoesNotStopWithoutCoverage) {
  StoppingRule::Options options;
  options.max_undetected_errors = 100.0;  // trivially satisfied
  options.min_mean_votes_per_item = 2.0;
  StoppingRule rule(options, CostModel());
  DataQualityMetric metric(100);
  metric.AddVote(0, 0, 0, false);  // 0.01 votes/item
  StoppingRule::Decision decision = rule.Evaluate(metric, 1);
  EXPECT_FALSE(decision.stop);
  EXPECT_LT(decision.mean_votes_per_item, 2.0);
}

TEST(StoppingRuleTest, StopsWhenTargetMet) {
  StoppingRule::Options options;
  options.max_undetected_errors = 5.0;
  options.min_mean_votes_per_item = 1.0;
  StoppingRule rule(options, CostModel());
  DataQualityMetric metric(10);
  // Full agreement: every item voted clean twice -> no undetected errors.
  for (uint32_t round = 0; round < 2; ++round) {
    for (uint32_t item = 0; item < 10; ++item) {
      metric.AddVote(round, round, item, false);
    }
  }
  StoppingRule::Decision decision = rule.Evaluate(metric, 2);
  EXPECT_TRUE(decision.stop);
  EXPECT_DOUBLE_EQ(decision.mean_votes_per_item, 2.0);
  EXPECT_DOUBLE_EQ(decision.cost_spent, 0.06);
}

TEST(StoppingRuleTest, EndToEndStopsNearConvergence) {
  Scenario scenario = SimulationScenario(0.01, 0.10);
  SimulatedRun run = SimulateScenario(scenario, 800, 5);
  StoppingRule::Options options;
  options.max_undetected_errors = 2.0;
  options.min_mean_votes_per_item = 3.0;
  StoppingRule rule(options, CostModel());
  DataQualityMetric metric(scenario.num_items);
  size_t stop_task = 0;
  uint32_t current_task = 0;
  for (const crowd::VoteEvent& event : run.log.events()) {
    if (event.task != current_task) {
      StoppingRule::Decision decision = rule.Evaluate(metric, event.task);
      if (decision.stop) {
        stop_task = event.task;
        break;
      }
    }
    current_task = event.task;
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == crowd::Vote::kDirty);
  }
  // It must stop before exhausting the budget, but not before coverage.
  ASSERT_GT(stop_task, 0u);
  EXPECT_GE(stop_task, 3 * scenario.num_items / scenario.items_per_task / 2);
  EXPECT_LT(stop_task, 800u);
  // At the stop point the consensus is close to the truth.
  EXPECT_NEAR(static_cast<double>(metric.MajorityCount()), 100.0, 15.0);
}

}  // namespace
}  // namespace dqm::core
