#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "dataset/product_generator.h"
#include "dataset/restaurant_generator.h"
#include "text/similarity.h"

namespace dqm::dataset {
namespace {

TEST(RestaurantGeneratorTest, PaperShapeDefaults) {
  auto dataset = GenerateRestaurantDataset({});
  ASSERT_TRUE(dataset.ok());
  // 752 entities + 106 duplicates = 858 records, 106 duplicate pairs.
  EXPECT_EQ(dataset->table.num_rows(), 858u);
  EXPECT_EQ(dataset->duplicate_pairs.size(), 106u);
  EXPECT_EQ(dataset->table.schema().field_names(),
            (std::vector<std::string>{"id", "name", "address", "city",
                                      "category"}));
}

TEST(RestaurantGeneratorTest, DuplicatePairsAreDistinctRows) {
  auto dataset = GenerateRestaurantDataset({});
  ASSERT_TRUE(dataset.ok());
  std::set<std::pair<size_t, size_t>> seen;
  std::set<size_t> rows_in_pairs;
  for (const auto& [a, b] : dataset->duplicate_pairs) {
    EXPECT_LT(a, b);
    EXPECT_LT(b, dataset->table.num_rows());
    EXPECT_TRUE(seen.insert({a, b}).second) << "pair repeated";
    // "Each restaurant was duplicated at most once": rows appear in at most
    // one pair.
    EXPECT_TRUE(rows_in_pairs.insert(a).second);
    EXPECT_TRUE(rows_in_pairs.insert(b).second);
  }
}

TEST(RestaurantGeneratorTest, DuplicatesAreTextuallySimilar) {
  auto dataset = GenerateRestaurantDataset({});
  ASSERT_TRUE(dataset.ok());
  size_t similar = 0;
  for (const auto& [a, b] : dataset->duplicate_pairs) {
    double sim = text::HybridSimilarity(dataset->table.cell(a, 1),
                                        dataset->table.cell(b, 1));
    if (sim > 0.5) ++similar;
  }
  // The perturbation model keeps duplicates recognizable.
  EXPECT_GT(similar, dataset->duplicate_pairs.size() * 9 / 10);
}

TEST(RestaurantGeneratorTest, DeterministicForSeed) {
  RestaurantConfig config;
  config.seed = 123;
  auto a = GenerateRestaurantDataset(config);
  auto b = GenerateRestaurantDataset(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->table.ToCsv(), b->table.ToCsv());
  EXPECT_EQ(a->duplicate_pairs, b->duplicate_pairs);
}

TEST(RestaurantGeneratorTest, DifferentSeedsDiffer) {
  RestaurantConfig a_config{.num_entities = 100, .num_duplicates = 10,
                            .seed = 1};
  RestaurantConfig b_config{.num_entities = 100, .num_duplicates = 10,
                            .seed = 2};
  auto a = GenerateRestaurantDataset(a_config);
  auto b = GenerateRestaurantDataset(b_config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->table.ToCsv(), b->table.ToCsv());
}

TEST(RestaurantGeneratorTest, RejectsImpossibleConfig) {
  RestaurantConfig config;
  config.num_entities = 5;
  config.num_duplicates = 6;
  EXPECT_FALSE(GenerateRestaurantDataset(config).ok());
}

TEST(RestaurantGeneratorTest, RejectsOversizedEntityCount) {
  RestaurantConfig config;
  config.num_entities = 1000000;
  config.num_duplicates = 0;
  EXPECT_FALSE(GenerateRestaurantDataset(config).ok());
}

TEST(ProductGeneratorTest, PaperShapeDefaults) {
  auto dataset = GenerateProductDataset({});
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->table.num_rows(), 2336u + 1363u);
  EXPECT_EQ(dataset->duplicate_pairs.size(), 1100u);
}

TEST(ProductGeneratorTest, RetailerCounts) {
  auto dataset = GenerateProductDataset({});
  ASSERT_TRUE(dataset.ok());
  auto retailer = dataset->table.Column("retailer");
  ASSERT_TRUE(retailer.ok());
  size_t amazon = 0, google = 0;
  for (const auto& r : *retailer) {
    if (r == "amazon") ++amazon;
    if (r == "google") ++google;
  }
  EXPECT_EQ(amazon, 2336u);
  EXPECT_EQ(google, 1363u);
}

TEST(ProductGeneratorTest, MatchesAreCrossRetailer) {
  ProductConfig config{.num_amazon = 200, .num_google = 150,
                       .num_matches = 80, .seed = 5};
  auto dataset = GenerateProductDataset(config);
  ASSERT_TRUE(dataset.ok());
  auto retailer = dataset->table.Column("retailer");
  ASSERT_TRUE(retailer.ok());
  for (const auto& [a, b] : dataset->duplicate_pairs) {
    EXPECT_NE((*retailer)[a], (*retailer)[b]);
  }
}

TEST(ProductGeneratorTest, RejectsTooManyMatches) {
  ProductConfig config;
  config.num_amazon = 10;
  config.num_google = 5;
  config.num_matches = 6;
  EXPECT_FALSE(GenerateProductDataset(config).ok());
}

TEST(ProductGeneratorTest, DeterministicForSeed) {
  ProductConfig config{.num_amazon = 100, .num_google = 80,
                       .num_matches = 30, .seed = 77};
  auto a = GenerateProductDataset(config);
  auto b = GenerateProductDataset(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->table.ToCsv(), b->table.ToCsv());
}

}  // namespace
}  // namespace dqm::dataset
