// Fuzz-style round-trip coverage for the "name?k=v&k=v" spec grammar: a
// deterministic generator produces thousands of random valid specs (which
// must parse, canonicalize, and re-parse to the same MethodSpec) and random
// invalid mutations (which must come back as Result<> errors — never an
// abort). The grammar is shared by the estimator registry, the workload
// registry, the CLI and the bench configs, so this is the one place its
// contract is hammered.

#include "estimators/registry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace dqm::estimators {
namespace {

constexpr int kRounds = 4000;

/// Characters legal anywhere in a name or key (the grammar reserves
/// '?', '&', '=' and treats ',' as the list separator elsewhere).
constexpr char kIdentChars[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.";
/// Value characters: values keep their spelling, so give them a wider set.
constexpr char kValueChars[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.+:/";

std::string RandomToken(Rng& rng, const char* chars, size_t max_len) {
  size_t len = 1 + rng.UniformIndex(max_len);
  size_t num_chars = std::char_traits<char>::length(chars);
  std::string token;
  for (size_t i = 0; i < len; ++i) {
    token.push_back(chars[rng.UniformIndex(num_chars)]);
  }
  return token;
}

/// Random whitespace padding — the parser strips it around names, keys and
/// values.
std::string Pad(Rng& rng, const std::string& token) {
  auto ws = [&] { return std::string(rng.UniformIndex(3), ' '); };
  return ws() + token + ws();
}

struct RandomSpec {
  std::string text;                 // possibly padded spelling
  std::string canonical_name;       // lower-cased
  std::vector<std::pair<std::string, std::string>> canonical_params;
};

RandomSpec MakeValidSpec(Rng& rng) {
  RandomSpec spec;
  std::string name = RandomToken(rng, kIdentChars, 12);
  spec.canonical_name = ToLower(name);
  spec.text = Pad(rng, name);
  size_t num_params = rng.UniformIndex(5);
  for (size_t p = 0; p < num_params; ++p) {
    std::string key;
    // Rejection-sample a key distinct from the ones already emitted
    // (duplicate keys are a parse error by design).
    for (;;) {
      key = ToLower(RandomToken(rng, kIdentChars, 8));
      bool taken = false;
      for (const auto& [existing, unused] : spec.canonical_params) {
        if (existing == key) taken = true;
      }
      if (!taken) break;
    }
    std::string value = RandomToken(rng, kValueChars, 10);
    spec.canonical_params.emplace_back(key, value);
    spec.text.push_back(p == 0 ? '?' : '&');
    spec.text.append(Pad(rng, key));
    spec.text.push_back('=');
    spec.text.append(Pad(rng, value));
  }
  return spec;
}

TEST(SpecFuzzTest, ValidSpecsRoundTripThroughToString) {
  Rng rng(20260728);
  for (int round = 0; round < kRounds; ++round) {
    RandomSpec expected = MakeValidSpec(rng);
    Result<EstimatorSpec> parsed = ParseEstimatorSpec(expected.text);
    ASSERT_TRUE(parsed.ok())
        << "round " << round << ": '" << expected.text
        << "': " << parsed.status().ToString();
    EXPECT_EQ(parsed->name, expected.canonical_name) << expected.text;
    EXPECT_EQ(parsed->params, expected.canonical_params) << expected.text;

    // Canonical form re-parses to the identical MethodSpec.
    Result<EstimatorSpec> reparsed = ParseEstimatorSpec(parsed->ToString());
    ASSERT_TRUE(reparsed.ok()) << parsed->ToString();
    EXPECT_EQ(reparsed->name, parsed->name);
    EXPECT_EQ(reparsed->params, parsed->params);
    EXPECT_EQ(reparsed->ToString(), parsed->ToString());
  }
}

TEST(SpecFuzzTest, InvalidSpecsReturnErrorsNeverAbort) {
  Rng rng(424242);
  int exercised = 0;
  for (int round = 0; round < kRounds; ++round) {
    RandomSpec valid = MakeValidSpec(rng);
    std::string broken = valid.text;
    switch (rng.UniformIndex(5)) {
      case 0:  // no name at all
        broken.clear();
        if (rng.Bernoulli(0.5)) {
          broken = "   ?";
          broken.append(RandomToken(rng, kIdentChars, 6));
          broken += "=1";
        }
        break;
      case 1:  // param without '='
        broken.push_back(broken.find('?') == std::string::npos ? '?' : '&');
        broken.append(RandomToken(rng, kIdentChars, 8));
        break;
      case 2:  // empty key
        broken.push_back(broken.find('?') == std::string::npos ? '?' : '&');
        broken.push_back('=');
        broken.append(RandomToken(rng, kValueChars, 6));
        break;
      case 3: {  // duplicate key
        if (valid.canonical_params.empty()) continue;
        const auto& [key, value] = valid.canonical_params.front();
        broken += "&" + key + "=" + value;
        break;
      }
      case 4:  // whitespace-only
        broken = std::string(1 + rng.UniformIndex(4), ' ');
        break;
    }
    Result<EstimatorSpec> parsed = ParseEstimatorSpec(broken);
    ASSERT_FALSE(parsed.ok()) << "round " << round << ": '" << broken << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << broken;
    ++exercised;
  }
  // The duplicate-key case can skip; everything else must have run.
  EXPECT_GT(exercised, kRounds / 2);
}

TEST(SpecFuzzTest, ParamReaderRejectsGarbageValuesWithErrors) {
  // Typed getters over fuzzed values: correct parses for well-formed
  // numbers/bools, InvalidArgument (not an abort) for everything else.
  Rng rng(777);
  for (int round = 0; round < kRounds / 4; ++round) {
    std::string value = RandomToken(rng, kValueChars, 8);
    Result<EstimatorSpec> spec = ParseEstimatorSpec("fuzz?k=" + value);
    ASSERT_TRUE(spec.ok()) << value;

    SpecParamReader uints(*spec);
    Result<uint32_t> as_uint = uints.GetUint32("k", 0);
    SpecParamReader doubles(*spec);
    Result<double> as_double = doubles.GetDouble("k", 0.0);
    SpecParamReader bools(*spec);
    Result<bool> as_bool = bools.GetBool("k", false);

    if (!as_uint.ok()) {
      EXPECT_EQ(as_uint.status().code(), StatusCode::kInvalidArgument);
    }
    if (!as_double.ok()) {
      EXPECT_EQ(as_double.status().code(), StatusCode::kInvalidArgument);
    }
    if (as_bool.ok()) {
      std::string lower = ToLower(value);
      EXPECT_TRUE(lower == "1" || lower == "0" || lower == "true" ||
                  lower == "false" || lower == "yes" || lower == "no")
          << value;
    } else {
      EXPECT_EQ(as_bool.status().code(), StatusCode::kInvalidArgument);
    }
    // A parseable uint must also parse as a double with the same value.
    if (as_uint.ok()) {
      ASSERT_TRUE(as_double.ok()) << value;
      EXPECT_EQ(static_cast<double>(*as_uint), *as_double) << value;
    }
  }
}

TEST(SpecFuzzTest, UnknownParamsAreAlwaysCaughtBySweep) {
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    RandomSpec spec = MakeValidSpec(rng);
    if (spec.canonical_params.empty()) continue;
    Result<EstimatorSpec> parsed = ParseEstimatorSpec(spec.text);
    ASSERT_TRUE(parsed.ok());
    SpecParamReader reader(*parsed);  // consumes nothing
    Status status = reader.VerifyAllConsumed();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << spec.text;
  }
}

}  // namespace
}  // namespace dqm::estimators
