#include "estimators/f_statistics.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace dqm::estimators {
namespace {

TEST(FStatisticsTest, StartsEmpty) {
  FStatistics f;
  EXPECT_EQ(f.NumSpecies(), 0u);
  EXPECT_EQ(f.TotalObservations(), 0u);
  EXPECT_EQ(f.singletons(), 0u);
  EXPECT_EQ(f.SumIiMinus1(), 0u);
}

TEST(FStatisticsTest, AddSingleton) {
  FStatistics f;
  f.AddSingleton();
  f.AddSingleton();
  EXPECT_EQ(f.f(1), 2u);
  EXPECT_EQ(f.NumSpecies(), 2u);
  EXPECT_EQ(f.TotalObservations(), 2u);
}

TEST(FStatisticsTest, PromoteMovesBetweenClasses) {
  FStatistics f;
  f.AddSingleton();
  f.Promote(1);
  EXPECT_EQ(f.f(1), 0u);
  EXPECT_EQ(f.f(2), 1u);
  EXPECT_EQ(f.NumSpecies(), 1u);
  EXPECT_EQ(f.TotalObservations(), 2u);
  f.Promote(2);
  EXPECT_EQ(f.f(3), 1u);
  EXPECT_EQ(f.TotalObservations(), 3u);
}

TEST(FStatisticsTest, RemoveDeletesSpecies) {
  FStatistics f;
  f.AddSingleton();
  f.Promote(1);  // one species at frequency 2
  f.Remove(2);
  EXPECT_EQ(f.NumSpecies(), 0u);
  EXPECT_EQ(f.TotalObservations(), 0u);
}

TEST(FStatisticsTest, SumIiMinus1) {
  FStatistics f;
  // Two species at freq 3, one at freq 1: 2*3*2 + 1*1*0 = 12.
  for (int s = 0; s < 2; ++s) {
    f.AddSingleton();
    f.Promote(1);
    f.Promote(2);
  }
  f.AddSingleton();
  EXPECT_EQ(f.SumIiMinus1(), 12u);
}

// Invariant check against brute-force bookkeeping over random operations.
class FStatisticsPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(FStatisticsPropertyTest, InvariantsUnderRandomOps) {
  Rng rng(GetParam());
  FStatistics f;
  std::vector<uint32_t> species_freqs;  // shadow model
  for (int op = 0; op < 500; ++op) {
    if (species_freqs.empty() || rng.Bernoulli(0.3)) {
      f.AddSingleton();
      species_freqs.push_back(1);
    } else {
      size_t index = rng.UniformIndex(species_freqs.size());
      f.Promote(species_freqs[index]);
      ++species_freqs[index];
    }
    // Invariants: c = #species, n = sum freq, f(j) matches shadow counts.
    uint64_t n = 0;
    std::map<uint32_t, uint64_t> hist;
    for (uint32_t freq : species_freqs) {
      n += freq;
      ++hist[freq];
    }
    ASSERT_EQ(f.NumSpecies(), species_freqs.size());
    ASSERT_EQ(f.TotalObservations(), n);
    for (const auto& [freq, count] : hist) {
      ASSERT_EQ(f.f(freq), count);
    }
    ASSERT_EQ(f.histogram().size(), hist.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FStatisticsPropertyTest,
                         testing::Values(5, 6, 7, 8));

TEST(FStatisticsTest, ShiftedViewDropsLowClasses) {
  FStatistics f;
  // 3 singletons, 2 doubletons, 1 tripleton. n = 3 + 4 + 3 = 10.
  for (int i = 0; i < 3; ++i) f.AddSingleton();
  for (int i = 0; i < 2; ++i) {
    f.AddSingleton();
    f.Promote(1);
  }
  f.AddSingleton();
  f.Promote(1);
  f.Promote(2);

  FStatistics::ShiftedView view = f.Shifted(1, f.TotalObservations());
  // Shift 1: doubletons become singletons, tripletons become doubletons.
  EXPECT_EQ(view.f1, 2u);
  EXPECT_EQ(view.c, 3u);           // 2 + 1 species remain
  EXPECT_EQ(view.n, 10u - 3u);     // n - f_1 (paper's n^{+,s})
  // sum j(j-1) f_{j+1}: shifted freq 1 contributes 0, shifted 2: 1*2*1 = 2.
  EXPECT_EQ(view.sum_ii1, 2u);
}

TEST(FStatisticsTest, ShiftZeroIsIdentity) {
  FStatistics f;
  f.AddSingleton();
  f.AddSingleton();
  f.Promote(1);
  FStatistics::ShiftedView view = f.Shifted(0, f.TotalObservations());
  EXPECT_EQ(view.f1, f.singletons());
  EXPECT_EQ(view.c, f.NumSpecies());
  EXPECT_EQ(view.n, f.TotalObservations());
  EXPECT_EQ(view.sum_ii1, f.SumIiMinus1());
}

TEST(FStatisticsTest, RebuildFromCountsMatchesIncrementalStream) {
  // Feeding per-item dirty counts one increment at a time (AddSingleton on
  // 0 -> 1, Promote otherwise) must equal one RebuildFromCounts scan of the
  // final counts — the striped publish path's bit-identity claim.
  Rng rng(41);
  std::vector<uint32_t> counts(300, 0);
  FStatistics incremental;
  for (size_t step = 0; step < 5000; ++step) {
    size_t item = rng.UniformIndex(counts.size());
    if (counts[item] == 0) {
      incremental.AddSingleton();
    } else {
      incremental.Promote(counts[item]);
    }
    ++counts[item];
  }
  FStatistics rebuilt;
  rebuilt.RebuildFromCounts(counts);
  EXPECT_EQ(rebuilt.NumSpecies(), incremental.NumSpecies());
  EXPECT_EQ(rebuilt.TotalObservations(), incremental.TotalObservations());
  EXPECT_EQ(rebuilt.SumIiMinus1(), incremental.SumIiMinus1());
  EXPECT_EQ(rebuilt.histogram(), incremental.histogram());
}

TEST(FStatisticsTest, RebuildFromCountsResetsPreviousState) {
  FStatistics f;
  f.AddSingleton();
  f.Promote(1);
  f.AddSingleton();  // {1: 1, 2: 1}
  std::vector<uint32_t> counts = {0, 3, 0, 1};
  f.RebuildFromCounts(counts);
  EXPECT_EQ(f.NumSpecies(), 2u);
  EXPECT_EQ(f.TotalObservations(), 4u);
  EXPECT_EQ(f.f(1), 1u);
  EXPECT_EQ(f.f(2), 0u);
  EXPECT_EQ(f.f(3), 1u);
  f.RebuildFromCounts(std::vector<uint32_t>{});
  EXPECT_EQ(f.NumSpecies(), 0u);
  EXPECT_EQ(f.TotalObservations(), 0u);
  EXPECT_EQ(f.singletons(), 0u);
}

TEST(FStatisticsDeathTest, PromoteMissingClassAborts) {
  FStatistics f;
  EXPECT_DEATH(f.Promote(1), "no species");
  f.AddSingleton();
  EXPECT_DEATH(f.Promote(2), "no species");
}

TEST(Chao92PointTest, ZeroSpeciesGivesZero) {
  EXPECT_DOUBLE_EQ(Chao92Point(0, 0, 0, 0, true), 0.0);
}

TEST(Chao92PointTest, NoSingletonsGivesObservedCount) {
  // Full coverage (f1 = 0): D = c.
  EXPECT_DOUBLE_EQ(Chao92Point(10, 0, 30, 60, false), 10.0);
}

TEST(Chao92PointTest, AllSingletonsFallsBackToC) {
  // f1 == n: zero estimated coverage; defined fallback.
  EXPECT_DOUBLE_EQ(Chao92Point(5, 5, 5, 0, true), 5.0);
}

TEST(Chao92PointTest, PaperExampleOne) {
  // Section 3.2.1 Example 1: c=83, f1=30, n=180 ->
  // D = 83 / (1 - 30/180) = 99.6; remaining = 16.6.
  double estimate = Chao92Point(83, 30, 180, 0, false);
  EXPECT_NEAR(estimate - 83.0, 16.6, 0.1);
}

TEST(Chao92PointTest, PaperExampleTwo) {
  // Example 2: c=102, f1=46, n=208 -> D - c ~= 131.
  double estimate = Chao92Point(102, 46, 208, 0, false);
  EXPECT_NEAR(estimate, 102.0 + 29.0, 1.0);  // 102/(1-46/208) = 130.96
}

TEST(Chao92PointTest, SkewCorrectionNonNegative) {
  // gamma^2 is clamped at zero: skew form >= noskew form.
  double noskew = Chao92Point(50, 10, 200, 900, false);
  double skew = Chao92Point(50, 10, 200, 900, true);
  EXPECT_GE(skew, noskew);
}

TEST(Chao92PointTest, EstimateAtLeastObservedSpecies) {
  for (uint64_t f1 : {0u, 1u, 5u, 20u}) {
    double estimate = Chao92Point(40, f1, 100, 300, true);
    EXPECT_GE(estimate, 40.0) << "f1=" << f1;
  }
}

}  // namespace
}  // namespace dqm::estimators
