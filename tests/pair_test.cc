#include "er/pair.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace dqm::er {
namespace {

TEST(RecordPairTest, CanonicalOrder) {
  RecordPair a(3, 7);
  RecordPair b(7, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.first, 3u);
  EXPECT_EQ(a.second, 7u);
}

TEST(RecordPairTest, KeyPacksBothHalves) {
  RecordPair p(1, 2);
  EXPECT_EQ(p.Key(), (uint64_t{1} << 32) | 2);
}

TEST(RecordPairTest, Ordering) {
  EXPECT_LT(RecordPair(0, 1), RecordPair(0, 2));
  EXPECT_LT(RecordPair(0, 9), RecordPair(1, 2));
}

TEST(RecordPairDeathTest, SelfPairAborts) {
  EXPECT_DEATH({ RecordPair p(4, 4); }, "self-pairs");
}

TEST(RecordPairTest, HashDistinguishesPairs) {
  RecordPairHash hash;
  std::unordered_set<size_t> hashes;
  for (uint32_t i = 0; i < 30; ++i) {
    for (uint32_t j = i + 1; j < 30; ++j) {
      hashes.insert(hash(RecordPair(i, j)));
    }
  }
  // All 435 pairs should hash distinctly (would catch degenerate mixing).
  EXPECT_EQ(hashes.size(), 435u);
}

TEST(NumPairsTest, TriangularNumbers) {
  EXPECT_EQ(NumPairs(2), 1u);
  EXPECT_EQ(NumPairs(3), 3u);
  EXPECT_EQ(NumPairs(858), 367653u);  // the paper's restaurant pair count
}

class PairIndexerPropertyTest : public testing::TestWithParam<uint32_t> {};

TEST_P(PairIndexerPropertyTest, BijectionOverFullSpace) {
  uint32_t n = GetParam();
  PairIndexer indexer(n);
  std::set<uint64_t> seen;
  uint64_t expected_index = 0;
  for (uint32_t i = 0; i + 1 < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      RecordPair pair(i, j);
      uint64_t index = indexer.ToIndex(pair);
      // Row-major enumeration is dense and ordered.
      EXPECT_EQ(index, expected_index);
      ++expected_index;
      EXPECT_TRUE(seen.insert(index).second);
      // Round trip.
      EXPECT_EQ(indexer.FromIndex(index), pair);
    }
  }
  EXPECT_EQ(seen.size(), indexer.num_pairs());
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, PairIndexerPropertyTest,
                         testing::Values(2, 3, 4, 5, 10, 37, 100));

TEST(PairIndexerTest, LargeSpaceSpotChecks) {
  PairIndexer indexer(858);  // restaurant all-pairs space
  EXPECT_EQ(indexer.num_pairs(), 367653u);
  EXPECT_EQ(indexer.FromIndex(0), RecordPair(0, 1));
  EXPECT_EQ(indexer.FromIndex(indexer.num_pairs() - 1), RecordPair(856, 857));
  // Round-trip a sample of indices across the space.
  for (uint64_t index = 0; index < indexer.num_pairs(); index += 9973) {
    EXPECT_EQ(indexer.ToIndex(indexer.FromIndex(index)), index);
  }
}

TEST(PairIndexerTest, VeryLargeSpaceRoundTrip) {
  PairIndexer indexer(100000);  // ~5e9 pairs: exercises the float inversion
  uint64_t total = indexer.num_pairs();
  for (uint64_t index : {uint64_t{0}, total / 3, total / 2, total - 1}) {
    EXPECT_EQ(indexer.ToIndex(indexer.FromIndex(index)), index);
  }
}

TEST(PairIndexerDeathTest, OutOfRangeIndexAborts) {
  PairIndexer indexer(4);
  EXPECT_DEATH({ (void)indexer.FromIndex(6); }, "");
}

}  // namespace
}  // namespace dqm::er
