#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace dqm::text {
namespace {

TEST(WordTokensTest, SplitsOnNonAlnumAndLowercases) {
  EXPECT_EQ(WordTokens("Ritz-Carlton Cafe (buckhead)"),
            (std::vector<std::string>{"ritz", "carlton", "cafe", "buckhead"}));
}

TEST(WordTokensTest, DigitsAreTokens) {
  EXPECT_EQ(WordTokens("123 main st"),
            (std::vector<std::string>{"123", "main", "st"}));
}

TEST(WordTokensTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("--- !!! ...").empty());
}

TEST(WordTokensTest, MixedAlnumKeptTogether) {
  EXPECT_EQ(WordTokens("xj-2000b"),
            (std::vector<std::string>{"xj", "2000b"}));
}

TEST(QGramsTest, PaddedGramCount) {
  // |padded| = len + 2(q-1); grams = |padded| - q + 1 = len + q - 1.
  std::vector<std::string> grams = QGrams("abc", 3);
  EXPECT_EQ(grams.size(), 5u);
  EXPECT_EQ(grams.front(), "##a");
  EXPECT_EQ(grams.back(), "c##");
}

TEST(QGramsTest, LowercasesInput) {
  std::vector<std::string> grams = QGrams("AB", 2);
  EXPECT_EQ(grams, (std::vector<std::string>{"#a", "ab", "b#"}));
}

TEST(QGramsTest, UnigramsNoPadding) {
  EXPECT_EQ(QGrams("ab", 1), (std::vector<std::string>{"a", "b"}));
}

TEST(QGramsTest, EmptyInput) {
  // Only padding remains: q-1+q-1 chars -> q-1 grams of pure padding.
  EXPECT_EQ(QGrams("", 3).size(), 2u);
  EXPECT_TRUE(QGrams("", 1).empty());
}

TEST(NormalizeForMatchingTest, CanonicalForm) {
  EXPECT_EQ(NormalizeForMatching("The  Golden-Dragon, Cafe!"),
            "the golden dragon cafe");
  EXPECT_EQ(NormalizeForMatching(""), "");
}

TEST(NormalizeForMatchingTest, IdempotentOnCanonical) {
  std::string canonical = NormalizeForMatching("A-B c");
  EXPECT_EQ(NormalizeForMatching(canonical), canonical);
}

}  // namespace
}  // namespace dqm::text
