#include "crowd/assignment.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dqm::crowd {
namespace {

TEST(UniformAssignmentTest, TaskSizeAndDistinctness) {
  UniformAssignment assignment(100, 10);
  Rng rng(1);
  for (int t = 0; t < 50; ++t) {
    std::vector<uint32_t> task = assignment.NextTask(rng);
    EXPECT_EQ(task.size(), 10u);
    std::set<uint32_t> distinct(task.begin(), task.end());
    EXPECT_EQ(distinct.size(), task.size());
    for (uint32_t item : task) EXPECT_LT(item, 100u);
  }
}

TEST(UniformAssignmentTest, TaskLargerThanUniverseClamped) {
  UniformAssignment assignment(5, 10);
  Rng rng(2);
  EXPECT_EQ(assignment.NextTask(rng).size(), 5u);
}

TEST(UniformAssignmentTest, CoversUniverseEventually) {
  UniformAssignment assignment(30, 10);
  Rng rng(3);
  std::set<uint32_t> seen;
  for (int t = 0; t < 40; ++t) {
    for (uint32_t item : assignment.NextTask(rng)) seen.insert(item);
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(PrioritizedAssignmentTest, EpsilonZeroStaysInCandidates) {
  PrioritizedAssignment assignment(100, 40, 10, 0.0);
  Rng rng(4);
  for (int t = 0; t < 30; ++t) {
    for (uint32_t item : assignment.NextTask(rng)) {
      EXPECT_LT(item, 40u);
    }
  }
}

TEST(PrioritizedAssignmentTest, EpsilonOneStaysInComplement) {
  PrioritizedAssignment assignment(100, 40, 10, 1.0);
  Rng rng(5);
  for (int t = 0; t < 30; ++t) {
    for (uint32_t item : assignment.NextTask(rng)) {
      EXPECT_GE(item, 40u);
      EXPECT_LT(item, 100u);
    }
  }
}

TEST(PrioritizedAssignmentTest, EpsilonFractionRoughlyRespected) {
  const double epsilon = 0.2;
  PrioritizedAssignment assignment(10000, 5000, 20, epsilon);
  Rng rng(6);
  size_t complement_hits = 0, total = 0;
  for (int t = 0; t < 500; ++t) {
    for (uint32_t item : assignment.NextTask(rng)) {
      ++total;
      if (item >= 5000) ++complement_hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(complement_hits) / static_cast<double>(total),
              epsilon, 0.03);
}

TEST(PrioritizedAssignmentTest, ItemsWithinTaskDistinct) {
  PrioritizedAssignment assignment(50, 25, 10, 0.5);
  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    std::vector<uint32_t> task = assignment.NextTask(rng);
    std::set<uint32_t> distinct(task.begin(), task.end());
    EXPECT_EQ(distinct.size(), task.size());
  }
}

TEST(FixedQuorumAssignmentTest, ExactCoverage) {
  const size_t num_items = 40, per_task = 8, quorum = 3;
  FixedQuorumAssignment assignment(num_items, per_task, quorum, Rng(8));
  Rng rng(9);
  std::vector<int> votes(num_items, 0);
  // quorum * num_items / per_task tasks exhaust the deck exactly.
  const size_t deck_tasks = quorum * num_items / per_task;
  for (size_t t = 0; t < deck_tasks; ++t) {
    std::vector<uint32_t> task = assignment.NextTask(rng);
    std::set<uint32_t> distinct(task.begin(), task.end());
    EXPECT_EQ(distinct.size(), task.size());
    for (uint32_t item : task) ++votes[item];
  }
  for (size_t i = 0; i < num_items; ++i) {
    EXPECT_EQ(votes[i], static_cast<int>(quorum)) << "item " << i;
  }
}

TEST(FixedQuorumAssignmentTest, FallsBackToUniformAfterDeck) {
  FixedQuorumAssignment assignment(10, 5, 1, Rng(10));
  Rng rng(11);
  // Deck provides 2 tasks; further tasks must still be valid.
  for (int t = 0; t < 6; ++t) {
    std::vector<uint32_t> task = assignment.NextTask(rng);
    EXPECT_EQ(task.size(), 5u);
    for (uint32_t item : task) EXPECT_LT(item, 10u);
  }
}

TEST(AssignmentDeathTest, InvalidConfigurationsAbort) {
  EXPECT_DEATH({ UniformAssignment a(0, 5); }, "");
  EXPECT_DEATH({ UniformAssignment a(5, 0); }, "");
  EXPECT_DEATH({ PrioritizedAssignment a(10, 20, 5, 0.1); }, "");
  EXPECT_DEATH({ PrioritizedAssignment a(10, 5, 5, 1.5); }, "");
  EXPECT_DEATH({ FixedQuorumAssignment a(10, 5, 0, Rng(1)); }, "");
}

}  // namespace
}  // namespace dqm::crowd
