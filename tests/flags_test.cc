#include "common/flags.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace dqm {
namespace {

// Builds a mutable argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args) : args_(std::move(args)) {
    for (auto& a : args_) argv_.push_back(a.data());
  }
  int argc() { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> argv_;
};

TEST(FlagsTest, DefaultsWhenUnset) {
  FlagParser parser;
  int64_t* n = parser.AddInt("n", 42, "count");
  double* x = parser.AddDouble("x", 1.5, "rate");
  std::string* s = parser.AddString("s", "hi", "text");
  bool* b = parser.AddBool("b", false, "toggle");
  ArgvBuilder args({"prog"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(*n, 42);
  EXPECT_DOUBLE_EQ(*x, 1.5);
  EXPECT_EQ(*s, "hi");
  EXPECT_FALSE(*b);
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser parser;
  int64_t* n = parser.AddInt("n", 0, "");
  double* x = parser.AddDouble("x", 0, "");
  ArgvBuilder args({"prog", "--n=7", "--x=2.25"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(*n, 7);
  EXPECT_DOUBLE_EQ(*x, 2.25);
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser parser;
  std::string* s = parser.AddString("name", "", "");
  ArgvBuilder args({"prog", "--name", "value with spaces"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(*s, "value with spaces");
}

TEST(FlagsTest, BareBooleanEnables) {
  FlagParser parser;
  bool* b = parser.AddBool("verbose", false, "");
  ArgvBuilder args({"prog", "--verbose"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(*b);
}

TEST(FlagsTest, BooleanSpellings) {
  for (const char* spelling : {"true", "1", "yes"}) {
    FlagParser parser;
    bool* b = parser.AddBool("f", false, "");
    ArgvBuilder args({"prog", std::string("--f=") + spelling});
    ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
    EXPECT_TRUE(*b) << spelling;
  }
  for (const char* spelling : {"false", "0", "no"}) {
    FlagParser parser;
    bool* b = parser.AddBool("f", true, "");
    ArgvBuilder args({"prog", std::string("--f=") + spelling});
    ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
    EXPECT_FALSE(*b) << spelling;
  }
}

TEST(FlagsTest, PositionalCollected) {
  FlagParser parser;
  parser.AddInt("n", 0, "");
  ArgvBuilder args({"prog", "pos1", "--n=1", "pos2"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagParser parser;
  ArgvBuilder args({"prog", "--mystery=1"});
  Status s = parser.Parse(args.argc(), args.argv());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadIntegerIsError) {
  FlagParser parser;
  parser.AddInt("n", 0, "");
  ArgvBuilder args({"prog", "--n=abc"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, BadDoubleIsError) {
  FlagParser parser;
  parser.AddDouble("x", 0, "");
  ArgvBuilder args({"prog", "--x=1.5zzz"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, MissingValueIsError) {
  FlagParser parser;
  parser.AddInt("n", 0, "");
  ArgvBuilder args({"prog", "--n"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, NegativeNumbers) {
  FlagParser parser;
  int64_t* n = parser.AddInt("n", 0, "");
  double* x = parser.AddDouble("x", 0, "");
  ArgvBuilder args({"prog", "--n=-5", "--x=-0.25"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(*n, -5);
  EXPECT_DOUBLE_EQ(*x, -0.25);
}

TEST(FlagsTest, UsageListsFlags) {
  FlagParser parser;
  parser.AddInt("count", 3, "how many");
  std::string usage = parser.Usage();
  EXPECT_NE(usage.find("count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
  EXPECT_NE(usage.find("3"), std::string::npos);
}

TEST(FlagsTest, HelpReturnsFailedPrecondition) {
  FlagParser parser;
  ArgvBuilder args({"prog", "--help"});
  Status s = parser.Parse(args.argc(), args.argv());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

/// RAII guard: --log_level tests mutate the process-wide severity.
class LogLevelRestorer {
 public:
  LogLevelRestorer() : saved_(internal::GetLogLevel()) {}
  ~LogLevelRestorer() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(FlagsTest, LogLevelIsBuiltIn) {
  LogLevelRestorer restore;
  FlagParser parser;
  ArgvBuilder args({"prog", "--log_level=warn"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(internal::GetLogLevel(), LogLevel::kWarning);
  EXPECT_NE(parser.Usage().find("log_level"), std::string::npos);
}

TEST(FlagsTest, LogLevelAcceptsEverySeverityCaseInsensitively) {
  LogLevelRestorer restore;
  const std::pair<const char*, LogLevel> cases[] = {
      {"debug", LogLevel::kDebug},   {"INFO", LogLevel::kInfo},
      {"Warning", LogLevel::kWarning}, {"error", LogLevel::kError},
      {"fatal", LogLevel::kFatal}};
  for (const auto& [spelling, level] : cases) {
    FlagParser parser;
    ArgvBuilder args({"prog", std::string("--log_level=") + spelling});
    ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok()) << spelling;
    EXPECT_EQ(internal::GetLogLevel(), level) << spelling;
  }
}

TEST(FlagsTest, LogLevelUnsetLeavesSeverityAlone) {
  LogLevelRestorer restore;
  SetLogLevel(LogLevel::kError);
  FlagParser parser;
  ArgvBuilder args({"prog"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(internal::GetLogLevel(), LogLevel::kError);
}

TEST(FlagsTest, BadLogLevelIsError) {
  LogLevelRestorer restore;
  FlagParser parser;
  ArgvBuilder args({"prog", "--log_level=verbose"});
  Status s = parser.Parse(args.argc(), args.argv());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("log_level"), std::string::npos);
}

}  // namespace
}  // namespace dqm
