#include "crowd/log_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenario.h"

namespace dqm::crowd {
namespace {

ResponseLog SmallLog() {
  ResponseLog log(3);
  log.Append({0, 0, 0, Vote::kDirty});
  log.Append({0, 0, 1, Vote::kClean});
  log.Append({1, 1, 2, Vote::kDirty});
  return log;
}

TEST(ResponseLogIoTest, RoundTripPreservesEverything) {
  ResponseLog original = SmallLog();
  std::string csv = ResponseLogIo::ToCsv(original);
  auto parsed = ResponseLogIo::FromCsv(csv, 3);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_events(), original.num_events());
  for (size_t i = 0; i < original.num_events(); ++i) {
    EXPECT_EQ(parsed->events()[i], original.events()[i]) << "event " << i;
  }
  EXPECT_EQ(parsed->NominalCount(), original.NominalCount());
  EXPECT_EQ(parsed->MajorityCount(), original.MajorityCount());
}

TEST(ResponseLogIoTest, HeaderRequired) {
  EXPECT_FALSE(ResponseLogIo::FromCsv("0,0,0,dirty\n", 3).ok());
  EXPECT_FALSE(ResponseLogIo::FromCsv("", 3).ok());
}

TEST(ResponseLogIoTest, AcceptsNumericVotes) {
  auto log = ResponseLogIo::FromCsv(
      "task,worker,item,vote\n0,0,0,1\n0,0,1,0\n", 2);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->events()[0].vote, Vote::kDirty);
  EXPECT_EQ(log->events()[1].vote, Vote::kClean);
}

TEST(ResponseLogIoTest, RejectsBadRows) {
  // Bad vote word.
  EXPECT_FALSE(
      ResponseLogIo::FromCsv("task,worker,item,vote\n0,0,0,maybe\n", 3).ok());
  // Non-numeric ids.
  EXPECT_FALSE(
      ResponseLogIo::FromCsv("task,worker,item,vote\nx,0,0,dirty\n", 3).ok());
  // Wrong arity.
  EXPECT_FALSE(
      ResponseLogIo::FromCsv("task,worker,item,vote\n0,0,dirty\n", 3).ok());
  // Item out of range.
  auto out_of_range =
      ResponseLogIo::FromCsv("task,worker,item,vote\n0,0,9,dirty\n", 3);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kOutOfRange);
}

TEST(ResponseLogIoTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/dqm_log_io_test.csv";
  ResponseLog original = SmallLog();
  ASSERT_TRUE(ResponseLogIo::WriteFile(original, path).ok());
  auto readback = ResponseLogIo::ReadFile(path, 3);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->num_events(), original.num_events());
  std::remove(path.c_str());
}

TEST(ResponseLogIoTest, SimulatedLogSurvivesRoundTrip) {
  core::Scenario scenario = core::SimulationScenario(0.02, 0.15, 10);
  core::SimulatedRun run = core::SimulateScenario(scenario, 50, 3);
  std::string csv = ResponseLogIo::ToCsv(run.log);
  auto parsed = ResponseLogIo::FromCsv(csv, scenario.num_items);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_events(), run.log.num_events());
  // Order preserved bit-for-bit (the SWITCH estimator depends on it).
  for (size_t i = 0; i < run.log.num_events(); ++i) {
    ASSERT_EQ(parsed->events()[i], run.log.events()[i]);
  }
}

}  // namespace
}  // namespace dqm::crowd
