#include "er/crowder.h"

#include <gtest/gtest.h>

#include "dataset/restaurant_generator.h"

namespace dqm::er {
namespace {

class CrowdErPipelineTest : public testing::Test {
 protected:
  void SetUp() override {
    dataset::RestaurantConfig config;
    config.num_entities = 300;
    config.num_duplicates = 40;
    config.seed = 17;
    auto dataset = dataset::GenerateRestaurantDataset(config);
    ASSERT_TRUE(dataset.ok());
    table_ = std::make_unique<dataset::Table>(std::move(dataset->table));
    ground_truth_ = std::make_unique<GroundTruth>(dataset->duplicate_pairs);
  }

  std::unique_ptr<dataset::Table> table_;
  std::unique_ptr<GroundTruth> ground_truth_;
};

TEST_F(CrowdErPipelineTest, GroundTruthMembership) {
  EXPECT_EQ(ground_truth_->num_duplicates(), 40u);
  for (const RecordPair& pair : ground_truth_->duplicates()) {
    EXPECT_TRUE(ground_truth_->IsDuplicate(pair));
  }
  EXPECT_FALSE(ground_truth_->IsDuplicate(RecordPair(0, 339)) &&
               ground_truth_->IsDuplicate(RecordPair(1, 338)) &&
               ground_truth_->IsDuplicate(RecordPair(2, 337)));
}

TEST_F(CrowdErPipelineTest, QualityAccountingAddsUp) {
  CandidateGenerator generator(0.45, 0.92, "name");
  auto problem = BuildCrowdErProblem(*table_, *ground_truth_, generator,
                                     BlockingStrategy::kAllPairs);
  ASSERT_TRUE(problem.ok());
  const HeuristicQuality& q = problem->quality;
  // Every ground-truth duplicate is exactly one of: auto-accepted, a
  // candidate, or missed.
  EXPECT_EQ(q.auto_accepted_duplicates + q.candidate_duplicates +
                q.missed_duplicates,
            ground_truth_->num_duplicates());
  EXPECT_EQ(problem->num_dirty_candidates, q.candidate_duplicates);
  EXPECT_EQ(problem->truth.size(), problem->candidates.size());
}

TEST_F(CrowdErPipelineTest, TruthVectorMatchesGroundTruth) {
  CandidateGenerator generator(0.45, 0.92, "name");
  auto problem = BuildCrowdErProblem(*table_, *ground_truth_, generator,
                                     BlockingStrategy::kAllPairs);
  ASSERT_TRUE(problem.ok());
  for (size_t i = 0; i < problem->candidates.size(); ++i) {
    EXPECT_EQ(problem->truth[i],
              ground_truth_->IsDuplicate(problem->candidates[i].pair));
  }
}

TEST_F(CrowdErPipelineTest, MostDuplicatesSurviveTheHeuristic) {
  CandidateGenerator generator(0.45, 0.97, "name");
  auto problem = BuildCrowdErProblem(*table_, *ground_truth_, generator,
                                     BlockingStrategy::kAllPairs);
  ASSERT_TRUE(problem.ok());
  // The perturbation model is calibrated so that the majority of true
  // duplicates are not silently dropped below alpha.
  EXPECT_LT(problem->quality.missed_duplicates,
            ground_truth_->num_duplicates() / 2);
  // And the candidate band is where most crowd work lies.
  EXPECT_GT(problem->candidates.size(), 0u);
}

TEST_F(CrowdErPipelineTest, EquationNineComposition) {
  CandidateGenerator generator(0.45, 0.97, "name");
  auto problem = BuildCrowdErProblem(*table_, *ground_truth_, generator,
                                     BlockingStrategy::kAllPairs);
  ASSERT_TRUE(problem.ok());
  // With an oracle estimate over the candidates, Eq. (9) recovers the full
  // duplicate count up to (a) heuristic false negatives below alpha and
  // (b) heuristic false positives above beta.
  double oracle_candidate_estimate =
      static_cast<double>(problem->num_dirty_candidates);
  double composed = ComposeFullDatasetEstimate(oracle_candidate_estimate,
                                               problem->partition);
  double expected = static_cast<double>(ground_truth_->num_duplicates()) -
                    static_cast<double>(problem->quality.missed_duplicates) +
                    static_cast<double>(problem->quality.auto_accepted_clean);
  EXPECT_DOUBLE_EQ(composed, expected);
}

TEST_F(CrowdErPipelineTest, TokenBlockingProducesConsistentProblem) {
  CandidateGenerator generator(0.45, 0.92, "name");
  auto problem = BuildCrowdErProblem(*table_, *ground_truth_, generator,
                                     BlockingStrategy::kTokenBlocking);
  ASSERT_TRUE(problem.ok());
  EXPECT_EQ(problem->truth.size(), problem->candidates.size());
  EXPECT_EQ(problem->quality.auto_accepted_duplicates +
                problem->quality.candidate_duplicates +
                problem->quality.missed_duplicates,
            ground_truth_->num_duplicates());
}

}  // namespace
}  // namespace dqm::er
