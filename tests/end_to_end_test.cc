// Integration tests: the full pipeline from dataset generation through
// blocking, crowd simulation, and estimation — the library working the way
// the paper's deployments did.

#include <memory>

#include <gtest/gtest.h>

#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "crowd/simulator.h"
#include "dataset/address.h"
#include "dataset/restaurant_generator.h"
#include "er/crowder.h"

namespace dqm {
namespace {

TEST(EndToEndTest, RestaurantPipelineEstimatesCandidateErrors) {
  // 1. Generate a restaurant dataset with known duplicates.
  dataset::RestaurantConfig config;
  config.num_entities = 400;
  config.num_duplicates = 50;
  config.seed = 31;
  auto generated = dataset::GenerateRestaurantDataset(config);
  ASSERT_TRUE(generated.ok());

  // 2. Stage one of CrowdER: similarity partition of the pair space.
  er::GroundTruth ground_truth(generated->duplicate_pairs);
  er::CandidateGenerator generator(0.45, 0.95, "name");
  auto problem =
      er::BuildCrowdErProblem(generated->table, ground_truth, generator,
                              er::BlockingStrategy::kTokenBlocking);
  ASSERT_TRUE(problem.ok());
  ASSERT_GT(problem->candidates.size(), 50u);
  ASSERT_GT(problem->num_dirty_candidates, 10u);

  // 3. Stage two: crowd votes on the candidates.
  crowd::WorkerPool::Config pool_config;
  pool_config.base = {0.02, 0.15};
  crowd::CrowdSimulator::Config sim_config;
  sim_config.seed = 77;
  size_t num_candidates = problem->candidates.size();
  crowd::CrowdSimulator simulator(
      std::vector<bool>(problem->truth),
      std::make_unique<crowd::UniformAssignment>(num_candidates, 10),
      crowd::WorkerPool(pool_config, Rng(5)), sim_config);
  crowd::ResponseLog log(num_candidates);
  size_t num_tasks = num_candidates;  // ~10 votes per item
  simulator.RunTasks(log, num_tasks);

  // 4. The DQM estimate over the candidate set approaches the true number
  // of dirty candidates.
  core::DataQualityMetric metric(num_candidates);
  for (const crowd::VoteEvent& event : log.events()) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == crowd::Vote::kDirty);
  }
  double truth = static_cast<double>(problem->num_dirty_candidates);
  EXPECT_NEAR(metric.EstimatedTotalErrors(), truth, truth * 0.5 + 5.0);
}

TEST(EndToEndTest, AddressPipelineWithRuleValidatorAsPrefilter) {
  // Generate addresses, validate with the rule engine, and confirm the
  // rule engine's blind spot (fake-but-well-formed) is the long tail the
  // crowd+DQM machinery is needed for.
  auto generated = dataset::GenerateAddressDataset({});
  ASSERT_TRUE(generated.ok());
  dataset::AddressValidator validator;
  size_t rule_detected = 0;
  size_t undetectable = 0;
  for (size_t row : generated->data.dirty_rows) {
    if (validator.Validate(generated->data.table.cell(row, 1)).valid) {
      ++undetectable;
    } else {
      ++rule_detected;
    }
  }
  EXPECT_EQ(rule_detected + undetectable, 90u);
  EXPECT_GT(undetectable, 0u);   // the long tail exists
  EXPECT_GT(rule_detected, 45u);  // but rules catch most classes

  // The crowd can see what the rules cannot: simulate and estimate. The
  // address crowd has both error types (fp 0.05 / fn 0.25), the paper's
  // hardest real-data regime; SWITCH overestimates before converging
  // (Figure 5), so give it the full run before asserting.
  core::Scenario scenario = core::AddressScenario();
  core::SimulatedRun run = core::SimulateScenario(scenario, 1600, 13);
  core::DataQualityMetric metric(scenario.num_items);
  for (const crowd::VoteEvent& event : run.log.events()) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == crowd::Vote::kDirty);
  }
  EXPECT_NEAR(metric.EstimatedTotalErrors(), 90.0, 35.0);
}

TEST(EndToEndTest, SwitchBeatsChaoUnderFalsePositives) {
  // The paper's central comparison as one assertion: run the same noisy
  // log through SWITCH and CHAO92; SWITCH must have lower absolute error.
  core::Scenario scenario = core::SimulationScenario(0.01, 0.1, 15);
  core::SimulatedRun run = core::SimulateScenario(scenario, 600, 19);
  core::ExperimentRunner runner({.permutations = 5, .seed = 23});
  auto results = runner.Run(
      run.log, scenario.num_items,
      {{"SWITCH", core::MakeEstimatorFactory(core::Method::kSwitch)},
       {"CHAO92", core::MakeEstimatorFactory(core::Method::kChao92)}});
  double switch_final = results[0].mean.back();
  double chao_final = results[1].mean.back();
  EXPECT_LT(std::abs(switch_final - 100.0), std::abs(chao_final - 100.0));
}

TEST(EndToEndTest, PrioritizedCrowdCoversComplementErrors) {
  // Imperfect heuristic: 20% of errors live outside R_H. With epsilon
  // sampling the estimator sees them; with epsilon = 0 it cannot
  // (Section 5.3's argument for randomization).
  auto estimate_with_epsilon = [](double epsilon) {
    core::Scenario scenario = core::PrioritizationScenario(0.2, epsilon);
    core::SimulatedRun run = core::SimulateScenario(scenario, 3000, 3);
    core::DataQualityMetric metric(scenario.num_items);
    for (const crowd::VoteEvent& event : run.log.events()) {
      metric.AddVote(event.task, event.worker, event.item,
                     event.vote == crowd::Vote::kDirty);
    }
    return metric.EstimatedTotalErrors();
  };

  core::Scenario scenario = core::PrioritizationScenario(0.2, 0.1);
  core::SimulatedRun run = core::SimulateScenario(scenario, 3000, 3);
  size_t complement_votes = 0;
  for (const crowd::VoteEvent& event : run.log.events()) {
    if (event.item >= scenario.num_candidates) ++complement_votes;
  }
  // Roughly epsilon of the votes land on complement items.
  EXPECT_GT(complement_votes, run.log.num_events() / 20);

  double with_sampling = estimate_with_epsilon(0.1);
  double without_sampling = estimate_with_epsilon(0.0);
  // epsilon = 0 caps the estimate at R_H's errors (~80); epsilon = 0.1
  // surfaces the complement's 20 as well. Sparse complement coverage makes
  // the full-R estimate noisier, hence the loose upper band.
  EXPECT_LT(without_sampling, 100.0);
  EXPECT_GT(with_sampling, without_sampling);
  EXPECT_NEAR(with_sampling, 100.0, 75.0);
}

}  // namespace
}  // namespace dqm
