#include "crowd/simulator.h"

#include <gtest/gtest.h>

namespace dqm::crowd {
namespace {

CrowdSimulator MakeSimulator(std::vector<bool> truth, WorkerProfile profile,
                             size_t items_per_task, uint64_t seed,
                             size_t tasks_per_worker = 1) {
  WorkerPool::Config pool_config;
  pool_config.base = profile;
  CrowdSimulator::Config config;
  config.seed = seed;
  config.tasks_per_worker = tasks_per_worker;
  size_t num_items = truth.size();
  return CrowdSimulator(
      std::move(truth),
      std::make_unique<UniformAssignment>(num_items, items_per_task),
      WorkerPool(pool_config, Rng(seed)), config);
}

TEST(CrowdSimulatorTest, TaskProducesExpectedVotes) {
  std::vector<bool> truth(50, false);
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 10, 1);
  ResponseLog log(50);
  sim.RunTask(log);
  EXPECT_EQ(log.num_events(), 10u);
  EXPECT_EQ(log.num_tasks(), 1u);
}

TEST(CrowdSimulatorTest, PerfectWorkersVoteTruth) {
  std::vector<bool> truth(30, false);
  for (size_t i = 0; i < 10; ++i) truth[i] = true;
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 15, 2);
  ResponseLog log(30);
  sim.RunTasks(log, 40);
  for (const VoteEvent& event : log.events()) {
    EXPECT_EQ(event.vote == Vote::kDirty, truth[event.item]);
  }
}

TEST(CrowdSimulatorTest, NumDirtyCountsTruth) {
  std::vector<bool> truth = {true, false, true, true, false};
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 2, 3);
  EXPECT_EQ(sim.NumDirty(), 3u);
}

TEST(CrowdSimulatorTest, TaskIdsIncrease) {
  std::vector<bool> truth(20, false);
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 5, 4);
  ResponseLog log(20);
  sim.RunTasks(log, 7);
  uint32_t max_task = 0;
  for (const VoteEvent& event : log.events()) {
    max_task = std::max(max_task, event.task);
  }
  EXPECT_EQ(max_task, 6u);
  EXPECT_EQ(log.num_tasks(), 7u);
}

TEST(CrowdSimulatorTest, OneWorkerPerTaskByDefault) {
  std::vector<bool> truth(20, false);
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 5, 5);
  ResponseLog log(20);
  sim.RunTasks(log, 4);
  // Worker id equals task id when tasks_per_worker == 1.
  for (const VoteEvent& event : log.events()) {
    EXPECT_EQ(event.worker, event.task);
  }
}

TEST(CrowdSimulatorTest, TasksPerWorkerGroupsTasks) {
  std::vector<bool> truth(20, false);
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 5, 6,
                                     /*tasks_per_worker=*/3);
  ResponseLog log(20);
  sim.RunTasks(log, 9);
  for (const VoteEvent& event : log.events()) {
    EXPECT_EQ(event.worker, event.task / 3);
  }
}

TEST(CrowdSimulatorTest, DeterministicGivenSeed) {
  std::vector<bool> truth(40, false);
  truth[3] = truth[7] = true;
  CrowdSimulator a = MakeSimulator(truth, {0.1, 0.2}, 8, 99);
  CrowdSimulator b = MakeSimulator(truth, {0.1, 0.2}, 8, 99);
  ResponseLog log_a(40), log_b(40);
  a.RunTasks(log_a, 20);
  b.RunTasks(log_b, 20);
  ASSERT_EQ(log_a.num_events(), log_b.num_events());
  for (size_t i = 0; i < log_a.num_events(); ++i) {
    EXPECT_EQ(log_a.events()[i], log_b.events()[i]);
  }
}

TEST(CrowdSimulatorTest, ErrorRatesShowUpInVotes) {
  const size_t n = 1000;
  std::vector<bool> truth(n, false);
  for (size_t i = 0; i < n / 2; ++i) truth[i] = true;
  CrowdSimulator sim = MakeSimulator(truth, {0.1, 0.3}, 50, 7);
  ResponseLog log(n);
  sim.RunTasks(log, 400);
  size_t fp = 0, clean_votes = 0, fn = 0, dirty_votes = 0;
  for (const VoteEvent& event : log.events()) {
    if (truth[event.item]) {
      ++dirty_votes;
      if (event.vote == Vote::kClean) ++fn;
    } else {
      ++clean_votes;
      if (event.vote == Vote::kDirty) ++fp;
    }
  }
  EXPECT_NEAR(static_cast<double>(fp) / static_cast<double>(clean_votes), 0.1,
              0.02);
  EXPECT_NEAR(static_cast<double>(fn) / static_cast<double>(dirty_votes), 0.3,
              0.02);
}

}  // namespace
}  // namespace dqm::crowd
