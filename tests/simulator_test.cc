#include "crowd/simulator.h"

#include <gtest/gtest.h>

namespace dqm::crowd {
namespace {

CrowdSimulator MakeSimulator(std::vector<bool> truth, WorkerProfile profile,
                             size_t items_per_task, uint64_t seed,
                             size_t tasks_per_worker = 1) {
  WorkerPool::Config pool_config;
  pool_config.base = profile;
  CrowdSimulator::Config config;
  config.seed = seed;
  config.tasks_per_worker = tasks_per_worker;
  size_t num_items = truth.size();
  return CrowdSimulator(
      std::move(truth),
      std::make_unique<UniformAssignment>(num_items, items_per_task),
      WorkerPool(pool_config, Rng(seed)), config);
}

TEST(CrowdSimulatorTest, TaskProducesExpectedVotes) {
  std::vector<bool> truth(50, false);
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 10, 1);
  ResponseLog log(50);
  sim.RunTask(log);
  EXPECT_EQ(log.num_events(), 10u);
  EXPECT_EQ(log.num_tasks(), 1u);
}

TEST(CrowdSimulatorTest, PerfectWorkersVoteTruth) {
  std::vector<bool> truth(30, false);
  for (size_t i = 0; i < 10; ++i) truth[i] = true;
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 15, 2);
  ResponseLog log(30);
  sim.RunTasks(log, 40);
  for (const VoteEvent& event : log.events()) {
    EXPECT_EQ(event.vote == Vote::kDirty, truth[event.item]);
  }
}

TEST(CrowdSimulatorTest, NumDirtyCountsTruth) {
  std::vector<bool> truth = {true, false, true, true, false};
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 2, 3);
  EXPECT_EQ(sim.NumDirty(), 3u);
}

TEST(CrowdSimulatorTest, TaskIdsIncrease) {
  std::vector<bool> truth(20, false);
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 5, 4);
  ResponseLog log(20);
  sim.RunTasks(log, 7);
  uint32_t max_task = 0;
  for (const VoteEvent& event : log.events()) {
    max_task = std::max(max_task, event.task);
  }
  EXPECT_EQ(max_task, 6u);
  EXPECT_EQ(log.num_tasks(), 7u);
}

TEST(CrowdSimulatorTest, OneWorkerPerTaskByDefault) {
  std::vector<bool> truth(20, false);
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 5, 5);
  ResponseLog log(20);
  sim.RunTasks(log, 4);
  // Worker id equals task id when tasks_per_worker == 1.
  for (const VoteEvent& event : log.events()) {
    EXPECT_EQ(event.worker, event.task);
  }
}

TEST(CrowdSimulatorTest, TasksPerWorkerGroupsTasks) {
  std::vector<bool> truth(20, false);
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 5, 6,
                                     /*tasks_per_worker=*/3);
  ResponseLog log(20);
  sim.RunTasks(log, 9);
  for (const VoteEvent& event : log.events()) {
    EXPECT_EQ(event.worker, event.task / 3);
  }
}

TEST(CrowdSimulatorTest, DeterministicGivenSeed) {
  std::vector<bool> truth(40, false);
  truth[3] = truth[7] = true;
  CrowdSimulator a = MakeSimulator(truth, {0.1, 0.2}, 8, 99);
  CrowdSimulator b = MakeSimulator(truth, {0.1, 0.2}, 8, 99);
  ResponseLog log_a(40), log_b(40);
  a.RunTasks(log_a, 20);
  b.RunTasks(log_b, 20);
  ASSERT_EQ(log_a.num_events(), log_b.num_events());
  for (size_t i = 0; i < log_a.num_events(); ++i) {
    EXPECT_EQ(log_a.events()[i], log_b.events()[i]);
  }
}

TEST(CrowdSimulatorTest, ErrorRatesShowUpInVotes) {
  const size_t n = 1000;
  std::vector<bool> truth(n, false);
  for (size_t i = 0; i < n / 2; ++i) truth[i] = true;
  CrowdSimulator sim = MakeSimulator(truth, {0.1, 0.3}, 50, 7);
  ResponseLog log(n);
  sim.RunTasks(log, 400);
  size_t fp = 0, clean_votes = 0, fn = 0, dirty_votes = 0;
  for (const VoteEvent& event : log.events()) {
    if (truth[event.item]) {
      ++dirty_votes;
      if (event.vote == Vote::kClean) ++fn;
    } else {
      ++clean_votes;
      if (event.vote == Vote::kDirty) ++fp;
    }
  }
  EXPECT_NEAR(static_cast<double>(fp) / static_cast<double>(clean_votes), 0.1,
              0.02);
  EXPECT_NEAR(static_cast<double>(fn) / static_cast<double>(dirty_votes), 0.3,
              0.02);
}

TEST(CrowdSimulatorTest, ProfileDynamicsHookSeesEveryTaskOnce) {
  std::vector<bool> truth(40, false);
  CrowdSimulator sim = MakeSimulator(truth, {0.0, 0.0}, 10, 3,
                                     /*tasks_per_worker=*/2);
  std::vector<std::pair<uint32_t, uint32_t>> calls;  // (worker, task)
  sim.SetProfileDynamics(
      [&calls](uint32_t worker, uint32_t task, WorkerProfile&) {
        calls.emplace_back(worker, task);
      });
  ResponseLog log(40);
  sim.RunTasks(log, 6);
  ASSERT_EQ(calls.size(), 6u);
  for (uint32_t t = 0; t < 6; ++t) {
    EXPECT_EQ(calls[t].second, t);
    // tasks_per_worker = 2: worker index advances every other task.
    EXPECT_EQ(calls[t].first, t / 2);
  }
}

TEST(CrowdSimulatorTest, ProfileDynamicsChangesVotesOnlyForItsTasks) {
  // A hook that makes every worker always-wrong from task 20 onward must
  // leave tasks [0, 20) bit-identical to the hook-free run and flip every
  // vote afterwards (base workers are perfect, so wrong = deterministic).
  std::vector<bool> truth(60, false);
  for (size_t i = 0; i < 20; ++i) truth[i] = true;

  CrowdSimulator plain = MakeSimulator(truth, {0.0, 0.0}, 12, 9);
  ResponseLog plain_log(60);
  plain.RunTasks(plain_log, 40);

  CrowdSimulator hooked = MakeSimulator(truth, {0.0, 0.0}, 12, 9);
  hooked.SetProfileDynamics(
      [](uint32_t, uint32_t task, WorkerProfile& profile) {
        if (task >= 20) profile = {1.0, 1.0};
      });
  ResponseLog hooked_log(60);
  hooked.RunTasks(hooked_log, 40);

  ASSERT_EQ(plain_log.num_events(), hooked_log.num_events());
  for (size_t i = 0; i < plain_log.num_events(); ++i) {
    const VoteEvent& a = plain_log.events()[i];
    const VoteEvent& b = hooked_log.events()[i];
    EXPECT_EQ(a.task, b.task);
    EXPECT_EQ(a.item, b.item);
    if (a.task < 20) {
      EXPECT_EQ(a.vote, b.vote) << "task " << a.task;
    } else {
      EXPECT_NE(a.vote, b.vote) << "task " << a.task;
    }
  }
}

}  // namespace
}  // namespace dqm::crowd
