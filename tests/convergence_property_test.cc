// Property-style sweeps over worker-error regimes: the estimator contracts
// that must hold across the whole configuration space the paper explores.

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"

namespace dqm {
namespace {

// (false positive rate, false negative rate, seed, switch tolerance)
// The tolerance is the allowed |estimate - 100| for the SWITCH estimator at
// the end of the run; it widens with crowd noise, mirroring the paper's
// Figure 6(a) precision sweep where all estimators degrade together.
using Regime = std::tuple<double, double, uint64_t, double>;

class ConvergenceTest : public testing::TestWithParam<Regime> {};

TEST_P(ConvergenceTest, MajorityConsensusReachesTruth) {
  // The paper's foundational assumption: workers better than random ->
  // the majority converges to the truth with enough votes.
  auto [fp, fn, seed, tolerance] = GetParam();
  (void)tolerance;
  core::Scenario scenario = core::SimulationScenario(fp, fn, 20);
  scenario.num_items = 300;
  scenario.num_candidates = 300;
  scenario.dirty_in_candidates = 30;
  core::SimulatedRun run = core::SimulateScenario(scenario, 600, seed);
  // ~40 votes per item by the end.
  size_t wrong = 0;
  for (size_t i = 0; i < scenario.num_items; ++i) {
    bool majority_dirty =
        run.log.positive_votes(i) * 2 > run.log.total_votes(i);
    if (majority_dirty != run.truth[i]) ++wrong;
  }
  EXPECT_LE(wrong, 3u) << "fp=" << fp << " fn=" << fn;
}

TEST_P(ConvergenceTest, SwitchEstimateWithinToleranceAtScale) {
  auto [fp, fn, seed, tolerance] = GetParam();
  core::Scenario scenario = core::SimulationScenario(fp, fn, 15);
  core::SimulatedRun run = core::SimulateScenario(scenario, 700, seed);
  core::DataQualityMetric metric(scenario.num_items);
  for (const crowd::VoteEvent& event : run.log.events()) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == crowd::Vote::kDirty);
  }
  // Truth is 100.
  EXPECT_NEAR(metric.EstimatedTotalErrors(), 100.0, tolerance)
      << "fp=" << fp << " fn=" << fn;
}

TEST_P(ConvergenceTest, EstimatesAlwaysFiniteAndNonNegative) {
  auto [fp, fn, seed, tolerance] = GetParam();
  (void)tolerance;
  core::Scenario scenario = core::SimulationScenario(fp, fn, 15);
  scenario.num_items = 200;
  scenario.num_candidates = 200;
  scenario.dirty_in_candidates = 20;
  core::SimulatedRun run = core::SimulateScenario(scenario, 150, seed);
  for (core::Method method :
       {core::Method::kSwitch, core::Method::kChao92, core::Method::kVChao92,
        core::Method::kGoodTuring}) {
    auto estimator = core::MakeEstimatorFactory(method)(scenario.num_items);
    for (const crowd::VoteEvent& event : run.log.events()) {
      estimator->Observe(event);
      double estimate = estimator->Estimate();
      ASSERT_TRUE(std::isfinite(estimate))
          << core::MethodName(method) << " fp=" << fp << " fn=" << fn;
      ASSERT_GE(estimate, 0.0) << core::MethodName(method);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkerRegimes, ConvergenceTest,
    testing::Values(Regime{0.0, 0.0, 1, 5.0},     // perfect workers
                    Regime{0.0, 0.1, 2, 25.0},    // FN only (paper Fig 7a)
                    Regime{0.01, 0.0, 3, 25.0},   // FP only (paper Fig 7b)
                    Regime{0.01, 0.1, 4, 30.0},   // both (paper Fig 7c)
                    Regime{0.05, 0.25, 5, 50.0},  // sloppy crowd
                    Regime{0.02, 0.4, 6, 60.0})); // far FN-heavier than the
                                                  // paper's setting

// VOTING improves monotonically in expectation: its error (vs truth) at the
// end is no worse than at one third of the run, across regimes.
TEST_P(ConvergenceTest, VotingErrorShrinksOverTime) {
  auto [fp, fn, seed, tolerance] = GetParam();
  (void)tolerance;
  core::Scenario scenario = core::SimulationScenario(fp, fn, 15);
  core::SimulatedRun run = core::SimulateScenario(scenario, 600, seed + 100);
  core::ExperimentRunner runner({.permutations = 3, .seed = seed});
  auto results = runner.Run(
      run.log, scenario.num_items,
      {{"VOTING", core::MakeEstimatorFactory(core::Method::kVoting)}});
  const std::vector<double>& mean = results[0].mean;
  double early_error = std::abs(mean[mean.size() / 3] - 100.0);
  double final_error = std::abs(mean.back() - 100.0);
  EXPECT_LE(final_error, early_error + 2.0);
}

}  // namespace
}  // namespace dqm
