#include "common/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace dqm {
namespace {

TEST(CsvParseTest, SimpleRows) {
  auto rows = Csv::Parse("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"1", "2", "3"}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto rows = Csv::Parse("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (CsvRow{"c", "d"}));
}

TEST(CsvParseTest, EmptyFieldsPreserved) {
  auto rows = Csv::Parse(",,\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (CsvRow{"", "", ""}));
}

TEST(CsvParseTest, QuotedFieldWithDelimiter) {
  auto rows = Csv::Parse("\"a,b\",c\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (CsvRow{"a,b", "c"}));
}

TEST(CsvParseTest, EscapedQuotes) {
  auto rows = Csv::Parse("\"say \"\"hi\"\"\",x\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], "say \"hi\"");
}

TEST(CsvParseTest, EmbeddedNewlineInQuotedField) {
  auto rows = Csv::Parse("\"line1\nline2\",x\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrLfLineEndings) {
  auto rows = Csv::Parse("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"c", "d"}));
}

TEST(CsvParseTest, LoneCrTreatedAsRowEnd) {
  auto rows = Csv::Parse("a,b\rc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
}

TEST(CsvParseTest, StrayQuoteIsError) {
  auto rows = Csv::Parse("ab\"c,d\n");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  auto rows = Csv::Parse("\"abc\n");
  EXPECT_FALSE(rows.ok());
}

TEST(CsvParseTest, GarbageAfterClosingQuoteIsError) {
  auto rows = Csv::Parse("\"abc\"x,d\n");
  EXPECT_FALSE(rows.ok());
}

TEST(CsvParseTest, EmptyDocument) {
  auto rows = Csv::Parse("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvParseTest, CustomDelimiter) {
  auto rows = Csv::Parse("a;b;c\n", ';');
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b", "c"}));
}

TEST(CsvFormatTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(Csv::FormatRow({"plain", "with,comma", "with\"quote", "multi\nline"}),
            "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"");
}

TEST(CsvFormatTest, RoundTrip) {
  std::vector<CsvRow> original = {
      {"id", "name", "notes"},
      {"1", "caf\"e, the", "line1\nline2"},
      {"2", "", "plain"},
  };
  auto reparsed = Csv::Parse(Csv::Format(original));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, original);
}

TEST(CsvParseLineTest, SingleLine) {
  auto row = Csv::ParseLine("x,y,z");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{"x", "y", "z"}));
}

TEST(CsvParseLineTest, MultipleLinesRejected) {
  auto row = Csv::ParseLine("x\ny");
  EXPECT_FALSE(row.ok());
}

TEST(CsvFileTest, WriteReadRoundTrip) {
  std::string path = testing::TempDir() + "/dqm_csv_test.csv";
  std::vector<CsvRow> rows = {{"a", "b"}, {"1", "two, three"}};
  ASSERT_TRUE(Csv::WriteFile(path, rows).ok());
  auto readback = Csv::ReadFile(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(*readback, rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto result = Csv::ReadFile("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace dqm
