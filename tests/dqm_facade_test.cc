#include "core/dqm.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenario.h"

namespace dqm::core {
namespace {

TEST(DataQualityMetricTest, FreshMetricIsPristine) {
  DataQualityMetric metric(100);
  EXPECT_EQ(metric.num_items(), 100u);
  EXPECT_EQ(metric.num_votes(), 0u);
  EXPECT_DOUBLE_EQ(metric.EstimatedTotalErrors(), 0.0);
  EXPECT_DOUBLE_EQ(metric.EstimatedUndetectedErrors(), 0.0);
  EXPECT_DOUBLE_EQ(metric.QualityScore(), 1.0);
  EXPECT_EQ(metric.method_name(), "SWITCH");
}

TEST(DataQualityMetricTest, VotesFlowThrough) {
  DataQualityMetric metric(10);
  metric.AddVote(0, 0, 3, true);
  metric.AddVote(0, 0, 4, false);
  EXPECT_EQ(metric.num_votes(), 2u);
  EXPECT_EQ(metric.NominalCount(), 1u);
  EXPECT_EQ(metric.MajorityCount(), 1u);
  EXPECT_EQ(metric.log().positive_votes(3), 1u);
}

TEST(DataQualityMetricTest, MethodSelection) {
  for (Method method : {Method::kSwitch, Method::kChao92, Method::kGoodTuring,
                        Method::kVChao92, Method::kVoting, Method::kNominal}) {
    DataQualityMetric::Options options;
    options.method = method;
    DataQualityMetric metric(10, options);
    EXPECT_EQ(metric.method_name(), MethodName(method));
  }
}

TEST(DataQualityMetricTest, UndetectedIsTotalMinusMajority) {
  DataQualityMetric::Options options;
  options.method = Method::kChao92;
  DataQualityMetric metric(50, options);
  // Ten singleton dirty items: Chao92 extrapolates beyond the majority.
  for (uint32_t i = 0; i < 10; ++i) {
    metric.AddVote(i, i, i, true);
  }
  double undetected = metric.EstimatedUndetectedErrors();
  EXPECT_NEAR(undetected,
              metric.EstimatedTotalErrors() -
                  static_cast<double>(metric.MajorityCount()),
              1e-9);
  EXPECT_GE(undetected, 0.0);
}

TEST(DataQualityMetricTest, QualityScoreInUnitRange) {
  Scenario scenario = SimulationScenario(0.02, 0.2, 10);
  SimulatedRun run = SimulateScenario(scenario, 100, 3);
  DataQualityMetric metric(scenario.num_items);
  for (const crowd::VoteEvent& event : run.log.events()) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == crowd::Vote::kDirty);
    double quality = metric.QualityScore();
    ASSERT_GE(quality, 0.0);
    ASSERT_LE(quality, 1.0);
  }
  // After 100 tasks over 1000 items most labels are settled: quality high.
  EXPECT_GT(metric.QualityScore(), 0.8);
}

TEST(DataQualityMetricTest, EstimateTracksTruthEndToEnd) {
  Scenario scenario = SimulationScenario(0.005, 0.1, 15);
  SimulatedRun run = SimulateScenario(scenario, 500, 21);
  DataQualityMetric metric(scenario.num_items);
  for (const crowd::VoteEvent& event : run.log.events()) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == crowd::Vote::kDirty);
  }
  EXPECT_NEAR(metric.EstimatedTotalErrors(), 100.0, 20.0);
}

TEST(MakeEstimatorFactoryTest, ProducesWorkingEstimators) {
  for (Method method : {Method::kSwitch, Method::kChao92, Method::kVChao92,
                        Method::kVoting, Method::kNominal,
                        Method::kGoodTuring}) {
    estimators::EstimatorFactory factory = MakeEstimatorFactory(method);
    auto estimator = factory(20);
    ASSERT_NE(estimator, nullptr);
    estimator->Observe({0, 0, 1, crowd::Vote::kDirty});
    EXPECT_GE(estimator->Estimate(), 0.0);
    EXPECT_EQ(estimator->name(), MethodName(method));
  }
}

}  // namespace
}  // namespace dqm::core
