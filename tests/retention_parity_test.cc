// Retention-policy parity: a kCounts log must be observationally identical
// to a kFullEvents log fed the same vote stream everywhere except arrival
// history — same tallies, same NOMINAL / VOTING counts, and the same
// estimates for every estimator the serving pipeline can attach — across
// every registered workload family and randomized seeds. This is the
// contract that lets the engine drop O(#votes) event storage without
// changing a single served number.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/dqm.h"
#include "crowd/response_log.h"
#include "workload/workload.h"

namespace dqm::crowd {
namespace {

/// Small-universe spec per registered family (mirrors the conformance
/// harness sizes).
std::vector<std::string> FamilySpecs() {
  std::vector<std::string> specs;
  for (const std::string& name :
       workload::WorkloadRegistry::Global().Names()) {
    specs.push_back(name + "?n=80&dirty=12&tasks=50&ipt=8&batch=37");
  }
  return specs;
}

workload::GeneratedWorkload Generate(const std::string& spec, uint64_t seed) {
  auto generator = workload::WorkloadRegistry::Global().Create(spec);
  EXPECT_TRUE(generator.ok()) << generator.status().ToString();
  return (*generator)->Generate(seed);
}

class RetentionParityTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RetentionParityTest, TalliesAndCountsMatchOnEveryFamily) {
  for (const std::string& spec : FamilySpecs()) {
    workload::GeneratedWorkload run = Generate(spec, GetParam());
    size_t num_items = run.log.num_items();

    ResponseLog full(num_items, RetentionPolicy::kFullEvents);
    ResponseLog counts(num_items, RetentionPolicy::kCounts);
    for (const VoteEvent& event : run.log.events()) {
      full.Append(event);
      counts.Append(event);
    }

    EXPECT_EQ(full.num_events(), counts.num_events()) << spec;
    EXPECT_EQ(full.num_tasks(), counts.num_tasks()) << spec;
    EXPECT_EQ(full.num_workers(), counts.num_workers()) << spec;
    EXPECT_EQ(full.total_positive_votes(), counts.total_positive_votes())
        << spec;
    EXPECT_EQ(full.MajorityCount(), counts.MajorityCount()) << spec;
    EXPECT_EQ(full.NominalCount(), counts.NominalCount()) << spec;
    for (size_t i = 0; i < num_items; ++i) {
      ASSERT_EQ(full.positive_votes(i), counts.positive_votes(i))
          << spec << ", item " << i;
      ASSERT_EQ(full.total_votes(i), counts.total_votes(i))
          << spec << ", item " << i;
      ASSERT_EQ(full.MajorityDirty(i), counts.MajorityDirty(i))
          << spec << ", item " << i;
    }

    // The compacted matrix the kCounts log maintained incrementally must
    // be slot-for-slot what a one-shot replay of the events builds — the
    // property that makes count-based fits bit-identical across policies.
    ASSERT_NE(counts.compacted(), nullptr);
    EXPECT_EQ(full.compacted(), nullptr);
    CompactedVoteStore replayed;
    for (const VoteEvent& event : full.events()) {
      replayed.Add(event.worker, event.item, event.vote);
    }
    const CompactedVoteStore& incremental = *counts.compacted();
    ASSERT_EQ(incremental.num_pairs(), replayed.num_pairs()) << spec;
    EXPECT_EQ(incremental.workers(), replayed.workers()) << spec;
    EXPECT_EQ(incremental.items(), replayed.items()) << spec;
    EXPECT_EQ(incremental.dirty_counts(), replayed.dirty_counts()) << spec;
    EXPECT_EQ(incremental.clean_counts(), replayed.clean_counts()) << spec;
  }
}

TEST_P(RetentionParityTest, PipelineEstimatesMatchAcrossPoliciesOnEveryFamily) {
  // Every estimator the serving path can attach — the descriptive counts,
  // the whole fingerprint family, SWITCH, and (count-matrix-fed) EM — must
  // produce the same report rows whether the pipeline log retains events or
  // only compacted counts.
  const std::vector<std::string> panel = {
      "switch", "chao92",  "good-turing", "vchao92?shift=2",
      "chao1",  "jackknife1", "voting",   "nominal",
      "em-voting"};
  for (const std::string& spec : FamilySpecs()) {
    workload::GeneratedWorkload run = Generate(spec, GetParam() ^ 0x9e3779b9);
    size_t num_items = run.log.num_items();

    auto full = core::DataQualityMetric::Create(
        num_items, std::span<const std::string>(panel),
        RetentionPolicy::kFullEvents);
    auto counts = core::DataQualityMetric::Create(
        num_items, std::span<const std::string>(panel),
        RetentionPolicy::kCounts);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    ASSERT_TRUE(counts.ok()) << counts.status().ToString();
    for (const VoteEvent& event : run.log.events()) {
      full->AddVote(event.task, event.worker, event.item,
                    event.vote == Vote::kDirty);
      counts->AddVote(event.task, event.worker, event.item,
                      event.vote == Vote::kDirty);
    }

    core::DataQualityMetric::QualityReport full_report = full->Report();
    core::DataQualityMetric::QualityReport counts_report = counts->Report();
    EXPECT_EQ(full_report.majority_count, counts_report.majority_count);
    EXPECT_EQ(full_report.nominal_count, counts_report.nominal_count);
    ASSERT_EQ(full_report.estimators.size(), counts_report.estimators.size());
    for (size_t i = 0; i < full_report.estimators.size(); ++i) {
      // Bit-identical, including EM: both policies feed the fit the same
      // slot-ordered count matrix (incremental vs one-shot replay).
      EXPECT_EQ(full_report.estimators[i].total_errors,
                counts_report.estimators[i].total_errors)
          << spec << ", " << panel[i];
      EXPECT_EQ(full_report.estimators[i].quality_score,
                counts_report.estimators[i].quality_score)
          << spec << ", " << panel[i];
    }
  }
}

TEST(RetentionParityTest, RandomizedStoreParityAgainstShadowModel) {
  // Brute-force shadow check of the open-addressed store across growth
  // boundaries: random (worker, item, vote) streams with enough distinct
  // pairs to force several index rehashes.
  Rng rng(20260729);
  CompactedVoteStore store;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> shadow;  // [w][i]
  auto shadow_count = [&](uint32_t w, uint32_t i) -> std::pair<uint32_t, uint32_t>& {
    if (shadow.size() <= w) shadow.resize(w + 1);
    for (size_t s = 0; s < shadow[w].size(); ++s) {
      if (shadow[w][s].first == i) return shadow[w][s];
    }
    shadow[w].emplace_back(i, 0);
    return shadow[w].back();
  };
  size_t expected_dirty_total = 0;
  for (int op = 0; op < 5000; ++op) {
    uint32_t worker = static_cast<uint32_t>(rng.UniformIndex(40));
    uint32_t item = static_cast<uint32_t>(rng.UniformIndex(60));
    bool dirty = rng.Bernoulli(0.4);
    store.Add(worker, item, dirty ? Vote::kDirty : Vote::kClean);
    auto& cell = shadow_count(worker, item);
    if (dirty) {
      ++cell.second;
      ++expected_dirty_total;
    }
  }
  // Every shadow pair exists exactly once with the right dirty count.
  size_t shadow_pairs = 0;
  size_t store_dirty_total = 0;
  for (size_t slot = 0; slot < store.num_pairs(); ++slot) {
    store_dirty_total += store.dirty_counts()[slot];
  }
  for (uint32_t w = 0; w < shadow.size(); ++w) {
    for (const auto& [item, dirty_count] : shadow[w]) {
      ++shadow_pairs;
      bool found = false;
      for (size_t slot = 0; slot < store.num_pairs(); ++slot) {
        if (store.workers()[slot] == w && store.items()[slot] == item) {
          EXPECT_FALSE(found) << "duplicate slot for (" << w << "," << item
                              << ")";
          found = true;
          EXPECT_EQ(store.dirty_counts()[slot], dirty_count);
        }
      }
      EXPECT_TRUE(found) << "missing slot for (" << w << "," << item << ")";
    }
  }
  EXPECT_EQ(store.num_pairs(), shadow_pairs);
  EXPECT_EQ(store_dirty_total, expected_dirty_total);
}

TEST(RetentionParityTest, StripedRetainedBytesCountsFixedOverhead) {
  // Regression: RetainedBytes used to drop the striped-mode fixed overhead
  // (control block, stripe array, per-stripe metric table), reporting a
  // freshly striped log as no larger than a serialized one. The roll-up
  // gauge the engine exports was under-reporting every striped session.
  ResponseLog serial(256, RetentionPolicy::kCounts);
  ResponseLog striped(256, RetentionPolicy::kCounts);
  striped.EnableConcurrentIngest(4, /*maintain_pair_counts=*/true);
  EXPECT_GT(striped.RetainedBytes(), serial.RetainedBytes());

  // And the gap persists (shards counted too) once votes flow.
  std::vector<VoteEvent> votes;
  for (uint32_t i = 0; i < 500; ++i) {
    votes.push_back({0, i % 9, i % 256, i % 4 ? Vote::kClean : Vote::kDirty});
  }
  for (const VoteEvent& event : votes) serial.Append(event);
  striped.AppendConcurrent(votes);
  EXPECT_GT(striped.RetainedBytes(), serial.RetainedBytes());
}

TEST(RetentionParityDeathTest, EventsUnavailableUnderCounts) {
  ResponseLog log(4, RetentionPolicy::kCounts);
  log.Append({0, 0, 1, Vote::kDirty});
  EXPECT_DEATH(log.events(), "kFullEvents");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetentionParityTest,
                         testing::Values(11, 12, 13));

}  // namespace
}  // namespace dqm::crowd
