#include "dataset/table.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace dqm::dataset {
namespace {

TEST(SchemaTest, FieldsAndIndex) {
  Schema schema({"id", "name", "city"});
  EXPECT_EQ(schema.num_fields(), 3u);
  EXPECT_EQ(schema.field_name(1), "name");
  EXPECT_EQ(schema.FieldIndex("city"), std::optional<size_t>(2));
  EXPECT_EQ(schema.FieldIndex("missing"), std::nullopt);
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(Schema({"a", "b"}), Schema({"a", "b"}));
  EXPECT_FALSE(Schema({"a", "b"}) == Schema({"b", "a"}));
}

TEST(SchemaDeathTest, DuplicateNamesAbort) {
  EXPECT_DEATH({ Schema schema({"x", "x"}); }, "duplicate");
}

TEST(SchemaDeathTest, EmptyNameAborts) {
  EXPECT_DEATH({ Schema schema({""}); }, "non-empty");
}

TEST(TableTest, AppendAndAccess) {
  Table table{Schema({"id", "value"})};
  ASSERT_TRUE(table.AppendRow({"1", "a"}).ok());
  ASSERT_TRUE(table.AppendRow({"2", "b"}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.cell(1, 1), "b");
  EXPECT_EQ(table.row(0), (std::vector<std::string>{"1", "a"}));
}

TEST(TableTest, AppendWrongWidthFails) {
  Table table{Schema({"a", "b"})};
  Status s = table.AppendRow({"only one"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableTest, CellByName) {
  Table table{Schema({"id", "name"})};
  ASSERT_TRUE(table.AppendRow({"7", "x"}).ok());
  auto cell = table.CellByName(0, "name");
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(*cell, "x");
  EXPECT_EQ(table.CellByName(0, "nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(table.CellByName(5, "name").status().code(),
            StatusCode::kOutOfRange);
}

TEST(TableTest, SetCell) {
  Table table{Schema({"a"})};
  ASSERT_TRUE(table.AppendRow({"old"}).ok());
  ASSERT_TRUE(table.SetCell(0, 0, "new").ok());
  EXPECT_EQ(table.cell(0, 0), "new");
  EXPECT_FALSE(table.SetCell(9, 0, "x").ok());
  EXPECT_FALSE(table.SetCell(0, 9, "x").ok());
}

TEST(TableTest, Column) {
  Table table{Schema({"k", "v"})};
  ASSERT_TRUE(table.AppendRow({"1", "a"}).ok());
  ASSERT_TRUE(table.AppendRow({"2", "b"}).ok());
  auto column = table.Column("v");
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(*column, (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(table.Column("zzz").ok());
}

TEST(TableCsvTest, FromCsvWithHeader) {
  auto table = Table::FromCsv("id,name\n1,alpha\n2,beta\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->schema().field_name(1), "name");
  EXPECT_EQ(table->cell(1, 1), "beta");
}

TEST(TableCsvTest, FromCsvWithoutHeader) {
  auto table = Table::FromCsv("1,alpha\n", /*has_header=*/false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field_name(0), "c0");
  EXPECT_EQ(table->num_rows(), 1u);
}

TEST(TableCsvTest, RaggedRowsRejected) {
  auto table = Table::FromCsv("a,b\n1\n");
  EXPECT_FALSE(table.ok());
}

TEST(TableCsvTest, EmptyDocumentRejected) {
  EXPECT_FALSE(Table::FromCsv("").ok());
}

TEST(TableCsvTest, RoundTrip) {
  Table table{Schema({"id", "text"})};
  ASSERT_TRUE(table.AppendRow({"1", "with, comma"}).ok());
  ASSERT_TRUE(table.AppendRow({"2", "with \"quote\""}).ok());
  auto reparsed = Table::FromCsv(table.ToCsv());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->num_rows(), 2u);
  EXPECT_EQ(reparsed->cell(0, 1), "with, comma");
  EXPECT_EQ(reparsed->cell(1, 1), "with \"quote\"");
}

TEST(TableCsvTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/dqm_table_test.csv";
  Table table{Schema({"x"})};
  ASSERT_TRUE(table.AppendRow({"42"}).ok());
  ASSERT_TRUE(table.WriteCsvFile(path).ok());
  auto readback = Table::ReadCsvFile(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->cell(0, 0), "42");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dqm::dataset
