#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"

namespace dqm::engine {
namespace {

using crowd::Vote;
using crowd::VoteEvent;

core::SimulatedRun MakeRun(uint64_t seed, size_t tasks = 60) {
  core::Scenario scenario = core::SimulationScenario(0.01, 0.1, 10);
  return core::SimulateScenario(scenario, tasks, seed);
}

/// Replays `events` through a plain single-threaded facade.
core::DataQualityMetric SerialReplay(
    size_t num_items, const std::vector<VoteEvent>& events,
    const core::DataQualityMetric::Options& options =
        core::DataQualityMetric::Options()) {
  core::DataQualityMetric metric(num_items, options);
  for (const VoteEvent& event : events) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == Vote::kDirty);
  }
  return metric;
}

TEST(EstimationSessionTest, BatchedIngestMatchesSerialFacadeExactly) {
  core::SimulatedRun run = MakeRun(3);
  size_t num_items = run.truth.size();

  EstimationSession session("s", num_items);
  const std::vector<VoteEvent>& events = run.log.events();
  for (size_t begin = 0; begin < events.size(); begin += 37) {
    size_t size = std::min<size_t>(37, events.size() - begin);
    ASSERT_TRUE(
        session.AddVotes(std::span<const VoteEvent>(&events[begin], size))
            .ok());
  }

  core::DataQualityMetric serial = SerialReplay(num_items, events);
  Snapshot snapshot = session.snapshot();
  EXPECT_EQ(snapshot.num_votes, serial.num_votes());
  EXPECT_EQ(snapshot.majority_count, serial.MajorityCount());
  EXPECT_EQ(snapshot.nominal_count, serial.NominalCount());
  EXPECT_DOUBLE_EQ(snapshot.estimated_total_errors,
                   serial.EstimatedTotalErrors());
  EXPECT_DOUBLE_EQ(snapshot.estimated_undetected_errors,
                   serial.EstimatedUndetectedErrors());
  EXPECT_DOUBLE_EQ(snapshot.quality_score, serial.QualityScore());
}

TEST(EstimationSessionTest, OutOfRangeItemRejectsWholeBatchAtomically) {
  EstimationSession session("s", 10);
  std::vector<VoteEvent> batch = {
      {0, 0, 3, Vote::kDirty},
      {0, 0, 10, Vote::kDirty},  // out of range
  };
  Status status = session.AddVotes(batch);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // Not even the valid first vote was applied.
  EXPECT_EQ(session.snapshot().num_votes, 0u);
  EXPECT_EQ(session.snapshot().version, 0u);
}

TEST(EstimationSessionTest, EmptyBatchIsOkAndDoesNotBumpVersion) {
  EstimationSession session("s", 10);
  EXPECT_TRUE(session.AddVotes({}).ok());
  EXPECT_EQ(session.snapshot().version, 0u);
}

TEST(EngineTest, ConcurrentPerSessionIngestMatchesSerialExactly) {
  // Eight datasets ingested from eight threads at once, one producer per
  // session (the supported pattern for the order-sensitive SWITCH default).
  // Every session must end bit-identical to its serial facade replay.
  constexpr size_t kSessions = 8;
  std::vector<core::SimulatedRun> runs;
  for (size_t s = 0; s < kSessions; ++s) runs.push_back(MakeRun(100 + s));
  size_t num_items = runs[0].truth.size();

  DqmEngine engine;
  for (size_t s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(
        engine.OpenSession("dataset-" + std::to_string(s), num_items).ok());
  }

  ThreadPool pool(kSessions);
  ParallelFor(&pool, kSessions, [&](size_t s) {
    const std::vector<VoteEvent>& events = runs[s].log.events();
    std::string name = "dataset-" + std::to_string(s);
    for (size_t begin = 0; begin < events.size(); begin += 53) {
      size_t size = std::min<size_t>(53, events.size() - begin);
      Status status =
          engine.Ingest(name, std::span<const VoteEvent>(&events[begin], size));
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
  });

  for (size_t s = 0; s < kSessions; ++s) {
    core::DataQualityMetric serial =
        SerialReplay(num_items, runs[s].log.events());
    Result<Snapshot> snapshot = engine.Query("dataset-" + std::to_string(s));
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(snapshot->num_votes, serial.num_votes());
    EXPECT_DOUBLE_EQ(snapshot->estimated_total_errors,
                     serial.EstimatedTotalErrors());
    EXPECT_DOUBLE_EQ(snapshot->estimated_undetected_errors,
                     serial.EstimatedUndetectedErrors());
    EXPECT_DOUBLE_EQ(snapshot->quality_score, serial.QualityScore());
  }
}

TEST(EngineTest, InterleavedMultiProducerIngestMatchesSerialForTallyMethod) {
  // Four threads interleave batches into ONE session. With a tally-based
  // method (CHAO92) the final estimate depends only on the vote multiset,
  // so the concurrent result must equal the serial replay exactly.
  core::SimulatedRun run = MakeRun(9, /*tasks=*/100);
  size_t num_items = run.truth.size();
  const std::vector<VoteEvent>& events = run.log.events();

  core::DataQualityMetric::Options options;
  options.method = core::Method::kChao92;
  DqmEngine engine;
  ASSERT_TRUE(engine.OpenSession("shared", num_items, options).ok());

  constexpr size_t kThreads = 4;
  ThreadPool pool(kThreads);
  ParallelFor(&pool, kThreads, [&](size_t t) {
    // Thread t ingests batches t, t+kThreads, t+2*kThreads, ...
    constexpr size_t kBatch = 41;
    for (size_t begin = t * kBatch; begin < events.size();
         begin += kThreads * kBatch) {
      size_t size = std::min(kBatch, events.size() - begin);
      Status status = engine.Ingest(
          "shared", std::span<const VoteEvent>(&events[begin], size));
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
  });

  core::DataQualityMetric serial = SerialReplay(num_items, events, options);
  Result<Snapshot> snapshot = engine.Query("shared");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_votes, serial.num_votes());
  EXPECT_EQ(snapshot->majority_count, serial.MajorityCount());
  EXPECT_EQ(snapshot->nominal_count, serial.NominalCount());
  EXPECT_DOUBLE_EQ(snapshot->estimated_total_errors,
                   serial.EstimatedTotalErrors());
}

TEST(EngineTest, SnapshotsStayConsistentUnderConcurrentReads) {
  core::SimulatedRun run = MakeRun(5, /*tasks=*/120);
  size_t num_items = run.truth.size();
  const std::vector<VoteEvent>& events = run.log.events();

  DqmEngine engine;
  ASSERT_TRUE(engine.OpenSession("live", num_items).ok());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  auto reader = [&]() {
    uint64_t last_version = 0;
    uint64_t last_votes = 0;
    while (!done.load()) {
      Result<Snapshot> snapshot = engine.Query("live");
      if (!snapshot.ok()) continue;
      const Snapshot& s = *snapshot;
      // Monotone progress per reader.
      if (s.version < last_version || s.num_votes < last_votes) ++violations;
      last_version = s.version;
      last_votes = s.num_votes;
      // Internal consistency: all fields came from one locked publish.
      double undetected = std::max(
          s.estimated_total_errors - static_cast<double>(s.majority_count),
          0.0);
      if (std::abs(undetected - s.estimated_undetected_errors) > 1e-9)
        ++violations;
      if (s.quality_score < 0.0 || s.quality_score > 1.0) ++violations;
    }
  };
  std::thread reader_a(reader), reader_b(reader);
  for (size_t begin = 0; begin < events.size(); begin += 29) {
    size_t size = std::min<size_t>(29, events.size() - begin);
    ASSERT_TRUE(
        engine.Ingest("live", std::span<const VoteEvent>(&events[begin], size))
            .ok());
  }
  done.store(true);
  reader_a.join();
  reader_b.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(engine.Query("live")->num_votes, events.size());
}

TEST(EngineTest, UnknownSessionErrorsUseStatusCodes) {
  DqmEngine engine;
  VoteEvent vote{0, 0, 0, Vote::kDirty};
  EXPECT_EQ(engine.Query("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Ingest("ghost", std::span<const VoteEvent>(&vote, 1)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.CloseSession("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.GetSession("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.OpenSession("", 10).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, SessionLifecycle) {
  DqmEngine engine(DqmEngine::Options{.num_shards = 4});
  EXPECT_EQ(engine.num_sessions(), 0u);
  ASSERT_TRUE(engine.OpenSession("b", 10).ok());
  ASSERT_TRUE(engine.OpenSession("a", 10).ok());
  ASSERT_TRUE(engine.OpenSession("c", 10).ok());
  EXPECT_EQ(engine.OpenSession("a", 10).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.num_sessions(), 3u);
  EXPECT_EQ(engine.SessionNames(), (std::vector<std::string>{"a", "b", "c"}));

  // A handle obtained before closing stays usable afterwards.
  std::shared_ptr<EstimationSession> held = engine.GetSession("b").value();
  EXPECT_TRUE(engine.CloseSession("b").ok());
  EXPECT_EQ(engine.Query("b").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.num_sessions(), 2u);
  VoteEvent vote{0, 0, 1, Vote::kDirty};
  EXPECT_TRUE(held->AddVote(vote).ok());
  EXPECT_EQ(held->snapshot().num_votes, 1u);

  // The name can be reopened fresh.
  ASSERT_TRUE(engine.OpenSession("b", 10).ok());
  EXPECT_EQ(engine.Query("b")->num_votes, 0u);
}

TEST(EngineTest, ConcurrentOpenCloseAcrossShards) {
  DqmEngine engine(DqmEngine::Options{.num_shards = 3});
  ThreadPool pool(4);
  std::atomic<int> opened{0};
  ParallelFor(&pool, 64, [&](size_t i) {
    std::string name = "churn-" + std::to_string(i);
    if (engine.OpenSession(name, 16).ok()) opened.fetch_add(1);
    VoteEvent vote{0, 0, static_cast<uint32_t>(i % 16), Vote::kDirty};
    ASSERT_TRUE(engine.Ingest(name, std::span<const VoteEvent>(&vote, 1)).ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(engine.CloseSession(name).ok());
    }
  });
  EXPECT_EQ(opened.load(), 64);
  EXPECT_EQ(engine.num_sessions(), 32u);
}

}  // namespace
}  // namespace dqm::engine
