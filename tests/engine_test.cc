#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"

namespace dqm::engine {
namespace {

using crowd::Vote;
using crowd::VoteEvent;

core::SimulatedRun MakeRun(uint64_t seed, size_t tasks = 60) {
  core::Scenario scenario = core::SimulationScenario(0.01, 0.1, 10);
  return core::SimulateScenario(scenario, tasks, seed);
}

/// Replays `events` through a plain single-threaded facade.
core::DataQualityMetric SerialReplay(
    size_t num_items, const std::vector<VoteEvent>& events,
    const core::DataQualityMetric::Options& options =
        core::DataQualityMetric::Options()) {
  core::DataQualityMetric metric(num_items, options);
  for (const VoteEvent& event : events) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == Vote::kDirty);
  }
  return metric;
}

TEST(EstimationSessionTest, BatchedIngestMatchesSerialFacadeExactly) {
  core::SimulatedRun run = MakeRun(3);
  size_t num_items = run.truth.size();

  EstimationSession session("s", num_items);
  const std::vector<VoteEvent>& events = run.log.events();
  for (size_t begin = 0; begin < events.size(); begin += 37) {
    size_t size = std::min<size_t>(37, events.size() - begin);
    ASSERT_TRUE(
        session.AddVotes(std::span<const VoteEvent>(&events[begin], size))
            .ok());
  }

  core::DataQualityMetric serial = SerialReplay(num_items, events);
  Snapshot snapshot = session.snapshot();
  EXPECT_EQ(snapshot.num_votes, serial.num_votes());
  EXPECT_EQ(snapshot.majority_count, serial.MajorityCount());
  EXPECT_EQ(snapshot.nominal_count, serial.NominalCount());
  EXPECT_DOUBLE_EQ(snapshot.estimated_total_errors,
                   serial.EstimatedTotalErrors());
  EXPECT_DOUBLE_EQ(snapshot.estimated_undetected_errors,
                   serial.EstimatedUndetectedErrors());
  EXPECT_DOUBLE_EQ(snapshot.quality_score, serial.QualityScore());
}

TEST(EstimationSessionTest, OutOfRangeItemRejectsWholeBatchAtomically) {
  EstimationSession session("s", 10);
  std::vector<VoteEvent> batch = {
      {0, 0, 3, Vote::kDirty},
      {0, 0, 10, Vote::kDirty},  // out of range
  };
  Status status = session.AddVotes(batch);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // Not even the valid first vote was applied.
  EXPECT_EQ(session.snapshot().num_votes, 0u);
  EXPECT_EQ(session.snapshot().version, 0u);
}

TEST(EstimationSessionTest, EmptyBatchIsOkAndDoesNotBumpVersion) {
  EstimationSession session("s", 10);
  EXPECT_TRUE(session.AddVotes({}).ok());
  EXPECT_EQ(session.snapshot().version, 0u);
}

TEST(EngineTest, ConcurrentPerSessionIngestMatchesSerialExactly) {
  // Eight datasets ingested from eight threads at once, one producer per
  // session (the supported pattern for the order-sensitive SWITCH default).
  // Every session must end bit-identical to its serial facade replay.
  constexpr size_t kSessions = 8;
  std::vector<core::SimulatedRun> runs;
  for (size_t s = 0; s < kSessions; ++s) runs.push_back(MakeRun(100 + s));
  size_t num_items = runs[0].truth.size();

  DqmEngine engine;
  for (size_t s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(
        engine.OpenSession("dataset-" + std::to_string(s), num_items).ok());
  }

  ThreadPool pool(kSessions);
  ParallelFor(&pool, kSessions, [&](size_t s) {
    const std::vector<VoteEvent>& events = runs[s].log.events();
    std::string name = "dataset-" + std::to_string(s);
    for (size_t begin = 0; begin < events.size(); begin += 53) {
      size_t size = std::min<size_t>(53, events.size() - begin);
      Status status =
          engine.Ingest(name, std::span<const VoteEvent>(&events[begin], size));
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
  });

  for (size_t s = 0; s < kSessions; ++s) {
    core::DataQualityMetric serial =
        SerialReplay(num_items, runs[s].log.events());
    Result<Snapshot> snapshot = engine.Query("dataset-" + std::to_string(s));
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(snapshot->num_votes, serial.num_votes());
    EXPECT_DOUBLE_EQ(snapshot->estimated_total_errors,
                     serial.EstimatedTotalErrors());
    EXPECT_DOUBLE_EQ(snapshot->estimated_undetected_errors,
                     serial.EstimatedUndetectedErrors());
    EXPECT_DOUBLE_EQ(snapshot->quality_score, serial.QualityScore());
  }
}

TEST(EngineTest, InterleavedMultiProducerIngestMatchesSerialForTallyMethod) {
  // Four threads interleave batches into ONE session. With a tally-based
  // method (CHAO92) the final estimate depends only on the vote multiset,
  // so the concurrent result must equal the serial replay exactly.
  core::SimulatedRun run = MakeRun(9, /*tasks=*/100);
  size_t num_items = run.truth.size();
  const std::vector<VoteEvent>& events = run.log.events();

  core::DataQualityMetric::Options options;
  options.method = core::Method::kChao92;
  DqmEngine engine;
  ASSERT_TRUE(engine.OpenSession("shared", num_items, options).ok());

  constexpr size_t kThreads = 4;
  ThreadPool pool(kThreads);
  ParallelFor(&pool, kThreads, [&](size_t t) {
    // Thread t ingests batches t, t+kThreads, t+2*kThreads, ...
    constexpr size_t kBatch = 41;
    for (size_t begin = t * kBatch; begin < events.size();
         begin += kThreads * kBatch) {
      size_t size = std::min(kBatch, events.size() - begin);
      Status status = engine.Ingest(
          "shared", std::span<const VoteEvent>(&events[begin], size));
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
  });

  core::DataQualityMetric serial = SerialReplay(num_items, events, options);
  Result<Snapshot> snapshot = engine.Query("shared");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_votes, serial.num_votes());
  EXPECT_EQ(snapshot->majority_count, serial.MajorityCount());
  EXPECT_EQ(snapshot->nominal_count, serial.NominalCount());
  EXPECT_DOUBLE_EQ(snapshot->estimated_total_errors,
                   serial.EstimatedTotalErrors());
}

TEST(EngineTest, SnapshotsStayConsistentUnderConcurrentReads) {
  core::SimulatedRun run = MakeRun(5, /*tasks=*/120);
  size_t num_items = run.truth.size();
  const std::vector<VoteEvent>& events = run.log.events();

  DqmEngine engine;
  ASSERT_TRUE(engine.OpenSession("live", num_items).ok());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  auto reader = [&]() {
    uint64_t last_version = 0;
    uint64_t last_votes = 0;
    while (!done.load()) {
      Result<Snapshot> snapshot = engine.Query("live");
      if (!snapshot.ok()) continue;
      const Snapshot& s = *snapshot;
      // Monotone progress per reader.
      if (s.version < last_version || s.num_votes < last_votes) ++violations;
      last_version = s.version;
      last_votes = s.num_votes;
      // Internal consistency: all fields came from one locked publish.
      double undetected = std::max(
          s.estimated_total_errors - static_cast<double>(s.majority_count),
          0.0);
      if (std::abs(undetected - s.estimated_undetected_errors) > 1e-9)
        ++violations;
      if (s.quality_score < 0.0 || s.quality_score > 1.0) ++violations;
    }
  };
  std::thread reader_a(reader), reader_b(reader);
  for (size_t begin = 0; begin < events.size(); begin += 29) {
    size_t size = std::min<size_t>(29, events.size() - begin);
    ASSERT_TRUE(
        engine.Ingest("live", std::span<const VoteEvent>(&events[begin], size))
            .ok());
  }
  done.store(true);
  reader_a.join();
  reader_b.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(engine.Query("live")->num_votes, events.size());
}

TEST(EngineTest, UnknownSessionErrorsUseStatusCodes) {
  DqmEngine engine;
  VoteEvent vote{0, 0, 0, Vote::kDirty};
  EXPECT_EQ(engine.Query("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Ingest("ghost", std::span<const VoteEvent>(&vote, 1)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.CloseSession("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.GetSession("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.OpenSession("", 10).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, SessionLifecycle) {
  DqmEngine engine(DqmEngine::Options{.num_shards = 4});
  EXPECT_EQ(engine.num_sessions(), 0u);
  ASSERT_TRUE(engine.OpenSession("b", 10).ok());
  ASSERT_TRUE(engine.OpenSession("a", 10).ok());
  ASSERT_TRUE(engine.OpenSession("c", 10).ok());
  EXPECT_EQ(engine.OpenSession("a", 10).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.num_sessions(), 3u);
  EXPECT_EQ(engine.SessionNames(), (std::vector<std::string>{"a", "b", "c"}));

  // A handle obtained before closing stays usable afterwards.
  std::shared_ptr<EstimationSession> held = engine.GetSession("b").value();
  EXPECT_TRUE(engine.CloseSession("b").ok());
  EXPECT_EQ(engine.Query("b").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.num_sessions(), 2u);
  VoteEvent vote{0, 0, 1, Vote::kDirty};
  EXPECT_TRUE(held->AddVote(vote).ok());
  EXPECT_EQ(held->snapshot().num_votes, 1u);

  // The name can be reopened fresh.
  ASSERT_TRUE(engine.OpenSession("b", 10).ok());
  EXPECT_EQ(engine.Query("b")->num_votes, 0u);
}

TEST(EngineTest, ConcurrentOpenCloseAcrossShards) {
  DqmEngine engine(DqmEngine::Options{.num_shards = 3});
  ThreadPool pool(4);
  std::atomic<int> opened{0};
  ParallelFor(&pool, 64, [&](size_t i) {
    std::string name = "churn-" + std::to_string(i);
    if (engine.OpenSession(name, 16).ok()) opened.fetch_add(1);
    VoteEvent vote{0, 0, static_cast<uint32_t>(i % 16), Vote::kDirty};
    ASSERT_TRUE(engine.Ingest(name, std::span<const VoteEvent>(&vote, 1)).ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(engine.CloseSession(name).ok());
    }
  });
  EXPECT_EQ(opened.load(), 64);
  EXPECT_EQ(engine.num_sessions(), 32u);
}

TEST(SessionOptionsTest, ParsePublishCadenceSpec) {
  EXPECT_EQ(ParsePublishCadenceSpec("every_batch")->cadence,
            PublishCadence::kEveryBatch);
  EXPECT_EQ(ParsePublishCadenceSpec("manual")->cadence,
            PublishCadence::kManual);
  Result<SessionOptions> every_n = ParsePublishCadenceSpec("every_n_votes");
  ASSERT_TRUE(every_n.ok());
  EXPECT_EQ(every_n->cadence, PublishCadence::kEveryNVotes);
  EXPECT_EQ(every_n->publish_every_votes, SessionOptions().publish_every_votes);
  Result<SessionOptions> with_n = ParsePublishCadenceSpec("every_n_votes:128");
  ASSERT_TRUE(with_n.ok());
  EXPECT_EQ(with_n->publish_every_votes, 128u);
  EXPECT_FALSE(ParsePublishCadenceSpec("sometimes").ok());
  EXPECT_FALSE(ParsePublishCadenceSpec("every_n_votes:").ok());
  EXPECT_FALSE(ParsePublishCadenceSpec("every_n_votes:0").ok());
  EXPECT_FALSE(ParsePublishCadenceSpec("every_n_votes:12x").ok());
}

TEST(SessionOptionsTest, ParseWalGroupCommitSpec) {
  SessionOptions base;
  Result<SessionOptions> by_votes = ParseWalGroupCommitSpec("128", base);
  ASSERT_TRUE(by_votes.ok()) << by_votes.status().ToString();
  EXPECT_EQ(by_votes->wal_group_commit_votes, 128u);
  EXPECT_EQ(by_votes->wal_group_commit_ms, base.wal_group_commit_ms);

  Result<SessionOptions> by_ms = ParseWalGroupCommitSpec("25ms", base);
  ASSERT_TRUE(by_ms.ok()) << by_ms.status().ToString();
  EXPECT_EQ(by_ms->wal_group_commit_ms, 25u);
  EXPECT_EQ(by_ms->wal_group_commit_votes, base.wal_group_commit_votes);

  // Largest representable value parses; one digit more overflows.
  Result<SessionOptions> max =
      ParseWalGroupCommitSpec("18446744073709551615", base);
  ASSERT_TRUE(max.ok()) << max.status().ToString();
  EXPECT_EQ(max->wal_group_commit_votes, UINT64_MAX);
}

TEST(SessionOptionsTest, ParseWalGroupCommitSpecRejectsGarbage) {
  SessionOptions base;
  EXPECT_FALSE(ParseWalGroupCommitSpec("", base).ok());
  EXPECT_FALSE(ParseWalGroupCommitSpec("ms", base).ok());  // unit, no digits
  EXPECT_FALSE(ParseWalGroupCommitSpec("0", base).ok());
  EXPECT_FALSE(ParseWalGroupCommitSpec("0ms", base).ok());
  EXPECT_FALSE(ParseWalGroupCommitSpec("-5", base).ok());
  EXPECT_FALSE(ParseWalGroupCommitSpec("12sec", base).ok());  // garbage unit
  EXPECT_FALSE(ParseWalGroupCommitSpec("12 ms", base).ok());
  EXPECT_FALSE(ParseWalGroupCommitSpec("1.5ms", base).ok());
  EXPECT_FALSE(ParseWalGroupCommitSpec("ten", base).ok());
  // 2^64 and far beyond: the per-digit guard must catch these, not wrap.
  Result<SessionOptions> overflow =
      ParseWalGroupCommitSpec("18446744073709551616", base);
  EXPECT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find("overflow"), std::string::npos);
  EXPECT_FALSE(ParseWalGroupCommitSpec("99999999999999999999999", base).ok());
  EXPECT_FALSE(ParseWalGroupCommitSpec("99999999999999999999ms", base).ok());
}

TEST(SessionOptionsTest, ParseDurabilityFailurePolicySpellings) {
  Result<DurabilityFailurePolicy> fail_stop =
      ParseDurabilityFailurePolicy("fail_stop");
  ASSERT_TRUE(fail_stop.ok());
  EXPECT_EQ(*fail_stop, DurabilityFailurePolicy::kFailStop);
  Result<DurabilityFailurePolicy> degrade =
      ParseDurabilityFailurePolicy("degrade_to_volatile");
  ASSERT_TRUE(degrade.ok());
  EXPECT_EQ(*degrade, DurabilityFailurePolicy::kDegradeToVolatile);

  EXPECT_FALSE(ParseDurabilityFailurePolicy("").ok());
  EXPECT_FALSE(ParseDurabilityFailurePolicy("FAIL_STOP").ok());
  EXPECT_FALSE(ParseDurabilityFailurePolicy("degrade").ok());
  EXPECT_FALSE(ParseDurabilityFailurePolicy("volatile").ok());

  // Round trip through the manifest spelling.
  EXPECT_EQ(*ParseDurabilityFailurePolicy(
                DurabilityFailurePolicyName(DurabilityFailurePolicy::kFailStop)),
            DurabilityFailurePolicy::kFailStop);
  EXPECT_EQ(*ParseDurabilityFailurePolicy(DurabilityFailurePolicyName(
                DurabilityFailurePolicy::kDegradeToVolatile)),
            DurabilityFailurePolicy::kDegradeToVolatile);
}

TEST(EstimationSessionTest, PanelCadenceAndStripesDecideCommitPath) {
  const std::vector<std::string> tally_panel = {"chao92", "voting", "nominal"};
  const std::vector<std::string> switch_panel = {"switch", "chao92"};
  DqmEngine engine;
  // Defaults (every_batch cadence, auto stripes): serialized — auto
  // striping never pessimizes the historical per-batch configuration.
  auto default_session = engine.OpenSession(
      "default", 64, std::span<const std::string>(tally_panel));
  ASSERT_TRUE(default_session.ok());
  EXPECT_FALSE((*default_session)->concurrent_ingest());
  // A coalesced cadence turns auto striping on for eligible panels...
  SessionOptions coalesced;
  coalesced.cadence = PublishCadence::kEveryNVotes;
  auto tally = engine.OpenSession(
      "tally", 64, std::span<const std::string>(tally_panel), coalesced);
  ASSERT_TRUE(tally.ok());
  EXPECT_TRUE((*tally)->concurrent_ingest());
  // ...but order-sensitive panels always fall back.
  auto ordered = engine.OpenSession(
      "ordered", 64, std::span<const std::string>(switch_panel), coalesced);
  ASSERT_TRUE(ordered.ok());
  EXPECT_FALSE((*ordered)->concurrent_ingest());
  // Explicit stripes >= 2 force striping under any cadence;
  // ingest_stripes = 1 forces the serialized path under any cadence.
  SessionOptions explicit_stripes;
  explicit_stripes.ingest_stripes = 4;
  auto striped_batch = engine.OpenSession(
      "striped-batch", 64, std::span<const std::string>(tally_panel),
      explicit_stripes);
  ASSERT_TRUE(striped_batch.ok());
  EXPECT_TRUE((*striped_batch)->concurrent_ingest());
  SessionOptions forced = coalesced;
  forced.ingest_stripes = 1;
  auto serialized = engine.OpenSession(
      "forced", 64, std::span<const std::string>(tally_panel), forced);
  ASSERT_TRUE(serialized.ok());
  EXPECT_FALSE((*serialized)->concurrent_ingest());
}

TEST(EstimationSessionTest, ManualCadencePublishesOnlyOnPublish) {
  const std::vector<std::string> panel = {"voting", "nominal"};
  SessionOptions options;
  options.cadence = PublishCadence::kManual;
  for (size_t stripes : {size_t{0}, size_t{1}}) {  // striped and serialized
    options.ingest_stripes = stripes;
    DqmEngine engine;
    auto session = engine.OpenSession(
        "s", 32, std::span<const std::string>(panel), options);
    ASSERT_TRUE(session.ok());
    std::vector<VoteEvent> batch = {{0, 0, 1, Vote::kDirty},
                                    {0, 1, 2, Vote::kDirty}};
    ASSERT_TRUE((*session)->AddVotes(batch).ok());
    ASSERT_TRUE((*session)->AddVotes(batch).ok());
    // Nothing published yet: readers still see the initial empty snapshot.
    Snapshot before = (*session)->snapshot();
    EXPECT_EQ(before.version, 0u);
    EXPECT_EQ(before.num_votes, 0u);
    EXPECT_EQ((*session)->committed_votes(), 4u);
    (*session)->Publish();
    Snapshot after = (*session)->snapshot();
    EXPECT_EQ(after.version, 1u);
    EXPECT_EQ(after.num_votes, 4u);
    EXPECT_EQ(after.nominal_count, 2u);
    EXPECT_EQ(after.majority_count, 2u);
  }
}

TEST(EstimationSessionTest, EveryNVotesCadenceCoalescesPublishes) {
  const std::vector<std::string> panel = {"voting"};
  SessionOptions options;
  options.cadence = PublishCadence::kEveryNVotes;
  options.publish_every_votes = 4;
  for (size_t stripes : {size_t{0}, size_t{1}}) {
    options.ingest_stripes = stripes;
    DqmEngine engine;
    auto session = engine.OpenSession(
        "s", 16, std::span<const std::string>(panel), options);
    ASSERT_TRUE(session.ok());
    std::vector<VoteEvent> batch = {{0, 0, 1, Vote::kDirty},
                                    {0, 1, 2, Vote::kClean}};
    ASSERT_TRUE((*session)->AddVotes(batch).ok());  // 2 committed: no publish
    EXPECT_EQ((*session)->snapshot().version, 0u);
    ASSERT_TRUE((*session)->AddVotes(batch).ok());  // 4 committed: publish
    Snapshot at_threshold = (*session)->snapshot();
    EXPECT_EQ(at_threshold.version, 1u);
    EXPECT_EQ(at_threshold.num_votes, 4u);
    ASSERT_TRUE((*session)->AddVotes(batch).ok());  // 6: below next threshold
    EXPECT_EQ((*session)->snapshot().num_votes, 4u);
    ASSERT_TRUE((*session)->AddVotes(batch).ok());  // 8: publish again
    EXPECT_EQ((*session)->snapshot().num_votes, 8u);

    // Batch sizes that do not divide N: both paths publish exactly when the
    // committed total crosses a multiple of N (identical striped /
    // serialized schedules).
    auto odd = engine.OpenSession("odd-" + std::to_string(stripes), 16,
                                  std::span<const std::string>(panel),
                                  options);
    ASSERT_TRUE(odd.ok());
    std::vector<VoteEvent> three = {{0, 0, 1, Vote::kDirty},
                                    {0, 1, 2, Vote::kClean},
                                    {0, 2, 3, Vote::kClean}};
    ASSERT_TRUE((*odd)->AddVotes(three).ok());  // 3: below 4
    EXPECT_EQ((*odd)->snapshot().version, 0u);
    ASSERT_TRUE((*odd)->AddVotes(three).ok());  // 6: crosses 4 -> publish
    EXPECT_EQ((*odd)->snapshot().version, 1u);
    EXPECT_EQ((*odd)->snapshot().num_votes, 6u);
    ASSERT_TRUE((*odd)->AddVotes(three).ok());  // 9: crosses 8 -> publish
    EXPECT_EQ((*odd)->snapshot().version, 2u);
    EXPECT_EQ((*odd)->snapshot().num_votes, 9u);
    ASSERT_TRUE((*odd)->AddVotes(three).ok());  // 12: crosses 12 -> publish
    EXPECT_EQ((*odd)->snapshot().version, 3u);
  }
}

TEST(EstimationSessionTest, StripedEveryBatchMatchesSerializedExactly) {
  // The default cadence on the striped path: a single producer's snapshots
  // must be bit-identical to the serialized path after every batch — the
  // "every_batch stays bit-compatible" contract, for the full tally panel.
  core::SimulatedRun run = MakeRun(11);
  size_t num_items = run.truth.size();
  const std::vector<std::string> panel = {"chao92", "vchao92?shift=2",
                                          "voting", "nominal", "good-turing"};
  DqmEngine engine;
  SessionOptions striped_options;
  striped_options.ingest_stripes = 4;  // striping + the default every_batch
  auto striped =
      engine.OpenSession("striped", num_items,
                         std::span<const std::string>(panel), striped_options);
  ASSERT_TRUE(striped.ok());
  ASSERT_TRUE((*striped)->concurrent_ingest());
  SessionOptions forced;
  forced.ingest_stripes = 1;
  auto serialized = engine.OpenSession(
      "serialized", num_items, std::span<const std::string>(panel), forced);
  ASSERT_TRUE(serialized.ok());
  ASSERT_FALSE((*serialized)->concurrent_ingest());

  const std::vector<VoteEvent>& events = run.log.events();
  for (size_t begin = 0; begin < events.size(); begin += 97) {
    size_t size = std::min<size_t>(97, events.size() - begin);
    std::span<const VoteEvent> batch(&events[begin], size);
    ASSERT_TRUE((*striped)->AddVotes(batch).ok());
    ASSERT_TRUE((*serialized)->AddVotes(batch).ok());
    Snapshot a = (*striped)->snapshot();
    Snapshot b = (*serialized)->snapshot();
    ASSERT_EQ(a.version, b.version);
    ASSERT_EQ(a.num_votes, b.num_votes);
    ASSERT_EQ(a.nominal_count, b.nominal_count);
    ASSERT_EQ(a.majority_count, b.majority_count);
    ASSERT_EQ(a.estimates.size(), b.estimates.size());
    for (size_t i = 0; i < a.estimates.size(); ++i) {
      ASSERT_EQ(a.estimates[i].total_errors, b.estimates[i].total_errors)
          << panel[i] << " after " << a.num_votes << " votes";
      ASSERT_EQ(a.estimates[i].quality_score, b.estimates[i].quality_score)
          << panel[i];
    }
  }
}

}  // namespace
}  // namespace dqm::engine
