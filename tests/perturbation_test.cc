#include "dataset/perturbation.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "text/levenshtein.h"
#include "text/similarity.h"

namespace dqm::dataset {
namespace {

TEST(PerturberTest, TypoIsSingleEdit) {
  Rng rng(1);
  Perturber perturber(&rng);
  for (int i = 0; i < 200; ++i) {
    std::string original = "golden dragon cafe";
    std::string mutated = perturber.Typo(original);
    size_t dist = text::LevenshteinDistance(original, mutated);
    // Transpositions cost 2 under plain Levenshtein; everything else 1.
    EXPECT_GE(dist, 1u);
    EXPECT_LE(dist, 2u);
    EXPECT_NE(mutated, original);
  }
}

TEST(PerturberTest, TypoNeverEmptiesSingleChar) {
  Rng rng(2);
  Perturber perturber(&rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(perturber.Typo("x").empty());
  }
}

TEST(PerturberTest, TypoOnEmptyProducesChar) {
  Rng rng(3);
  Perturber perturber(&rng);
  EXPECT_EQ(perturber.Typo("").size(), 1u);
}

TEST(PerturberTest, TyposApplyCount) {
  Rng rng(4);
  Perturber perturber(&rng);
  std::string original = "abcdefghij";
  std::string mutated = perturber.Typos(original, 3);
  EXPECT_LE(text::LevenshteinDistance(original, mutated), 6u);
}

TEST(PerturberTest, SwapAdjacentTokensPreservesMultiset) {
  Rng rng(5);
  Perturber perturber(&rng);
  std::string original = "one two three four";
  for (int i = 0; i < 50; ++i) {
    std::string swapped = perturber.SwapAdjacentTokens(original);
    auto a = SplitWhitespace(original);
    auto b = SplitWhitespace(swapped);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(PerturberTest, SwapNoOpOnSingleToken) {
  Rng rng(6);
  Perturber perturber(&rng);
  EXPECT_EQ(perturber.SwapAdjacentTokens("solo"), "solo");
}

TEST(PerturberTest, DropTokenRemovesExactlyOne) {
  Rng rng(7);
  Perturber perturber(&rng);
  std::string original = "a b c d";
  std::string dropped = perturber.DropToken(original);
  EXPECT_EQ(SplitWhitespace(dropped).size(), 3u);
}

TEST(PerturberTest, DropTokenNoOpOnSingleToken) {
  Rng rng(8);
  Perturber perturber(&rng);
  EXPECT_EQ(perturber.DropToken("solo"), "solo");
}

TEST(PerturberTest, AbbreviateReplacesWholeToken) {
  Rng rng(9);
  Perturber perturber(&rng);
  std::vector<std::pair<std::string, std::string>> dict = {
      {"street", "st."}};
  EXPECT_EQ(perturber.Abbreviate("main street cafe", dict), "main st. cafe");
  // Case-insensitive match.
  EXPECT_EQ(perturber.Abbreviate("Main STREET cafe", dict), "Main st. cafe");
  // No partial-token matches.
  EXPECT_EQ(perturber.Abbreviate("streetwise", dict), "streetwise");
}

TEST(PerturberTest, AbbreviateNoOpWithoutMatch) {
  Rng rng(10);
  Perturber perturber(&rng);
  EXPECT_EQ(perturber.Abbreviate("nothing here", {{"street", "st."}}),
            "nothing here");
}

TEST(PerturberTest, CaseNoiseKeepsTokenCount) {
  Rng rng(11);
  Perturber perturber(&rng);
  std::string result = perturber.CaseNoise("alpha beta");
  EXPECT_EQ(SplitWhitespace(result).size(), 2u);
}

TEST(PerturberTest, DuplicateNoiseStaysSimilar) {
  Rng rng(12);
  Perturber perturber(&rng);
  std::vector<std::pair<std::string, std::string>> dict = {
      {"cafe", "caffe"}};
  int high_similarity = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    std::string original = "golden dragon cafe";
    std::string dup = perturber.DuplicateNoise(original, dict);
    // Hybrid similarity, because token swaps (large edit distance, same
    // tokens) are part of the noise model.
    if (text::HybridSimilarity(original, dup) > 0.5) ++high_similarity;
  }
  // The duplicate-noise model must keep records recognizable.
  EXPECT_GT(high_similarity, trials * 8 / 10);
}

TEST(PerturberTest, DeterministicGivenSeed) {
  Rng rng_a(99), rng_b(99);
  Perturber pa(&rng_a), pb(&rng_b);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(pa.Typo("hello world"), pb.Typo("hello world"));
  }
}

}  // namespace
}  // namespace dqm::dataset
