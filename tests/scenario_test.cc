#include "core/scenario.h"

#include <gtest/gtest.h>

#include "crowd/response_log.h"

namespace dqm::core {
namespace {

size_t CountDirty(const std::vector<bool>& truth, size_t begin, size_t end) {
  size_t count = 0;
  for (size_t i = begin; i < end; ++i) {
    if (truth[i]) ++count;
  }
  return count;
}

TEST(ScenarioTest, BuildTruthPlacesDirtyPerStratum) {
  Scenario s;
  s.num_items = 100;
  s.num_candidates = 60;
  s.dirty_in_candidates = 12;
  s.dirty_in_complement = 5;
  std::vector<bool> truth = BuildTruth(s, 3);
  EXPECT_EQ(truth.size(), 100u);
  EXPECT_EQ(CountDirty(truth, 0, 60), 12u);
  EXPECT_EQ(CountDirty(truth, 60, 100), 5u);
}

TEST(ScenarioTest, BuildTruthDeterministic) {
  Scenario s = SimulationScenario(0.0, 0.1);
  EXPECT_EQ(BuildTruth(s, 9), BuildTruth(s, 9));
  EXPECT_NE(BuildTruth(s, 9), BuildTruth(s, 10));
}

TEST(ScenarioTest, PresetShapesMatchPaper) {
  Scenario restaurant = RestaurantScenario();
  EXPECT_EQ(restaurant.num_items, 1264u);
  EXPECT_EQ(restaurant.num_dirty(), 12u);
  EXPECT_EQ(restaurant.items_per_task, 10u);
  // FP-heavy crowd.
  EXPECT_GT(restaurant.workers.base.false_positive_rate, 0.0);

  Scenario product = ProductScenario();
  EXPECT_EQ(product.num_items, 13022u);
  EXPECT_EQ(product.num_dirty(), 607u);
  // FN-heavy crowd.
  EXPECT_GT(product.workers.base.false_negative_rate,
            product.workers.base.false_positive_rate * 10);

  Scenario address = AddressScenario();
  EXPECT_EQ(address.num_items, 1000u);
  EXPECT_EQ(address.num_dirty(), 90u);

  Scenario sim = SimulationScenario(0.01, 0.1);
  EXPECT_EQ(sim.num_items, 1000u);
  EXPECT_EQ(sim.num_dirty(), 100u);
  EXPECT_EQ(sim.items_per_task, 15u);
}

TEST(ScenarioTest, PrioritizationSplitsDirty) {
  Scenario s = PrioritizationScenario(0.3, 0.1);
  EXPECT_EQ(s.num_dirty(), 100u);
  EXPECT_EQ(s.dirty_in_complement, 30u);
  EXPECT_EQ(s.dirty_in_candidates, 70u);
  EXPECT_LT(s.num_candidates, s.num_items);
}

TEST(ScenarioTest, MakeSimulatorRunsUniform) {
  Scenario s = SimulationScenario(0.0, 0.0, 10);
  std::vector<bool> truth = BuildTruth(s, 1);
  crowd::CrowdSimulator sim = MakeSimulator(s, truth, 2);
  crowd::ResponseLog log(s.num_items);
  sim.RunTasks(log, 5);
  EXPECT_EQ(log.num_events(), 50u);
}

TEST(ScenarioTest, MakeSimulatorRunsPrioritized) {
  Scenario s = PrioritizationScenario(0.1, 0.0);  // epsilon 0: only R_H
  std::vector<bool> truth = BuildTruth(s, 1);
  crowd::CrowdSimulator sim = MakeSimulator(s, truth, 2);
  crowd::ResponseLog log(s.num_items);
  sim.RunTasks(log, 20);
  for (const crowd::VoteEvent& event : log.events()) {
    EXPECT_LT(event.item, s.num_candidates);
  }
}

TEST(ScenarioTest, FixedQuorumSimulatorCoversEveryItem) {
  Scenario s = SimulationScenario(0.0, 0.0, 10);
  s.num_items = 50;
  s.num_candidates = 50;
  s.dirty_in_candidates = 5;
  std::vector<bool> truth = BuildTruth(s, 1);
  crowd::CrowdSimulator sim = MakeFixedQuorumSimulator(s, truth, 3, 2);
  crowd::ResponseLog log(s.num_items);
  sim.RunTasks(log, 15);  // 3 * 50 / 10
  for (size_t i = 0; i < s.num_items; ++i) {
    EXPECT_EQ(log.total_votes(i), 3u) << "item " << i;
  }
}

}  // namespace
}  // namespace dqm::core
