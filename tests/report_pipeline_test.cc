// The multi-estimator pipeline contract: one pass over the vote stream must
// produce, for every attached estimator, exactly the numbers an independent
// single-method replay produces — bit for bit — while the deprecated enum
// construction path keeps its historical behavior.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "core/dqm.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "engine/engine.h"

namespace dqm::core {
namespace {

/// The paper's estimator panel (Figs. 2/4/6 comparisons).
const std::vector<std::string> kPanel = {
    "switch", "chao92", "good-turing", "vchao92", "voting", "nominal"};

const std::vector<Method> kPanelMethods = {
    Method::kSwitch, Method::kChao92, Method::kGoodTuring,
    Method::kVChao92, Method::kVoting, Method::kNominal};

SimulatedRun PanelRun(size_t tasks = 150, uint64_t seed = 11) {
  Scenario scenario = SimulationScenario(0.02, 0.15, 10);
  return SimulateScenario(scenario, tasks, seed);
}

void Feed(DataQualityMetric& metric, const crowd::ResponseLog& log) {
  for (const crowd::VoteEvent& event : log.events()) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == crowd::Vote::kDirty);
  }
}

TEST(ReportPipelineTest, OnePassMatchesSixSingleMethodReplaysBitForBit) {
  SimulatedRun run = PanelRun();
  size_t num_items = run.truth.size();

  Result<DataQualityMetric> pipeline =
      DataQualityMetric::Create(num_items, std::span<const std::string>(kPanel));
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  Feed(*pipeline, run.log);
  DataQualityMetric::QualityReport report = pipeline->Report();
  ASSERT_EQ(report.estimators.size(), kPanel.size());

  for (size_t i = 0; i < kPanel.size(); ++i) {
    SCOPED_TRACE(kPanel[i]);
    // Independent single-method replay through the spec path...
    std::vector<std::string> single = {kPanel[i]};
    Result<DataQualityMetric> replay =
        DataQualityMetric::Create(num_items,
                                  std::span<const std::string>(single));
    ASSERT_TRUE(replay.ok());
    Feed(*replay, run.log);
    EXPECT_EQ(report.estimators[i].total_errors,
              replay->EstimatedTotalErrors());
    EXPECT_EQ(report.estimators[i].undetected_errors,
              replay->EstimatedUndetectedErrors());
    EXPECT_EQ(report.estimators[i].quality_score, replay->QualityScore());

    // ...and through the legacy enum path (standalone estimators).
    DataQualityMetric::Options options;
    options.method = kPanelMethods[i];
    DataQualityMetric legacy(num_items, options);
    Feed(legacy, run.log);
    EXPECT_EQ(report.estimators[i].total_errors,
              legacy.EstimatedTotalErrors());
    EXPECT_EQ(report.estimators[i].undetected_errors,
              legacy.EstimatedUndetectedErrors());
    EXPECT_EQ(report.estimators[i].quality_score, legacy.QualityScore());
    EXPECT_EQ(report.estimators[i].name, MethodName(kPanelMethods[i]));
  }
}

TEST(ReportPipelineTest, ReportCarriesDescriptiveCountsAndSpecs) {
  SimulatedRun run = PanelRun(60);
  size_t num_items = run.truth.size();
  // Braced-list form — the class comment's documented usage.
  Result<DataQualityMetric> metric =
      DataQualityMetric::Create(num_items, {"switch", "vchao92?shift=2"});
  ASSERT_TRUE(metric.ok());
  Feed(*metric, run.log);

  DataQualityMetric::QualityReport report = metric->Report();
  EXPECT_EQ(report.num_votes, metric->num_votes());
  EXPECT_EQ(report.num_items, num_items);
  EXPECT_EQ(report.majority_count, metric->MajorityCount());
  EXPECT_EQ(report.nominal_count, metric->NominalCount());
  ASSERT_EQ(report.estimators.size(), 2u);
  EXPECT_EQ(report.estimators[0].name, "SWITCH");
  EXPECT_EQ(report.estimators[0].spec, "switch");
  EXPECT_EQ(report.estimators[1].name, "V-CHAO");
  EXPECT_EQ(report.estimators[1].spec, "vchao92?shift=2");

  // The single-method accessors answer for the primary (first) estimator.
  EXPECT_EQ(metric->method_name(), "SWITCH");
  EXPECT_EQ(report.estimators[0].total_errors, metric->EstimatedTotalErrors());
  EXPECT_EQ(report.estimators[0].quality_score, metric->QualityScore());
  EXPECT_EQ(metric->estimator_names(),
            (std::vector<std::string>{"SWITCH", "V-CHAO"}));
}

TEST(ReportPipelineTest, CreateRejectsBadInput) {
  std::vector<std::string> empty;
  EXPECT_EQ(DataQualityMetric::Create(100, std::span<const std::string>(empty))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DataQualityMetric::Create(100, "switch,chao93").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      DataQualityMetric::Create(100, "switch?winow=9").status().code(),
      StatusCode::kInvalidArgument);
}

TEST(ReportPipelineTest, DeprecatedOptionKnobsStillConfigureTheEstimator) {
  SimulatedRun run = PanelRun(80, 23);
  size_t num_items = run.truth.size();

  // vchao_shift keeps working through the enum path for one release...
  DataQualityMetric::Options options;
  options.method = Method::kVChao92;
  options.vchao_shift = 3;
  DataQualityMetric legacy(num_items, options);
  Feed(legacy, run.log);
  // ...and matches its spec-string replacement exactly.
  Result<DataQualityMetric> by_spec =
      DataQualityMetric::Create(num_items, "vchao92?shift=3");
  ASSERT_TRUE(by_spec.ok());
  Feed(*by_spec, run.log);
  EXPECT_EQ(legacy.EstimatedTotalErrors(), by_spec->EstimatedTotalErrors());

  // Same for switch_config.
  DataQualityMetric::Options switch_options;
  switch_options.method = Method::kSwitch;
  switch_options.switch_config.two_sided = true;
  switch_options.switch_config.smooth_window = 5;
  DataQualityMetric legacy_switch(num_items, switch_options);
  Feed(legacy_switch, run.log);
  Result<DataQualityMetric> switch_by_spec = DataQualityMetric::Create(
      num_items, "switch?two_sided=1&smooth_window=5");
  ASSERT_TRUE(switch_by_spec.ok());
  Feed(*switch_by_spec, run.log);
  EXPECT_EQ(legacy_switch.EstimatedTotalErrors(),
            switch_by_spec->EstimatedTotalErrors());

  // Options::specs wins over the enum when both are set.
  DataQualityMetric::Options spec_options;
  spec_options.method = Method::kNominal;
  spec_options.specs = {"voting"};
  DataQualityMetric spec_metric(num_items, spec_options);
  EXPECT_EQ(spec_metric.method_name(), "VOTING");
}

TEST(ReportPipelineTest, EngineSnapshotCarriesTheFullPanel) {
  SimulatedRun run = PanelRun(100, 31);
  size_t num_items = run.truth.size();

  engine::DqmEngine engine;
  Result<std::shared_ptr<engine::EstimationSession>> session =
      engine.OpenSession("panel", num_items,
                         std::span<const std::string>(kPanel));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const std::vector<crowd::VoteEvent>& events = run.log.events();
  for (size_t begin = 0; begin < events.size(); begin += 64) {
    size_t size = std::min<size_t>(64, events.size() - begin);
    ASSERT_TRUE((*session)
                    ->AddVotes(std::span<const crowd::VoteEvent>(
                        &events[begin], size))
                    .ok());
  }

  // The snapshot rows must be exactly the facade report of a serial replay.
  Result<DataQualityMetric> serial =
      DataQualityMetric::Create(num_items, std::span<const std::string>(kPanel));
  ASSERT_TRUE(serial.ok());
  Feed(*serial, run.log);
  DataQualityMetric::QualityReport report = serial->Report();

  engine::Snapshot snapshot = (*session)->snapshot();
  EXPECT_EQ(snapshot.num_votes, report.num_votes);
  EXPECT_EQ(snapshot.majority_count, report.majority_count);
  EXPECT_EQ(snapshot.nominal_count, report.nominal_count);
  EXPECT_EQ(snapshot.method_name, "SWITCH");
  ASSERT_EQ(snapshot.estimates.size(), kPanel.size());
  for (size_t i = 0; i < kPanel.size(); ++i) {
    SCOPED_TRACE(kPanel[i]);
    EXPECT_EQ(snapshot.estimates[i].name, report.estimators[i].name);
    EXPECT_EQ(snapshot.estimates[i].total_errors,
              report.estimators[i].total_errors);
    EXPECT_EQ(snapshot.estimates[i].undetected_errors,
              report.estimators[i].undetected_errors);
    EXPECT_EQ(snapshot.estimates[i].quality_score,
              report.estimators[i].quality_score);
  }
  // Primary scalars mirror row 0.
  EXPECT_EQ(snapshot.estimated_total_errors,
            snapshot.estimates[0].total_errors);
  EXPECT_EQ(snapshot.quality_score, snapshot.estimates[0].quality_score);

  // Bad specs never half-open a session.
  EXPECT_EQ(engine.OpenSession("bad", num_items,
                               std::span<const std::string>(
                                   std::vector<std::string>{"chao93"}))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.num_sessions(), 1u);
}

TEST(ReportPipelineTest, SharedEmVotingMatchesStandalone) {
  SimulatedRun run = PanelRun(60, 5);
  size_t num_items = run.truth.size();
  Result<DataQualityMetric> pipeline =
      DataQualityMetric::Create(num_items, "em-voting,chao92");
  ASSERT_TRUE(pipeline.ok());
  Feed(*pipeline, run.log);

  // Standalone construction (no shared stats): the registry env without a
  // pipeline falls back to the self-contained EmVotingEstimator.
  std::unique_ptr<estimators::TotalErrorEstimator> standalone =
      estimators::EstimatorRegistry::Global()
          .Create("em-voting", num_items)
          .value();
  for (const crowd::VoteEvent& event : run.log.events()) {
    standalone->Observe(event);
  }
  EXPECT_EQ(pipeline->Report().estimators[0].total_errors,
            standalone->Estimate());
}

}  // namespace
}  // namespace dqm::core
