#include "common/string_util.h"

#include <gtest/gtest.h>

namespace dqm {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, DropsEmptyFields) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(SplitJoinTest, RoundTrip) {
  std::string original = "x,y,,z";
  EXPECT_EQ(Join(Split(original, ','), ","), original);
}

TEST(StripWhitespaceTest, Basics) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("\t a b \n"), "a b");
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foo", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(1000, 'q');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 1002u);
}

TEST(IsDigitsTest, Basics) {
  EXPECT_TRUE(IsDigits("12345"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a45"));
  EXPECT_FALSE(IsDigits("-123"));
  EXPECT_FALSE(IsDigits("1.5"));
}

}  // namespace
}  // namespace dqm
