#include "estimators/extrapolation.h"

#include <gtest/gtest.h>

namespace dqm::estimators {
namespace {

TEST(ExtrapolateTest, PaperArithmetic) {
  // Section 2.2.3: 4 errors in a 1% sample -> 400 total, 396 remaining.
  EXPECT_DOUBLE_EQ(ExtrapolateTotal(4, 100, 10000), 400.0);
  EXPECT_DOUBLE_EQ(ExtrapolateRemaining(4, 100, 10000), 396.0);
}

TEST(ExtrapolateTest, FullSampleIsExact) {
  EXPECT_DOUBLE_EQ(ExtrapolateTotal(17, 500, 500), 17.0);
  EXPECT_DOUBLE_EQ(ExtrapolateRemaining(17, 500, 500), 0.0);
}

TEST(ExtrapolateTest, ZeroErrorsGiveZero) {
  EXPECT_DOUBLE_EQ(ExtrapolateTotal(0, 100, 10000), 0.0);
}

TEST(OracleTrialTest, UnbiasedOverManyTrials) {
  std::vector<bool> truth(1000, false);
  for (size_t i = 0; i < 100; ++i) truth[i * 10] = true;  // 100 errors
  Rng rng(5);
  double sum = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    sum += OracleExtrapolationTrial(truth, 50, rng);
  }
  EXPECT_NEAR(sum / trials, 100.0, 5.0);
}

TEST(OracleTrialTest, FullSampleIsExact) {
  std::vector<bool> truth = {true, false, true, false};
  Rng rng(6);
  EXPECT_DOUBLE_EQ(OracleExtrapolationTrial(truth, 4, rng), 2.0);
}

TEST(OracleBandTest, MeanNearTruthStdPositive) {
  std::vector<bool> truth(2000, false);
  for (size_t i = 0; i < 40; ++i) truth[i * 50] = true;  // rare errors
  Rng rng(7);
  ExtrapolationBand band = OracleExtrapolationBand(truth, 0.02, 200, rng);
  EXPECT_NEAR(band.mean, 40.0, 8.0);
  // Rare errors + small samples = the high variance the paper shows in
  // Figure 2(a).
  EXPECT_GT(band.std_dev, 10.0);
}

TEST(OracleBandTest, LargerSamplesShrinkVariance) {
  std::vector<bool> truth(2000, false);
  for (size_t i = 0; i < 40; ++i) truth[i * 50] = true;
  Rng rng(8);
  ExtrapolationBand small = OracleExtrapolationBand(truth, 0.02, 300, rng);
  ExtrapolationBand large = OracleExtrapolationBand(truth, 0.25, 300, rng);
  EXPECT_LT(large.std_dev, small.std_dev);
}

TEST(ExtrapolationDeathTest, InvalidArgumentsAbort) {
  EXPECT_DEATH({ ExtrapolateTotal(1, 0, 10); }, "");
  std::vector<bool> truth(10, false);
  Rng rng(9);
  EXPECT_DEATH({ OracleExtrapolationTrial(truth, 11, rng); }, "");
  EXPECT_DEATH({ OracleExtrapolationBand(truth, 0.0, 5, rng); }, "");
}

}  // namespace
}  // namespace dqm::estimators
