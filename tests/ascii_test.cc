#include "common/ascii.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace dqm {
namespace {

TEST(AsciiTableTest, RendersHeaderAndRows) {
  AsciiTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(AsciiTableTest, ColumnsAligned) {
  AsciiTable table({"x", "y"});
  table.AddRow({"aaaa", "1"});
  table.AddRow({"b", "2"});
  std::string out = table.Render();
  // Every line has equal length (right-aligned columns).
  size_t first_len = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(AsciiTableTest, NumericRowFormatting) {
  AsciiTable table({"a", "b"});
  table.AddNumericRow({1.23456, 2.0}, 2);
  std::string out = table.Render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(AsciiTableDeathTest, RowWidthMismatchAborts) {
  AsciiTable table({"only"});
  EXPECT_DEATH(table.AddRow({"a", "b"}), "width");
}

TEST(AsciiChartTest, RendersSeriesGlyphsAndLegend) {
  AsciiChart chart("test chart", {0, 1, 2, 3});
  chart.AddSeries("up", {0, 1, 2, 3});
  chart.AddSeries("down", {3, 2, 1, 0});
  std::string out = chart.Render(40, 10);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);  // first series glyph
  EXPECT_NE(out.find('o'), std::string::npos);  // second series glyph
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find("*=up"), std::string::npos);
  EXPECT_NE(out.find("o=down"), std::string::npos);
}

TEST(AsciiChartTest, HorizontalLineDrawn) {
  AsciiChart chart("gt", {0, 1, 2});
  chart.AddSeries("s", {0, 5, 10});
  chart.AddHorizontalLine("truth", 5.0);
  std::string out = chart.Render(30, 8);
  EXPECT_NE(out.find('-'), std::string::npos);
  EXPECT_NE(out.find("-=truth"), std::string::npos);
}

TEST(AsciiChartTest, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart("flat", {0, 1});
  chart.AddSeries("s", {5, 5});
  std::string out = chart.Render(20, 5);
  EXPECT_FALSE(out.empty());
}

TEST(AsciiChartTest, NoDataHandled) {
  AsciiChart chart("empty", {});
  std::string out = chart.Render(20, 5);
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(AsciiChartTest, NonFiniteValuesSkipped) {
  AsciiChart chart("nan", {0, 1, 2});
  chart.AddSeries("s", {1.0, std::nan(""), 3.0});
  std::string out = chart.Render(20, 5);
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace dqm
