#include "crowd/worker.h"

#include <gtest/gtest.h>

namespace dqm::crowd {
namespace {

TEST(WorkerProfileTest, PerfectWorkerNeverErrs) {
  Rng rng(1);
  WorkerProfile perfect{0.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(perfect.Answer(true, rng), Vote::kDirty);
    EXPECT_EQ(perfect.Answer(false, rng), Vote::kClean);
  }
}

TEST(WorkerProfileTest, AlwaysWrongWorker) {
  Rng rng(2);
  WorkerProfile inverted{1.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inverted.Answer(true, rng), Vote::kClean);
    EXPECT_EQ(inverted.Answer(false, rng), Vote::kDirty);
  }
}

TEST(WorkerProfileTest, ErrorRatesMatchConfiguration) {
  Rng rng(3);
  WorkerProfile profile{0.1, 0.3};
  const int n = 50000;
  int false_positives = 0, false_negatives = 0;
  for (int i = 0; i < n; ++i) {
    if (profile.Answer(false, rng) == Vote::kDirty) ++false_positives;
    if (profile.Answer(true, rng) == Vote::kClean) ++false_negatives;
  }
  EXPECT_NEAR(static_cast<double>(false_positives) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(false_negatives) / n, 0.3, 0.01);
}

TEST(WorkerPoolTest, NoVariationGivesBaseProfile) {
  WorkerPool::Config config;
  config.base = {0.05, 0.2};
  WorkerPool pool(config, Rng(4));
  for (int i = 0; i < 10; ++i) {
    WorkerProfile w = pool.DrawWorker();
    EXPECT_DOUBLE_EQ(w.false_positive_rate, 0.05);
    EXPECT_DOUBLE_EQ(w.false_negative_rate, 0.2);
  }
}

TEST(WorkerPoolTest, VariationSpreadsRates) {
  WorkerPool::Config config;
  config.base = {0.2, 0.2};
  config.variation = 0.1;
  WorkerPool pool(config, Rng(5));
  bool any_different = false;
  for (int i = 0; i < 50; ++i) {
    WorkerProfile w = pool.DrawWorker();
    EXPECT_GE(w.false_positive_rate, 0.0);
    EXPECT_LE(w.false_positive_rate, 0.95);
    EXPECT_GE(w.false_negative_rate, 0.0);
    EXPECT_LE(w.false_negative_rate, 0.95);
    if (w.false_positive_rate != 0.2) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(WorkerPoolTest, QualificationScreensWorkers) {
  WorkerPool::Config config;
  config.base = {0.1, 0.1};
  config.variation = 0.2;
  config.qualification_max_fp = 0.15;
  config.qualification_max_fn = 0.15;
  WorkerPool pool(config, Rng(6));
  for (int i = 0; i < 200; ++i) {
    WorkerProfile w = pool.DrawWorker();
    EXPECT_LE(w.false_positive_rate, 0.15);
    EXPECT_LE(w.false_negative_rate, 0.15);
  }
}

TEST(WorkerPoolDeathTest, UnsatisfiableQualificationAborts) {
  WorkerPool::Config config;
  config.base = {0.5, 0.1};
  config.qualification_max_fp = 0.2;  // base itself does not qualify
  EXPECT_DEATH({ WorkerPool pool(config, Rng(7)); }, "");
}

TEST(WorkerPoolTest, CohortMixtureDrawsByWeight) {
  // 30% always-wrong colluders (rate 1.0 on both sides) inside an honest
  // crowd: cohort draws must hit both populations near their weights, and
  // the adversary profile must come through exactly (zero variation).
  WorkerPool::Config config;
  config.cohorts = {
      WorkerPool::Cohort{0.7, {0.02, 0.1}, 0.0},
      WorkerPool::Cohort{0.3, {1.0, 1.0}, 0.0},
  };
  WorkerPool pool(config, Rng(11));
  size_t adversaries = 0;
  for (int i = 0; i < 2000; ++i) {
    WorkerProfile w = pool.DrawWorker();
    if (w.false_positive_rate == 1.0) {
      EXPECT_EQ(w.false_negative_rate, 1.0);
      ++adversaries;
    } else {
      EXPECT_EQ(w.false_positive_rate, 0.02);
      EXPECT_EQ(w.false_negative_rate, 0.1);
    }
  }
  EXPECT_NEAR(static_cast<double>(adversaries) / 2000.0, 0.3, 0.04);
}

TEST(WorkerPoolTest, CohortDrawsBypassQualificationScreen) {
  // The screen would reject a rate-1.0 profile; cohorts model adversaries
  // who pass the screening honestly, so the draw must not loop or clamp.
  WorkerPool::Config config;
  config.qualification_max_fp = 0.1;
  config.qualification_max_fn = 0.1;
  config.cohorts = {WorkerPool::Cohort{1.0, {1.0, 1.0}, 0.0}};
  WorkerPool pool(config, Rng(13));
  for (int i = 0; i < 50; ++i) {
    WorkerProfile w = pool.DrawWorker();
    EXPECT_EQ(w.false_positive_rate, 1.0);
    EXPECT_EQ(w.false_negative_rate, 1.0);
  }
}

TEST(WorkerPoolTest, EmptyCohortsKeepTheLegacyDrawSequence) {
  // Adding the (unused) cohorts field must not perturb existing seeded
  // scenarios: a pool with empty cohorts draws exactly as before.
  WorkerPool::Config config;
  config.base = {0.05, 0.2};
  config.variation = 0.03;
  WorkerPool with_default(config, Rng(17));
  WorkerPool::Config explicit_config = config;
  explicit_config.cohorts.clear();
  WorkerPool with_cleared(explicit_config, Rng(17));
  for (int i = 0; i < 100; ++i) {
    WorkerProfile a = with_default.DrawWorker();
    WorkerProfile b = with_cleared.DrawWorker();
    EXPECT_EQ(a.false_positive_rate, b.false_positive_rate);
    EXPECT_EQ(a.false_negative_rate, b.false_negative_rate);
  }
}

}  // namespace
}  // namespace dqm::crowd
