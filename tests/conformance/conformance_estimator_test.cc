// Metamorphic conformance suite: every registered estimator is checked
// against the properties it declares (estimators::ConformanceTraits) under
// every registered workload family. Registering a new estimator — or a new
// workload — automatically enrolls it here; nothing in this file names a
// specific estimator or family.

#include "conformance/conformance_utils.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "crowd/response_log.h"

namespace dqm::conformance {
namespace {

constexpr uint64_t kSeed = 20260728;

std::vector<std::string> EstimatorNames() {
  return estimators::EstimatorRegistry::Global().Names();
}

/// Replays `events` into a fresh log so core::PermuteTasks can be used on
/// inputs that only exist as event vectors.
crowd::ResponseLog ToLog(size_t num_items,
                         const std::vector<crowd::VoteEvent>& events) {
  crowd::ResponseLog log(num_items);
  for (const crowd::VoteEvent& event : events) log.Append(event);
  return log;
}

TEST(EstimatorConformanceTest, EstimatesAreFiniteAndNonNegativeEverywhere) {
  // Universal property: no registered estimator may produce NaN, infinity,
  // or a negative total on any workload family.
  for (const std::string& workload_spec : ConformanceWorkloadSpecs()) {
    workload::GeneratedWorkload run = MustGenerate(workload_spec, kSeed);
    for (const std::string& name : EstimatorNames()) {
      double estimate =
          StandaloneEstimate(name, run.log.num_items(), run.log.events());
      EXPECT_TRUE(std::isfinite(estimate))
          << name << " on " << workload_spec;
      EXPECT_GE(estimate, 0.0) << name << " on " << workload_spec;
    }
  }
}

TEST(EstimatorConformanceTest, PermutationInvariantEstimatorsSurviveShuffles) {
  // Estimators declaring permutation_invariant must be bit-identical under
  // any task-order permutation of the vote stream.
  for (const std::string& workload_spec : ConformanceWorkloadSpecs()) {
    workload::GeneratedWorkload run = MustGenerate(workload_spec, kSeed);
    for (const std::string& name : EstimatorNames()) {
      if (!TraitsFor(name).permutation_invariant) continue;
      double baseline =
          StandaloneEstimate(name, run.log.num_items(), run.log.events());
      for (uint64_t permutation = 0; permutation < 3; ++permutation) {
        crowd::ResponseLog permuted =
            core::PermuteTasks(run.log, kSeed + permutation);
        double shuffled = StandaloneEstimate(name, permuted.num_items(),
                                             permuted.events());
        EXPECT_EQ(baseline, shuffled)
            << name << " on " << workload_spec << ", permutation "
            << permutation;
      }
    }
  }
}

TEST(EstimatorConformanceTest, WithinTaskReorderIsInvisible) {
  // Items are distinct within a task, so reordering inside a task preserves
  // every per-item vote sequence; estimators declaring
  // within_task_invariant (including order-sensitive SWITCH) must not move.
  for (const std::string& workload_spec : ConformanceWorkloadSpecs()) {
    workload::GeneratedWorkload run = MustGenerate(workload_spec, kSeed);
    std::vector<crowd::VoteEvent> shuffled =
        ShuffleWithinTasks(run.log.events(), kSeed ^ 0xabcd);
    for (const std::string& name : EstimatorNames()) {
      if (!TraitsFor(name).within_task_invariant) continue;
      EXPECT_EQ(StandaloneEstimate(name, run.log.num_items(),
                                   run.log.events()),
                StandaloneEstimate(name, run.log.num_items(), shuffled))
          << name << " on " << workload_spec;
    }
  }
}

TEST(EstimatorConformanceTest, DuplicationInvariantsAndMonotonicity) {
  for (const std::string& workload_spec : ConformanceWorkloadSpecs()) {
    workload::GeneratedWorkload run = MustGenerate(workload_spec, kSeed);
    std::vector<crowd::VoteEvent> doubled = DuplicateLog(run.log.events());

    // Ingesting the log twice doubles every tally, which preserves the
    // majority labels and the at-least-one-dirty-vote set.
    crowd::ResponseLog doubled_log = ToLog(run.log.num_items(), doubled);
    EXPECT_EQ(run.log.MajorityCount(), doubled_log.MajorityCount())
        << workload_spec;
    EXPECT_EQ(run.log.NominalCount(), doubled_log.NominalCount())
        << workload_spec;

    for (const std::string& name : EstimatorNames()) {
      if (!TraitsFor(name).duplication_invariant) continue;
      EXPECT_EQ(
          StandaloneEstimate(name, run.log.num_items(), run.log.events()),
          StandaloneEstimate(name, run.log.num_items(), doubled))
          << name << " on " << workload_spec;
    }
  }
}

TEST(EstimatorConformanceTest, DirtyVotesOnlyGrowMonotoneEstimators) {
  // Estimators declaring monotone_in_dirty_votes must never shrink as
  // additional dirty votes arrive, one at a time, on arbitrary items.
  const std::string workload_spec = ConformanceWorkloadSpecs().front();
  workload::GeneratedWorkload run = MustGenerate(workload_spec, kSeed);
  size_t num_items = run.log.num_items();
  Rng rng(kSeed ^ 0x5a5a);

  for (const std::string& name : EstimatorNames()) {
    if (!TraitsFor(name).monotone_in_dirty_votes) continue;
    Result<std::unique_ptr<estimators::TotalErrorEstimator>> estimator =
        estimators::EstimatorRegistry::Global().Create(name, num_items);
    ASSERT_TRUE(estimator.ok()) << estimator.status().ToString();
    for (const crowd::VoteEvent& event : run.log.events()) {
      (*estimator)->Observe(event);
    }
    double last = (*estimator)->Estimate();
    uint32_t task = static_cast<uint32_t>(run.log.num_tasks());
    uint32_t worker = static_cast<uint32_t>(run.log.num_workers());
    for (int extra = 0; extra < 200; ++extra) {
      auto item = static_cast<uint32_t>(rng.UniformIndex(num_items));
      (*estimator)->Observe(
          crowd::VoteEvent{task + static_cast<uint32_t>(extra),
                           worker + static_cast<uint32_t>(extra), item,
                           crowd::Vote::kDirty});
      double now = (*estimator)->Estimate();
      EXPECT_GE(now, last) << name << " shrank after extra dirty vote "
                           << extra;
      last = now;
    }
  }
}

TEST(EstimatorConformanceTest, PipelineMatchesStandaloneOnRandomizedSpecs) {
  // Pipeline-vs-standalone bit-identity on randomized panels: a shuffled
  // subset of every registered estimator plus randomized param variants of
  // the parameterized ones, attached to one shared-stats pipeline, must
  // reproduce each row's standalone replay exactly.
  Rng rng(kSeed ^ 0xfeed);
  std::vector<std::string> workload_specs = ConformanceWorkloadSpecs();
  for (int round = 0; round < 4; ++round) {
    const std::string& workload_spec =
        workload_specs[rng.UniformIndex(workload_specs.size())];
    workload::GeneratedWorkload run =
        MustGenerate(workload_spec, kSeed + static_cast<uint64_t>(round));

    std::vector<std::string> panel = EstimatorNames();
    panel.push_back(StrFormat("vchao92?shift=%llu",
                              static_cast<unsigned long long>(
                                  rng.UniformIndex(4))));
    panel.push_back(StrFormat("switch?tau=%llu&two_sided=%d",
                              static_cast<unsigned long long>(
                                  10 + rng.UniformIndex(40)),
                              rng.Bernoulli(0.5) ? 1 : 0));
    panel.push_back(StrFormat("em-voting?max_iters=%llu",
                              static_cast<unsigned long long>(
                                  5 + rng.UniformIndex(30))));
    rng.Shuffle(panel);

    core::DataQualityMetric pipeline =
        ReplayPipeline(run.log.num_items(), panel, run.log.events());
    core::DataQualityMetric::QualityReport report = pipeline.Report();
    ASSERT_EQ(report.estimators.size(), panel.size());
    for (size_t i = 0; i < panel.size(); ++i) {
      // Bit-identity for bit-stable estimators; estimators that declare a
      // re-estimation tolerance (warm-started EM) are held to that bound.
      ExpectEstimatesAgree(TraitsFor(panel[i]),
                           StandaloneEstimate(panel[i], run.log.num_items(),
                                              run.log.events()),
                           report.estimators[i].total_errors,
                           panel[i] + " on " + workload_spec + ", round " +
                               std::to_string(round));
    }
  }
}

}  // namespace
}  // namespace dqm::conformance
