#include "conformance/conformance_utils.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "estimators/estimator.h"

namespace dqm::conformance {

std::vector<std::string> ConformanceWorkloadSpecs() {
  // Small universes keep the full matrix (workloads x estimators x
  // properties) fast enough for every-PR CI under sanitizers. Family
  // params keep their defaults — the conformance harness exercises each
  // family's characteristic hostility, not its whole knob space.
  std::vector<std::string> specs;
  for (const std::string& name :
       workload::WorkloadRegistry::Global().Names()) {
    specs.push_back(name + "?n=80&dirty=12&tasks=50&ipt=8&batch=37");
  }
  return specs;
}

workload::GeneratedWorkload MustGenerate(const std::string& spec,
                                         uint64_t seed) {
  Result<std::unique_ptr<workload::Workload>> generator =
      workload::WorkloadRegistry::Global().Create(spec);
  DQM_CHECK(generator.ok()) << generator.status().ToString();
  return (*generator)->Generate(seed);
}

double StandaloneEstimate(const std::string& spec, size_t num_items,
                          const std::vector<crowd::VoteEvent>& events) {
  Result<std::unique_ptr<estimators::TotalErrorEstimator>> estimator =
      estimators::EstimatorRegistry::Global().Create(spec, num_items);
  DQM_CHECK(estimator.ok()) << estimator.status().ToString();
  for (const crowd::VoteEvent& event : events) {
    (*estimator)->Observe(event);
  }
  return (*estimator)->Estimate();
}

core::DataQualityMetric ReplayPipeline(
    size_t num_items, const std::vector<std::string>& specs,
    const std::vector<crowd::VoteEvent>& events) {
  Result<core::DataQualityMetric> metric =
      core::DataQualityMetric::Create(num_items, specs);
  DQM_CHECK(metric.ok()) << metric.status().ToString();
  for (const crowd::VoteEvent& event : events) {
    metric->AddVote(event.task, event.worker, event.item,
                    event.vote == crowd::Vote::kDirty);
  }
  return std::move(metric).value();
}

std::vector<crowd::VoteEvent> ShuffleWithinTasks(
    const std::vector<crowd::VoteEvent>& events, uint64_t seed) {
  std::vector<crowd::VoteEvent> shuffled = events;
  Rng rng(seed);
  size_t begin = 0;
  while (begin < shuffled.size()) {
    size_t end = begin + 1;
    while (end < shuffled.size() &&
           shuffled[end].task == shuffled[begin].task) {
      ++end;
    }
    for (size_t i = end - 1; i > begin; --i) {
      size_t j = begin + rng.UniformIndex(i - begin + 1);
      std::swap(shuffled[i], shuffled[j]);
    }
    begin = end;
  }
  return shuffled;
}

std::vector<crowd::VoteEvent> DuplicateLog(
    const std::vector<crowd::VoteEvent>& events) {
  uint32_t max_task = 0;
  uint32_t max_worker = 0;
  for (const crowd::VoteEvent& event : events) {
    max_task = std::max(max_task, event.task);
    max_worker = std::max(max_worker, event.worker);
  }
  std::vector<crowd::VoteEvent> doubled = events;
  doubled.reserve(events.size() * 2);
  for (const crowd::VoteEvent& event : events) {
    doubled.push_back(crowd::VoteEvent{event.task + max_task + 1,
                                       event.worker + max_worker + 1,
                                       event.item, event.vote});
  }
  return doubled;
}

estimators::ConformanceTraits TraitsFor(const std::string& spec) {
  Result<estimators::EstimatorSpec> parsed =
      estimators::ParseEstimatorSpec(spec);
  DQM_CHECK(parsed.ok()) << parsed.status().ToString();
  Result<std::shared_ptr<const estimators::EstimatorRegistry::Entry>> entry =
      estimators::EstimatorRegistry::Global().Find(parsed->name);
  DQM_CHECK(entry.ok()) << entry.status().ToString();
  return (*entry)->traits;
}

double AgreementBound(const estimators::ConformanceTraits& traits, double a,
                      double b) {
  if (traits.estimate_tolerance_abs == 0.0 &&
      traits.estimate_tolerance_rel == 0.0) {
    return 0.0;
  }
  return traits.estimate_tolerance_abs +
         traits.estimate_tolerance_rel *
             std::max(std::abs(a), std::abs(b));
}

void ExpectEstimatesAgree(const estimators::ConformanceTraits& traits,
                          double expected, double actual,
                          const std::string& context) {
  double bound = AgreementBound(traits, expected, actual);
  if (bound == 0.0) {
    EXPECT_EQ(expected, actual) << context;
  } else {
    EXPECT_NEAR(expected, actual, bound) << context;
  }
}

}  // namespace dqm::conformance
