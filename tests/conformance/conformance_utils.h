#ifndef DQM_TESTS_CONFORMANCE_CONFORMANCE_UTILS_H_
#define DQM_TESTS_CONFORMANCE_CONFORMANCE_UTILS_H_

// Shared machinery of the metamorphic conformance harness: every registered
// estimator is cross-checked against every registered workload family, so a
// newly registered estimator (or workload) is verified by construction —
// add it to its registry and the whole matrix of properties runs against it
// with zero new test code.

#include <cstdint>
#include <string>
#include <vector>

#include "core/dqm.h"
#include "crowd/vote.h"
#include "estimators/registry.h"
#include "workload/workload.h"

namespace dqm::conformance {

/// One small spec per registered workload family (CI-sized universes), in
/// registry order — the scenario axis of the conformance matrix.
std::vector<std::string> ConformanceWorkloadSpecs();

/// Generates `spec` via the global workload registry; aborts the test on
/// registry errors (conformance inputs must be valid by construction).
workload::GeneratedWorkload MustGenerate(const std::string& spec,
                                         uint64_t seed);

/// Builds a standalone estimator for `spec` and replays `events` through it,
/// returning the final estimate.
double StandaloneEstimate(const std::string& spec, size_t num_items,
                          const std::vector<crowd::VoteEvent>& events);

/// Replays `events` through a multi-estimator pipeline over `specs`.
core::DataQualityMetric ReplayPipeline(size_t num_items,
                                       const std::vector<std::string>& specs,
                                       const std::vector<crowd::VoteEvent>& events);

/// Reorders votes *within* each task uniformly at random; task order and
/// every per-item vote order are preserved (items are distinct in a task).
std::vector<crowd::VoteEvent> ShuffleWithinTasks(
    const std::vector<crowd::VoteEvent>& events, uint64_t seed);

/// The whole log followed by an exact copy of itself under fresh task and
/// worker ids — the duplication metamorphic input.
std::vector<crowd::VoteEvent> DuplicateLog(
    const std::vector<crowd::VoteEvent>& events);

/// The declared conformance traits of a registered estimator. Accepts a
/// bare name or a full spec string ("em-voting?max_iters=7"): params are
/// parsed away and aliases resolved.
estimators::ConformanceTraits TraitsFor(const std::string& spec);

/// The allowed |a - b| when comparing two estimates of the same log state
/// produced through different re-estimation cadences: 0 for bit-stable
/// estimators (compare with EXPECT_EQ), otherwise the declared
/// estimate_tolerance_abs + estimate_tolerance_rel * max(|a|, |b|).
double AgreementBound(const estimators::ConformanceTraits& traits, double a,
                      double b);

/// EXPECT-level agreement check honoring the declared tolerance: exact
/// equality when none is declared. For derived quantities (quality scores)
/// derive the bound from the underlying error counts via AgreementBound
/// instead — see conformance_engine_parity_test.
void ExpectEstimatesAgree(const estimators::ConformanceTraits& traits,
                          double expected, double actual,
                          const std::string& context);

}  // namespace dqm::conformance

#endif  // DQM_TESTS_CONFORMANCE_CONFORMANCE_UTILS_H_
