// Striped-ingest conformance: for every registered workload family, N
// producer threads committing the generated vote stream concurrently into
// ONE striped session must reconcile to exactly the serialized path's
// numbers — bit-identical tallies/counts and tally-derived estimates
// (CHAO92 family, VOTING, NOMINAL), and EM-VOTING estimates within its
// declared tolerance (striping reorders the count-matrix slots, which only
// perturbs float summation order). A newly registered workload family is
// enrolled automatically.

#include "conformance/conformance_utils.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"

namespace dqm::conformance {
namespace {

constexpr uint64_t kSeed = 91;
constexpr size_t kProducers = 4;

/// The producer-order-independent panels the striped path serves: every
/// tally/fingerprint scorer (exact parity expected), plus EM (tolerance).
const std::vector<std::string>& TallyPanel() {
  static const std::vector<std::string> panel = {
      "chao92", "good-turing", "vchao92?shift=2", "voting", "nominal"};
  return panel;
}

const std::vector<std::string>& EmPanel() {
  static const std::vector<std::string> panel = {"em-voting", "chao92"};
  return panel;
}

/// Splits the workload's own batch partition into [begin, size) chunks.
std::vector<std::pair<size_t, size_t>> Chunks(
    const workload::GeneratedWorkload& run) {
  std::vector<std::pair<size_t, size_t>> chunks;
  size_t begin = 0;
  for (size_t size : run.batch_sizes) {
    chunks.emplace_back(begin, size);
    begin += size;
  }
  EXPECT_EQ(begin, run.log.events().size());
  return chunks;
}

/// Serialized ground truth: one producer, forced serialized commit path,
/// one publish at the end.
engine::Snapshot SerializedSnapshot(engine::DqmEngine& engine,
                                    const std::string& name,
                                    const std::vector<std::string>& panel,
                                    const workload::GeneratedWorkload& run) {
  engine::SessionOptions options;
  options.cadence = engine::PublishCadence::kManual;
  options.ingest_stripes = 1;
  auto session = engine.OpenSession(name, run.log.num_items(),
                                    std::span<const std::string>(panel),
                                    options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_FALSE((*session)->concurrent_ingest());
  const std::vector<crowd::VoteEvent>& events = run.log.events();
  for (const auto& [begin, size] : Chunks(run)) {
    EXPECT_TRUE(
        (*session)
            ->AddVotes(std::span<const crowd::VoteEvent>(&events[begin], size))
            .ok());
  }
  (*session)->Publish();
  return (*session)->snapshot();
}

/// Striped measurement: kProducers threads pull batches off a shared cursor
/// and commit concurrently; one publish after the join.
engine::Snapshot StripedSnapshot(engine::DqmEngine& engine,
                                 const std::string& name,
                                 const std::vector<std::string>& panel,
                                 const workload::GeneratedWorkload& run) {
  engine::SessionOptions options;
  options.cadence = engine::PublishCadence::kManual;
  options.ingest_stripes = 4;
  auto session = engine.OpenSession(name, run.log.num_items(),
                                    std::span<const std::string>(panel),
                                    options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_TRUE((*session)->concurrent_ingest())
      << "panel unexpectedly fell back to the serialized path";
  const std::vector<crowd::VoteEvent>& events = run.log.events();
  std::vector<std::pair<size_t, size_t>> chunks = Chunks(run);
  std::atomic<size_t> cursor{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (;;) {
        size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
        if (index >= chunks.size()) return;
        const auto& [begin, size] = chunks[index];
        ASSERT_TRUE((*session)
                        ->AddVotes(std::span<const crowd::VoteEvent>(
                            &events[begin], size))
                        .ok());
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  (*session)->Publish();
  return (*session)->snapshot();
}

void ExpectStripedMatchesSerialized(const std::vector<std::string>& panel,
                                    const engine::Snapshot& striped,
                                    const engine::Snapshot& serialized,
                                    const std::string& context) {
  // Tallies and counts: bit-identical, full stop.
  EXPECT_EQ(striped.num_votes, serialized.num_votes) << context;
  EXPECT_EQ(striped.num_items, serialized.num_items) << context;
  EXPECT_EQ(striped.nominal_count, serialized.nominal_count) << context;
  EXPECT_EQ(striped.majority_count, serialized.majority_count) << context;
  ASSERT_EQ(striped.estimates.size(), serialized.estimates.size()) << context;
  for (size_t i = 0; i < panel.size(); ++i) {
    estimators::ConformanceTraits traits = TraitsFor(panel[i]);
    std::string row_context = context + ", estimator " + panel[i];
    EXPECT_EQ(striped.estimates[i].name, serialized.estimates[i].name)
        << row_context;
    ExpectEstimatesAgree(traits, serialized.estimates[i].total_errors,
                         striped.estimates[i].total_errors, row_context);
    ExpectEstimatesAgree(traits, serialized.estimates[i].undetected_errors,
                         striped.estimates[i].undetected_errors, row_context);
  }
}

TEST(StripedIngestParityTest, TallyPanelBitIdenticalUnderEveryWorkload) {
  for (const std::string& workload_spec : ConformanceWorkloadSpecs()) {
    workload::GeneratedWorkload run = MustGenerate(workload_spec, kSeed);
    engine::DqmEngine engine;
    engine::Snapshot serialized =
        SerializedSnapshot(engine, "serialized", TallyPanel(), run);
    engine::Snapshot striped =
        StripedSnapshot(engine, "striped", TallyPanel(), run);
    ExpectStripedMatchesSerialized(TallyPanel(), striped, serialized,
                                   "tally, " + workload_spec);
  }
}

TEST(StripedIngestParityTest, EmPanelToleranceBoundedUnderEveryWorkload) {
  for (const std::string& workload_spec : ConformanceWorkloadSpecs()) {
    workload::GeneratedWorkload run = MustGenerate(workload_spec, kSeed);
    engine::DqmEngine engine;
    engine::Snapshot serialized =
        SerializedSnapshot(engine, "serialized", EmPanel(), run);
    engine::Snapshot striped =
        StripedSnapshot(engine, "striped", EmPanel(), run);
    ExpectStripedMatchesSerialized(EmPanel(), striped, serialized,
                                   "em, " + workload_spec);
  }
}

}  // namespace
}  // namespace dqm::conformance
