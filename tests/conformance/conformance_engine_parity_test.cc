// Engine conformance: for every registered workload family, ingesting the
// generated vote stream through the concurrent engine — serially batch by
// batch, and in parallel across sessions — must be bit-identical to the
// plain single-threaded pipeline replay. Drift and adversarial crowds are
// covered because they are registered families; a newly registered family
// is enrolled automatically.

#include "conformance/conformance_utils.h"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/engine.h"

namespace dqm::conformance {
namespace {

constexpr uint64_t kSeed = 77;

const std::vector<std::string>& Panel() {
  static const std::vector<std::string> panel = {
      "switch", "chao92", "vchao92?shift=2", "em-voting", "voting", "nominal"};
  return panel;
}

/// Feeds `run` into `session` following the workload's own batch partition.
void IngestBatched(engine::EstimationSession& session,
                   const workload::GeneratedWorkload& run) {
  const std::vector<crowd::VoteEvent>& events = run.log.events();
  size_t begin = 0;
  for (size_t size : run.batch_sizes) {
    ASSERT_TRUE(
        session
            .AddVotes(std::span<const crowd::VoteEvent>(&events[begin], size))
            .ok());
    begin += size;
  }
  ASSERT_EQ(begin, events.size())
      << "batch partition must cover the whole log";
}

/// The serial ground truth: one pipeline replay of the same panel.
core::DataQualityMetric::QualityReport SerialReport(
    const workload::GeneratedWorkload& run) {
  return ReplayPipeline(run.log.num_items(), Panel(), run.log.events())
      .Report();
}

void ExpectSnapshotMatchesReport(
    const engine::Snapshot& snapshot,
    const core::DataQualityMetric::QualityReport& report,
    const std::string& context) {
  EXPECT_EQ(snapshot.num_votes, report.num_votes) << context;
  EXPECT_EQ(snapshot.majority_count, report.majority_count) << context;
  EXPECT_EQ(snapshot.nominal_count, report.nominal_count) << context;
  ASSERT_EQ(snapshot.estimates.size(), report.estimators.size()) << context;
  double items = static_cast<double>(std::max<size_t>(report.num_items, 1));
  for (size_t i = 0; i < report.estimators.size(); ++i) {
    EXPECT_EQ(snapshot.estimates[i].name, report.estimators[i].name)
        << context;
    // Bit-identical for bit-stable estimators: the engine batches votes but
    // must apply them in exactly the serial order per session. Estimators
    // that declare a re-estimation tolerance (warm-started EM re-fits at
    // every batch boundary, the serial replay once at the end) are instead
    // held to their declared bound — see ConformanceTraits.
    estimators::ConformanceTraits traits = TraitsFor(Panel()[i]);
    std::string row_context =
        context + ", estimator " + report.estimators[i].spec;
    ExpectEstimatesAgree(traits, report.estimators[i].total_errors,
                         snapshot.estimates[i].total_errors, row_context);
    ExpectEstimatesAgree(traits, report.estimators[i].undetected_errors,
                         snapshot.estimates[i].undetected_errors, row_context);
    // Quality = 1 - undetected/N, so its allowed drift is the *error-count*
    // bound divided by N (deriving a bound from the quality values
    // themselves would be tighter than the declared tolerance and reject
    // drift the registry entry explicitly permits).
    double error_bound =
        AgreementBound(traits, report.estimators[i].undetected_errors,
                       snapshot.estimates[i].undetected_errors);
    if (error_bound == 0.0) {
      EXPECT_EQ(snapshot.estimates[i].quality_score,
                report.estimators[i].quality_score)
          << row_context;
    } else {
      EXPECT_NEAR(snapshot.estimates[i].quality_score,
                  report.estimators[i].quality_score, error_bound / items)
          << row_context;
    }
  }
}

TEST(EngineWorkloadParityTest, SerialEngineMatchesPipelineUnderEveryWorkload) {
  for (const std::string& workload_spec : ConformanceWorkloadSpecs()) {
    workload::GeneratedWorkload run = MustGenerate(workload_spec, kSeed);
    engine::DqmEngine engine;
    Result<std::shared_ptr<engine::EstimationSession>> session =
        engine.OpenSession("serial", run.log.num_items(),
                           std::span<const std::string>(Panel()));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    IngestBatched(**session, run);
    ExpectSnapshotMatchesReport((*session)->snapshot(), SerialReport(run),
                                "serial, " + workload_spec);
    ASSERT_TRUE(engine.CloseSession("serial").ok());
  }
}

TEST(EngineWorkloadParityTest, ParallelEngineMatchesSerialUnderEveryWorkload) {
  // All families ingested concurrently, one producer thread per session
  // (the supported pattern for order-sensitive estimators): every final
  // snapshot must be bit-identical to its own serial pipeline replay.
  std::vector<std::string> specs = ConformanceWorkloadSpecs();
  std::vector<workload::GeneratedWorkload> runs;
  runs.reserve(specs.size());
  for (const std::string& spec : specs) {
    runs.push_back(MustGenerate(spec, kSeed));
  }

  engine::DqmEngine engine;
  for (size_t w = 0; w < specs.size(); ++w) {
    ASSERT_TRUE(engine
                    .OpenSession("workload-" + std::to_string(w),
                                 runs[w].log.num_items(),
                                 std::span<const std::string>(Panel()))
                    .ok());
  }
  ThreadPool pool(specs.size());
  ParallelFor(&pool, specs.size(), [&](size_t w) {
    Result<std::shared_ptr<engine::EstimationSession>> session =
        engine.GetSession("workload-" + std::to_string(w));
    ASSERT_TRUE(session.ok());
    IngestBatched(**session, runs[w]);
  });

  for (size_t w = 0; w < specs.size(); ++w) {
    Result<engine::Snapshot> snapshot =
        engine.Query("workload-" + std::to_string(w));
    ASSERT_TRUE(snapshot.ok());
    ExpectSnapshotMatchesReport(*snapshot, SerialReport(runs[w]),
                                "parallel, " + specs[w]);
  }
}

}  // namespace
}  // namespace dqm::conformance
