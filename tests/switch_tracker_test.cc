#include "estimators/switch_tracker.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace dqm::estimators {
namespace {

using crowd::Vote;
using crowd::VoteEvent;

// Feeds a vote sequence for a single item (item 0).
void Feed(SwitchTracker& tracker, const std::vector<Vote>& votes,
          uint32_t item = 0) {
  for (uint32_t j = 0; j < votes.size(); ++j) {
    tracker.Observe({j, j, item, votes[j]});
  }
}

constexpr Vote D = Vote::kDirty;
constexpr Vote C = Vote::kClean;

TEST(SwitchTrackerTest, FirstPositiveVoteIsASwitch) {
  SwitchTracker tracker(1);
  Feed(tracker, {D});
  EXPECT_EQ(tracker.TotalSwitches(), 1u);
  EXPECT_EQ(tracker.PositiveSwitches(), 1u);
  EXPECT_TRUE(tracker.ConsensusDirty(0));
  SwitchStatistics stats = tracker.Statistics();
  EXPECT_EQ(stats.c, 1u);
  EXPECT_EQ(stats.f1, 1u);
  EXPECT_EQ(stats.n, 1u);
}

TEST(SwitchTrackerTest, FirstNegativeVoteIsANoOp) {
  SwitchTracker tracker(1);
  Feed(tracker, {C});
  EXPECT_EQ(tracker.TotalSwitches(), 0u);
  EXPECT_FALSE(tracker.ConsensusDirty(0));
  SwitchStatistics stats = tracker.Statistics();
  EXPECT_EQ(stats.c, 0u);
  EXPECT_EQ(stats.n, 0u);  // votes before the first switch do not count
}

TEST(SwitchTrackerTest, ConfirmationRediscoversSwitch) {
  SwitchTracker tracker(1);
  Feed(tracker, {D, D});
  SwitchStatistics stats = tracker.Statistics();
  EXPECT_EQ(tracker.TotalSwitches(), 1u);
  EXPECT_EQ(stats.c, 1u);
  EXPECT_EQ(stats.f1, 0u);  // promoted to a doubleton
  EXPECT_EQ(stats.n, 2u);
}

TEST(SwitchTrackerTest, TieCreatesNewSwitch) {
  SwitchTracker tracker(1);
  Feed(tracker, {D, C});  // 1-1 tie flips dirty -> clean
  EXPECT_EQ(tracker.TotalSwitches(), 2u);
  EXPECT_EQ(tracker.PositiveSwitches(), 1u);
  EXPECT_EQ(tracker.NegativeSwitches(), 1u);
  EXPECT_FALSE(tracker.ConsensusDirty(0));
  // Live-only memory (default): the superseded positive switch left the
  // fingerprint; only the live negative singleton remains.
  SwitchStatistics stats = tracker.Statistics();
  EXPECT_EQ(stats.c, 1u);
  EXPECT_EQ(stats.f1, 1u);
  EXPECT_EQ(stats.n, 1u);
  EXPECT_EQ(tracker.PositiveStatistics().c, 0u);
  EXPECT_EQ(tracker.NegativeStatistics().c, 1u);
}

TEST(SwitchTrackerTest, TieCreatesNewSwitchAllSwitchesMemory) {
  SwitchTracker::Config config;
  config.memory = SwitchMemory::kAllSwitches;
  SwitchTracker tracker(1, config);
  Feed(tracker, {D, C});
  // Frozen-history ablation variant: both switches remain singletons.
  SwitchStatistics stats = tracker.Statistics();
  EXPECT_EQ(stats.c, 2u);
  EXPECT_EQ(stats.f1, 2u);
  EXPECT_EQ(stats.n, 2u);
}

TEST(SwitchTrackerTest, LateTieAfterCleanStart) {
  SwitchTracker tracker(1);
  Feed(tracker, {C, D});  // no-op, then 1-1 tie -> positive switch
  EXPECT_EQ(tracker.TotalSwitches(), 1u);
  EXPECT_EQ(tracker.PositiveSwitches(), 1u);
  EXPECT_TRUE(tracker.ConsensusDirty(0));
  SwitchStatistics stats = tracker.Statistics();
  EXPECT_EQ(stats.n, 1u);  // the initial clean vote stays a no-op
}

TEST(SwitchTrackerTest, AlternatingVotesHandComputed) {
  // [D, C, D, C]: switch(+), tie switch(-), rediscovery, tie switch(+).
  SwitchTracker tracker(1);
  Feed(tracker, {D, C, D, C});
  // All-time counters (Eq. 7) are memory-independent.
  EXPECT_EQ(tracker.TotalSwitches(), 3u);
  EXPECT_EQ(tracker.PositiveSwitches(), 2u);
  EXPECT_EQ(tracker.NegativeSwitches(), 1u);
  // Live-only fingerprint: just the final positive singleton.
  SwitchStatistics stats = tracker.Statistics();
  EXPECT_EQ(stats.c, 1u);
  EXPECT_EQ(stats.f1, 1u);
  EXPECT_EQ(stats.n, 1u);
  EXPECT_EQ(tracker.NegativeStatistics().c, 0u);
}

TEST(SwitchTrackerTest, AlternatingVotesAllSwitchesMemory) {
  SwitchTracker::Config config;
  config.memory = SwitchMemory::kAllSwitches;
  SwitchTracker tracker(1, config);
  Feed(tracker, {D, C, D, C});
  SwitchStatistics stats = tracker.Statistics();
  EXPECT_EQ(stats.c, 3u);
  EXPECT_EQ(stats.f1, 2u);       // the two positive switches are singletons
  EXPECT_EQ(stats.n, 4u);        // every vote counted (first was a switch)
  SwitchStatistics neg = tracker.NegativeStatistics();
  EXPECT_EQ(neg.c, 1u);
  EXPECT_EQ(neg.f1, 0u);         // the negative switch was rediscovered once
  EXPECT_EQ(neg.n, 2u);
}

TEST(SwitchTrackerTest, ItemsWithSwitchesVsTotalSwitches) {
  SwitchTracker tracker(2);
  Feed(tracker, {D, C, D, C}, 0);  // 3 switches on item 0
  Feed(tracker, {D}, 1);           // 1 switch on item 1
  EXPECT_EQ(tracker.TotalSwitches(), 4u);
  EXPECT_EQ(tracker.ItemsWithSwitches(), 2u);
}

TEST(SwitchTrackerTest, PerRecordCountingUsesItemCount) {
  SwitchTracker::Config config;
  config.counting = SwitchCountingMode::kPerRecord;
  SwitchTracker tracker(2, config);
  Feed(tracker, {D, C, D, C}, 0);
  Feed(tracker, {D}, 1);
  EXPECT_EQ(tracker.Statistics().c, 2u);  // records, not switches
}

TEST(SwitchTrackerTest, SpeciesSumNMode) {
  SwitchTracker::Config config;
  config.n_mode = SwitchNMode::kSpeciesSum;
  SwitchTracker tracker(1, config);
  Feed(tracker, {D, D, D});
  // One switch rediscovered twice; n = species count = 1 under this mode.
  EXPECT_EQ(tracker.Statistics().n, 1u);
}

TEST(SwitchTrackerStrictMajorityTest, TieKeepsLabel) {
  SwitchTracker::Config config;
  config.tie_policy = TiePolicy::kStrictMajority;
  SwitchTracker tracker(1, config);
  Feed(tracker, {C, D});  // 1-1 tie: label stays clean, no switch
  EXPECT_EQ(tracker.TotalSwitches(), 0u);
  EXPECT_FALSE(tracker.ConsensusDirty(0));
}

TEST(SwitchTrackerStrictMajorityTest, MajorityChangeSwitches) {
  SwitchTracker::Config config;
  config.tie_policy = TiePolicy::kStrictMajority;
  SwitchTracker tracker(1, config);
  Feed(tracker, {C, D, D});  // no-op, no-op, 2-1 -> positive switch
  EXPECT_EQ(tracker.TotalSwitches(), 1u);
  EXPECT_EQ(tracker.PositiveSwitches(), 1u);
  EXPECT_TRUE(tracker.ConsensusDirty(0));
  EXPECT_EQ(tracker.Statistics().n, 1u);
}

TEST(SwitchTrackerStrictMajorityTest, AlternatingVotes) {
  SwitchTracker::Config config;
  config.tie_policy = TiePolicy::kStrictMajority;
  SwitchTracker tracker(1, config);
  // [D, C, D, C]: 1-0 dirty, 1-1 clean, 2-1 dirty, 2-2 clean: 4 switches.
  Feed(tracker, {D, C, D, C});
  EXPECT_EQ(tracker.TotalSwitches(), 4u);
  EXPECT_EQ(tracker.PositiveSwitches(), 2u);
  EXPECT_EQ(tracker.NegativeSwitches(), 2u);
}

// Differential test: TotalSwitches under kTieAsSwitch equals a direct
// evaluation of Eq. (7), and n equals the paper's no-op-adjusted count.
class SwitchEquationPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SwitchEquationPropertyTest, MatchesEquationSeven) {
  Rng rng(GetParam());
  const size_t num_items = 12;
  // The no-op-adjusted n of Section 4.2 counts every vote from the first
  // switch onward, which is the kAllSwitches accounting.
  SwitchTracker::Config config;
  config.memory = SwitchMemory::kAllSwitches;
  SwitchTracker tracker(num_items, config);
  std::vector<std::vector<Vote>> votes(num_items);
  for (uint32_t step = 0; step < 300; ++step) {
    auto item = static_cast<uint32_t>(rng.UniformIndex(num_items));
    Vote vote = rng.Bernoulli(0.45) ? D : C;
    votes[item].push_back(vote);
    tracker.Observe({step, step, item, vote});
  }

  // Eq. (7): switch(I) = sum_i [ sum_{j>=2} 1[n+_{1:j} == n-_{1:j}]
  //                              + 1[n+_{i,1} == 1] ].
  uint64_t expected_switches = 0;
  uint64_t expected_n = 0;
  for (const auto& item_votes : votes) {
    uint32_t pos = 0, neg = 0;
    size_t first_switch_at = 0;  // 1-based; 0 = never
    for (size_t j = 1; j <= item_votes.size(); ++j) {
      if (item_votes[j - 1] == D) {
        ++pos;
      } else {
        ++neg;
      }
      if (j == 1) {
        if (pos == 1) ++expected_switches;
      } else if (pos == neg) {
        ++expected_switches;
      }
      if (first_switch_at == 0 && pos >= neg) first_switch_at = j;
    }
    // n_switch: all votes except the no-ops before the first switch.
    if (first_switch_at > 0) {
      expected_n += item_votes.size() - (first_switch_at - 1);
    }
  }
  EXPECT_EQ(tracker.TotalSwitches(), expected_switches);
  EXPECT_EQ(tracker.Statistics().n, expected_n);
  // n is also the sum of all switch frequencies (every counted vote
  // (re)discovers exactly one switch).
  SwitchStatistics pos_stats = tracker.PositiveStatistics();
  SwitchStatistics neg_stats = tracker.NegativeStatistics();
  EXPECT_EQ(pos_stats.n + neg_stats.n, expected_n);
  EXPECT_EQ(pos_stats.c + neg_stats.c, expected_switches);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchEquationPropertyTest,
                         testing::Values(101, 202, 303, 404, 505, 606));

// Live-only memory invariants: one species per switched item, and n equals
// the mass attached to live switches.
TEST_P(SwitchEquationPropertyTest, LiveOnlyInvariants) {
  Rng rng(GetParam() ^ 0x5555);
  const size_t num_items = 12;
  SwitchTracker tracker(num_items);
  for (uint32_t step = 0; step < 300; ++step) {
    tracker.Observe({step, step,
                     static_cast<uint32_t>(rng.UniformIndex(num_items)),
                     rng.Bernoulli(0.45) ? D : C});
    SwitchStatistics stats = tracker.Statistics();
    // Exactly one live switch per item that ever switched.
    ASSERT_EQ(stats.c, tracker.ItemsWithSwitches());
    SwitchStatistics pos = tracker.PositiveStatistics();
    SwitchStatistics neg = tracker.NegativeStatistics();
    ASSERT_EQ(pos.c + neg.c, stats.c);
    ASSERT_EQ(pos.n + neg.n, stats.n);
    // Live mass never exceeds total votes.
    ASSERT_LE(stats.n, step + 1);
  }
}

TEST(SwitchTrackerEstimateTest, RemainingNonNegative) {
  Rng rng(77);
  SwitchTracker tracker(20);
  for (uint32_t step = 0; step < 500; ++step) {
    tracker.Observe({step / 5, step / 5,
                     static_cast<uint32_t>(rng.UniformIndex(20)),
                     rng.Bernoulli(0.3) ? D : C});
    EXPECT_GE(tracker.EstimateRemainingSwitches(), 0.0);
    EXPECT_GE(tracker.EstimateRemainingPositive(), 0.0);
    EXPECT_GE(tracker.EstimateRemainingNegative(), 0.0);
  }
}

TEST(SwitchTrackerEstimateTest, StableConsensusShrinksRemaining) {
  // One strong dirty item repeatedly confirmed: the lone switch gets
  // promoted far beyond singleton status, so remaining -> 0.
  SwitchTracker tracker(1);
  Feed(tracker, {D, D, D, D, D, D, D, D});
  EXPECT_DOUBLE_EQ(tracker.EstimateRemainingSwitches(), 0.0);
  EXPECT_NEAR(tracker.EstimateTotalSwitches(), 1.0, 1e-9);
}

TEST(ComputeSwitchesNeededTest, CountsDirections) {
  // items: 0 truth dirty/consensus clean (+1 pos), 1 truth clean/consensus
  // dirty (+1 neg), 2 agreeing.
  std::vector<uint32_t> positive = {0, 3, 2};
  std::vector<uint32_t> total = {2, 4, 3};
  std::vector<bool> truth = {true, false, true};
  SwitchesNeeded needed = ComputeSwitchesNeeded(positive, total, truth);
  EXPECT_EQ(needed.positive, 1u);
  EXPECT_EQ(needed.negative, 1u);
}

TEST(ComputeSwitchesNeededTest, TieCountsAsClean) {
  std::vector<uint32_t> positive = {1};
  std::vector<uint32_t> total = {2};
  std::vector<bool> truth = {true};
  SwitchesNeeded needed = ComputeSwitchesNeeded(positive, total, truth);
  EXPECT_EQ(needed.positive, 1u);  // tie -> consensus clean -> needs a flip
  EXPECT_EQ(needed.negative, 0u);
}

TEST(ComputeSwitchesNeededTest, PerfectConsensusNeedsNothing) {
  std::vector<uint32_t> positive = {3, 0};
  std::vector<uint32_t> total = {4, 4};
  std::vector<bool> truth = {true, false};
  SwitchesNeeded needed = ComputeSwitchesNeeded(positive, total, truth);
  EXPECT_EQ(needed.positive, 0u);
  EXPECT_EQ(needed.negative, 0u);
}

}  // namespace
}  // namespace dqm::estimators
