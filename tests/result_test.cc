#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace dqm {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(ok.value_or(0), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> extracted = std::move(r).value();
  EXPECT_EQ(*extracted, 9);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r = std::string("abc");
  r->append("def");
  EXPECT_EQ(*r, "abcdef");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  DQM_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnSuccess) {
  Result<int> r = QuarterEven(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = QuarterEven(6);  // 6 -> 3 (odd) fails at second step
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "Result::value");
}

TEST(ResultDeathTest, OkStatusRejected) {
  EXPECT_DEATH({ Result<int> r = Status::OK(); }, "OK status");
}

}  // namespace
}  // namespace dqm
