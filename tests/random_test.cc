#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dqm {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  // SplitMix expansion must not leave the xoshiro state all-zero.
  EXPECT_NE(rng.Next64() | rng.Next64() | rng.Next64(), 0u);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64BoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.UniformU64(1), 0u);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateMatchesP) {
  Rng rng(23);
  const int n = 50000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(41);
  for (size_t n : {10u, 100u, 1000u}) {
    for (size_t k : {0u, 1u, 5u, 10u}) {
      if (k > n) continue;
      std::vector<size_t> sample = rng.SampleIndices(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<size_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), k);
      for (size_t s : sample) EXPECT_LT(s, n);
    }
  }
}

TEST(RngTest, SampleIndicesFullPopulation) {
  Rng rng(43);
  std::vector<size_t> sample = rng.SampleIndices(20, 20);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(RngTest, SampleIndicesUniform) {
  // Each index should appear with roughly equal frequency across trials
  // (exercises both the dense and sparse code paths).
  for (size_t k : {3u, 40u}) {
    Rng rng(47 + k);
    const size_t n = 50;
    const int trials = 20000;
    std::vector<int> counts(n, 0);
    for (int t = 0; t < trials; ++t) {
      for (size_t index : rng.SampleIndices(n, k)) ++counts[index];
    }
    double expected = static_cast<double>(trials) * static_cast<double>(k) /
                      static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(counts[i], expected, expected * 0.15)
          << "index " << i << " k " << k;
    }
  }
}

TEST(RngTest, PermutationContainsAll) {
  Rng rng(53);
  std::vector<size_t> perm = rng.Permutation(100);
  std::set<size_t> distinct(perm.begin(), perm.end());
  EXPECT_EQ(distinct.size(), 100u);
  EXPECT_EQ(*distinct.rbegin(), 99u);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(59);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.Next64() == child_b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngDeathTest, UniformU64ZeroBoundAborts) {
  Rng rng(61);
  EXPECT_DEATH({ (void)rng.UniformU64(0); }, "bound");
}

}  // namespace
}  // namespace dqm
