#include "dataset/address.h"

#include <set>

#include <gtest/gtest.h>

namespace dqm::dataset {
namespace {

TEST(AddressValidatorTest, AcceptsValidAddress) {
  AddressValidator validator;
  AddressValidation v =
      validator.Validate("123 ne alder st, portland, or, 97201");
  EXPECT_TRUE(v.valid) << v.detail;
}

TEST(AddressValidatorTest, AcceptsUnit) {
  AddressValidator validator;
  EXPECT_TRUE(
      validator.Validate("99 sw division ave apt 4, portland, or, 97210")
          .valid);
}

TEST(AddressValidatorTest, DetectsMissingComponent) {
  AddressValidator validator;
  AddressValidation v = validator.Validate("123 ne alder st, portland, or");
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.kind, AddressErrorKind::kMissingField);
}

TEST(AddressValidatorTest, DetectsEmptyComponent) {
  AddressValidator validator;
  AddressValidation v = validator.Validate("123 ne alder st, , or, 97201");
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.kind, AddressErrorKind::kMissingField);
}

TEST(AddressValidatorTest, DetectsMissingHouseNumber) {
  AddressValidator validator;
  AddressValidation v =
      validator.Validate("ne alder st, portland, or, 97201");
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.kind, AddressErrorKind::kMissingField);
}

TEST(AddressValidatorTest, DetectsInvalidCity) {
  AddressValidator validator;
  AddressValidation v =
      validator.Validate("123 ne alder st, protland, or, 97201");
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.kind, AddressErrorKind::kInvalidCity);
}

TEST(AddressValidatorTest, DetectsMalformedZip) {
  AddressValidator validator;
  for (const char* zip : {"9720", "972011", "97a01"}) {
    AddressValidation v = validator.Validate(
        std::string("123 ne alder st, portland, or, ") + zip);
    EXPECT_FALSE(v.valid);
    EXPECT_EQ(v.kind, AddressErrorKind::kInvalidZip) << zip;
  }
}

TEST(AddressValidatorTest, DetectsUnknownZip) {
  AddressValidator validator;
  AddressValidation v =
      validator.Validate("123 ne alder st, portland, or, 11111");
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.kind, AddressErrorKind::kInvalidZip);
}

TEST(AddressValidatorTest, DetectsFdViolation) {
  AddressValidator validator;
  // 98101 is Seattle's zip; zip -> (city, state) is violated.
  AddressValidation v =
      validator.Validate("123 ne alder st, portland, or, 98101");
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.kind, AddressErrorKind::kFdViolation);
}

TEST(AddressValidatorTest, AcceptsOtherRegistryCity) {
  AddressValidator validator;
  EXPECT_TRUE(
      validator.Validate("10 ne alder st, seattle, wa, 98101").valid);
}

TEST(AddressValidatorTest, DetectsPoBox) {
  AddressValidator validator;
  AddressValidation v = validator.Validate("po box 123, portland, or, 97201");
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.kind, AddressErrorKind::kNotHomeAddress);
}

TEST(AddressValidatorTest, DetectsCommercialSuffix) {
  AddressValidator validator;
  AddressValidation v = validator.Validate(
      "400 se belmont st warehouse, portland, or, 97214");
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.kind, AddressErrorKind::kNotHomeAddress);
}

TEST(AddressValidatorTest, CannotDetectFakeWellFormed) {
  // The deliberate blind spot: a plausible but nonexistent street passes.
  // This models the rule system's "long tail" (see address.h).
  AddressValidator validator;
  EXPECT_TRUE(
      validator.Validate("123 ne imaginary st, portland, or, 97201").valid);
}

TEST(AddressGeneratorTest, PaperShapeDefaults) {
  auto dataset = GenerateAddressDataset({});
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->data.table.num_rows(), 1000u);
  EXPECT_EQ(dataset->data.dirty_rows.size(), 90u);
  EXPECT_EQ(dataset->row_kinds.size(), 1000u);
}

TEST(AddressGeneratorTest, DirtyRowsMatchKinds) {
  auto dataset = GenerateAddressDataset({});
  ASSERT_TRUE(dataset.ok());
  std::set<size_t> dirty(dataset->data.dirty_rows.begin(),
                         dataset->data.dirty_rows.end());
  EXPECT_EQ(dirty.size(), 90u);
  for (size_t row = 0; row < dataset->row_kinds.size(); ++row) {
    bool is_dirty = dataset->row_kinds[row] != AddressErrorKind::kNone;
    EXPECT_EQ(is_dirty, dirty.contains(row)) << "row " << row;
  }
}

TEST(AddressGeneratorTest, CleanRowsPassValidator) {
  auto dataset = GenerateAddressDataset({});
  ASSERT_TRUE(dataset.ok());
  AddressValidator validator;
  for (size_t row = 0; row < dataset->data.table.num_rows(); ++row) {
    if (dataset->row_kinds[row] == AddressErrorKind::kNone) {
      AddressValidation v = validator.Validate(dataset->data.table.cell(row, 1));
      EXPECT_TRUE(v.valid)
          << dataset->data.table.cell(row, 1) << " -> " << v.detail;
    }
  }
}

TEST(AddressGeneratorTest, ValidatorDetectsDetectableClasses) {
  auto dataset = GenerateAddressDataset({});
  ASSERT_TRUE(dataset.ok());
  AddressValidator validator;
  for (size_t row : dataset->data.dirty_rows) {
    AddressErrorKind kind = dataset->row_kinds[row];
    AddressValidation v = validator.Validate(dataset->data.table.cell(row, 1));
    if (kind == AddressErrorKind::kFakeWellFormed) {
      // The long tail: undetectable by rules.
      EXPECT_TRUE(v.valid) << dataset->data.table.cell(row, 1);
    } else {
      EXPECT_FALSE(v.valid) << dataset->data.table.cell(row, 1)
                            << " kind=" << static_cast<int>(kind);
    }
  }
}

TEST(AddressGeneratorTest, DeterministicForSeed) {
  AddressConfig config{.num_records = 50, .num_errors = 5, .seed = 3};
  auto a = GenerateAddressDataset(config);
  auto b = GenerateAddressDataset(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->data.table.ToCsv(), b->data.table.ToCsv());
  EXPECT_EQ(a->data.dirty_rows, b->data.dirty_rows);
}

TEST(AddressGeneratorTest, RejectsTooManyErrors) {
  AddressConfig config;
  config.num_records = 10;
  config.num_errors = 11;
  EXPECT_FALSE(GenerateAddressDataset(config).ok());
}

}  // namespace
}  // namespace dqm::dataset
