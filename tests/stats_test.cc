#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dqm {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, StdDevBasics) {
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({7.0}), 0.0);
  // Sample std of {2,4,4,4,5,5,7,9} = sqrt(32/7)
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, PopulationVariance) {
  EXPECT_DOUBLE_EQ(PopulationVariance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3, -1, 7}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3, -1, 7}), 7.0);
  EXPECT_DOUBLE_EQ(Min({}), 0.0);
}

TEST(StatsTest, ScaledRmseExactEstimatesGiveZero) {
  EXPECT_DOUBLE_EQ(ScaledRmse({100, 100, 100}, 100.0), 0.0);
}

TEST(StatsTest, ScaledRmseMatchesPaperDefinition) {
  // SRMSE = (1/D) sqrt((1/r) sum (est - D)^2)
  // estimates {90, 110}, D=100: sqrt((100+100)/2)/100 = 0.1
  EXPECT_NEAR(ScaledRmse({90, 110}, 100.0), 0.1, 1e-12);
}

TEST(StatsTest, ScaledRmseScaleInvariance) {
  double small = ScaledRmse({12, 8}, 10.0);
  double large = ScaledRmse({1200, 800}, 1000.0);
  EXPECT_NEAR(small, large, 1e-12);
}

TEST(StatsTest, SlopeOfLine) {
  EXPECT_NEAR(Slope({1, 3, 5, 7}), 2.0, 1e-12);
  EXPECT_NEAR(Slope({7, 5, 3, 1}), -2.0, 1e-12);
  EXPECT_DOUBLE_EQ(Slope({4, 4, 4}), 0.0);
  EXPECT_DOUBLE_EQ(Slope({4}), 0.0);
}

TEST(StatsTest, SlopeIgnoresLevel) {
  EXPECT_NEAR(Slope({100, 101, 102}), Slope({0, 1, 2}), 1e-12);
}

TEST(StatsTest, AggregateSeriesMeanAndStd) {
  SeriesBand band = AggregateSeries({{1, 2, 3}, {3, 2, 1}});
  ASSERT_EQ(band.mean.size(), 3u);
  EXPECT_DOUBLE_EQ(band.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(band.mean[1], 2.0);
  EXPECT_DOUBLE_EQ(band.mean[2], 2.0);
  EXPECT_NEAR(band.std_dev[0], std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(band.std_dev[1], 0.0);
}

TEST(StatsTest, AggregateSeriesEmpty) {
  SeriesBand band = AggregateSeries({});
  EXPECT_TRUE(band.mean.empty());
}

TEST(StatsDeathTest, AggregateSeriesRowsMustAlign) {
  EXPECT_DEATH({ AggregateSeries({{1, 2}, {1}}); }, "align");
}

TEST(StatsDeathTest, ScaledRmseZeroTruthAborts) {
  EXPECT_DEATH({ ScaledRmse({1.0}, 0.0); }, "truth");
}

}  // namespace
}  // namespace dqm
