// Unit tests for the telemetry subsystem: sharded counter / histogram /
// gauge semantics (including concurrent-writer folds), registry identity
// and the refcounted gauge lifecycle, exposition goldens for both renderers
// (on a private registry, so the process-global instrumentation can't leak
// in), and the flight recorder's wraparound contract.

#include "telemetry/metrics.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "telemetry/export.h"
#include "telemetry/flight_recorder.h"

namespace dqm::telemetry {
namespace {

TEST(CounterTest, AddAndIncrementFoldAcrossShards) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentWritersLoseNothing) {
  constexpr size_t kThreads = 8;
  constexpr size_t kIncrementsPerThread = 100000;
  Counter counter;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (size_t i = 0; i < kIncrementsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kIncrementsPerThread);
}

TEST(HistogramTest, BucketIndexIsPowerOfTwoLayout) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 63u);
}

TEST(HistogramTest, QuantilesLandInTheRightBucket) {
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(1000);  // bucket [512, 1023]
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_GE(snap.Quantile(0.5), 512.0);
  EXPECT_LE(snap.Quantile(0.5), 1023.0);
  EXPECT_EQ(snap.Quantile(0.5), snap.Quantile(0.99));  // one bucket
  EXPECT_EQ(snap.Max(), 1023u);  // bucket upper bound, not the exact value
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram histogram;
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Max(), 0u);
}

TEST(HistogramTest, ConcurrentRecordsFoldExactly) {
  constexpr size_t kThreads = 8;
  constexpr size_t kRecordsPerThread = 20000;
  Histogram histogram;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (size_t i = 0; i < kRecordsPerThread; ++i) {
        histogram.Record((t * kRecordsPerThread + i) % 4096);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kRecordsPerThread);
  uint64_t bucket_sum = 0;
  for (uint64_t bucket : snap.buckets) bucket_sum += bucket;
  EXPECT_EQ(bucket_sum, snap.count);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_EQ(gauge.Value(), 1.5);
  gauge.Set(-7.0);
  EXPECT_EQ(gauge.Value(), -7.0);
}

TEST(RegistryTest, IdentityIsNamePlusSortedLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("hits", {{"path", "/q"}});
  Counter* b = registry.GetCounter("hits", {{"path", "/q"}});
  Counter* c = registry.GetCounter("hits", {{"path", "/other"}});
  Counter* d = registry.GetCounter("hits");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  // Label ordering does not create a second identity.
  Counter* e = registry.GetCounter("multi", {{"b", "2"}, {"a", "1"}});
  Counter* f = registry.GetCounter("multi", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(e, f);
  EXPECT_EQ(registry.size(), 4u);
}

TEST(RegistryTest, AcquireReleaseGaugeLifecycle) {
  MetricsRegistry registry;
  Gauge* gauge = registry.AcquireGauge("quality", {{"session", "s1"}});
  gauge->Set(0.75);
  EXPECT_EQ(registry.AcquireGauge("quality", {{"session", "s1"}}), gauge);
  EXPECT_EQ(registry.size(), 1u);

  // Two refs: the first release keeps the gauge exported.
  registry.ReleaseGauge("quality", {{"session", "s1"}});
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Collect().gauges.size(), 1u);

  // Last ref: the gauge disappears from the exposition surface.
  registry.ReleaseGauge("quality", {{"session", "s1"}});
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_TRUE(registry.Collect().gauges.empty());

  // Re-acquiring the same identity after death makes a fresh gauge.
  Gauge* reborn = registry.AcquireGauge("quality", {{"session", "s1"}});
  EXPECT_EQ(reborn->Value(), 0.0);
  registry.ReleaseGauge("quality", {{"session", "s1"}});
}

TEST(RegistryTest, PinnedGaugeSurvivesRelease) {
  MetricsRegistry registry;
  Gauge* pinned = registry.GetGauge("rollup");
  Gauge* acquired = registry.AcquireGauge("rollup");
  EXPECT_EQ(pinned, acquired);
  registry.ReleaseGauge("rollup", {});
  // Get* pins: the roll-up gauge never leaves the surface.
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.GetGauge("rollup"), pinned);
}

TEST(RegistryTest, CollectIsSortedAndTyped) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetGauge("mid")->Set(3.0);
  registry.GetHistogram("lat")->Record(9);
  MetricsRegistry::Collection collection = registry.Collect();
  ASSERT_EQ(collection.counters.size(), 2u);
  EXPECT_EQ(collection.counters[0].name, "alpha");
  EXPECT_EQ(collection.counters[0].value, 2u);
  EXPECT_EQ(collection.counters[1].name, "zeta");
  ASSERT_EQ(collection.gauges.size(), 1u);
  EXPECT_EQ(collection.gauges[0].value, 3.0);
  ASSERT_EQ(collection.histograms.size(), 1u);
  EXPECT_EQ(collection.histograms[0].snapshot.count, 1u);
}

TEST(RegistryTest, ResetAllZeroesEverythingButKeepsEntries) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(5);
  registry.GetGauge("g")->Set(5.0);
  registry.GetHistogram("h")->Record(5);
  registry.ResetAll();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0u);
  EXPECT_EQ(registry.GetGauge("g")->Value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("h")->Count(), 0u);
}

TEST(EnabledTest, ToggleRoundTrips) {
  ASSERT_TRUE(Enabled());  // process default
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
}

TEST(NowNanosTest, MonotoneNonDecreasing) {
  uint64_t a = NowNanos();
  uint64_t b = NowNanos();
  EXPECT_LE(a, b);
}

std::string Num(double value) { return StrFormat("%.17g", value); }

/// Builds the golden registry: one labeled counter, one gauge, one
/// histogram with known bucket layout (0 -> bucket 0; 1 -> [1,1];
/// 5, 5 -> [4,7]).
void FillGoldenRegistry(MetricsRegistry& registry) {
  registry.GetCounter("requests_total", {{"path", "/q"}})->Add(3);
  registry.GetGauge("temperature")->Set(1.5);
  Histogram* latency = registry.GetHistogram("latency");
  latency->Record(0);
  latency->Record(1);
  latency->Record(5);
  latency->Record(5);
}

TEST(ExportTest, PrometheusGolden) {
  MetricsRegistry registry;
  FillGoldenRegistry(registry);
  HistogramSnapshot snap = registry.GetHistogram("latency")->Snapshot();
  std::string expected =
      "# TYPE requests_total counter\n"
      "requests_total{path=\"/q\"} 3\n"
      "# TYPE temperature gauge\n"
      "temperature 1.5\n"
      "# TYPE latency histogram\n"
      "latency_bucket{le=\"0\"} 1\n"
      "latency_bucket{le=\"1\"} 2\n"
      "latency_bucket{le=\"7\"} 4\n"
      "latency_bucket{le=\"+Inf\"} 4\n"
      "latency_count 4\n"
      "latency_p50 " + Num(snap.Quantile(0.5)) + "\n"
      "latency_p95 " + Num(snap.Quantile(0.95)) + "\n"
      "latency_p99 " + Num(snap.Quantile(0.99)) + "\n"
      "latency_max 7\n";
  EXPECT_EQ(RenderPrometheus(registry), expected);
}

TEST(ExportTest, JsonGolden) {
  MetricsRegistry registry;
  FillGoldenRegistry(registry);
  HistogramSnapshot snap = registry.GetHistogram("latency")->Snapshot();
  std::string expected =
      "{\"counters\":[{\"name\":\"requests_total\",\"labels\":"
      "{\"path\":\"/q\"},\"value\":3}],"
      "\"gauges\":[{\"name\":\"temperature\",\"labels\":{},\"value\":1.5}],"
      "\"histograms\":[{\"name\":\"latency\",\"labels\":{},\"count\":4,"
      "\"p50\":" + Num(snap.Quantile(0.5)) +
      ",\"p95\":" + Num(snap.Quantile(0.95)) +
      ",\"p99\":" + Num(snap.Quantile(0.99)) +
      ",\"max\":7,\"buckets\":[[0,1],[1,1],[7,2]]}]}";
  EXPECT_EQ(RenderJson(registry), expected);
}

TEST(ExportTest, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("c", {{"k", "a\"b\\c\nd"}})->Add(1);
  std::string prom = RenderPrometheus(registry);
  EXPECT_NE(prom.find("c{k=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos) << prom;
  std::string json = RenderJson(registry);
  EXPECT_NE(json.find("{\"k\":\"a\\\"b\\\\c\\nd\"}"), std::string::npos)
      << json;
}

TEST(ExportTest, NonFiniteGaugeSpellings) {
  MetricsRegistry registry;
  registry.GetGauge("g")->Set(std::numeric_limits<double>::infinity());
  EXPECT_NE(RenderPrometheus(registry).find("g +Inf"), std::string::npos);
  EXPECT_NE(RenderJson(registry).find("\"value\":null"), std::string::npos);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(4).capacity(), 4u);
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder().capacity(), 256u);
}

TEST(FlightRecorderTest, RecordsRoundTripInTicketOrder) {
  FlightRecorder recorder(8);
  recorder.Record(SpanKind::kCommit, 10, 25, 512);
  recorder.Record(SpanKind::kPublish, 30, 90, 7);
  std::vector<Span> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].ticket, 0u);
  EXPECT_EQ(spans[0].kind, SpanKind::kCommit);
  EXPECT_EQ(spans[0].start_nanos, 10u);
  EXPECT_EQ(spans[0].end_nanos, 25u);
  EXPECT_EQ(spans[0].duration_nanos(), 15u);
  EXPECT_EQ(spans[0].value, 512u);
  EXPECT_EQ(spans[1].ticket, 1u);
  EXPECT_EQ(spans[1].kind, SpanKind::kPublish);
  EXPECT_EQ(recorder.total_recorded(), 2u);
}

TEST(FlightRecorderTest, WraparoundKeepsNewestSpans) {
  constexpr uint64_t kTotal = 10;
  FlightRecorder recorder(4);
  for (uint64_t i = 0; i < kTotal; ++i) {
    recorder.Record(SpanKind::kCommit, i, i + 1, i);
  }
  std::vector<Span> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), recorder.capacity());
  // The surviving spans are exactly the newest `capacity()` tickets, in
  // monotone ticket order.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].ticket, kTotal - recorder.capacity() + i);
    EXPECT_EQ(spans[i].value, spans[i].ticket);
  }
  EXPECT_EQ(recorder.total_recorded(), kTotal);
}

TEST(FlightRecorderTest, ConcurrentRecordersStaySane) {
  constexpr size_t kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  FlightRecorder recorder(64);
  std::atomic<bool> stop{false};
  // A reader snapshots continuously while writers wrap the ring many times
  // over; every snapshot must be ticket-monotone with sane fields.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<Span> spans = recorder.Snapshot();
      ASSERT_LE(spans.size(), recorder.capacity());
      for (size_t i = 1; i < spans.size(); ++i) {
        ASSERT_LT(spans[i - 1].ticket, spans[i].ticket);
      }
      // Every writer records the same invariant-carrying payload, so any
      // torn slot (fields from two different writes) is detectable.
      for (const Span& span : spans) {
        ASSERT_EQ(span.kind, SpanKind::kReconcile);
        ASSERT_EQ(span.start_nanos, 17u);
        ASSERT_EQ(span.end_nanos, 18u);
        ASSERT_EQ(span.value, 99u);
      }
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        recorder.Record(SpanKind::kReconcile, 17, 18, 99);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.total_recorded(), kThreads * kPerThread);
}

}  // namespace
}  // namespace dqm::telemetry
