// Pins the migration bridge from the deprecated closed-enum API to the
// registry-spec world before any future removal: the Method enum,
// MakeEstimatorFactory, and the deprecated Options knobs (vchao_shift, the
// full switch_config struct) must produce results bit-identical to their
// spec-string equivalents on real vote streams.

#include "core/dqm.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "estimators/estimator.h"
#include "estimators/registry.h"

namespace dqm::core {
namespace {

const std::vector<Method> kAllMethods = {
    Method::kSwitch,  Method::kChao92, Method::kGoodTuring,
    Method::kVChao92, Method::kVoting, Method::kNominal};

core::SimulatedRun MakeRun(uint64_t seed) {
  // Item noise + worker variation exercise every estimator's interesting
  // paths; 120 tasks keeps the full-series comparisons fast.
  Scenario scenario = SimulationScenario(0.02, 0.12, 10);
  scenario.workers.variation = 0.02;
  return SimulateScenario(scenario, 120, seed);
}

/// Full per-task estimate series for a factory-built estimator.
std::vector<double> SeriesOf(const estimators::EstimatorFactory& factory,
                             const crowd::ResponseLog& log) {
  std::unique_ptr<estimators::TotalErrorEstimator> estimator =
      factory(log.num_items());
  return estimators::EstimateSeriesByTask(log, *estimator);
}

TEST(DeprecatedBridgeTest, MethodSpecNamesResolveInTheRegistry) {
  for (Method method : kAllMethods) {
    std::string spec = MethodSpec(method, 2);
    Result<estimators::EstimatorSpec> parsed =
        estimators::ParseEstimatorSpec(spec);
    ASSERT_TRUE(parsed.ok()) << spec;
    Result<std::shared_ptr<const estimators::EstimatorRegistry::Entry>>
        entry = estimators::EstimatorRegistry::Global().Find(parsed->name);
    ASSERT_TRUE(entry.ok()) << spec;
    EXPECT_EQ((*entry)->display_name, MethodName(method)) << spec;
  }
}

TEST(DeprecatedBridgeTest, MakeEstimatorFactoryMatchesRegistryFactoryExactly) {
  core::SimulatedRun run = MakeRun(11);
  for (Method method : kAllMethods) {
    for (uint32_t shift : {0u, 1u, 3u}) {
      estimators::EstimatorFactory legacy = MakeEstimatorFactory(method, shift);
      Result<estimators::EstimatorFactory> modern =
          estimators::EstimatorRegistry::Global().FactoryFor(
              MethodSpec(method, shift));
      ASSERT_TRUE(modern.ok()) << modern.status().ToString();
      // The whole per-task series, not just the final: the bridge must be
      // path-identical, hence bit-identical at every prefix.
      EXPECT_EQ(SeriesOf(legacy, run.log), SeriesOf(*modern, run.log))
          << MethodName(method) << ", shift " << shift;
      if (method != Method::kVChao92) break;  // shift only affects V-CHAO
    }
  }
}

TEST(DeprecatedBridgeTest, EnumOptionsMatchSpecPipelineIncludingVChaoShift) {
  core::SimulatedRun run = MakeRun(23);
  size_t num_items = run.truth.size();
  for (Method method : kAllMethods) {
    for (uint32_t shift : {1u, 2u}) {
      DataQualityMetric::Options options;
      options.method = method;
      options.vchao_shift = shift;
      DataQualityMetric legacy(num_items, options);
      Result<DataQualityMetric> modern =
          DataQualityMetric::Create(num_items, {MethodSpec(method, shift)});
      ASSERT_TRUE(modern.ok()) << modern.status().ToString();
      for (const crowd::VoteEvent& event : run.log.events()) {
        legacy.AddVote(event.task, event.worker, event.item,
                       event.vote == crowd::Vote::kDirty);
        modern->AddVote(event.task, event.worker, event.item,
                        event.vote == crowd::Vote::kDirty);
      }
      EXPECT_EQ(legacy.EstimatedTotalErrors(), modern->EstimatedTotalErrors())
          << MethodName(method) << ", shift " << shift;
      EXPECT_EQ(legacy.EstimatedUndetectedErrors(),
                modern->EstimatedUndetectedErrors())
          << MethodName(method);
      EXPECT_EQ(legacy.QualityScore(), modern->QualityScore())
          << MethodName(method);
      EXPECT_EQ(legacy.method_name(), modern->method_name())
          << MethodName(method);
      if (method != Method::kVChao92) break;
    }
  }
}

TEST(DeprecatedBridgeTest, SwitchConfigStructMatchesSpecParams) {
  // Every deprecated switch_config knob spelled as spec params must
  // reproduce the struct-configured estimator bit-identically, per task.
  core::SimulatedRun run = MakeRun(37);
  size_t num_items = run.truth.size();

  estimators::SwitchTotalErrorEstimator::Config config;
  config.trend_window = 30;
  config.flip_threshold_abs = 5.0;
  config.flip_threshold_rel = 0.08;
  config.up_flip_factor = 1.5;
  config.smooth_window = 4;
  config.two_sided = true;
  config.tracker.skew_correction = false;
  config.tracker.tie_policy = estimators::TiePolicy::kStrictMajority;
  config.tracker.n_mode = estimators::SwitchNMode::kSpeciesSum;
  config.tracker.counting = estimators::SwitchCountingMode::kPerRecord;
  config.tracker.memory = estimators::SwitchMemory::kAllSwitches;

  std::string spec =
      "switch?tau=30&flip_abs=5&flip_rel=0.08&up_flip_factor=1.5"
      "&smooth_window=4&two_sided=1&skew=0&tie_policy=strict"
      "&n_mode=species&counting=per-record&memory=all";

  DataQualityMetric::Options options;
  options.method = Method::kSwitch;
  options.switch_config = config;
  DataQualityMetric legacy(num_items, options);
  Result<DataQualityMetric> modern =
      DataQualityMetric::Create(num_items, {spec});
  ASSERT_TRUE(modern.ok()) << modern.status().ToString();

  for (const crowd::VoteEvent& event : run.log.events()) {
    legacy.AddVote(event.task, event.worker, event.item,
                   event.vote == crowd::Vote::kDirty);
    modern->AddVote(event.task, event.worker, event.item,
                    event.vote == crowd::Vote::kDirty);
    // Per-vote equality: the two construction paths may never diverge at
    // any prefix of the stream.
    ASSERT_EQ(legacy.EstimatedTotalErrors(), modern->EstimatedTotalErrors());
  }
  EXPECT_EQ(legacy.Report().estimators.front().total_errors,
            modern->Report().estimators.front().total_errors);
}

TEST(DeprecatedBridgeTest, DeprecatedSpecsFieldInOptionsStillWins) {
  // Options::specs (the transitional field) must behave exactly like
  // Create() with the same list.
  core::SimulatedRun run = MakeRun(41);
  size_t num_items = run.truth.size();
  DataQualityMetric::Options options;
  options.method = Method::kNominal;  // must be ignored: specs win
  options.specs = {"chao92", "voting"};
  DataQualityMetric legacy(num_items, options);
  Result<DataQualityMetric> modern =
      DataQualityMetric::Create(num_items, {"chao92", "voting"});
  ASSERT_TRUE(modern.ok());
  for (const crowd::VoteEvent& event : run.log.events()) {
    legacy.AddVote(event.task, event.worker, event.item,
                   event.vote == crowd::Vote::kDirty);
    modern->AddVote(event.task, event.worker, event.item,
                    event.vote == crowd::Vote::kDirty);
  }
  EXPECT_EQ(legacy.method_name(), "CHAO92");
  EXPECT_EQ(legacy.EstimatedTotalErrors(), modern->EstimatedTotalErrors());
  EXPECT_EQ(legacy.num_estimators(), 2u);
}

}  // namespace
}  // namespace dqm::core
