// Warm-start Dawid-Skene regression suite: over a long session of ingest
// batches, (a) the warm-started estimate must track the cold fit of the
// same log state within the tolerance the registry entry declares, and
// (b) the per-batch sweep count must be bounded by the configured constant
// — never by how much history accumulated — which is what makes per-batch
// ingest cost O(#pairs), not O(history x max_iterations).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"
#include "crowd/dawid_skene.h"
#include "crowd/response_log.h"
#include "estimators/em_voting.h"
#include "estimators/registry.h"

namespace dqm::crowd {
namespace {

estimators::ConformanceTraits EmTraits() {
  auto entry = estimators::EstimatorRegistry::Global().Find("em-voting");
  EXPECT_TRUE(entry.ok()) << entry.status().ToString();
  return (*entry)->traits;
}

double DeclaredBound(double a, double b) {
  estimators::ConformanceTraits traits = EmTraits();
  EXPECT_GT(traits.estimate_tolerance_abs + traits.estimate_tolerance_rel, 0.0)
      << "em-voting must declare its warm-start tolerance";
  return traits.estimate_tolerance_abs +
         traits.estimate_tolerance_rel * std::max(std::abs(a), std::abs(b));
}

TEST(WarmStartEmTest, IncrementalFromEmptyStateIsExactlyTheColdFit) {
  core::SimulatedRun run =
      core::SimulateScenario(core::SimulationScenario(0.02, 0.1, 10), 120, 5);
  DawidSkene em;
  DawidSkene::Result cold = em.Fit(run.log);
  DawidSkene::Result incremental;
  DawidSkene::Workspace workspace;
  em.FitIncremental(run.log, incremental, workspace);
  ASSERT_EQ(incremental.posterior_dirty.size(), cold.posterior_dirty.size());
  for (size_t i = 0; i < cold.posterior_dirty.size(); ++i) {
    ASSERT_EQ(incremental.posterior_dirty[i], cold.posterior_dirty[i]) << i;
  }
  EXPECT_EQ(incremental.prior_dirty, cold.prior_dirty);
  EXPECT_EQ(incremental.iterations, cold.iterations);
  EXPECT_EQ(DawidSkene::DirtyCount(incremental), DawidSkene::DirtyCount(cold));
}

TEST(WarmStartEmTest, LongSessionTracksColdFitWithinDeclaredTolerance) {
  // 400 tasks ingested in 50-vote batches with an estimate after every
  // batch (the serving cadence). At spaced checkpoints the warm estimate is
  // compared against a from-scratch fit of the identical log state.
  core::SimulatedRun run =
      core::SimulateScenario(core::SimulationScenario(0.02, 0.15, 12), 400, 9);
  const std::vector<VoteEvent>& events = run.log.events();
  size_t num_items = run.log.num_items();

  estimators::EmVotingEstimator warm(num_items);
  ResponseLog replay(num_items, RetentionPolicy::kCounts);
  DawidSkene em;
  size_t checkpoints = 0;
  for (size_t begin = 0; begin < events.size(); begin += 50) {
    size_t end = std::min(begin + 50, events.size());
    for (size_t e = begin; e < end; ++e) {
      warm.Observe(events[e]);
      replay.Append(events[e]);
    }
    double warm_estimate = warm.Estimate();
    if ((begin / 50) % 16 == 0 || end == events.size()) {
      double cold_estimate =
          static_cast<double>(DawidSkene::DirtyCount(em.Fit(replay)));
      EXPECT_LE(std::abs(warm_estimate - cold_estimate),
                DeclaredBound(warm_estimate, cold_estimate))
          << "at " << end << " votes";
      ++checkpoints;
    }
  }
  EXPECT_GE(checkpoints, 4u);
}

TEST(WarmStartEmTest, SweepsPerBatchBoundedByConstantNotHistory) {
  core::SimulatedRun run =
      core::SimulateScenario(core::SimulationScenario(0.02, 0.1, 12), 600, 21);
  const std::vector<VoteEvent>& events = run.log.events();

  DawidSkene::Options options;
  estimators::EmVotingEstimator warm(run.log.num_items(), options);
  size_t max_warm_sweeps = 0;
  size_t batches = 0;
  for (size_t begin = 0; begin < events.size(); begin += 64) {
    size_t end = std::min(begin + 64, events.size());
    for (size_t e = begin; e < end; ++e) warm.Observe(events[e]);
    warm.Estimate();
    ++batches;
    if (batches > 1) {
      // Every warm refit obeys the constant cap regardless of how much
      // history the session accumulated.
      EXPECT_LE(warm.last_fit_sweeps(), options.max_incremental_sweeps)
          << "batch " << batches;
      max_warm_sweeps = std::max(max_warm_sweeps, warm.last_fit_sweeps());
    }
  }
  EXPECT_GE(batches, 50u);
  EXPECT_LE(max_warm_sweeps, options.max_incremental_sweeps);
  // And warm refits genuinely undercut the cold budget — the speedup claim.
  EXPECT_LT(max_warm_sweeps, options.max_iterations / 2);
}

TEST(WarmStartEmTest, ColdRefitSpecDisablesWarmState) {
  // "em-voting?warm=0" must reproduce the historical refit-from-scratch
  // behavior: every estimate equals a fresh Fit of the same log, exactly.
  core::SimulatedRun run =
      core::SimulateScenario(core::SimulationScenario(0.02, 0.1, 8), 80, 3);
  const std::vector<VoteEvent>& events = run.log.events();
  size_t num_items = run.log.num_items();

  auto cold_estimator = estimators::EstimatorRegistry::Global()
                            .Create("em-voting?warm=0", num_items)
                            .value();
  ResponseLog replay(num_items, RetentionPolicy::kCounts);
  DawidSkene em;
  for (size_t begin = 0; begin < events.size(); begin += 40) {
    size_t end = std::min(begin + 40, events.size());
    for (size_t e = begin; e < end; ++e) {
      cold_estimator->Observe(events[e]);
      replay.Append(events[e]);
    }
    EXPECT_EQ(cold_estimator->Estimate(),
              static_cast<double>(DawidSkene::DirtyCount(em.Fit(replay))))
        << "at " << end << " votes";
  }
}

TEST(WarmStartEmTest, NewWorkersMidStreamEnterAtNeutralRates) {
  estimators::EmVotingEstimator warm(6);
  ResponseLog replay(6, RetentionPolicy::kCounts);
  auto observe = [&](const VoteEvent& event) {
    warm.Observe(event);
    replay.Append(event);
  };
  for (uint32_t w = 0; w < 3; ++w) {
    for (uint32_t i = 0; i < 6; ++i) {
      observe({w, w, i, i < 2 ? Vote::kDirty : Vote::kClean});
    }
  }
  EXPECT_DOUBLE_EQ(warm.Estimate(), 2.0);
  // A burst of brand-new workers piles dirty votes on item 2: the warm
  // state must absorb the worker-universe growth (rates resized, fit
  // finite) and stay within the declared tolerance of a cold fit of the
  // same log — whichever basin EM prefers for the contested item.
  for (uint32_t w = 3; w < 10; ++w) {
    observe({w, w, 2, Vote::kDirty});
  }
  double warm_estimate = warm.Estimate();
  DawidSkene em;
  double cold_estimate =
      static_cast<double>(DawidSkene::DirtyCount(em.Fit(replay)));
  EXPECT_LE(std::abs(warm_estimate - cold_estimate),
            DeclaredBound(warm_estimate, cold_estimate));
  const DawidSkene::Result& state = warm.FitResult();
  EXPECT_EQ(state.sensitivity.size(), 10u);
  for (double rate : state.sensitivity) {
    EXPECT_TRUE(std::isfinite(rate));
  }
}

}  // namespace
}  // namespace dqm::crowd
