#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dqm {
namespace {

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, ScheduledTasksAllComplete) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 250; ++i) {
      pool.Schedule([&counter]() { counter.fetch_add(1); });
    }
  }  // Destructor waits for everything.
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  std::future<int> seven = pool.Submit([]() { return 7; });
  std::future<std::string> text =
      pool.Submit([]() { return std::string("done"); });
  EXPECT_EQ(seven.get(), 7);
  EXPECT_EQ(text.get(), "done");
}

TEST(ThreadPoolTest, ExceptionPropagatesToFutureNotWorker) {
  ThreadPool pool(2);
  std::future<void> failing =
      pool.Submit([]() { throw std::runtime_error("boom"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive and usable.
  std::future<int> after = pool.Submit([]() { return 3; });
  EXPECT_EQ(after.get(), 3);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedBacklog) {
  // More tasks than workers, each slow enough that a backlog builds up: the
  // destructor must run every one of them before joining.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Schedule([&counter]() {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that each wait for the other can only finish if two workers
  // run them at the same time.
  ThreadPool pool(2);
  std::atomic<int> arrivals{0};
  auto rendezvous = [&arrivals]() {
    arrivals.fetch_add(1);
    while (arrivals.load() < 2) std::this_thread::yield();
  };
  std::future<void> a = pool.Submit(rendezvous);
  std::future<void> b = pool.Submit(rendezvous);
  a.get();
  b.get();
  EXPECT_EQ(arrivals.load(), 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(&pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const std::atomic<int>& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, [&order](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, BlocksUntilAllIterationsFinish) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  ParallelFor(&pool, 30, [&done](size_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    done.fetch_add(1);
  });
  // No race: ParallelFor returned, so every iteration must have completed.
  EXPECT_EQ(done.load(), 30);
}

TEST(ParallelForTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

}  // namespace
}  // namespace dqm
