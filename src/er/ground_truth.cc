#include "er/ground_truth.h"

namespace dqm::er {

GroundTruth::GroundTruth(
    const std::vector<std::pair<size_t, size_t>>& duplicate_pairs) {
  duplicates_.reserve(duplicate_pairs.size());
  for (const auto& [a, b] : duplicate_pairs) {
    duplicates_.insert(
        RecordPair(static_cast<uint32_t>(a), static_cast<uint32_t>(b)));
  }
}

}  // namespace dqm::er
