#include "er/pair.h"

#include <cmath>

namespace dqm::er {

namespace {
// Dense index of the first pair whose smaller element is `i`:
// sum over rows 0..i-1 of (n - 1 - row) = i*n - i*(i+1)/2.
inline uint64_t RowOffset(uint64_t i, uint64_t n) {
  return i * n - i * (i + 1) / 2;
}
}  // namespace

uint64_t PairIndexer::ToIndex(const RecordPair& pair) const {
  DQM_CHECK_LT(pair.second, n_);
  uint64_t i = pair.first;
  uint64_t j = pair.second;
  return RowOffset(i, n_) + (j - i - 1);
}

RecordPair PairIndexer::FromIndex(uint64_t index) const {
  DQM_CHECK_LT(index, num_pairs());
  const uint64_t n = n_;
  // Invert the triangular offset with the quadratic formula, then correct
  // for floating-point error (at most one step in either direction for the
  // sizes this library works with).
  double nd = static_cast<double>(n);
  double kd = static_cast<double>(index);
  double disc = (2.0 * nd - 1.0) * (2.0 * nd - 1.0) - 8.0 * kd;
  double root = std::sqrt(std::max(disc, 0.0));
  auto i = static_cast<uint64_t>(std::max(0.0, ((2.0 * nd - 1.0) - root) / 2.0));
  while (i > 0 && RowOffset(i, n) > index) --i;
  while (i + 1 < n && RowOffset(i + 1, n) <= index) ++i;
  uint64_t j = i + 1 + (index - RowOffset(i, n));
  return RecordPair(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
}

}  // namespace dqm::er
