#ifndef DQM_ER_GROUND_TRUTH_H_
#define DQM_ER_GROUND_TRUTH_H_

#include <unordered_set>
#include <utility>
#include <vector>

#include "er/pair.h"

namespace dqm::er {

/// Ground-truth duplicate labels over the pair space. Built from the
/// generator's duplicate list; collapses commutative duplicates (enforced by
/// RecordPair ordering) and, when transitive clusters are supplied, reduces
/// them to a spanning set as in Section 2.1 of the paper
/// ({q1-q2, q1-q4, q2-q1, q2-q4} -> {q1-q2, q1-q4}).
class GroundTruth {
 public:
  /// Builds from explicit duplicate pairs (already one per duplicate
  /// relation). Pairs are deduplicated.
  explicit GroundTruth(
      const std::vector<std::pair<size_t, size_t>>& duplicate_pairs);

  /// True iff the pair is a true duplicate ("dirty" in the paper's mapping).
  bool IsDuplicate(const RecordPair& pair) const {
    return duplicates_.contains(pair);
  }

  size_t num_duplicates() const { return duplicates_.size(); }

  const std::unordered_set<RecordPair, RecordPairHash>& duplicates() const {
    return duplicates_;
  }

 private:
  std::unordered_set<RecordPair, RecordPairHash> duplicates_;
};

}  // namespace dqm::er

#endif  // DQM_ER_GROUND_TRUTH_H_
