#ifndef DQM_ER_CROWDER_H_
#define DQM_ER_CROWDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dataset/table.h"
#include "er/blocking.h"
#include "er/ground_truth.h"

namespace dqm::er {

/// Accounting for how the heuristic partition relates to the ground truth —
/// the quantities Section 5 of the paper reasons about (perfect vs imperfect
/// heuristic).
struct HeuristicQuality {
  /// True duplicates auto-accepted by similarity > beta (correct).
  size_t auto_accepted_duplicates = 0;
  /// Clean pairs auto-accepted by similarity > beta (heuristic false
  /// positives: violates the perfect-heuristic assumption).
  size_t auto_accepted_clean = 0;
  /// True duplicates inside the candidate band [alpha, beta].
  size_t candidate_duplicates = 0;
  /// True duplicates below alpha (heuristic false negatives).
  size_t missed_duplicates = 0;
};

/// The crowd-facing cleaning problem produced by the CrowdER-style
/// two-stage pipeline: the candidate items (pairs) the crowd will vote on,
/// with their hidden true labels, plus partition bookkeeping.
struct CrowdErProblem {
  /// Candidate pairs in heuristic-score order (as produced by blocking).
  std::vector<ScoredPair> candidates;
  /// truth[i] == true iff candidates[i] is a true duplicate.
  std::vector<bool> truth;
  /// Number of true duplicates among the candidates.
  size_t num_dirty_candidates = 0;
  HeuristicQuality quality;
  CandidateSet partition;
};

/// Strategy used to enumerate/score the pair space.
enum class BlockingStrategy {
  kAllPairs,
  kTokenBlocking,
};

/// Runs stage one of CrowdER (algorithmic partition of the pair space) and
/// assembles the crowd problem for stage two. `side_column` may be empty;
/// when set, only cross-side pairs are considered (record linkage).
Result<CrowdErProblem> BuildCrowdErProblem(
    const dataset::Table& table, const GroundTruth& ground_truth,
    const CandidateGenerator& generator, BlockingStrategy strategy,
    const std::string& side_column = "");

/// Eq. (9) of the paper (perfect-heuristic composition): the full-dataset
/// error estimate is the crowd-side estimate over the candidate band plus
/// the pairs the heuristic auto-accepted above beta:
///   |R_dirty| = D_hat(R_H) + |{r in R : H(r) > beta}|.
/// Valid under the perfect-heuristic assumption of Section 5.2 (no true
/// duplicates below alpha, no clean pairs above beta); with an imperfect
/// heuristic use epsilon-sampling over the full universe instead
/// (Section 5.3 / PrioritizedAssignment).
double ComposeFullDatasetEstimate(double candidate_estimate,
                                  const CandidateSet& partition);

}  // namespace dqm::er

#endif  // DQM_ER_CROWDER_H_
