#ifndef DQM_ER_BLOCKING_H_
#define DQM_ER_BLOCKING_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataset/table.h"
#include "er/pair.h"

namespace dqm::er {

/// A record pair scored by the matching heuristic H.
struct ScoredPair {
  RecordPair pair;
  double similarity = 0.0;
};

/// Result of the CrowdER-style two-stage partition of the pair space:
///  - similarity >  beta  -> likely matches (auto-accepted, no crowd)
///  - similarity <  alpha -> unlikely matches (auto-rejected, no crowd)
///  - otherwise           -> candidates R_H handed to the crowd
struct CandidateSet {
  std::vector<ScoredPair> likely_matches;
  std::vector<ScoredPair> candidates;
  /// Number of auto-rejected pairs (not materialized; the complement).
  uint64_t num_unlikely = 0;
  /// Size of the full pair space the partition covers.
  uint64_t num_total_pairs = 0;
};

/// Candidate generation over the quadratic pair space.
///
/// Two strategies:
///  * AllPairs — exact, O(n^2) similarity evaluations with early-exit
///    bounded edit distance; fine for n up to a few thousand.
///  * TokenBlocking — inverted index on word tokens; only pairs sharing at
///    least one token are scored. This is the standard production trick
///    that makes the Product-scale dataset (2336 x 1363) tractable while
///    missing virtually no true candidates (duplicates nearly always share
///    a token).
class CandidateGenerator {
 public:
  /// `key_column` is the text column compared by the heuristic. Scores are
  /// `text::HybridSimilarity` over that column.
  CandidateGenerator(double alpha, double beta, std::string key_column);

  /// Exact all-pairs scan.
  Result<CandidateSet> AllPairs(const dataset::Table& table) const;

  /// Token-blocked scan. `min_shared_tokens` (>= 1) trades recall for speed.
  Result<CandidateSet> TokenBlocking(const dataset::Table& table,
                                     size_t min_shared_tokens = 1) const;

  /// Two-sided variant for record-linkage tables (e.g., Product): only pairs
  /// whose `side_column` values differ are considered.
  Result<CandidateSet> TokenBlockingTwoSided(const dataset::Table& table,
                                             const std::string& side_column)
      const;

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

 private:
  CandidateSet Partition(const dataset::Table& table,
                         const std::vector<std::string>& keys,
                         const std::vector<RecordPair>& pairs_to_score,
                         uint64_t num_total_pairs) const;

  double alpha_;
  double beta_;
  std::string key_column_;
};

}  // namespace dqm::er

#endif  // DQM_ER_BLOCKING_H_
