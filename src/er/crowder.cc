#include "er/crowder.h"

namespace dqm::er {

Result<CrowdErProblem> BuildCrowdErProblem(
    const dataset::Table& table, const GroundTruth& ground_truth,
    const CandidateGenerator& generator, BlockingStrategy strategy,
    const std::string& side_column) {
  CandidateSet partition;
  switch (strategy) {
    case BlockingStrategy::kAllPairs: {
      DQM_ASSIGN_OR_RETURN(partition, generator.AllPairs(table));
      break;
    }
    case BlockingStrategy::kTokenBlocking: {
      if (side_column.empty()) {
        DQM_ASSIGN_OR_RETURN(partition, generator.TokenBlocking(table));
      } else {
        DQM_ASSIGN_OR_RETURN(
            partition, generator.TokenBlockingTwoSided(table, side_column));
      }
      break;
    }
  }

  CrowdErProblem problem;
  problem.truth.reserve(partition.candidates.size());
  for (const ScoredPair& scored : partition.likely_matches) {
    if (ground_truth.IsDuplicate(scored.pair)) {
      ++problem.quality.auto_accepted_duplicates;
    } else {
      ++problem.quality.auto_accepted_clean;
    }
  }
  for (const ScoredPair& scored : partition.candidates) {
    bool dup = ground_truth.IsDuplicate(scored.pair);
    problem.truth.push_back(dup);
    if (dup) {
      ++problem.quality.candidate_duplicates;
      ++problem.num_dirty_candidates;
    }
  }
  problem.quality.missed_duplicates =
      ground_truth.num_duplicates() -
      problem.quality.auto_accepted_duplicates -
      problem.quality.candidate_duplicates;
  problem.candidates = partition.candidates;
  problem.partition = std::move(partition);
  return problem;
}

double ComposeFullDatasetEstimate(double candidate_estimate,
                                  const CandidateSet& partition) {
  return candidate_estimate +
         static_cast<double>(partition.likely_matches.size());
}

}  // namespace dqm::er
