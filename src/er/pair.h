#ifndef DQM_ER_PAIR_H_
#define DQM_ER_PAIR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/logging.h"

namespace dqm::er {

/// Identifier of an unordered record pair (a, b) with a < b — the unit of
/// work in entity resolution. The paper defines R = Q x Q with commutative
/// pairs collapsed; RecordPair enforces that canonical order.
struct RecordPair {
  uint32_t first = 0;
  uint32_t second = 0;

  RecordPair() = default;
  /// Canonicalizes order; `a` must differ from `b` (no self-pairs).
  RecordPair(uint32_t a, uint32_t b)
      : first(a < b ? a : b), second(a < b ? b : a) {
    DQM_CHECK_NE(a, b) << "self-pairs are not valid entity-resolution units";
  }

  friend bool operator==(const RecordPair&, const RecordPair&) = default;
  friend auto operator<=>(const RecordPair&, const RecordPair&) = default;

  /// Packs into a single 64-bit key (useful as a hash-map key).
  uint64_t Key() const {
    return (static_cast<uint64_t>(first) << 32) | second;
  }
};

/// Total number of unordered pairs over n records: n*(n-1)/2.
inline uint64_t NumPairs(uint64_t n) { return n * (n - 1) / 2; }

/// Bijection between unordered pairs over n records and the dense index
/// range [0, NumPairs(n)). Lets samplers draw uniform random pairs from the
/// quadratic pair space without materializing it — the paper's Figure 2(a)
/// experiment samples from 367,653 restaurant pairs this way.
class PairIndexer {
 public:
  explicit PairIndexer(uint32_t num_records) : n_(num_records) {
    DQM_CHECK_GE(num_records, 2u);
  }

  uint64_t num_pairs() const { return NumPairs(n_); }

  /// Dense index of a pair.
  uint64_t ToIndex(const RecordPair& pair) const;

  /// Pair for a dense index in [0, num_pairs()).
  RecordPair FromIndex(uint64_t index) const;

 private:
  uint32_t n_;
};

struct RecordPairHash {
  size_t operator()(const RecordPair& pair) const {
    // splitmix-style mix of the packed key.
    uint64_t z = pair.Key() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

}  // namespace dqm::er

#endif  // DQM_ER_PAIR_H_
