#include "er/blocking.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace dqm::er {

CandidateGenerator::CandidateGenerator(double alpha, double beta,
                                       std::string key_column)
    : alpha_(alpha), beta_(beta), key_column_(std::move(key_column)) {
  DQM_CHECK(alpha >= 0.0 && alpha <= beta && beta <= 1.0)
      << "require 0 <= alpha <= beta <= 1";
}

CandidateSet CandidateGenerator::Partition(
    const dataset::Table& table, const std::vector<std::string>& keys,
    const std::vector<RecordPair>& pairs_to_score,
    uint64_t num_total_pairs) const {
  (void)table;
  CandidateSet out;
  out.num_total_pairs = num_total_pairs;
  uint64_t scored_below_alpha = 0;
  for (const RecordPair& pair : pairs_to_score) {
    double sim =
        text::HybridSimilarity(keys[pair.first], keys[pair.second]);
    if (sim > beta_) {
      out.likely_matches.push_back({pair, sim});
    } else if (sim >= alpha_) {
      out.candidates.push_back({pair, sim});
    } else {
      ++scored_below_alpha;
    }
  }
  // Unscored pairs (pruned by blocking) are below alpha by construction.
  uint64_t scored = pairs_to_score.size();
  out.num_unlikely = num_total_pairs - scored + scored_below_alpha;
  return out;
}

Result<CandidateSet> CandidateGenerator::AllPairs(
    const dataset::Table& table) const {
  DQM_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                       table.Column(key_column_));
  size_t n = keys.size();
  if (n < 2) {
    return Status::InvalidArgument("need at least two records");
  }
  std::vector<RecordPair> pairs;
  pairs.reserve(NumPairs(n));
  for (uint32_t i = 0; i + 1 < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      pairs.emplace_back(i, j);
    }
  }
  return Partition(table, keys, pairs, NumPairs(n));
}

namespace {

/// Pairs sharing >= min_shared tokens, restricted by `allowed` when set.
std::vector<RecordPair> SharedTokenPairs(
    const std::vector<std::string>& keys, size_t min_shared,
    const std::function<bool(uint32_t, uint32_t)>& allowed) {
  std::unordered_map<std::string, std::vector<uint32_t>> postings;
  for (uint32_t row = 0; row < keys.size(); ++row) {
    std::vector<std::string> tokens = text::WordTokens(keys[row]);
    std::unordered_set<std::string> distinct(tokens.begin(), tokens.end());
    for (const auto& token : distinct) {
      postings[token].push_back(row);
    }
  }
  std::unordered_map<uint64_t, size_t> shared_counts;
  for (const auto& [token, rows] : postings) {
    // Extremely frequent tokens (stop-word behavior) explode the candidate
    // set quadratically while carrying no signal; skip them.
    if (rows.size() > keys.size() / 4 && rows.size() > 50) continue;
    for (size_t a = 0; a + 1 < rows.size(); ++a) {
      for (size_t b = a + 1; b < rows.size(); ++b) {
        if (allowed && !allowed(rows[a], rows[b])) continue;
        ++shared_counts[RecordPair(rows[a], rows[b]).Key()];
      }
    }
  }
  std::vector<RecordPair> pairs;
  pairs.reserve(shared_counts.size());
  for (const auto& [key, count] : shared_counts) {
    if (count >= min_shared) {
      pairs.emplace_back(static_cast<uint32_t>(key >> 32),
                         static_cast<uint32_t>(key & 0xffffffffULL));
    }
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace

Result<CandidateSet> CandidateGenerator::TokenBlocking(
    const dataset::Table& table, size_t min_shared_tokens) const {
  DQM_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                       table.Column(key_column_));
  if (keys.size() < 2) {
    return Status::InvalidArgument("need at least two records");
  }
  std::vector<RecordPair> pairs =
      SharedTokenPairs(keys, min_shared_tokens, nullptr);
  return Partition(table, keys, pairs, NumPairs(keys.size()));
}

Result<CandidateSet> CandidateGenerator::TokenBlockingTwoSided(
    const dataset::Table& table, const std::string& side_column) const {
  DQM_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                       table.Column(key_column_));
  DQM_ASSIGN_OR_RETURN(std::vector<std::string> sides,
                       table.Column(side_column));
  if (keys.size() < 2) {
    return Status::InvalidArgument("need at least two records");
  }
  auto cross_side = [&sides](uint32_t a, uint32_t b) {
    return sides[a] != sides[b];
  };
  std::vector<RecordPair> pairs = SharedTokenPairs(keys, 1, cross_side);
  // The covered pair space is the cross product of the two sides.
  std::unordered_map<std::string, uint64_t> side_counts;
  for (const auto& side : sides) ++side_counts[side];
  uint64_t cross_pairs = 0;
  std::vector<uint64_t> counts;
  counts.reserve(side_counts.size());
  for (const auto& [side, count] : side_counts) counts.push_back(count);
  for (size_t a = 0; a + 1 < counts.size(); ++a) {
    for (size_t b = a + 1; b < counts.size(); ++b) {
      cross_pairs += counts[a] * counts[b];
    }
  }
  return Partition(table, keys, pairs, cross_pairs);
}

}  // namespace dqm::er
