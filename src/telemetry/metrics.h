#ifndef DQM_TELEMETRY_METRICS_H_
#define DQM_TELEMETRY_METRICS_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/align.h"
#include "common/mutex.h"

namespace dqm::telemetry {

/// Monotonic nanoseconds since process start (steady clock). All telemetry
/// timestamps — histogram samples, flight-recorder spans, log prefixes —
/// share this epoch so they can be correlated.
uint64_t NowNanos();

/// Runtime switch for the *timed* instrumentation (clock reads, latency
/// histograms, flight-recorder spans). Counters stay on regardless — one
/// relaxed fetch_add is cheaper than the branch that would skip it is worth.
/// Default: enabled. The overhead bench toggles this to prove the telemetry
/// tax; serving code never needs to touch it.
bool Enabled();
void SetEnabled(bool enabled);

/// Sorted (key, value) label pairs. Metric identity = name + labels.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter, sharded so concurrent writers on different cores hit
/// different cache lines. Add() is one relaxed fetch_add on the writer's
/// shard; Value() folds the shards (reads may tear *across* shards, which
/// only ever under-counts in-flight increments — fine for monitoring).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    cells_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Test / bench support: zeroes every shard. Not atomic with respect to
  /// concurrent writers (they may land increments between the stores).
  void Reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

  /// Stable per-thread shard slot, shared by every sharded metric so a
  /// thread's increments always land on the same cells.
  static size_t ShardIndex();

  static constexpr size_t kShards = 8;

 private:
  struct alignas(kCacheLineBytes) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kShards];
};

/// Immutable fold of a Histogram: total count plus the 64 per-bucket counts.
/// Quantiles are derived from the log-bucket layout — each estimate is the
/// geometric midpoint of the bucket the quantile falls in, so p-values carry
/// the bucket's relative error (~±50% per power-of-two bucket), which is the
/// deliberate trade for a constant-cost Record().
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t buckets[64] = {};

  /// Inclusive upper bound of bucket `b`: 0 for bucket 0, 2^b - 1 above.
  static uint64_t BucketUpperBound(size_t b);
  /// Value estimate for quantile q in [0, 1]; 0 when empty.
  double Quantile(double q) const;
  /// Upper bound of the highest non-empty bucket; 0 when empty.
  uint64_t Max() const;
};

/// Fixed-layout latency histogram: 64 power-of-two buckets (bucket 0 holds
/// exact zeros; bucket b >= 1 holds [2^(b-1), 2^b - 1]). Record() is one
/// bit_width (CLZ) plus one relaxed fetch_add on the recording thread's
/// shard — no sum, no min/max atomics, honoring the hot-path cost contract.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    cells_[Counter::ShardIndex()]
        .buckets[BucketIndex(value)]
        .fetch_add(1, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;
  uint64_t Count() const { return Snapshot().count; }

  void Reset() {
    for (Cell& cell : cells_) {
      for (auto& bucket : cell.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }

  static size_t BucketIndex(uint64_t value) {
    // bit_width(0) == 0 keeps zeros in bucket 0 with no branch.
    size_t width = static_cast<size_t>(std::bit_width(value));
    return width < 64 ? width : 63;
  }

 private:
  struct alignas(kCacheLineBytes) Cell {
    std::atomic<uint64_t> buckets[64] = {};
  };
  Cell cells_[Counter::kShards];
};

/// Last-write-wins double value (bit_cast through one atomic word). Set is
/// a relaxed store; Add is a CAS loop — fine off the hot path, which is the
/// only place gauges are written.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value);
  void Add(double delta);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Name + label keyed registry of counters / histograms / gauges. Lookups
/// take a mutex and are meant for setup paths only: hot code caches the
/// returned pointer (or hides the lookup behind a function-local static).
/// Returned pointers stay valid for the registry's lifetime, except gauges
/// released through ReleaseGauge.
///
/// Instantiable so exposition-format tests run against a private registry;
/// production code uses Global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point uses.
  static MetricsRegistry& Global();

  /// Find-or-create. The (name, labels) pair must keep one metric type for
  /// the registry's lifetime (checked). Metrics obtained this way are
  /// pinned: they are never removed.
  Counter* GetCounter(std::string_view name, LabelSet labels = {});
  Histogram* GetHistogram(std::string_view name, LabelSet labels = {});
  Gauge* GetGauge(std::string_view name, LabelSet labels = {});

  /// Refcounted find-or-create for dynamically scoped gauges (per-session
  /// quality estimates): every Acquire must be paired with a Release, and
  /// the gauge is destroyed when the last reference drops — which is what
  /// lets the exposition surface forget sessions that closed. Acquiring a
  /// (name, labels) previously pinned by GetGauge keeps it pinned.
  Gauge* AcquireGauge(std::string_view name, LabelSet labels = {});
  void ReleaseGauge(std::string_view name, const LabelSet& labels);

  struct CollectedCounter {
    std::string name;
    LabelSet labels;
    uint64_t value = 0;
  };
  struct CollectedGauge {
    std::string name;
    LabelSet labels;
    double value = 0.0;
  };
  struct CollectedHistogram {
    std::string name;
    LabelSet labels;
    HistogramSnapshot snapshot;
  };
  /// Point-in-time fold of every registered metric, sorted by (name,
  /// labels) — the input of the exposition renderers.
  struct Collection {
    std::vector<CollectedCounter> counters;
    std::vector<CollectedGauge> gauges;
    std::vector<CollectedHistogram> histograms;
  };
  Collection Collect() const;

  /// Number of registered metrics (all types).
  size_t size() const;

  /// Test / bench support: zeroes every counter and histogram and sets
  /// every gauge to 0 (entries stay registered).
  void ResetAll();

 private:
  enum class Type { kCounter, kHistogram, kGauge };
  struct Entry {
    Type type;
    std::string name;
    LabelSet labels;
    /// Pinned entries (created via Get*) are never removed; acquired-only
    /// gauges die when `refs` drops to zero.
    bool pinned = false;
    int refs = 0;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Gauge> gauge;
  };

  Entry& FindOrCreateLocked(std::string_view name, LabelSet labels, Type type)
      DQM_REQUIRES(mutex_);

  mutable Mutex mutex_{LockRank::kTelemetry, "metrics-registry"};
  /// Keyed by "name{k=v,...}" with labels sorted — one canonical spelling
  /// per identity.
  std::map<std::string, Entry> entries_ DQM_GUARDED_BY(mutex_);
};

}  // namespace dqm::telemetry

#endif  // DQM_TELEMETRY_METRICS_H_
