#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "common/logging.h"

namespace dqm::telemetry {

namespace {

std::atomic<bool> g_enabled{true};

/// Process-start anchor for NowNanos(): captured once, so every telemetry
/// timestamp is a small offset instead of a raw steady_clock reading.
std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Forces the epoch capture before main() so the first NowNanos() from any
/// thread doesn't race the static init.
const std::chrono::steady_clock::time_point g_epoch_anchor = ProcessEpoch();

std::string EncodeKey(std::string_view name, const LabelSet& labels) {
  std::string key(name);
  key.push_back('{');
  for (const auto& [k, v] : labels) {
    key.append(k);
    key.push_back('=');
    key.append(v);
    key.push_back(',');
  }
  key.push_back('}');
  return key;
}

}  // namespace

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ProcessEpoch())
          .count());
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

size_t Counter::ShardIndex() {
  // Threads are dealt shard slots round-robin at first touch; the slot is
  // then a thread-local read. Distinct threads may share a shard (there are
  // only kShards), which costs contention, never correctness.
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return slot;
}

uint64_t HistogramSnapshot::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) b = 63;
  return (b == 63) ? UINT64_MAX : ((uint64_t{1} << b) - 1);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil): walk the cumulative counts to
  // the bucket containing it.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < 64; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      if (b == 0) return 0.0;
      // Geometric midpoint of [2^(b-1), 2^b): sqrt(lo * hi) = lo * sqrt(2).
      double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      return lo * 1.41421356237309515;
    }
  }
  return static_cast<double>(Max());
}

uint64_t HistogramSnapshot::Max() const {
  for (size_t b = 64; b > 0; --b) {
    if (buckets[b - 1] != 0) return BucketUpperBound(b - 1);
  }
  return 0;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (const Cell& cell : cells_) {
    for (size_t b = 0; b < 64; ++b) {
      uint64_t n = cell.buckets[b].load(std::memory_order_relaxed);
      snapshot.buckets[b] += n;
      snapshot.count += n;
    }
  }
  return snapshot;
}

void Gauge::Set(double value) {
  bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  uint64_t expected = bits_.load(std::memory_order_relaxed);
  for (;;) {
    uint64_t next = std::bit_cast<uint64_t>(std::bit_cast<double>(expected) + delta);
    if (bits_.compare_exchange_weak(expected, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

double Gauge::Value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreateLocked(
    std::string_view name, LabelSet labels, Type type) {
  std::sort(labels.begin(), labels.end());
  std::string key = EncodeKey(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    DQM_CHECK(it->second.type == type)
        << "telemetry metric '" << key << "' re-registered as a different type";
    return it->second;
  }
  Entry entry;
  entry.type = type;
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  switch (type) {
    case Type::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Type::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
    case Type::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
  }
  return entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name, LabelSet labels) {
  MutexLock lock(mutex_);
  Entry& entry = FindOrCreateLocked(name, std::move(labels), Type::kCounter);
  entry.pinned = true;
  return entry.counter.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         LabelSet labels) {
  MutexLock lock(mutex_);
  Entry& entry = FindOrCreateLocked(name, std::move(labels), Type::kHistogram);
  entry.pinned = true;
  return entry.histogram.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, LabelSet labels) {
  MutexLock lock(mutex_);
  Entry& entry = FindOrCreateLocked(name, std::move(labels), Type::kGauge);
  entry.pinned = true;
  return entry.gauge.get();
}

Gauge* MetricsRegistry::AcquireGauge(std::string_view name, LabelSet labels) {
  MutexLock lock(mutex_);
  Entry& entry = FindOrCreateLocked(name, std::move(labels), Type::kGauge);
  ++entry.refs;
  return entry.gauge.get();
}

void MetricsRegistry::ReleaseGauge(std::string_view name,
                                   const LabelSet& labels) {
  MutexLock lock(mutex_);
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  auto it = entries_.find(EncodeKey(name, sorted));
  DQM_CHECK(it != entries_.end()) << "ReleaseGauge: no such gauge '" << name
                                  << "'";
  Entry& entry = it->second;
  DQM_CHECK_GT(entry.refs, 0) << "ReleaseGauge without matching Acquire";
  if (--entry.refs == 0 && !entry.pinned) {
    entries_.erase(it);
  }
}

MetricsRegistry::Collection MetricsRegistry::Collect() const {
  MutexLock lock(mutex_);
  Collection out;
  // entries_ iterates in key order, which is (name, sorted labels) order —
  // the deterministic exposition order the golden tests pin down.
  for (const auto& [key, entry] : entries_) {
    switch (entry.type) {
      case Type::kCounter:
        out.counters.push_back({entry.name, entry.labels,
                                entry.counter->Value()});
        break;
      case Type::kGauge:
        out.gauges.push_back({entry.name, entry.labels, entry.gauge->Value()});
        break;
      case Type::kHistogram:
        out.histograms.push_back({entry.name, entry.labels,
                                  entry.histogram->Snapshot()});
        break;
    }
  }
  return out;
}

size_t MetricsRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mutex_);
  for (auto& [key, entry] : entries_) {
    switch (entry.type) {
      case Type::kCounter:
        entry.counter->Reset();
        break;
      case Type::kHistogram:
        entry.histogram->Reset();
        break;
      case Type::kGauge:
        entry.gauge->Set(0.0);
        break;
    }
  }
}

}  // namespace dqm::telemetry
