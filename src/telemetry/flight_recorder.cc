#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <bit>

namespace dqm::telemetry {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCommit:
      return "commit";
    case SpanKind::kReconcile:
      return "reconcile";
    case SpanKind::kPublish:
      return "publish";
    case SpanKind::kEstimate:
      return "estimate";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : mask_(std::bit_ceil(std::max<size_t>(capacity, 2)) - 1),
      slots_(std::make_unique<Slot[]>(mask_ + 1)) {}

void FlightRecorder::Record(SpanKind kind, uint64_t start_nanos,
                            uint64_t end_nanos, uint64_t value) {
  const uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Per-slot seqlock: odd marks the write in flight; the final value
  // (ticket + 1) * 2 is even AND unique per ticket, so a reader that saw
  // the same even sequence before and after its copy read one complete
  // span. Two writers lapping each other onto the same slot produce
  // mismatched sequences, which the reader discards.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.kind.store(static_cast<uint64_t>(kind), std::memory_order_relaxed);
  slot.start.store(start_nanos, std::memory_order_relaxed);
  slot.end.store(end_nanos, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<Span> FlightRecorder::Snapshot() const {
  std::vector<Span> spans;
  spans.reserve(mask_ + 1);
  for (size_t i = 0; i <= mask_; ++i) {
    const Slot& slot = slots_[i];
    uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1)) continue;  // empty or mid-write
    Span span;
    span.kind = static_cast<SpanKind>(
        slot.kind.load(std::memory_order_relaxed));
    span.start_nanos = slot.start.load(std::memory_order_relaxed);
    span.end_nanos = slot.end.load(std::memory_order_relaxed);
    span.value = slot.value.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;  // torn
    span.ticket = before / 2 - 1;
    spans.push_back(span);
  }
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.ticket < b.ticket; });
  return spans;
}

}  // namespace dqm::telemetry
