#ifndef DQM_TELEMETRY_FLIGHT_RECORDER_H_
#define DQM_TELEMETRY_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/align.h"

namespace dqm::telemetry {

/// What a flight-recorder span timed.
enum class SpanKind : uint32_t {
  kCommit = 0,     // one AddVotes batch; value = batch size
  kReconcile = 1,  // stripe pause + fold window; value = votes reconciled
  kPublish = 2,    // full publish (pause + fold + estimate); value = version
  kEstimate = 3,   // estimator pipeline + snapshot store; value = version
};

const char* SpanKindName(SpanKind kind);

/// One recorded span. `ticket` is the global record order (monotonic across
/// threads), which survives ring wraparound — Snapshot() returns spans
/// sorted by it.
struct Span {
  uint64_t ticket = 0;
  SpanKind kind = SpanKind::kCommit;
  uint64_t start_nanos = 0;
  uint64_t end_nanos = 0;
  uint64_t value = 0;

  uint64_t duration_nanos() const { return end_nanos - start_nanos; }
};

/// Fixed-size lock-free ring of recent spans — the "why was this publish
/// slow" forensics buffer each session carries. Writers claim a slot with
/// one fetch_add and fill it under a per-slot seqlock (odd sequence = write
/// in flight), so recording never blocks and never allocates; the ring
/// overwrites oldest-first. Readers (Snapshot) skip slots a writer is
/// mid-flight on — a snapshot is a best-effort recent-history sample, never
/// a blocking operation. Every slot field is a relaxed/acquire-release
/// atomic word, so the protocol is fully visible to ThreadSanitizer.
class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two; default 256 spans.
  explicit FlightRecorder(size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(SpanKind kind, uint64_t start_nanos, uint64_t end_nanos,
              uint64_t value);

  /// All readable spans, oldest first (sorted by ticket). At most
  /// capacity() spans; slots being overwritten concurrently are skipped.
  std::vector<Span> Snapshot() const;

  size_t capacity() const { return mask_ + 1; }

  /// Total spans ever recorded (>= Snapshot().size()).
  uint64_t total_recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    /// (ticket + 1) * 2 when slot holds ticket's span; odd while a write is
    /// in flight; 0 = never written.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> kind{0};
    std::atomic<uint64_t> start{0};
    std::atomic<uint64_t> end{0};
    std::atomic<uint64_t> value{0};
  };

  size_t mask_;
  std::atomic<uint64_t> cursor_{0};
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace dqm::telemetry

#endif  // DQM_TELEMETRY_FLIGHT_RECORDER_H_
