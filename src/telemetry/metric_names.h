#ifndef DQM_TELEMETRY_METRIC_NAMES_H_
#define DQM_TELEMETRY_METRIC_NAMES_H_

// The single home of every exported metric name. Instrumentation sites refer
// to these constants instead of spelling the string; tools/dqm_lint.py
// enforces both halves of the contract — a "dqm_*" string literal anywhere
// else in src/ is a lint error, and every name declared here must match the
// canonical grammar `[a-z][a-z0-9_]*` (the `name{k=v,...}` exposition
// identity adds sorted labels on top, at the registry layer).
//
// Keeping the names in one translation-unit-visible table is what makes the
// exposition surface reviewable: a metrics rename is one diff hunk here plus
// the call sites the compiler then finds for free.

namespace dqm::telemetry::metric_names {

// --- Striped ingest (crowd/response_log.cc) -------------------------------
/// Stripe-lock acquisitions by committers, labeled stripe="<index>".
inline constexpr char kStripeLockAcquisitionsTotal[] =
    "dqm_stripe_lock_acquisitions_total";
/// The subset of acquisitions that had to block.
inline constexpr char kStripeLockContendedTotal[] =
    "dqm_stripe_lock_contended_total";
/// Nanoseconds committers spent blocked on stripe locks.
inline constexpr char kStripeLockWaitNsTotal[] =
    "dqm_stripe_lock_wait_ns_total";
/// Nanoseconds stripe locks were held (sampled 1 in 64).
inline constexpr char kStripeLockHoldNsTotal[] =
    "dqm_stripe_lock_hold_ns_total";
/// Publish-side pause phase: acquiring every stripe lock.
inline constexpr char kPublishPauseNs[] = "dqm_publish_pause_ns";
/// Publish-side fold phase: the reconcile scan under the pause.
inline constexpr char kPublishFoldNs[] = "dqm_publish_fold_ns";
/// Hottest stripe's share of a perfectly even spread (1.0 = balanced).
inline constexpr char kStripeImbalanceRatio[] = "dqm_stripe_imbalance_ratio";

// --- Dawid-Skene EM (crowd/dawid_skene.cc) --------------------------------
inline constexpr char kEmFitsTotal[] = "dqm_em_fits_total";
inline constexpr char kEmSweepsTotal[] = "dqm_em_sweeps_total";
inline constexpr char kEmConvergedTotal[] = "dqm_em_converged_total";
inline constexpr char kEmLastConvergenceDelta[] =
    "dqm_em_last_convergence_delta";

// --- Engine registry (engine/engine.cc) -----------------------------------
inline constexpr char kEngineSessionsOpen[] = "dqm_engine_sessions_open";
inline constexpr char kEngineRetainedBytes[] = "dqm_engine_retained_bytes";

// --- Session serving paths (engine/session.cc) ----------------------------
inline constexpr char kSeqlockReadRetriesTotal[] =
    "dqm_seqlock_read_retries_total";
inline constexpr char kCommitBatchesTotal[] = "dqm_commit_batches_total";
inline constexpr char kCommitVotesTotal[] = "dqm_commit_votes_total";
inline constexpr char kPublishesTotal[] = "dqm_publishes_total";
inline constexpr char kPublishDeferredTotal[] = "dqm_publish_deferred_total";
inline constexpr char kCommitBatchVotes[] = "dqm_commit_batch_votes";
inline constexpr char kCommitLatencyNs[] = "dqm_commit_latency_ns";
inline constexpr char kPublishLatencyNs[] = "dqm_publish_latency_ns";
inline constexpr char kPublishEstimateNs[] = "dqm_publish_estimate_ns";
/// Per-session×estimator gauges, labeled estimator=..., session=...
inline constexpr char kSessionQuality[] = "dqm_session_quality";
inline constexpr char kSessionTotalErrors[] = "dqm_session_total_errors";

// --- Durability: write-ahead log (engine/durability.cc) -------------------
/// Record batches appended to WAL user-space buffers.
inline constexpr char kWalAppendsTotal[] = "dqm_wal_appends_total";
/// Votes carried by those batches.
inline constexpr char kWalVotesTotal[] = "dqm_wal_votes_total";
/// Bytes handed to write(2) (record framing included).
inline constexpr char kWalBytesWrittenTotal[] = "dqm_wal_bytes_written_total";
/// fsync(2) calls issued by the group-commit cadence, flushes, and closes.
inline constexpr char kWalFsyncsTotal[] = "dqm_wal_fsyncs_total";
/// Wall time of each fsync(2).
inline constexpr char kWalFsyncNs[] = "dqm_wal_fsync_ns";
/// Votes replayed from WAL tails during recovery.
inline constexpr char kWalReplayedVotesTotal[] =
    "dqm_wal_replayed_votes_total";
/// Torn or corrupt trailing records truncated during recovery.
inline constexpr char kWalTornRecordsTotal[] = "dqm_wal_torn_records_total";
/// WAL seal events: a write/fsync failure made the log reject all further
/// appends until a checkpoint reset.
inline constexpr char kWalSealsTotal[] = "dqm_wal_seals_total";
/// Unsynced votes dropped from the WAL by a failed flush (they live only
/// in the in-memory session until the next checkpoint re-snapshots them).
inline constexpr char kWalDroppedVotesTotal[] = "dqm_wal_dropped_votes_total";
/// Transient-errno (EINTR/EAGAIN) syscall retries absorbed by the
/// durability I/O wrappers (crowd/io.cc) before anything sealed.
inline constexpr char kWalRetriesTotal[] = "dqm_wal_retries_total";
/// Transient errors that exhausted the bounded retry budget and surfaced
/// to the caller (usually sealing the WAL).
inline constexpr char kWalRetryExhaustedTotal[] =
    "dqm_wal_retry_exhausted_total";

// --- Durability: degradation (engine/durability.cc) -----------------------
/// Sessions currently running with durability degraded to volatile mode
/// (their WAL directory is failing; commits continue in memory only).
inline constexpr char kSessionsDegraded[] = "dqm_sessions_degraded";
/// Votes acknowledged while degraded, i.e. committed without any durable
/// record — what a crash during degradation would lose.
inline constexpr char kDegradedVotesTotal[] = "dqm_degraded_votes_total";
/// Sessions that re-armed durability after a successful checkpoint reset.
inline constexpr char kDegradedRearmsTotal[] = "dqm_degraded_rearms_total";

// --- Fault injection (common/failpoint.h, telemetry/failpoints.cc) --------
/// Armed failpoint evaluations, labeled failpoint="<name>". Pushed from
/// the failpoint registry by SyncFailpointMetrics (exposition surfaces
/// call it before collecting).
inline constexpr char kFailpointHitsTotal[] = "dqm_failpoint_hits_total";

// --- Durability: checkpoints (engine/durability.cc) -----------------------
/// Checkpoints committed (snapshot written + WAL reset).
inline constexpr char kCheckpointsTotal[] = "dqm_checkpoints_total";
/// Wall time of a checkpoint commit (quiesce + serialize + rename + reset).
inline constexpr char kCheckpointWriteNs[] = "dqm_checkpoint_write_ns";
/// Size of the most recent checkpoint file, labeled session=...
inline constexpr char kCheckpointBytes[] = "dqm_checkpoint_bytes";

// --- Replication (engine/replication.cc) ----------------------------------
/// Durable primary votes not yet applied on the standby, labeled
/// session=... Drains to 0 on an idle, healthy pair.
inline constexpr char kReplicaLagVotes[] = "dqm_replica_lag_votes";
/// Durable primary WAL bytes not yet shipped, labeled session=...
inline constexpr char kReplicaLagBytes[] = "dqm_replica_lag_bytes";
/// WAL segments shipped by primaries.
inline constexpr char kReplicaSegmentsShippedTotal[] =
    "dqm_replica_segments_shipped_total";
/// Checkpoint artifacts shipped by primaries.
inline constexpr char kReplicaCheckpointsShippedTotal[] =
    "dqm_replica_checkpoints_shipped_total";
/// Ship attempts that failed (transport error or fencing rejection); the
/// primary keeps serving and the standby resyncs from a fresh checkpoint.
inline constexpr char kReplicaShipErrorsTotal[] =
    "dqm_replica_ship_errors_total";
/// Segments a standby verified and applied.
inline constexpr char kReplicaSegmentsAppliedTotal[] =
    "dqm_replica_segments_applied_total";
/// Divergence events a standby detected (generation/CRC mismatch, sequence
/// gap, offset mismatch) — each forces a checkpoint resync.
inline constexpr char kReplicaDivergencesTotal[] =
    "dqm_replica_divergences_total";
/// Full standby resyncs from a shipped checkpoint.
inline constexpr char kReplicaResyncsTotal[] = "dqm_replica_resyncs_total";
/// Artifact pushes rejected by the transport fence (a zombie primary
/// writing with a stale fencing token).
inline constexpr char kReplicaFenceRejectionsTotal[] =
    "dqm_replica_fence_rejections_total";
/// Standby promotions to serving primary.
inline constexpr char kReplicaPromotionsTotal[] =
    "dqm_replica_promotions_total";
/// Planned session migrations between engines.
inline constexpr char kSessionsMigratedTotal[] =
    "dqm_sessions_migrated_total";

}  // namespace dqm::telemetry::metric_names

#endif  // DQM_TELEMETRY_METRIC_NAMES_H_
