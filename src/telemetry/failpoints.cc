#include "telemetry/failpoints.h"

#include "common/failpoint.h"
#include "telemetry/metric_names.h"

namespace dqm::telemetry {

void SyncFailpointMetrics(MetricsRegistry& registry) {
  for (const failpoint::FailpointInfo& info :
       failpoint::Registry::Global().Collect()) {
    Counter* counter = registry.GetCounter(metric_names::kFailpointHitsTotal,
                                           {{"failpoint", info.name}});
    const uint64_t exported = counter->Value();
    if (info.hits > exported) counter->Add(info.hits - exported);
  }
}

}  // namespace dqm::telemetry
