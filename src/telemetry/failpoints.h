#ifndef DQM_TELEMETRY_FAILPOINTS_H_
#define DQM_TELEMETRY_FAILPOINTS_H_

#include "telemetry/metrics.h"

namespace dqm::telemetry {

/// Mirrors the failpoint registry's per-point hit counters into
/// dqm_failpoint_hits_total{failpoint="<name>"} counters on `registry`.
///
/// The failpoint substrate lives in common/ and cannot link telemetry, so
/// its counters are plain atomics; this pull-based bridge is called by
/// exposition surfaces (CLI dumps, tests) right before collecting. Safe to
/// call repeatedly — each call advances the counters by the delta since
/// the last sync. A process with nothing ever armed exports nothing.
void SyncFailpointMetrics(MetricsRegistry& registry = MetricsRegistry::Global());

}  // namespace dqm::telemetry

#endif  // DQM_TELEMETRY_FAILPOINTS_H_
