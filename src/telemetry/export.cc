#include "telemetry/export.h"

#include <cmath>
#include <cstdint>

#include "common/string_util.h"

namespace dqm::telemetry {

namespace {

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string PromEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Renders `{k="v",...}` (empty string for no labels), with optional extra
/// label appended (the histogram `le` / `quantile` slot).
std::string PromLabels(const LabelSet& labels, const std::string& extra_key,
                       const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k + "=\"" + PromEscape(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out.push_back('}');
  return out;
}

std::string PromNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return StrFormat("%.17g", value);
}

std::string JsonEscapeString(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (std::isnan(value) || std::isinf(value)) return "null";
  return StrFormat("%.17g", value);
}

std::string JsonLabels(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(JsonEscapeString(k));
    out.append("\":\"");
    out.append(JsonEscapeString(v));
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

}  // namespace

std::string RenderPrometheus(const MetricsRegistry& registry) {
  MetricsRegistry::Collection collection = registry.Collect();
  std::string out;
  std::string last_name;

  for (const auto& counter : collection.counters) {
    if (counter.name != last_name) {
      out += "# TYPE " + counter.name + " counter\n";
      last_name = counter.name;
    }
    out += counter.name + PromLabels(counter.labels, "", "") + " " +
           StrFormat("%llu", static_cast<unsigned long long>(counter.value)) +
           "\n";
  }
  last_name.clear();
  for (const auto& gauge : collection.gauges) {
    if (gauge.name != last_name) {
      out += "# TYPE " + gauge.name + " gauge\n";
      last_name = gauge.name;
    }
    out += gauge.name + PromLabels(gauge.labels, "", "") + " " +
           PromNumber(gauge.value) + "\n";
  }
  last_name.clear();
  for (const auto& histogram : collection.histograms) {
    const HistogramSnapshot& snap = histogram.snapshot;
    if (histogram.name != last_name) {
      out += "# TYPE " + histogram.name + " histogram\n";
      last_name = histogram.name;
    }
    uint64_t cumulative = 0;
    for (size_t b = 0; b < 64; ++b) {
      if (snap.buckets[b] == 0) continue;
      cumulative += snap.buckets[b];
      out += histogram.name + "_bucket" +
             PromLabels(histogram.labels, "le",
                        PromNumber(static_cast<double>(
                            HistogramSnapshot::BucketUpperBound(b)))) +
             " " + StrFormat("%llu", static_cast<unsigned long long>(cumulative)) +
             "\n";
    }
    out += histogram.name + "_bucket" +
           PromLabels(histogram.labels, "le", "+Inf") + " " +
           StrFormat("%llu", static_cast<unsigned long long>(snap.count)) +
           "\n";
    out += histogram.name + "_count" + PromLabels(histogram.labels, "", "") +
           " " + StrFormat("%llu", static_cast<unsigned long long>(snap.count)) +
           "\n";
    // Precomputed quantiles as sibling gauges (a histogram metric may only
    // carry _bucket/_count/_sum series, so these get their own names).
    out += histogram.name + "_p50" + PromLabels(histogram.labels, "", "") +
           " " + PromNumber(snap.Quantile(0.5)) + "\n";
    out += histogram.name + "_p95" + PromLabels(histogram.labels, "", "") +
           " " + PromNumber(snap.Quantile(0.95)) + "\n";
    out += histogram.name + "_p99" + PromLabels(histogram.labels, "", "") +
           " " + PromNumber(snap.Quantile(0.99)) + "\n";
    out += histogram.name + "_max" + PromLabels(histogram.labels, "", "") +
           " " + StrFormat("%llu", static_cast<unsigned long long>(snap.Max())) +
           "\n";
  }
  return out;
}

std::string RenderJson(const MetricsRegistry& registry) {
  MetricsRegistry::Collection collection = registry.Collect();
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& counter : collection.counters) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + JsonEscapeString(counter.name) + "\",\"labels\":" +
           JsonLabels(counter.labels) + ",\"value\":" +
           StrFormat("%llu", static_cast<unsigned long long>(counter.value)) +
           "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& gauge : collection.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + JsonEscapeString(gauge.name) + "\",\"labels\":" +
           JsonLabels(gauge.labels) + ",\"value\":" + JsonNumber(gauge.value) +
           "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& histogram : collection.histograms) {
    const HistogramSnapshot& snap = histogram.snapshot;
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + JsonEscapeString(histogram.name) +
           "\",\"labels\":" + JsonLabels(histogram.labels) + ",\"count\":" +
           StrFormat("%llu", static_cast<unsigned long long>(snap.count)) +
           ",\"p50\":" + JsonNumber(snap.Quantile(0.5)) +
           ",\"p95\":" + JsonNumber(snap.Quantile(0.95)) +
           ",\"p99\":" + JsonNumber(snap.Quantile(0.99)) + ",\"max\":" +
           StrFormat("%llu", static_cast<unsigned long long>(snap.Max())) +
           ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t b = 0; b < 64; ++b) {
      if (snap.buckets[b] == 0) continue;
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out += StrFormat(
          "[%llu,%llu]",
          static_cast<unsigned long long>(
              HistogramSnapshot::BucketUpperBound(b)),
          static_cast<unsigned long long>(snap.buckets[b]));
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace dqm::telemetry
