#ifndef DQM_TELEMETRY_EXPORT_H_
#define DQM_TELEMETRY_EXPORT_H_

#include <string>

#include "telemetry/metrics.h"

namespace dqm::telemetry {

/// Prometheus text exposition (version 0.0.4) of every registered metric:
/// counters as `# TYPE ... counter` with a `_total`-style sample, gauges as
/// gauges, histograms as the classic cumulative `_bucket{le=...}` series
/// plus `_count` — and, since the log-bucket layout precomputes them
/// cheaply, `{quantile=...}` gauge samples for p50/p95/p99 and a `_max`
/// gauge. Deterministic: metrics in (name, sorted-labels) order.
std::string RenderPrometheus(const MetricsRegistry& registry);

/// JSON rendering of the same collection:
///   {"counters": [{"name": ..., "labels": {...}, "value": N}, ...],
///    "gauges":   [{"name": ..., "labels": {...}, "value": X}, ...],
///    "histograms": [{"name": ..., "labels": {...}, "count": N,
///                    "p50": X, "p95": X, "p99": X, "max": N,
///                    "buckets": [[upper_bound, count], ...]}, ...]}
/// Bucket rows list only non-empty buckets. This is the `telemetry` block
/// embedded in BENCH_*.json artifacts and the --metrics_json CLI dump.
std::string RenderJson(const MetricsRegistry& registry);

}  // namespace dqm::telemetry

#endif  // DQM_TELEMETRY_EXPORT_H_
