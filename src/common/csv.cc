#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace dqm {

namespace {

bool NeedsQuoting(std::string_view field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

Result<std::vector<CsvRow>> Csv::Parse(std::string_view text, char delimiter) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  enum class State { kFieldStart, kUnquoted, kQuoted, kQuoteInQuoted };
  State state = State::kFieldStart;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    switch (state) {
      case State::kFieldStart:
        if (c == '"') {
          state = State::kQuoted;
        } else if (c == delimiter) {
          end_field();
        } else if (c == '\n') {
          end_row();
        } else if (c == '\r') {
          // swallow; \r\n handled when \n arrives, lone \r treated as \n
          if (i + 1 >= text.size() || text[i + 1] != '\n') end_row();
        } else {
          field.push_back(c);
          state = State::kUnquoted;
        }
        break;
      case State::kUnquoted:
        if (c == delimiter) {
          end_field();
          state = State::kFieldStart;
        } else if (c == '\n') {
          end_row();
          state = State::kFieldStart;
        } else if (c == '\r') {
          if (i + 1 >= text.size() || text[i + 1] != '\n') {
            end_row();
            state = State::kFieldStart;
          }
        } else if (c == '"') {
          return Status::InvalidArgument(StrFormat(
              "csv: stray quote in unquoted field at offset %zu", i));
        } else {
          field.push_back(c);
        }
        break;
      case State::kQuoted:
        if (c == '"') {
          state = State::kQuoteInQuoted;
        } else {
          field.push_back(c);
        }
        break;
      case State::kQuoteInQuoted:
        if (c == '"') {
          field.push_back('"');
          state = State::kQuoted;
        } else if (c == delimiter) {
          end_field();
          state = State::kFieldStart;
        } else if (c == '\n') {
          end_row();
          state = State::kFieldStart;
        } else if (c == '\r') {
          if (i + 1 >= text.size() || text[i + 1] != '\n') {
            end_row();
            state = State::kFieldStart;
          }
        } else {
          return Status::InvalidArgument(StrFormat(
              "csv: unexpected character after closing quote at offset %zu",
              i));
        }
        break;
    }
  }
  if (state == State::kQuoted) {
    return Status::InvalidArgument("csv: unterminated quoted field at EOF");
  }
  // Flush the final row unless the document ended with a newline (or is
  // empty).
  if (!field.empty() || !row.empty() ||
      (state == State::kQuoteInQuoted)) {
    end_row();
  } else if (state == State::kUnquoted || state == State::kFieldStart) {
    if (!text.empty() && text.back() != '\n' && text.back() != '\r') {
      end_row();
    }
  }
  return rows;
}

Result<CsvRow> Csv::ParseLine(std::string_view line, char delimiter) {
  DQM_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, Parse(line, delimiter));
  if (rows.empty()) return CsvRow{};
  if (rows.size() != 1) {
    return Status::InvalidArgument("csv: ParseLine given multiple lines");
  }
  return std::move(rows.front());
}

std::string Csv::FormatRow(const CsvRow& row, char delimiter) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(delimiter);
    const std::string& field = row[i];
    if (NeedsQuoting(field, delimiter)) {
      out.push_back('"');
      for (char c : field) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += field;
    }
  }
  return out;
}

std::string Csv::Format(const std::vector<CsvRow>& rows, char delimiter) {
  std::string out;
  for (const CsvRow& row : rows) {
    out += FormatRow(row, delimiter);
    out.push_back('\n');
  }
  return out;
}

Result<std::vector<CsvRow>> Csv::ReadFile(const std::string& path,
                                          char delimiter) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("csv: cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("csv: read failure: " + path);
  }
  return Parse(buffer.str(), delimiter);
}

Status Csv::WriteFile(const std::string& path, const std::vector<CsvRow>& rows,
                      char delimiter) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("csv: cannot open for writing: " + path);
  }
  out << Format(rows, delimiter);
  out.flush();
  if (!out) {
    return Status::IOError("csv: write failure: " + path);
  }
  return Status::OK();
}

}  // namespace dqm
