#include "common/failpoint.h"

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/random.h"

namespace dqm::failpoint {

namespace internal {
std::atomic<uint64_t> g_armed_count{0};
}  // namespace internal

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// FNV-1a; stable across platforms so (seed, spec) pairs replay anywhere.
uint64_t HashName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

Result<uint64_t> ParseU64(std::string_view text, std::string_view what) {
  uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || text.empty()) {
    return Status::InvalidArgument("failpoint spec: bad " + std::string(what) +
                                   " '" + std::string(text) + "'");
  }
  return value;
}

/// Symbolic errno names the grammar accepts (numeric values also work).
Result<int> ParseErrno(std::string_view text) {
  struct Entry {
    std::string_view name;
    int value;
  };
  static constexpr Entry kErrnos[] = {
      {"EIO", EIO},        {"EINTR", EINTR},   {"EAGAIN", EAGAIN},
      {"ENOSPC", ENOSPC},  {"ENOENT", ENOENT}, {"EACCES", EACCES},
      {"EBADF", EBADF},    {"EEXIST", EEXIST}, {"EMFILE", EMFILE},
      {"ENFILE", ENFILE},  {"EROFS", EROFS},   {"EDQUOT", EDQUOT},
      {"EWOULDBLOCK", EWOULDBLOCK},
  };
  for (const Entry& e : kErrnos) {
    if (text == e.name) return e.value;
  }
  DQM_ASSIGN_OR_RETURN(uint64_t numeric, ParseU64(text, "errno"));
  if (numeric == 0 || numeric > 4096) {
    return Status::InvalidArgument("failpoint spec: errno out of range '" +
                                   std::string(text) + "'");
  }
  return static_cast<int>(numeric);
}

/// Consumes a `name(` ... `)` call form, returning the argument text.
Result<std::string_view> CallArgument(std::string_view text,
                                      std::string_view callee) {
  // text starts just past "callee("; find the closing paren.
  size_t close = text.find(')');
  if (close == std::string_view::npos) {
    return Status::InvalidArgument("failpoint spec: unterminated '" +
                                   std::string(callee) + "('");
  }
  return text.substr(0, close);
}

}  // namespace

Result<Action> ParseAction(std::string_view text) {
  Action action;
  text = Trim(text);

  // Optional `count(N):` budget prefix — distinguished from the standalone
  // `count(N)` probe action by the trailing colon.
  bool saw_budget_prefix = false;
  if (text.starts_with("count(")) {
    DQM_ASSIGN_OR_RETURN(std::string_view arg,
                         CallArgument(text.substr(6), "count"));
    std::string_view rest = text.substr(6 + arg.size() + 1);
    if (rest.starts_with(":")) {
      DQM_ASSIGN_OR_RETURN(action.budget, ParseU64(arg, "count"));
      if (action.budget == 0) {
        return Status::InvalidArgument("failpoint spec: count(0) is inert");
      }
      saw_budget_prefix = true;
      text = Trim(rest.substr(1));
    }
  }

  // Optional `%p` probability suffix.
  size_t percent = text.rfind('%');
  if (percent != std::string_view::npos) {
    std::string_view prob_text = Trim(text.substr(percent + 1));
    double p = 0;
    auto [ptr, ec] = std::from_chars(
        prob_text.data(), prob_text.data() + prob_text.size(), p);
    if (ec != std::errc() || ptr != prob_text.data() + prob_text.size() ||
        prob_text.empty() || !(p > 0.0) || p > 1.0) {
      return Status::InvalidArgument(
          "failpoint spec: probability must be in (0, 1], got '" +
          std::string(prob_text) + "'");
    }
    action.fire_threshold =
        p >= 1.0 ? ~0ull
                 : static_cast<uint64_t>(p * 18446744073709551615.0);
    text = Trim(text.substr(0, percent));
  }

  if (text == "return") {
    action.kind = Action::Kind::kReturn;
  } else if (text == "crash") {
    action.kind = Action::Kind::kCrash;
  } else if (text.starts_with("error(") && text.ends_with(")")) {
    DQM_ASSIGN_OR_RETURN(std::string_view arg,
                         CallArgument(text.substr(6), "error"));
    if (6 + arg.size() + 1 != text.size()) {
      return Status::InvalidArgument("failpoint spec: trailing garbage in '" +
                                     std::string(text) + "'");
    }
    DQM_ASSIGN_OR_RETURN(action.error_errno, ParseErrno(Trim(arg)));
    action.kind = Action::Kind::kError;
  } else if (text.starts_with("delay(") && text.ends_with(")")) {
    DQM_ASSIGN_OR_RETURN(std::string_view arg,
                         CallArgument(text.substr(6), "delay"));
    if (6 + arg.size() + 1 != text.size()) {
      return Status::InvalidArgument("failpoint spec: trailing garbage in '" +
                                     std::string(text) + "'");
    }
    std::string_view ms = Trim(arg);
    if (!ms.ends_with("ms")) {
      return Status::InvalidArgument(
          "failpoint spec: delay wants milliseconds, e.g. delay(5ms), got '" +
          std::string(arg) + "'");
    }
    DQM_ASSIGN_OR_RETURN(action.delay_ms,
                         ParseU64(ms.substr(0, ms.size() - 2), "delay"));
    action.kind = Action::Kind::kDelay;
  } else if (text.starts_with("count(") && text.ends_with(")") &&
             !saw_budget_prefix) {
    DQM_ASSIGN_OR_RETURN(std::string_view arg,
                         CallArgument(text.substr(6), "count"));
    DQM_ASSIGN_OR_RETURN(action.budget, ParseU64(Trim(arg), "count"));
    if (action.budget == 0) {
      return Status::InvalidArgument("failpoint spec: count(0) is inert");
    }
    action.kind = Action::Kind::kProbe;
  } else {
    return Status::InvalidArgument("failpoint spec: unknown action '" +
                                   std::string(text) + "'");
  }
  return action;
}

/// Per-failpoint state. Address-stable (owned by unique_ptr in the map);
/// counters are atomics so Collect can read them without tearing while an
/// evaluation is in flight.
struct Registry::Point {
  bool armed = false;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> triggered{0};
  Action action;
  SplitMix64 rng{0};
};

Registry& Registry::Global() {
  static Registry* registry = [] {
    auto* r = new Registry();
    if (const char* seed_env = std::getenv("DQM_FAILPOINT_SEED")) {
      auto seed = ParseU64(seed_env, "DQM_FAILPOINT_SEED");
      if (seed.ok()) {
        r->SetSeed(*seed);
      } else {
        DQM_LOG(Warning) << seed.status().message() << " — seed ignored";
      }
    }
    if (const char* specs = std::getenv("DQM_FAILPOINTS")) {
      Status status = r->Configure(specs);
      if (!status.ok()) {
        DQM_LOG(Warning) << "DQM_FAILPOINTS ignored: " << status.message();
      }
    }
    return r;
  }();
  return *registry;
}

namespace {
// The fast-path gate in Eval() is a bare atomic checked before any registry
// touch, so specs delivered by environment must raise the armed count before
// the first instrumented syscall — not at first registry use, which in a
// binary that never configures failpoints programmatically may be as late as
// metrics export. Touch the registry during static init iff the env asks.
const bool g_env_bootstrap = [] {
  if (std::getenv("DQM_FAILPOINTS") != nullptr ||
      std::getenv("DQM_FAILPOINT_SEED") != nullptr) {
    Registry::Global();
  }
  return true;
}();
}  // namespace

Status Registry::Configure(std::string_view specs) {
  std::vector<std::pair<std::string, Action>> parsed;
  size_t start = 0;
  while (start <= specs.size()) {
    size_t end = specs.find(';', start);
    if (end == std::string_view::npos) end = specs.size();
    std::string_view spec = Trim(specs.substr(start, end - start));
    start = end + 1;
    if (spec.empty()) continue;
    size_t eq = spec.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint spec: missing '=' in '" +
                                     std::string(spec) + "'");
    }
    std::string_view name = Trim(spec.substr(0, eq));
    if (name.empty()) {
      return Status::InvalidArgument("failpoint spec: empty name in '" +
                                     std::string(spec) + "'");
    }
    DQM_ASSIGN_OR_RETURN(Action action, ParseAction(spec.substr(eq + 1)));
    parsed.emplace_back(std::string(name), action);
  }
  for (auto& [name, action] : parsed) {
    Arm(name, action);
  }
  return Status::OK();
}

void Registry::Arm(std::string_view name, const Action& action) {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(std::string(name), std::make_unique<Point>()).first;
  }
  Point& point = *it->second;
  if (!point.armed) {
    point.armed = true;
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  point.action = action;
  point.rng = SplitMix64(seed_ ^ HashName(name));
}

void Registry::Disarm(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  if (it != points_.end() && it->second->armed) {
    it->second->armed = false;
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Registry::DisarmAll() {
  MutexLock lock(mutex_);
  for (auto& [name, point] : points_) {
    if (point->armed) {
      point->armed = false;
      internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void Registry::SetSeed(uint64_t seed) {
  MutexLock lock(mutex_);
  seed_ = seed;
  for (auto& [name, point] : points_) {
    point->rng = SplitMix64(seed_ ^ HashName(name));
  }
}

std::vector<FailpointInfo> Registry::Collect() const {
  MutexLock lock(mutex_);
  std::vector<FailpointInfo> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    FailpointInfo info;
    info.name = name;
    info.armed = point->armed;
    info.hits = point->hits.load(std::memory_order_relaxed);
    info.triggered = point->triggered.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  return out;
}

uint64_t Registry::hits(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  return it == points_.end() ? 0
                             : it->second->hits.load(std::memory_order_relaxed);
}

EvalResult Registry::EvalPoint(std::string_view name) {
  uint64_t delay_ms = 0;
  EvalResult result;
  {
    MutexLock lock(mutex_);
    auto it = points_.find(name);
    if (it == points_.end() || !it->second->armed) return result;
    Point& point = *it->second;
    point.hits.fetch_add(1, std::memory_order_relaxed);
    if (point.action.fire_threshold != ~0ull &&
        point.rng.Next() > point.action.fire_threshold) {
      return result;  // armed, rolled, missed — a hit but no action
    }
    point.triggered.fetch_add(1, std::memory_order_relaxed);
    if (point.action.budget != UINT64_MAX && --point.action.budget == 0) {
      point.armed = false;
      internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    switch (point.action.kind) {
      case Action::Kind::kError:
        result.op = EvalResult::Op::kError;
        result.injected_errno = point.action.error_errno;
        break;
      case Action::Kind::kReturn:
        result.op = EvalResult::Op::kReturnEarly;
        break;
      case Action::Kind::kDelay:
        delay_ms = point.action.delay_ms;
        break;
      case Action::Kind::kCrash:
        // The kill point: die without unwinding, flushing, or running any
        // destructor — exactly what a power cut leaves behind.
        std::_Exit(kCrashExitCode);
      case Action::Kind::kProbe:
        break;
    }
  }
  if (delay_ms > 0) {
    // Sleep outside the registry lock so a delayed edge doesn't serialize
    // every other armed evaluation in the process.
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return result;
}

namespace internal {
EvalResult EvalSlow(std::string_view name) {
  return Registry::Global().EvalPoint(name);
}
}  // namespace internal

}  // namespace dqm::failpoint
