#include "common/ascii.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace dqm {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DQM_CHECK(!header_.empty());
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  DQM_CHECK_EQ(row.size(), header_.size())
      << "row width must match header width";
  rows_.push_back(std::move(row));
}

void AsciiTable::AddNumericRow(const std::vector<double>& values,
                               int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) {
    row.push_back(StrFormat("%.*f", precision, v));
  }
  AddRow(std::move(row));
}

std::string AsciiTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      // Right-align; headers and values line up for numeric columns.
      line += std::string(widths[c] - row[c].size(), ' ');
      line += row[c];
    }
    return line;
  };
  std::string out = render_row(header_);
  out.push_back('\n');
  size_t rule_width = out.size() - 1;
  out += std::string(rule_width, '-');
  out.push_back('\n');
  for (const auto& row : rows_) {
    out += render_row(row);
    out.push_back('\n');
  }
  return out;
}

AsciiChart::AsciiChart(std::string title, std::vector<double> x)
    : title_(std::move(title)), x_(std::move(x)) {}

void AsciiChart::AddSeries(std::string name, std::vector<double> y) {
  DQM_CHECK_EQ(y.size(), x_.size()) << "series must match the x grid";
  series_.push_back(ChartSeries{std::move(name), std::move(y)});
}

void AsciiChart::AddHorizontalLine(std::string name, double y) {
  hlines_.emplace_back(std::move(name), y);
}

std::string AsciiChart::Render(int width, int height) const {
  static constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
  DQM_CHECK_GT(width, 8);
  DQM_CHECK_GT(height, 2);
  if (x_.empty() || series_.empty()) return title_ + " (no data)\n";

  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  for (const auto& s : series_) {
    for (double v : s.y) {
      if (std::isfinite(v)) {
        y_min = std::min(y_min, v);
        y_max = std::max(y_max, v);
      }
    }
  }
  for (const auto& [name, v] : hlines_) {
    y_min = std::min(y_min, v);
    y_max = std::max(y_max, v);
  }
  if (!std::isfinite(y_min) || !std::isfinite(y_max)) {
    return title_ + " (no finite data)\n";
  }
  if (y_max == y_min) {
    y_max = y_min + 1.0;
  }
  // A little headroom so curves do not sit on the frame.
  double pad = (y_max - y_min) * 0.05;
  y_min -= pad;
  y_max += pad;

  double x_min = x_.front();
  double x_max = x_.back();
  if (x_max == x_min) x_max = x_min + 1.0;

  const size_t w = static_cast<size_t>(width);
  const size_t h = static_cast<size_t>(height);
  std::vector<std::string> canvas(h, std::string(w, ' '));

  auto col_of = [&](double x) {
    double t = (x - x_min) / (x_max - x_min);
    auto c = static_cast<long>(std::lround(t * static_cast<double>(w - 1)));
    return static_cast<size_t>(std::clamp<long>(c, 0, static_cast<long>(w - 1)));
  };
  auto row_of = [&](double y) {
    double t = (y - y_min) / (y_max - y_min);
    auto r = static_cast<long>(
        std::lround((1.0 - t) * static_cast<double>(h - 1)));
    return static_cast<size_t>(std::clamp<long>(r, 0, static_cast<long>(h - 1)));
  };

  for (const auto& [name, v] : hlines_) {
    size_t r = row_of(v);
    for (size_t c = 0; c < w; ++c) {
      if (canvas[r][c] == ' ') canvas[r][c] = '-';
    }
  }

  for (size_t si = 0; si < series_.size(); ++si) {
    char glyph = kGlyphs[si % (sizeof(kGlyphs) / sizeof(kGlyphs[0]))];
    const auto& s = series_[si];
    for (size_t i = 0; i < x_.size(); ++i) {
      if (!std::isfinite(s.y[i])) continue;
      canvas[row_of(s.y[i])][col_of(x_[i])] = glyph;
    }
  }

  std::string out = title_ + "\n";
  std::string y_hi = StrFormat("%10.1f |", y_max);
  std::string y_lo = StrFormat("%10.1f |", y_min);
  std::string y_blank(12, ' ');
  y_blank[11] = '|';
  for (size_t r = 0; r < h; ++r) {
    if (r == 0) {
      out += y_hi;
    } else if (r == h - 1) {
      out += y_lo;
    } else {
      out += y_blank;
    }
    out += canvas[r];
    out.push_back('\n');
  }
  out += std::string(12, ' ') + std::string(w, '-') + "\n";
  out += StrFormat("%12s%-10.1f%*s%.1f\n", "", x_min,
                   static_cast<int>(w) - 10, "", x_max);
  out += "  legend: ";
  for (size_t si = 0; si < series_.size(); ++si) {
    char glyph = kGlyphs[si % (sizeof(kGlyphs) / sizeof(kGlyphs[0]))];
    if (si > 0) out += "  ";
    out.push_back(glyph);
    out += "=" + series_[si].name;
  }
  for (const auto& [name, v] : hlines_) {
    out += "  -=" + name;
  }
  out.push_back('\n');
  return out;
}

}  // namespace dqm
