#ifndef DQM_COMMON_STATUS_H_
#define DQM_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dqm {

/// Machine-readable category of a `Status`.
///
/// The set mirrors the categories used by production database libraries
/// (RocksDB / Arrow): broad enough to route on, small enough to stay stable.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid-argument", ...). Never returns an empty view.
std::string_view StatusCodeToString(StatusCode code);

/// Error-signalling value used by every fallible DQM API.
///
/// The library does not use C++ exceptions (see DESIGN.md); functions that
/// can fail return `Status` (or `Result<T>`, see result.h). An OK status
/// carries no allocation; error statuses carry a code and a message.
///
/// Typical use:
///
///     Status s = table.AppendRow(row);
///     if (!s.ok()) return s;
///
/// or with the helper macro:
///
///     DQM_RETURN_NOT_OK(table.AppendRow(row));
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// `StatusCode::kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// The status code; `kOk` for success.
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message; empty for success.
  const std::string& message() const;

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Statuses compare equal when both code and message match.
  friend bool operator==(const Status& a, const Status& b);
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; keeps the success path allocation-free.
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace dqm

/// Propagates a non-OK status to the caller. Evaluates `expr` exactly once.
#define DQM_RETURN_NOT_OK(expr)                   \
  do {                                            \
    ::dqm::Status _dqm_status = (expr);           \
    if (!_dqm_status.ok()) return _dqm_status;    \
  } while (false)

#endif  // DQM_COMMON_STATUS_H_
