#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dqm {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double PopulationVariance(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double m = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return ss / static_cast<double>(values.size());
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  DQM_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double ScaledRmse(const std::vector<double>& estimates, double truth) {
  if (estimates.empty()) return 0.0;
  DQM_CHECK(truth != 0.0) << "ScaledRmse requires a non-zero ground truth";
  double ss = 0.0;
  for (double e : estimates) ss += (e - truth) * (e - truth);
  return std::sqrt(ss / static_cast<double>(estimates.size())) /
         std::abs(truth);
}

double Slope(const std::vector<double>& values) {
  size_t n = values.size();
  if (n < 2) return 0.0;
  // OLS slope with x = 0..n-1: cov(x, y) / var(x).
  double x_mean = static_cast<double>(n - 1) / 2.0;
  double y_mean = Mean(values);
  double cov = 0.0;
  double var = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = static_cast<double>(i) - x_mean;
    cov += dx * (values[i] - y_mean);
    var += dx * dx;
  }
  return cov / var;
}

SeriesBand AggregateSeries(const std::vector<std::vector<double>>& rows) {
  SeriesBand band;
  if (rows.empty()) return band;
  size_t width = rows.front().size();
  for (const auto& row : rows) {
    DQM_CHECK_EQ(row.size(), width) << "AggregateSeries rows must align";
  }
  band.mean.resize(width);
  band.std_dev.resize(width);
  std::vector<double> column(rows.size());
  for (size_t x = 0; x < width; ++x) {
    for (size_t r = 0; r < rows.size(); ++r) column[r] = rows[r][x];
    band.mean[x] = Mean(column);
    band.std_dev[x] = StdDev(column);
  }
  return band;
}

}  // namespace dqm
