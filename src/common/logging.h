#ifndef DQM_COMMON_LOGGING_H_
#define DQM_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace dqm {

/// Severity for runtime log messages.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Parses a severity name — "debug" | "info" | "warn"/"warning" | "error" |
/// "fatal" (case-insensitive) — into `*level`. Returns false (leaving
/// `*level` untouched) on anything else. The spelling `--log_level=` takes.
bool TryParseLogLevel(std::string_view text, LogLevel* level);

namespace internal {

/// Minimum level that is actually emitted; default kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Stream-style log message collector. Emits on destruction; aborts the
/// process for kFatal messages (used by DQM_CHECK).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

/// Sets the global minimum emitted log level.
inline void SetLogLevel(LogLevel level) { internal::SetLogLevel(level); }

}  // namespace dqm

#define DQM_LOG(level)                                                 \
  ::dqm::internal::LogMessage(::dqm::LogLevel::k##level, __FILE__, __LINE__)

/// Rate-limited log statement: emits occurrence 1, n+1, 2n+1, ... of this
/// call site (a per-site atomic counter), swallowing the rest. For warnings
/// a hot path may hit thousands of times per second ("publish paused
/// committers >10ms") without drowning CLI output.
#define DQM_LOG_EVERY_N(level, n)                                          \
  for (bool dqm_log_now =                                                  \
           [] {                                                            \
             static ::std::atomic<uint64_t> dqm_log_site_count{0};         \
             return dqm_log_site_count.fetch_add(                          \
                        1, ::std::memory_order_relaxed) %                  \
                        static_cast<uint64_t>(n) ==                        \
                    0;                                                     \
           }();                                                            \
       dqm_log_now; dqm_log_now = false)                                   \
  DQM_LOG(level)

/// Aborts the process with a message when `condition` is false. Active in all
/// build modes: used for API contract violations that indicate a programming
/// error (not data-dependent failures, which return Status).
#define DQM_CHECK(condition)                                           \
  if (!(condition))                                                    \
  ::dqm::internal::LogMessage(::dqm::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #condition " "

#define DQM_CHECK_EQ(a, b) DQM_CHECK((a) == (b))
#define DQM_CHECK_NE(a, b) DQM_CHECK((a) != (b))
#define DQM_CHECK_LE(a, b) DQM_CHECK((a) <= (b))
#define DQM_CHECK_LT(a, b) DQM_CHECK((a) < (b))
#define DQM_CHECK_GE(a, b) DQM_CHECK((a) >= (b))
#define DQM_CHECK_GT(a, b) DQM_CHECK((a) > (b))

/// Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define DQM_DCHECK(condition) \
  if (false) ::dqm::internal::NullStream()
#else
#define DQM_DCHECK(condition) DQM_CHECK(condition)
#endif

#endif  // DQM_COMMON_LOGGING_H_
