#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/logging.h"
#include "common/string_util.h"

namespace dqm {

FlagParser::FlagParser() {
  log_level_ = AddString(
      "log_level", "",
      "minimum log severity: debug|info|warn|error (default: keep info)");
}

int64_t* FlagParser::AddInt(const std::string& name, int64_t default_value,
                            const std::string& help) {
  int_storage_.push_back(std::make_unique<int64_t>(default_value));
  int64_t* slot = int_storage_.back().get();
  Flag flag;
  flag.type = Type::kInt;
  flag.help = help;
  flag.default_repr = StrFormat("%lld", static_cast<long long>(default_value));
  flag.int_value = slot;
  flags_[name] = std::move(flag);
  return slot;
}

double* FlagParser::AddDouble(const std::string& name, double default_value,
                              const std::string& help) {
  double_storage_.push_back(std::make_unique<double>(default_value));
  double* slot = double_storage_.back().get();
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = help;
  flag.default_repr = StrFormat("%g", default_value);
  flag.double_value = slot;
  flags_[name] = std::move(flag);
  return slot;
}

std::string* FlagParser::AddString(const std::string& name,
                                   const std::string& default_value,
                                   const std::string& help) {
  string_storage_.push_back(std::make_unique<std::string>(default_value));
  std::string* slot = string_storage_.back().get();
  Flag flag;
  flag.type = Type::kString;
  flag.help = help;
  flag.default_repr = default_value;
  flag.string_value = slot;
  flags_[name] = std::move(flag);
  return slot;
}

bool* FlagParser::AddBool(const std::string& name, bool default_value,
                          const std::string& help) {
  bool_storage_.push_back(std::make_unique<bool>(default_value));
  bool* slot = bool_storage_.back().get();
  Flag flag;
  flag.type = Type::kBool;
  flag.help = help;
  flag.default_repr = default_value ? "true" : "false";
  flag.bool_value = slot;
  flags_[name] = std::move(flag);
  return slot;
}

Status FlagParser::SetValue(Flag& flag, const std::string& name,
                            const std::string& value) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt: {
      long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       ": not an integer: " + value);
      }
      *flag.int_value = parsed;
      return Status::OK();
    }
    case Type::kDouble: {
      double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       ": not a number: " + value);
      }
      *flag.double_value = parsed;
      return Status::OK();
    }
    case Type::kString:
      *flag.string_value = value;
      return Status::OK();
    case Type::kBool: {
      std::string lower = ToLower(value);
      if (lower == "true" || lower == "1" || lower == "yes") {
        *flag.bool_value = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        *flag.bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       ": not a boolean: " + value);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      std::printf("%s", Usage().c_str());
      return Status::FailedPrecondition("help requested");
    }
    std::string name;
    std::string value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare --flag enables a boolean
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + ": missing value");
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    DQM_RETURN_NOT_OK(SetValue(it->second, name, value));
  }
  if (!log_level_->empty()) {
    LogLevel level;
    if (!TryParseLogLevel(*log_level_, &level)) {
      return Status::InvalidArgument(
          "flag --log_level: unknown severity '" + *log_level_ +
          "' (debug|info|warn|error)");
    }
    SetLogLevel(level);
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::string out = "usage: " + program_name_ + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.default_repr.c_str());
  }
  return out;
}

}  // namespace dqm
