#ifndef DQM_COMMON_FAILPOINT_H_
#define DQM_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"

/// Deterministic fault injection for the durability stack (and anything
/// else that wants scriptable failure edges).
///
/// Every interesting syscall edge evaluates a NAMED failpoint before doing
/// the real work. In production nothing is armed and the evaluation costs
/// exactly one relaxed atomic load of a process-global arm counter — no
/// map lookup, no per-point atomics, no static-init guard on the hot path.
/// Tests (and operators reproducing an incident) arm failpoints with a
/// small spec grammar:
///
///   specs  := spec (';' spec)*
///   spec   := name '=' [ 'count(' N '):' ] action [ '%' probability ]
///   action := 'error(' ERRNO ')'   inject errno (symbolic EIO/EINTR/... or
///                                  numeric) — the wrapper fails as if the
///                                  syscall returned -1 with that errno
///           | 'return'             skip the syscall, report success (lost
///                                  I/O: the op never reached the kernel)
///           | 'delay(' N 'ms)'     sleep N milliseconds, then proceed
///           | 'crash'              _Exit(kCrashExitCode) at the edge — a
///                                  kill point for crash-recovery tests
///           | 'count(' N ')'       pure probe: count hits, inject nothing,
///                                  disarm after N evaluations
///
/// `count(N):` bounds an action to its first N triggers (the point stays
/// registered but inert afterwards — `count(2):error(EINTR)` is a transient
/// fault that heals, exactly what the retry layer is tested against).
/// `%p` (0 < p <= 1) makes the action fire probabilistically, driven by a
/// per-failpoint SplitMix64 stream seeded from SetSeed() + the point name,
/// so a (seed, spec) pair replays the same decision sequence every run.
///
/// Activation: programmatic (Configure / DisarmAll below), the
/// `--failpoints=` CLI flag, or the DQM_FAILPOINTS environment variable
/// (read once, the first time the registry is touched).
///
/// Hit counters accumulate per failpoint whenever the point is ARMED (armed
/// evaluations, whether or not the action fired); telemetry-linked layers
/// export them as dqm_failpoint_hits_total via
/// telemetry::SyncFailpointMetrics.
namespace dqm::failpoint {

/// Exit code used by the `crash` action, distinguishable from aborts and
/// sanitizer failures in death tests.
inline constexpr int kCrashExitCode = 77;

/// What an armed evaluation asks the instrumented site to do. `kNone`
/// covers disarmed points, misses of a `%p` roll, exhausted `count(N):`
/// budgets, and actions handled inside Eval itself (delay, crash, probe).
struct EvalResult {
  enum class Op : uint8_t {
    kNone = 0,
    kError,        // fail the op with `injected_errno`, syscall not issued
    kReturnEarly,  // report success, syscall not issued
  };
  Op op = Op::kNone;
  int injected_errno = 0;
};

namespace internal {
/// Process-global count of armed failpoints. The ONLY thing disabled-path
/// evaluation reads.
extern std::atomic<uint64_t> g_armed_count;
EvalResult EvalSlow(std::string_view name);
}  // namespace internal

/// True iff any failpoint anywhere is armed. One relaxed atomic load.
inline bool AnyArmed() {
  return internal::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Evaluates failpoint `name`. Free when nothing is armed; when armed, the
/// full lookup + action happens behind the branch. Sites pattern-match on
/// the result:
///
///   if (auto fp = failpoint::Eval("dqm.wal.write"); fp.op != Op::kNone) ...
inline EvalResult Eval(std::string_view name) {
  if (!AnyArmed()) return EvalResult{};
  return internal::EvalSlow(name);
}

/// One parsed `spec` (everything right of the '='), pre-validated so
/// arming is infallible once parsing succeeded.
struct Action {
  enum class Kind : uint8_t { kError, kReturn, kDelay, kCrash, kProbe };
  Kind kind = Kind::kProbe;
  int error_errno = 0;       // kError
  uint64_t delay_ms = 0;     // kDelay
  /// Remaining triggers before the point goes inert; UINT64_MAX = no limit.
  uint64_t budget = UINT64_MAX;
  /// Probability the action fires per evaluation, scaled to 2^64; armed
  /// evaluations that miss the roll count a hit but inject nothing.
  uint64_t fire_threshold = ~0ull;
};

/// Parses `action['%'prob]` (with optional `count(N):` prefix) — exposed
/// for spec validation in flag parsing and for tests.
Result<Action> ParseAction(std::string_view text);

/// Point-in-time view of one failpoint, for telemetry export and tests.
struct FailpointInfo {
  std::string name;
  bool armed = false;
  uint64_t hits = 0;       // armed evaluations, cumulative since birth
  uint64_t triggered = 0;  // evaluations where the action actually fired
};

class Registry {
 public:
  /// The process registry. First access reads DQM_FAILPOINTS (a malformed
  /// env spec is logged and ignored — booting wins over injecting).
  static Registry& Global();

  /// Arms failpoints from a `spec(;spec)*` string. Rejects the whole
  /// string on any parse error without arming anything.
  Status Configure(std::string_view specs) DQM_EXCLUDES(mutex_);

  /// Arms a single point programmatically.
  void Arm(std::string_view name, const Action& action) DQM_EXCLUDES(mutex_);

  /// Disarms one point (hit counters survive). No-op if unknown.
  void Disarm(std::string_view name) DQM_EXCLUDES(mutex_);

  /// Disarms everything — test teardown.
  void DisarmAll() DQM_EXCLUDES(mutex_);

  /// Seeds the probabilistic (`%p`) decision streams. Each failpoint draws
  /// from SplitMix64(seed ^ hash(name)), so schedules replay exactly for a
  /// fixed (seed, spec) pair. Resets existing streams.
  void SetSeed(uint64_t seed) DQM_EXCLUDES(mutex_);

  /// Snapshot of every failpoint ever armed (sorted by name).
  std::vector<FailpointInfo> Collect() const DQM_EXCLUDES(mutex_);

  /// Cumulative armed evaluations of `name` (0 if never armed).
  uint64_t hits(std::string_view name) const DQM_EXCLUDES(mutex_);

 private:
  friend EvalResult internal::EvalSlow(std::string_view name);
  struct Point;

  Registry() = default;
  EvalResult EvalPoint(std::string_view name) DQM_EXCLUDES(mutex_);

  mutable Mutex mutex_{LockRank::kFailpoint, "failpoint-registry"};
  /// Node-based so Point addresses are stable across rehashes; hot counters
  /// inside Point are atomics so Eval never writes the map itself.
  std::map<std::string, std::unique_ptr<Point>, std::less<>> points_
      DQM_GUARDED_BY(mutex_);
  uint64_t seed_ DQM_GUARDED_BY(mutex_) = 0;
};

/// Convenience forwarders for the common verbs.
inline Status Configure(std::string_view specs) {
  return Registry::Global().Configure(specs);
}
inline void DisarmAll() { Registry::Global().DisarmAll(); }
inline void SetSeed(uint64_t seed) { Registry::Global().SetSeed(seed); }

}  // namespace dqm::failpoint

#endif  // DQM_COMMON_FAILPOINT_H_
