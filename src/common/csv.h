#ifndef DQM_COMMON_CSV_H_
#define DQM_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dqm {

/// One parsed CSV row; fields are unescaped values.
using CsvRow = std::vector<std::string>;

/// RFC-4180 CSV parsing and serialization.
///
/// Supports quoted fields, embedded delimiters, embedded quotes (doubled),
/// and embedded newlines inside quoted fields. The reader is strict: a stray
/// quote in an unquoted field or a dangling open quote is an error, because
/// silently mis-parsing data in a *data-quality* library would be ironic.
class Csv {
 public:
  /// Parses an entire CSV document. Rows may have differing field counts;
  /// callers validate shape against their schema.
  static Result<std::vector<CsvRow>> Parse(std::string_view text,
                                           char delimiter = ',');

  /// Parses a single line that is known to contain no embedded newlines.
  static Result<CsvRow> ParseLine(std::string_view line, char delimiter = ',');

  /// Serializes one row, quoting fields that need it.
  static std::string FormatRow(const CsvRow& row, char delimiter = ',');

  /// Serializes a document (rows joined by '\n', trailing newline included).
  static std::string Format(const std::vector<CsvRow>& rows,
                            char delimiter = ',');

  /// Reads and parses a file.
  static Result<std::vector<CsvRow>> ReadFile(const std::string& path,
                                              char delimiter = ',');

  /// Writes a document to a file (overwrites).
  static Status WriteFile(const std::string& path,
                          const std::vector<CsvRow>& rows,
                          char delimiter = ',');
};

}  // namespace dqm

#endif  // DQM_COMMON_CSV_H_
