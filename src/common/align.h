#ifndef DQM_COMMON_ALIGN_H_
#define DQM_COMMON_ALIGN_H_

#include <cstddef>
#include <cstdint>
#include <new>

namespace dqm {

/// Cache-line size used to pad concurrently written state (seqlock sequence
/// words, per-stripe ingest counters) so writers on different cores never
/// share a line. libstdc++ only defines the interference constants when the
/// target guarantees a value; fall back to 64 — correct for every x86 and
/// most AArch64 parts — elsewhere.
#if defined(__cpp_lib_hardware_interference_size)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t kCacheLineBytes =
    std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t kCacheLineBytes = 64;
#endif

/// Minimal std::allocator drop-in whose allocations start on a cache-line
/// boundary. Containers whose element ranges are partitioned across
/// concurrent writers at cache-line granularity (the striped ingest tally
/// columns) need the *base address* aligned too, or the partition math
/// still straddles lines — std::vector's default allocator only guarantees
/// alignof(T).
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const {
    return true;
  }
};

}  // namespace dqm

#endif  // DQM_COMMON_ALIGN_H_
