#ifndef DQM_COMMON_MUTEX_H_
#define DQM_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros.
//
// Under Clang these expand to the capability attributes that power
// -Wthread-safety: the compiler proves, per translation unit, that every
// DQM_GUARDED_BY field is only touched with its lock held, that every
// DQM_REQUIRES method is only called under the declared locks, and that
// scoped lock objects pair their acquire/release. Under GCC (and anything
// else) they expand to nothing — the wrappers behave identically, the
// contracts are simply not machine-checked.
//
// The build promotes the analysis to -Werror=thread-safety when the
// DQM_THREAD_SAFETY CMake option is on (the default under Clang), so an
// unannotated lock dependency is a compile error, not a comment.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define DQM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DQM_THREAD_ANNOTATION__(x)
#endif

/// Marks a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define DQM_CAPABILITY(x) DQM_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define DQM_SCOPED_CAPABILITY DQM_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define DQM_GUARDED_BY(x) DQM_THREAD_ANNOTATION__(guarded_by(x))

/// Pointee (not the pointer) is protected by `x`.
#define DQM_PT_GUARDED_BY(x) DQM_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed capabilities held (exclusive) on entry.
#define DQM_REQUIRES(...) \
  DQM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function requires at least shared (reader) access on entry.
#define DQM_REQUIRES_SHARED(...) \
  DQM_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusive) and does not release it.
#define DQM_ACQUIRE(...) \
  DQM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function acquires shared (reader) access.
#define DQM_ACQUIRE_SHARED(...) \
  DQM_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define DQM_RELEASE(...) \
  DQM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function releases shared (reader) access.
#define DQM_RELEASE_SHARED(...) \
  DQM_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds the capability iff it returned
/// the listed value.
#define DQM_TRY_ACQUIRE(...) \
  DQM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be entered holding the listed capabilities (deadlock
/// guard for self-locking public entry points).
#define DQM_EXCLUDES(...) DQM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis) that the capability is held — for runtime-
/// checked entry points the analysis cannot see.
#define DQM_ASSERT_CAPABILITY(x) \
  DQM_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define DQM_RETURN_CAPABILITY(x) DQM_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch for lock disciplines the analysis cannot express (e.g. a
/// dynamically sized lock set: "every stripe lock is held"). Every use must
/// carry a comment saying which locks are actually held and why the analysis
/// cannot see it.
#define DQM_NO_THREAD_SAFETY_ANALYSIS \
  DQM_THREAD_ANNOTATION__(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Debug lock-order checking.
//
// Compiled in when DQM_LOCK_ORDER_CHECKS is 1 (the default in !NDEBUG
// builds, i.e. Debug / sanitizer trees; Release compiles the checker out
// entirely — Lock() is exactly one std::mutex::lock()). Every dqm::Mutex /
// dqm::SharedMutex carries a LockRank fixed at construction; the checker
// keeps a per-thread stack of held locks plus a global first-observed
// rank-order graph and aborts — printing BOTH acquisition backtraces — the
// moment any thread acquires:
//   - a lock whose rank is lower than a rank it already holds (inversion
//     against the static hierarchy), or
//   - a second lock of the same rank at a lower-or-equal address (same-rank
//     sets must be acquired in ascending address order, which is what the
//     stripe array does), or
//   - a lock it already holds (self-deadlock on a non-recursive mutex).
// ---------------------------------------------------------------------------

#ifndef DQM_LOCK_ORDER_CHECKS
#ifdef NDEBUG
#define DQM_LOCK_ORDER_CHECKS 0
#else
#define DQM_LOCK_ORDER_CHECKS 1
#endif
#endif

namespace dqm {

/// The repo-wide lock hierarchy: locks must be acquired in strictly
/// increasing rank order (engine shard, then session, then stripe, then
/// telemetry, ... with the logging stream lock acquirable under anything).
/// kUnranked locks (the default for ad-hoc/test mutexes) opt out of order
/// checking but still get recursion (self-deadlock) checking.
enum class LockRank : int {
  kUnranked = -1,
  /// DqmEngine registry shard (engine/engine.h).
  kEngineShard = 100,
  /// EstimationSession publish/commit mutex (engine/session.h).
  kSession = 200,
  /// Per-session WAL buffer/file mutex (engine/durability.h). Sits between
  /// the session mutex (checkpoints run under it) and the stripe locks (the
  /// checkpoint quiesce pauses stripes while holding the WAL lock).
  kWal = 250,
  /// SessionReplicator ship-state mutex (engine/replication.h). The ship
  /// hook fires from SessionDurability's commit path while wal_mutex_
  /// (kWal) is held, so this must sit above kWal; it sits below the stripe
  /// locks because shipping never touches the ingest path.
  kReplication = 275,
  /// ResponseLog per-stripe ingest lock (crowd/response_log.h). Same-rank:
  /// multiple stripes are held at once only in ascending address order.
  kStripe = 300,
  /// telemetry::MetricsRegistry registration map (telemetry/metrics.h).
  kTelemetry = 400,
  /// EstimatorRegistry spec lookup (estimators/registry.h).
  kEstimatorRegistry = 500,
  /// WorkloadRegistry spec lookup (workload/workload.h).
  kWorkloadRegistry = 510,
  /// ThreadPool queue mutex (common/thread_pool.h).
  kThreadPool = 600,
  /// Failpoint registry configuration map (common/failpoint.h). Armed
  /// failpoints are evaluated from I/O paths that may hold any data lock
  /// (session, WAL, stripes), so this must outrank all of them.
  kFailpoint = 800,
  /// Log-emission stream lock (common/logging.cc) — DQM_LOG may fire while
  /// holding any other lock, so this must outrank everything.
  kLogging = 900,
};

namespace internal {
#if DQM_LOCK_ORDER_CHECKS
/// Pre-acquisition order check: called BEFORE blocking on the underlying
/// mutex so an inversion aborts with a report instead of deadlocking.
void LockOrderCheckAcquire(const void* mutex, int rank, const char* name);
/// Post-acquisition bookkeeping: pushes the lock (with its acquisition
/// backtrace) onto this thread's held stack.
void LockOrderPushHeld(const void* mutex, int rank, const char* name);
/// Pre-release bookkeeping: removes the lock from the held stack.
void LockOrderRelease(const void* mutex);
/// True when this thread's held stack contains `mutex`.
bool LockOrderIsHeld(const void* mutex);
/// Aborts unless this thread holds `mutex` (AssertHeld's runtime teeth).
void LockOrderAssertHeld(const void* mutex, const char* name);
#endif
}  // namespace internal

/// Annotated exclusive mutex: a std::mutex carrying (a) Clang capability
/// attributes so -Wthread-safety can prove the locking discipline at compile
/// time and (b) a LockRank so debug builds can prove lock-ORDER discipline
/// at run time. This is the only place in the repo allowed to own a raw
/// std::mutex (enforced by tools/dqm_lint.py).
class DQM_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kUnranked,
                 const char* name = nullptr)
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DQM_ACQUIRE() {
#if DQM_LOCK_ORDER_CHECKS
    internal::LockOrderCheckAcquire(this, static_cast<int>(rank_), name_);
    mu_.lock();
    internal::LockOrderPushHeld(this, static_cast<int>(rank_), name_);
#else
    mu_.lock();
#endif
  }

  void Unlock() DQM_RELEASE() {
#if DQM_LOCK_ORDER_CHECKS
    internal::LockOrderRelease(this);
#endif
    mu_.unlock();
  }

  /// Non-blocking acquisition. Cannot deadlock, so it skips the rank check
  /// (the try-then-block pattern re-checks in the blocking Lock), but still
  /// aborts on re-acquisition by the owner (UB on std::mutex).
  bool TryLock() DQM_TRY_ACQUIRE(true) {
#if DQM_LOCK_ORDER_CHECKS
    if (internal::LockOrderIsHeld(this)) {
      internal::LockOrderCheckAcquire(this, static_cast<int>(rank_), name_);
    }
    if (!mu_.try_lock()) return false;
    internal::LockOrderPushHeld(this, static_cast<int>(rank_), name_);
    return true;
#else
    return mu_.try_lock();
#endif
  }

  /// Runtime + static assertion that the calling thread holds this mutex.
  void AssertHeld() const DQM_ASSERT_CAPABILITY(this) {
#if DQM_LOCK_ORDER_CHECKS
    internal::LockOrderAssertHeld(this, name_);
#endif
  }

  // BasicLockable spellings so dqm::CondVar (condition_variable_any) can
  // drive the mutex; project code uses the PascalCase forms / MutexLock.
  void lock() DQM_ACQUIRE() { Lock(); }
  void unlock() DQM_RELEASE() { Unlock(); }
  bool try_lock() DQM_TRY_ACQUIRE(true) { return TryLock(); }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

  /// True when this build carries the debug lock-order checker (Release
  /// builds compile it out entirely — the CI TSan job asserts this).
  static constexpr bool OrderCheckingEnabled() {
    return DQM_LOCK_ORDER_CHECKS != 0;
  }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// Annotated reader/writer mutex over std::shared_mutex. Reader and writer
/// acquisitions both participate in lock-order checking under the same rank.
class DQM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank = LockRank::kUnranked,
                       const char* name = nullptr)
      : rank_(rank), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() DQM_ACQUIRE() {
#if DQM_LOCK_ORDER_CHECKS
    internal::LockOrderCheckAcquire(this, static_cast<int>(rank_), name_);
    mu_.lock();
    internal::LockOrderPushHeld(this, static_cast<int>(rank_), name_);
#else
    mu_.lock();
#endif
  }

  void Unlock() DQM_RELEASE() {
#if DQM_LOCK_ORDER_CHECKS
    internal::LockOrderRelease(this);
#endif
    mu_.unlock();
  }

  void ReaderLock() DQM_ACQUIRE_SHARED() {
#if DQM_LOCK_ORDER_CHECKS
    internal::LockOrderCheckAcquire(this, static_cast<int>(rank_), name_);
    mu_.lock_shared();
    internal::LockOrderPushHeld(this, static_cast<int>(rank_), name_);
#else
    mu_.lock_shared();
#endif
  }

  void ReaderUnlock() DQM_RELEASE_SHARED() {
#if DQM_LOCK_ORDER_CHECKS
    internal::LockOrderRelease(this);
#endif
    mu_.unlock_shared();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// Tag selecting the adopting MutexLock constructor (the lock is already
/// held — e.g. acquired through the TryLock-then-Lock contention probe).
struct AdoptLockT {
  explicit AdoptLockT() = default;
};
inline constexpr AdoptLockT kAdoptLock{};

/// RAII exclusive lock — the project-wide replacement for std::lock_guard.
class DQM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DQM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }

  /// Adopts a mutex this thread already holds; the destructor releases it.
  MutexLock(Mutex& mu, AdoptLockT) DQM_REQUIRES(mu) : mu_(mu) {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() DQM_RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class DQM_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) DQM_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

  ~ReaderMutexLock() DQM_RELEASE() { mu_.ReaderUnlock(); }

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class DQM_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) DQM_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

  ~WriterMutexLock() DQM_RELEASE() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with dqm::Mutex. Waits release and reacquire
/// through the annotated mutex, so the lock-order checker tracks the cycle
/// and -Wthread-safety sees the REQUIRES contract at every wait site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. May wake spuriously — wait in a predicate loop.
  void Wait(Mutex& mu) DQM_REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until notified or `timeout` elapses. Returns false on timeout.
  /// May wake spuriously — wait in a predicate loop.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      DQM_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dqm

#endif  // DQM_COMMON_MUTEX_H_
