#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/mutex.h"

namespace dqm {

bool TryParseLogLevel(std::string_view text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                         : c);
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else if (lower == "fatal") {
    *level = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

namespace internal {

namespace {
LogLevel* MutableLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return &level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

/// Monotonic seconds since the first log statement's process epoch — the
/// same steady-clock family the telemetry layer timestamps with, so log
/// lines correlate with flight-recorder spans. (common cannot depend on
/// telemetry, so the tiny epoch anchor is duplicated here.)
double MonotonicSeconds() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

/// Basename of __FILE__ so the prefix stays short regardless of the build
/// tree's absolute paths.
const char* Basename(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash != nullptr ? slash + 1 : file;
}
}  // namespace

LogLevel GetLogLevel() { return *MutableLogLevel(); }
void SetLogLevel(LogLevel level) { *MutableLogLevel() = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  char timestamp[32];
  std::snprintf(timestamp, sizeof(timestamp), "%9.3f", MonotonicSeconds());
  stream_ << "[" << timestamp << "s " << LevelName(level) << " "
          << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    // Serialize emission: a log line is built in the per-message stream_ but
    // the two stderr writes below (body, then newline+flush) are distinct
    // operations, so without this lock concurrent loggers could interleave
    // mid-line. kLogging is the top rank — DQM_LOG legitimately fires while
    // holding stripe/telemetry/pool locks, never the other way around.
    // Heap-allocated and leaked so a DQM_LOG in another static's destructor
    // can never observe a destroyed mutex.
    static Mutex* emit_mutex = new Mutex(LockRank::kLogging, "log-stream");
    MutexLock lock(*emit_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace dqm
