#include "common/logging.h"

#include <cstdlib>

namespace dqm {
namespace internal {

namespace {
LogLevel* MutableLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return &level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return *MutableLogLevel(); }
void SetLogLevel(LogLevel level) { *MutableLogLevel() = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace dqm
