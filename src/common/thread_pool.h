#ifndef DQM_COMMON_THREAD_POOL_H_
#define DQM_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace dqm {

/// Fixed-size work-queue thread pool backing the engine layer and the
/// parallel experiment runner.
///
/// Semantics chosen for deterministic batch workloads rather than generic
/// async programming:
///   - Tasks run in FIFO submission order (each worker pops the front).
///   - The destructor *drains* the queue: every task scheduled before
///     destruction begins is executed, then the workers join. Nothing is
///     dropped.
///   - A task that throws does not kill its worker; `Submit` routes the
///     exception into the returned future (the library itself never throws —
///     see status.h — but user callbacks might).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. `num_threads` must be positive.
  explicit ThreadPool(size_t num_threads);

  /// Runs every already-scheduled task to completion, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task. Must not be called during/after
  /// destruction. An exception escaping `task` terminates the process
  /// (schedule through Submit when the task can throw).
  void Schedule(std::function<void()> task) DQM_EXCLUDES(mutex_);

  /// Enqueues a callable and returns a future for its result. Exceptions
  /// thrown by `fn` surface from `future.get()` in the waiting thread.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Schedule([task]() { (*task)(); });
    return future;
  }

  /// Number of pending (not yet started) tasks; for tests and diagnostics.
  size_t QueueDepth() const DQM_EXCLUDES(mutex_);

  /// max(1, std::thread::hardware_concurrency()).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop() DQM_EXCLUDES(mutex_);

  mutable Mutex mutex_{LockRank::kThreadPool, "thread-pool"};
  CondVar wake_;
  std::deque<std::function<void()>> queue_ DQM_GUARDED_BY(mutex_);
  bool stopping_ DQM_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every `i` in [0, n), blocking until all calls complete.
/// With a null `pool` (or n <= 1) the loop runs inline on the caller; with a
/// pool the indices fan out as one task each, so equal inputs produce equal
/// per-index results regardless of thread count. `fn` must be safe to invoke
/// concurrently for distinct indices. Do not call from inside a task running
/// on `pool` itself (the wait would deadlock a drained pool).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace dqm

#endif  // DQM_COMMON_THREAD_POOL_H_
