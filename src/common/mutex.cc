#include "common/mutex.h"

#if DQM_LOCK_ORDER_CHECKS

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define DQM_HAVE_BACKTRACE 1
#endif
#endif
#ifndef DQM_HAVE_BACKTRACE
#define DQM_HAVE_BACKTRACE 0
#endif

// The checker deliberately reports through fprintf(stderr) + abort(), never
// DQM_LOG: the log-emission path takes its own dqm::Mutex, so reporting a
// lock bug through the logger could recurse into the very machinery being
// diagnosed.
//
// This file is (with common/mutex.h) the one place allowed to use raw
// std::mutex — the global order-graph below cannot be a dqm::Mutex because
// it is acquired inside the checker itself.

namespace dqm::internal {
namespace {

constexpr int kMaxHeldLocks = 64;
constexpr int kMaxBacktraceFrames = 24;
constexpr int kMaxOrderEdges = 256;

struct HeldLock {
  const void* mutex;
  int rank;
  const char* name;
  int frame_count;
  void* frames[kMaxBacktraceFrames];
};

struct HeldStack {
  HeldLock locks[kMaxHeldLocks];
  int depth;
};

thread_local HeldStack t_held{};

// First-observed acquisition order between lock ranks, for diagnostics: on
// an inversion the report can point at where the opposite (legal) edge was
// first seen. Guarded by a raw std::mutex (see file comment).
struct OrderEdge {
  int from_rank;
  int to_rank;
  const char* from_name;
  const char* to_name;
};

std::mutex g_graph_mutex;
OrderEdge g_edges[kMaxOrderEdges];
int g_edge_count = 0;

int CaptureBacktrace(void** frames, int max_frames) {
#if DQM_HAVE_BACKTRACE
  return backtrace(frames, max_frames);
#else
  (void)frames;
  (void)max_frames;
  return 0;
#endif
}

void PrintBacktrace(void* const* frames, int count) {
#if DQM_HAVE_BACKTRACE
  if (count > 0) {
    backtrace_symbols_fd(frames, count, /*fd=*/2);
    return;
  }
#endif
  (void)frames;
  (void)count;
  std::fprintf(stderr, "    <backtrace unavailable>\n");
}

const char* NameOrAnon(const char* name) {
  return name != nullptr ? name : "<unnamed>";
}

void RecordEdge(const HeldLock& held, int rank, const char* name) {
  std::lock_guard<std::mutex> lock(g_graph_mutex);
  for (int i = 0; i < g_edge_count; ++i) {
    if (g_edges[i].from_rank == held.rank && g_edges[i].to_rank == rank) {
      return;
    }
  }
  if (g_edge_count < kMaxOrderEdges) {
    g_edges[g_edge_count++] =
        OrderEdge{held.rank, rank, held.name, name};
  }
}

void PrintKnownEdges() {
  std::lock_guard<std::mutex> lock(g_graph_mutex);
  std::fprintf(stderr,
               "  first-observed acquisition edges (held-rank -> "
               "acquired-rank):\n");
  for (int i = 0; i < g_edge_count; ++i) {
    std::fprintf(stderr, "    %d (%s) -> %d (%s)\n", g_edges[i].from_rank,
                 NameOrAnon(g_edges[i].from_name), g_edges[i].to_rank,
                 NameOrAnon(g_edges[i].to_name));
  }
}

[[noreturn]] void AbortWithReport(const char* kind, const HeldLock& held,
                                  const void* mutex, int rank,
                                  const char* name) {
  void* frames[kMaxBacktraceFrames];
  int frame_count = CaptureBacktrace(frames, kMaxBacktraceFrames);
  std::fprintf(stderr,
               "DQM lock-order checker: %s\n"
               "  acquiring: '%s' (rank %d, %p) at:\n",
               kind, NameOrAnon(name), rank, mutex);
  PrintBacktrace(frames, frame_count);
  std::fprintf(stderr,
               "  while holding: '%s' (rank %d, %p), acquired at:\n",
               NameOrAnon(held.name), held.rank, held.mutex);
  PrintBacktrace(held.frames, held.frame_count);
  PrintKnownEdges();
  std::abort();
}

}  // namespace

void LockOrderCheckAcquire(const void* mutex, int rank, const char* name) {
  HeldStack& held = t_held;
  constexpr int kUnranked = static_cast<int>(LockRank::kUnranked);
  for (int i = 0; i < held.depth; ++i) {
    const HeldLock& h = held.locks[i];
    if (h.mutex == mutex) {
      AbortWithReport(
          "recursive acquisition (self-deadlock on a non-recursive mutex)",
          h, mutex, rank, name);
    }
  }
  if (rank == kUnranked || held.depth == 0) return;
  // Check against the highest-ranked lock currently held; ranks must
  // strictly ascend, and same-rank runs must ascend by address (the stripe
  // array's LockAllStripes order).
  for (int i = 0; i < held.depth; ++i) {
    const HeldLock& h = held.locks[i];
    if (h.rank == kUnranked) continue;
    if (h.rank > rank) {
      AbortWithReport("lock order inversion", h, mutex, rank, name);
    }
    if (h.rank == rank && h.mutex >= mutex) {
      AbortWithReport(
          "lock order inversion (same-rank locks must be acquired in "
          "ascending address order)",
          h, mutex, rank, name);
    }
    RecordEdge(h, rank, name);
  }
}

void LockOrderPushHeld(const void* mutex, int rank, const char* name) {
  HeldStack& held = t_held;
  if (held.depth >= kMaxHeldLocks) {
    // Beyond tracking capacity (only plausible under LockAllStripes with a
    // pathological stripe count); drop tracking for this acquisition rather
    // than abort — order was already checked above.
    return;
  }
  HeldLock& slot = held.locks[held.depth++];
  slot.mutex = mutex;
  slot.rank = rank;
  slot.name = name;
  slot.frame_count = CaptureBacktrace(slot.frames, kMaxBacktraceFrames);
}

void LockOrderRelease(const void* mutex) {
  HeldStack& held = t_held;
  // Search from the top: releases are usually LIFO, but out-of-order
  // release (hand-over-hand) is legal.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.locks[i].mutex != mutex) continue;
    for (int j = i; j + 1 < held.depth; ++j) {
      held.locks[j] = held.locks[j + 1];
    }
    --held.depth;
    return;
  }
  // Not tracked: either adopted past capacity or released on a different
  // thread than it was acquired (the latter is a bug, but std::mutex will
  // already exhibit UB there; nothing useful to add).
}

bool LockOrderIsHeld(const void* mutex) {
  const HeldStack& held = t_held;
  for (int i = 0; i < held.depth; ++i) {
    if (held.locks[i].mutex == mutex) return true;
  }
  return false;
}

void LockOrderAssertHeld(const void* mutex, const char* name) {
  if (LockOrderIsHeld(mutex)) return;
  void* frames[kMaxBacktraceFrames];
  int frame_count = CaptureBacktrace(frames, kMaxBacktraceFrames);
  std::fprintf(stderr,
               "DQM lock-order checker: AssertHeld failed — calling thread "
               "does not hold '%s' (%p); call site:\n",
               NameOrAnon(name), mutex);
  PrintBacktrace(frames, frame_count);
  std::abort();
}

}  // namespace dqm::internal

#endif  // DQM_LOCK_ORDER_CHECKS
