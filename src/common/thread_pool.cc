#include "common/thread_pool.h"

#include "common/logging.h"

namespace dqm {

ThreadPool::ThreadPool(size_t num_threads) {
  DQM_CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  DQM_CHECK(task != nullptr);
  {
    MutexLock lock(mutex_);
    DQM_CHECK(!stopping_) << "Schedule() on a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  wake_.NotifyOne();
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

size_t ThreadPool::DefaultThreadCount() {
  size_t hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Predicate loop (not a lambda predicate): thread-safety analysis
      // cannot annotate lambda bodies, and the explicit loop reads
      // stopping_/queue_ in a scope it can already prove holds mutex_.
      while (!stopping_ && queue_.empty()) wake_.Wait(mutex_);
      // Workers only exit once the queue is empty, so destruction drains
      // every scheduled task.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pending.push_back(pool->Submit([&fn, i]() { fn(i); }));
  }
  // Wait for *every* iteration before (re)raising: the queued tasks capture
  // `fn` by reference, so unwinding on the first failed future would leave
  // still-queued tasks dangling on a destroyed callable.
  std::exception_ptr first_error;
  for (std::future<void>& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dqm
