#ifndef DQM_COMMON_RANDOM_H_
#define DQM_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace dqm {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to expand a single user
/// seed into the state of the main generator and to derive independent child
/// seeds. Reference: Steele, Lea & Flood, "Fast splittable pseudorandom
/// number generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic pseudo-random generator used by every stochastic component
/// in DQM (crowd simulation, dataset generation, task assignment, permutation
/// averaging). Engine: xoshiro256** (Blackman & Vigna), seeded via SplitMix64
/// so that any 64-bit seed (including 0) yields a well-mixed state.
///
/// All simulation results in the bench harness are reproducible from the
/// printed seed. The class intentionally does not depend on <random>
/// distributions, whose outputs differ across standard library
/// implementations; its own distributions are bit-stable everywhere.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next raw 64 random bits.
  uint64_t Next64();

  /// Spawns an independent child generator. Children with distinct `stream`
  /// values are statistically independent of each other and of the parent.
  Rng Fork(uint64_t stream);

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless rejection method (unbiased).
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform size_t index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) { return static_cast<size_t>(UniformU64(n)); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (polar form not needed here).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Fisher–Yates shuffle (deterministic for a given seed).
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    if (values.empty()) return;
    for (size_t i = values.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly at random, in random
  /// order. Requires k <= n. O(k) expected time via Floyd's algorithm when
  /// k << n, O(n) otherwise.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t s_[4];
};

}  // namespace dqm

#endif  // DQM_COMMON_RANDOM_H_
