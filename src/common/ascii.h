#ifndef DQM_COMMON_ASCII_H_
#define DQM_COMMON_ASCII_H_

#include <string>
#include <vector>

namespace dqm {

/// Renders aligned, human-readable tables and line charts for the benchmark
/// harness. Every figure-reproduction bench prints its series both as a
/// machine-readable table (easy to diff / plot externally) and as an inline
/// ASCII chart so the paper's curve *shapes* are visible in a terminal.
class AsciiTable {
 public:
  /// `header` labels the columns; added rows must match its width.
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a row. Number of cells must equal the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each double with `precision` digits.
  void AddNumericRow(const std::vector<double>& values, int precision = 2);

  /// Renders with column alignment and a header rule.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// A named series for AsciiChart.
struct ChartSeries {
  std::string name;
  std::vector<double> y;
};

/// Multi-series ASCII line chart over a shared x grid.
class AsciiChart {
 public:
  /// `x` is the shared grid; every series added must match its length.
  AsciiChart(std::string title, std::vector<double> x);

  void AddSeries(std::string name, std::vector<double> y);

  /// Adds a horizontal reference line (e.g., the ground truth).
  void AddHorizontalLine(std::string name, double y);

  /// Renders `height` rows by `width` columns of plot area plus axes and a
  /// legend (each series drawn with its own glyph).
  std::string Render(int width = 72, int height = 18) const;

 private:
  std::string title_;
  std::vector<double> x_;
  std::vector<ChartSeries> series_;
  std::vector<std::pair<std::string, double>> hlines_;
};

}  // namespace dqm

#endif  // DQM_COMMON_ASCII_H_
