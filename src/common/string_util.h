#ifndef DQM_COMMON_STRING_UTIL_H_
#define DQM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dqm {

/// Splits `input` on `delimiter`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view input);

/// ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view input);

/// True iff `text` starts with / ends with `affix`.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/// True iff every character of `text` is an ASCII digit (and non-empty).
bool IsDigits(std::string_view text);

}  // namespace dqm

#endif  // DQM_COMMON_STRING_UTIL_H_
