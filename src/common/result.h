#ifndef DQM_COMMON_RESULT_H_
#define DQM_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace dqm {

/// Value-or-error return type (Arrow-style `Result`).
///
/// A `Result<T>` holds either a `T` or a non-OK `Status`. Accessing the value
/// of an errored result is a programming error and aborts via `DQM_CHECK`.
///
///     Result<Table> table = Table::FromCsv(path);
///     if (!table.ok()) return table.status();
///     Use(*table);
///
/// or with the helper macro:
///
///     DQM_ASSIGN_OR_RETURN(Table table, Table::FromCsv(path));
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, so `return status;` works).
  /// Passing an OK status is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    DQM_CHECK(!std::get<Status>(repr_).ok())
        << "Result<T> constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value. Requires `ok()`.
  const T& value() const& {
    DQM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    DQM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    DQM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  /// Returns the held value or `fallback` when errored.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace dqm

#define DQM_RESULT_CONCAT_INNER_(a, b) a##b
#define DQM_RESULT_CONCAT_(a, b) DQM_RESULT_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its status from the
/// enclosing function, otherwise declares `lhs` bound to the moved value.
#define DQM_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  DQM_ASSIGN_OR_RETURN_IMPL_(                                              \
      DQM_RESULT_CONCAT_(_dqm_result_, __LINE__), lhs, rexpr)

#define DQM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // DQM_COMMON_RESULT_H_
