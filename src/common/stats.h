#ifndef DQM_COMMON_STATS_H_
#define DQM_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace dqm {

/// Mean of `values`; 0.0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0.0 for fewer than 2 values.
double StdDev(const std::vector<double>& values);

/// Population variance (n denominator); 0.0 for an empty vector.
double PopulationVariance(const std::vector<double>& values);

/// Linear-interpolated percentile; `q` in [0, 1]. Sorts a copy.
double Percentile(std::vector<double> values, double q);

/// Minimum / maximum; 0.0 for an empty vector.
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Scaled root-mean-square error as used in the paper's simulation study:
///   SRMSE = (1/D) * sqrt( (1/r) * sum_r (estimate_r - D)^2 )
/// where `truth` = D and `estimates` holds the r per-permutation estimates.
/// Returns 0.0 when `estimates` is empty; requires truth != 0.
double ScaledRmse(const std::vector<double>& estimates, double truth);

/// Ordinary least-squares slope of `values` against their indices 0..n-1.
/// Returns 0.0 for fewer than 2 values. Used by the SWITCH trend detector.
double Slope(const std::vector<double>& values);

/// Aggregates per-permutation series (each a vector over the same x-grid)
/// into mean and sample-std series. All rows must have equal length.
struct SeriesBand {
  std::vector<double> mean;
  std::vector<double> std_dev;
};
SeriesBand AggregateSeries(const std::vector<std::vector<double>>& rows);

}  // namespace dqm

#endif  // DQM_COMMON_STATS_H_
