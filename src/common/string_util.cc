#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dqm {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

bool IsDigits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace dqm
