#ifndef DQM_COMMON_FLAGS_H_
#define DQM_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dqm {

/// Minimal command-line flag parser for the bench and example binaries.
///
/// Accepts `--name=value` and `--name value`; `--help` prints registered
/// flags. Not a general-purpose library — just enough to make every bench
/// reproducible and tweakable (seed, task counts, permutations) without
/// pulling in a dependency.
///
/// Every parser carries the built-in `--log_level=debug|info|warn|error`
/// flag: Parse() routes it through dqm::SetLogLevel, so each binary using
/// FlagParser gets severity control for free.
class FlagParser {
 public:
  FlagParser();

  /// Registers a flag with a default value and help text. Returns a pointer
  /// whose pointee is updated by Parse(). Pointers remain valid while the
  /// parser lives.
  int64_t* AddInt(const std::string& name, int64_t default_value,
                  const std::string& help);
  double* AddDouble(const std::string& name, double default_value,
                    const std::string& help);
  std::string* AddString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help);
  bool* AddBool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parses argv. Unknown flags are an error; positional arguments are
  /// collected into `positional()`. When `--help` is seen, prints usage to
  /// stdout and returns a FailedPrecondition status the caller can use to
  /// exit(0).
  Status Parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Rendered help text (flag, default, description).
  std::string Usage() const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string default_repr;
    // Only the member matching `type` is used.
    int64_t* int_value = nullptr;
    double* double_value = nullptr;
    std::string* string_value = nullptr;
    bool* bool_value = nullptr;
  };

  Status SetValue(Flag& flag, const std::string& name,
                  const std::string& value);

  std::map<std::string, Flag> flags_;
  // Owning storage for the values handed out by Add*.
  std::vector<std::unique_ptr<int64_t>> int_storage_;
  std::vector<std::unique_ptr<double>> double_storage_;
  std::vector<std::unique_ptr<std::string>> string_storage_;
  std::vector<std::unique_ptr<bool>> bool_storage_;
  std::vector<std::string> positional_;
  std::string program_name_;
  /// Built-in --log_level value ("" = leave the process default alone).
  std::string* log_level_ = nullptr;
};

}  // namespace dqm

#endif  // DQM_COMMON_FLAGS_H_
