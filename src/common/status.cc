#include "common/status.h"

namespace dqm {

namespace {
const std::string& EmptyString() {
  static const std::string& empty = *new std::string();
  return empty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIOError:
      return "io-error";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  if (!state_->message.empty()) {
    out += ": ";
    out += state_->message;
  }
  return out;
}

bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace dqm
