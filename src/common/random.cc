#include "common/random.h"

#include <cmath>
#include <numbers>
#include <unordered_set>

namespace dqm {

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.Next();
}

uint64_t Rng::Next64() {
  // xoshiro256** step.
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork(uint64_t stream) {
  // Mix the child stream id with fresh output so forks are independent.
  SplitMix64 mixer(Next64() ^ (stream * 0x9e3779b97f4a7c15ULL + 1));
  return Rng(mixer.Next());
}

uint64_t Rng::UniformU64(uint64_t bound) {
  DQM_CHECK_GT(bound, 0u) << "UniformU64 bound must be positive";
  // Lemire's method: multiply-shift with rejection of the biased region.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DQM_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> [0, 1) double.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  // Box–Muller transform; one value per call keeps the stream simple and
  // reproducible (no cached second variate).
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  DQM_CHECK_LE(k, n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense case: partial Fisher–Yates over the identity permutation.
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(UniformU64(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  // Sparse case: Floyd's algorithm, then a shuffle for uniform order.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformU64(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  Shuffle(out);
  return out;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

}  // namespace dqm
