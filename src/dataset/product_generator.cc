#include "dataset/product_generator.h"

#include <string>
#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"
#include "dataset/perturbation.h"

namespace dqm::dataset {

namespace {

constexpr std::string_view kBrands[] = {
    "apex",    "nimbus",  "vertex",  "quanta",  "zephyr", "orion",
    "helix",   "lumina",  "pinnacle", "strata",  "vortex", "kinetic",
    "aurora",  "polaris", "sierra",  "tundra",  "cobalt", "onyx",
    "titan",   "atlas",   "nova",    "pulsar",  "quasar", "radian",
    "spectra", "vector",  "zenith",  "matrix",  "cipher", "delta",
};

constexpr std::string_view kLines[] = {
    "laser printer", "inkjet printer", "office scanner", "photo scanner",
    "wireless router", "network switch", "usb hub", "external drive",
    "flash drive", "memory card", "keyboard", "mouse", "webcam",
    "headset", "speaker system", "lcd monitor", "graphics tablet",
    "label maker", "projector", "docking station", "tax software",
    "photo software", "antivirus suite", "office suite", "backup software",
};

constexpr std::string_view kQualifiers[] = {
    "pro", "plus", "deluxe", "premium", "standard", "home", "office",
    "portable", "compact", "wireless", "elite", "max",
};

constexpr std::string_view kAmazonFluff[] = {
    "(new)", "with bonus pack", "retail box", "- 2 pack", "oem",
    "(latest version)", "bundle", "",
};

constexpr std::string_view kVendors[] = {
    "apex systems", "nimbus corp", "vertex inc", "quanta ltd",
    "zephyr tech", "orion devices", "helix labs", "lumina co",
};

template <size_t N>
std::string_view Pick(Rng& rng, const std::string_view (&pool)[N]) {
  return pool[rng.UniformIndex(N)];
}

struct ProductEntity {
  std::string base_name;   // brand + line + model + qualifier
  std::string brand;
  std::string vendor;
  double price;
};

}  // namespace

Result<ErDataset> GenerateProductDataset(const ProductConfig& config) {
  if (config.num_matches > std::min(config.num_amazon, config.num_google)) {
    return Status::InvalidArgument(
        "num_matches cannot exceed min(num_amazon, num_google)");
  }
  Rng rng(config.seed);
  Perturber perturber(&rng);

  // Distinct product entities: matched ones appear on both sides; the rest
  // are side-exclusive.
  size_t num_entities =
      config.num_amazon + config.num_google - config.num_matches;
  std::unordered_set<std::string> seen;
  std::vector<ProductEntity> entities;
  entities.reserve(num_entities);
  while (entities.size() < num_entities) {
    std::string brand(Pick(rng, kBrands));
    std::string model = StrFormat(
        "%c%c-%d",
        static_cast<char>('a' + rng.UniformIndex(26)),
        static_cast<char>('a' + rng.UniformIndex(26)),
        static_cast<int>(rng.UniformInt(100, 9999)));
    std::string name = StrFormat(
        "%s %s %s %s", brand.c_str(),
        std::string(Pick(rng, kLines)).c_str(), model.c_str(),
        std::string(Pick(rng, kQualifiers)).c_str());
    if (!seen.insert(name).second) continue;
    double price = static_cast<double>(rng.UniformInt(999, 149999)) / 100.0;
    entities.push_back(
        {name, brand, std::string(Pick(rng, kVendors)), price});
  }

  // Amazon naming: base name plus marketing fluff, sometimes reordered.
  auto amazon_name = [&](const ProductEntity& e) {
    std::string name = e.base_name;
    std::string fluff(Pick(rng, kAmazonFluff));
    if (!fluff.empty()) name += " " + fluff;
    if (rng.Bernoulli(0.25)) name = perturber.SwapAdjacentTokens(name);
    return name;
  };
  // Google naming: frequently drops the brand or moves it to the rear, may
  // introduce a typo; prices deviate slightly.
  auto google_name = [&](const ProductEntity& e) {
    std::string name = e.base_name;
    if (rng.Bernoulli(0.4) && name.size() > e.brand.size() + 1 &&
        StartsWith(name, e.brand)) {
      name = name.substr(e.brand.size() + 1) + " by " + e.brand;
    }
    if (rng.Bernoulli(0.3)) name = perturber.Typo(name);
    if (rng.Bernoulli(0.2)) name = perturber.DropToken(name);
    return name;
  };

  Table table{Schema({"id", "retailer", "name", "vendor", "price"})};
  std::vector<std::pair<size_t, size_t>> duplicate_pairs;

  struct PendingRow {
    std::string retailer;
    std::string name;
    std::string vendor;
    double price;
    size_t entity;
  };
  std::vector<PendingRow> pending;
  pending.reserve(config.num_amazon + config.num_google);

  // Entities [0, num_matches) are on both sides; then Amazon-only, then
  // Google-only.
  size_t amazon_only = config.num_amazon - config.num_matches;
  for (size_t e = 0; e < config.num_matches + amazon_only; ++e) {
    const ProductEntity& ent = entities[e];
    pending.push_back(
        {"amazon", amazon_name(ent), ent.vendor, ent.price, e});
  }
  for (size_t e = 0; e < config.num_matches; ++e) {
    const ProductEntity& ent = entities[e];
    double price = ent.price * (1.0 + 0.1 * (rng.UniformDouble() - 0.5));
    pending.push_back({"google", google_name(ent), ent.vendor, price, e});
  }
  for (size_t e = config.num_matches + amazon_only; e < num_entities; ++e) {
    const ProductEntity& ent = entities[e];
    pending.push_back(
        {"google", google_name(ent), ent.vendor, ent.price, e});
  }
  rng.Shuffle(pending);

  std::vector<size_t> first_row(num_entities, SIZE_MAX);
  for (size_t row = 0; row < pending.size(); ++row) {
    const PendingRow& p = pending[row];
    DQM_RETURN_NOT_OK(table.AppendRow(
        {StrFormat("p%zu", row), p.retailer, p.name, p.vendor,
         StrFormat("%.2f", p.price)}));
    if (first_row[p.entity] == SIZE_MAX) {
      first_row[p.entity] = row;
    } else {
      size_t a = first_row[p.entity];
      duplicate_pairs.emplace_back(std::min(a, row), std::max(a, row));
    }
  }

  return ErDataset{std::move(table), std::move(duplicate_pairs)};
}

}  // namespace dqm::dataset
