#ifndef DQM_DATASET_TABLE_H_
#define DQM_DATASET_TABLE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dqm::dataset {

/// Ordered, named columns of a Table. Field names must be unique and
/// non-empty.
class Schema {
 public:
  /// Builds a schema; aborts on duplicate or empty names (programming error).
  explicit Schema(std::vector<std::string> field_names);

  size_t num_fields() const { return names_.size(); }
  const std::string& field_name(size_t index) const;
  const std::vector<std::string>& field_names() const { return names_; }

  /// Index of `name`, or nullopt when absent.
  std::optional<size_t> FieldIndex(std::string_view name) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.names_ == b.names_;
  }

 private:
  std::vector<std::string> names_;
};

/// In-memory, row-oriented string table: the dataset representation cleaned
/// by the crowd in this library. Row-oriented because the cleaning workloads
/// (ER pair formation, record validation) consume whole records.
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_fields(); }

  /// Appends a row; errors if the width does not match the schema.
  Status AppendRow(std::vector<std::string> row);

  /// Whole-row access; `row` must be < num_rows().
  const std::vector<std::string>& row(size_t row_index) const;

  /// Cell access; both indices checked.
  const std::string& cell(size_t row_index, size_t column_index) const;

  /// Cell access by column name; errors on unknown column.
  Result<std::string> CellByName(size_t row_index,
                                 std::string_view column_name) const;

  /// Replaces a cell value (cleaning repairs use this).
  Status SetCell(size_t row_index, size_t column_index, std::string value);

  /// Entire column as a vector.
  Result<std::vector<std::string>> Column(std::string_view column_name) const;

  /// Parses a CSV document; when `has_header` the first row names the
  /// columns, otherwise columns are named "c0".."cN-1". All rows must have
  /// equal width.
  static Result<Table> FromCsv(std::string_view text, bool has_header = true);

  /// Serializes with a header row.
  std::string ToCsv() const;

  /// File convenience wrappers.
  static Result<Table> ReadCsvFile(const std::string& path,
                                   bool has_header = true);
  Status WriteCsvFile(const std::string& path) const;

 private:
  Schema schema_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dqm::dataset

#endif  // DQM_DATASET_TABLE_H_
