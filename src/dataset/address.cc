#include "dataset/address.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"

namespace dqm::dataset {

namespace {

constexpr std::string_view kDirections[] = {"n", "ne", "e", "se",
                                            "s", "sw", "w", "nw"};
constexpr std::string_view kStreetNames[] = {
    "alder",   "burnside", "couch",   "davis",    "everett", "flanders",
    "glisan",  "hoyt",     "irving",  "johnson",  "kearney", "lovejoy",
    "marshall", "northrup", "overton", "pettygrove", "quimby", "raleigh",
    "savier",  "thurman",  "upshur",  "vaughn",   "wilson",  "york",
    "hawthorne", "belmont", "division", "clinton", "woodstock", "fremont",
};
constexpr std::string_view kStreetTypes[] = {"st", "ave", "blvd", "ct", "ln"};

// Streets that look plausible but are not in the registry: the
// kFakeWellFormed class that rule systems cannot catch.
constexpr std::string_view kFakeStreets[] = {
    "imaginary", "nonesuch", "phantom", "mirage", "specter", "wraith",
};

constexpr std::string_view kCityTypos[] = {"protland", "porland", "portlnd",
                                           "potland"};

constexpr std::string_view kNonHomePrefixes[] = {
    "po box", "pmb", "general delivery",
};
constexpr std::string_view kNonHomeSuffixes[] = {
    "warehouse", "loading dock", "storefront",
};

template <size_t N>
std::string_view Pick(Rng& rng, const std::string_view (&pool)[N]) {
  return pool[rng.UniformIndex(N)];
}

std::string PortlandZip(Rng& rng) {
  return StrFormat("972%02d", static_cast<int>(rng.UniformInt(1, 33)));
}

}  // namespace

const std::vector<std::string>& AddressValidator::StreetRegistry() {
  static const auto& registry = *new std::vector<std::string>([] {
    std::vector<std::string> names;
    for (std::string_view dir : kDirections) {
      for (std::string_view name : kStreetNames) {
        for (std::string_view type : kStreetTypes) {
          names.push_back(StrFormat("%s %s %s", std::string(dir).c_str(),
                                    std::string(name).c_str(),
                                    std::string(type).c_str()));
        }
      }
    }
    return names;
  }());
  return registry;
}

const std::vector<AddressValidator::ZipEntry>&
AddressValidator::ZipRegistry() {
  static const auto& registry = *new std::vector<ZipEntry>([] {
    std::vector<ZipEntry> entries;
    for (int z = 1; z <= 33; ++z) {
      entries.push_back({StrFormat("972%02d", z), "portland", "or"});
    }
    // Valid zips of *other* cities; using one with city=portland is an FD
    // violation (zip -> city, state).
    entries.push_back({"97301", "salem", "or"});
    entries.push_back({"97401", "eugene", "or"});
    entries.push_back({"98101", "seattle", "wa"});
    entries.push_back({"94103", "san francisco", "ca"});
    return entries;
  }());
  return registry;
}

AddressValidation AddressValidator::Validate(std::string_view address) const {
  auto fail = [](AddressErrorKind kind, std::string detail) {
    return AddressValidation{false, kind, std::move(detail)};
  };

  std::vector<std::string> parts = Split(address, ',');
  for (auto& part : parts) part = std::string(StripWhitespace(part));
  if (parts.size() != 4) {
    return fail(AddressErrorKind::kMissingField,
                StrFormat("expected 4 comma-separated parts, got %zu",
                          parts.size()));
  }
  const std::string& street_part = parts[0];
  const std::string& city = parts[1];
  const std::string& state = parts[2];
  const std::string& zip = parts[3];

  if (street_part.empty() || city.empty() || state.empty() || zip.empty()) {
    return fail(AddressErrorKind::kMissingField, "empty address component");
  }

  // Non-home keyword screen.
  std::string lower_street = ToLower(street_part);
  for (std::string_view prefix : kNonHomePrefixes) {
    if (StartsWith(lower_street, prefix)) {
      return fail(AddressErrorKind::kNotHomeAddress,
                  "not a residential street address");
    }
  }
  for (std::string_view suffix : kNonHomeSuffixes) {
    if (EndsWith(lower_street, suffix)) {
      return fail(AddressErrorKind::kNotHomeAddress,
                  "commercial address keyword");
    }
  }

  // Street part: leading house number, then street tokens, optional unit.
  std::vector<std::string> tokens = SplitWhitespace(lower_street);
  if (tokens.size() < 2 || !IsDigits(tokens[0])) {
    return fail(AddressErrorKind::kMissingField,
                "street must start with a house number");
  }

  // Zip format: exactly five digits.
  if (zip.size() != 5 || !IsDigits(zip)) {
    return fail(AddressErrorKind::kInvalidZip, "zip must be 5 digits");
  }

  // City must be a known city in the registry.
  static const auto& known_cities = *new std::unordered_set<std::string>([] {
    std::unordered_set<std::string> cities;
    for (const ZipEntry& entry : ZipRegistry()) cities.insert(entry.city);
    return cities;
  }());
  std::string lower_city = ToLower(city);
  if (!known_cities.contains(lower_city)) {
    return fail(AddressErrorKind::kInvalidCity, "unknown city: " + city);
  }

  // Functional dependency zip -> (city, state).
  static const auto& zip_index =
      *new std::unordered_map<std::string, const ZipEntry*>([] {
        std::unordered_map<std::string, const ZipEntry*> index;
        for (const ZipEntry& entry : ZipRegistry()) {
          index.emplace(entry.zip, &entry);
        }
        return index;
      }());
  auto it = zip_index.find(zip);
  if (it == zip_index.end()) {
    return fail(AddressErrorKind::kInvalidZip, "zip not in registry: " + zip);
  }
  std::string lower_state = ToLower(state);
  if (it->second->city != lower_city || it->second->state != lower_state) {
    return fail(
        AddressErrorKind::kFdViolation,
        StrFormat("zip %s implies %s, %s", zip.c_str(),
                  it->second->city.c_str(), it->second->state.c_str()));
  }

  // Note: the street name is deliberately NOT checked against the registry;
  // kFakeWellFormed errors pass validation (the rule system's long tail).
  return AddressValidation{};
}

Result<AddressDataset> GenerateAddressDataset(const AddressConfig& config) {
  if (config.num_errors > config.num_records) {
    return Status::InvalidArgument("num_errors cannot exceed num_records");
  }
  Rng rng(config.seed);

  auto valid_address = [&]() {
    std::string street = StrFormat(
        "%d %s %s %s", static_cast<int>(rng.UniformInt(1, 9999)),
        std::string(Pick(rng, kDirections)).c_str(),
        std::string(Pick(rng, kStreetNames)).c_str(),
        std::string(Pick(rng, kStreetTypes)).c_str());
    if (rng.Bernoulli(0.3)) {
      street += StrFormat(" apt %d", static_cast<int>(rng.UniformInt(1, 40)));
    }
    return StrFormat("%s, portland, or, %s", street.c_str(),
                     PortlandZip(rng).c_str());
  };

  auto corrupt = [&](AddressErrorKind kind) -> std::string {
    switch (kind) {
      case AddressErrorKind::kMissingField: {
        std::string addr = valid_address();
        std::vector<std::string> parts = Split(addr, ',');
        // Drop the city, state, or zip component.
        size_t drop = 1 + rng.UniformIndex(3);
        parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(drop));
        return Join(parts, ",");
      }
      case AddressErrorKind::kInvalidCity: {
        std::string addr = valid_address();
        std::vector<std::string> parts = Split(addr, ',');
        parts[1] = " " + std::string(Pick(rng, kCityTypos));
        return Join(parts, ",");
      }
      case AddressErrorKind::kInvalidZip: {
        std::string addr = valid_address();
        std::vector<std::string> parts = Split(addr, ',');
        parts[3] = rng.Bernoulli(0.5)
                       ? StrFormat(" 97%d", static_cast<int>(rng.UniformInt(0, 99)))
                       : StrFormat(" 972%02dx", static_cast<int>(rng.UniformInt(1, 33)));
        return Join(parts, ",");
      }
      case AddressErrorKind::kFdViolation: {
        std::string addr = valid_address();
        std::vector<std::string> parts = Split(addr, ',');
        constexpr std::string_view kForeignZips[] = {"97301", "97401", "98101",
                                                     "94103"};
        parts[3] = " " + std::string(Pick(rng, kForeignZips));
        return Join(parts, ",");
      }
      case AddressErrorKind::kNotHomeAddress: {
        if (rng.Bernoulli(0.5)) {
          return StrFormat("po box %d, portland, or, %s",
                           static_cast<int>(rng.UniformInt(1, 9999)),
                           PortlandZip(rng).c_str());
        }
        std::string street = StrFormat(
            "%d %s %s %s %s", static_cast<int>(rng.UniformInt(1, 9999)),
            std::string(Pick(rng, kDirections)).c_str(),
            std::string(Pick(rng, kStreetNames)).c_str(),
            std::string(Pick(rng, kStreetTypes)).c_str(),
            std::string(Pick(rng, kNonHomeSuffixes)).c_str());
        return StrFormat("%s, portland, or, %s", street.c_str(),
                         PortlandZip(rng).c_str());
      }
      case AddressErrorKind::kFakeWellFormed: {
        std::string street = StrFormat(
            "%d %s %s %s", static_cast<int>(rng.UniformInt(1, 9999)),
            std::string(Pick(rng, kDirections)).c_str(),
            std::string(Pick(rng, kFakeStreets)).c_str(),
            std::string(Pick(rng, kStreetTypes)).c_str());
        return StrFormat("%s, portland, or, %s", street.c_str(),
                         PortlandZip(rng).c_str());
      }
      case AddressErrorKind::kNone:
        break;
    }
    return valid_address();
  };

  // Which rows are dirty, and with which error kind (uniform over taxonomy).
  std::vector<size_t> dirty =
      rng.SampleIndices(config.num_records, config.num_errors);
  std::unordered_map<size_t, AddressErrorKind> dirty_kind;
  constexpr AddressErrorKind kKinds[] = {
      AddressErrorKind::kMissingField, AddressErrorKind::kInvalidCity,
      AddressErrorKind::kInvalidZip,   AddressErrorKind::kFdViolation,
      AddressErrorKind::kNotHomeAddress, AddressErrorKind::kFakeWellFormed,
  };
  for (size_t row : dirty) {
    dirty_kind[row] = kKinds[rng.UniformIndex(6)];
  }

  Table table{Schema({"id", "address"})};
  std::vector<AddressErrorKind> row_kinds(config.num_records,
                                          AddressErrorKind::kNone);
  for (size_t row = 0; row < config.num_records; ++row) {
    auto it = dirty_kind.find(row);
    std::string address =
        (it == dirty_kind.end()) ? valid_address() : corrupt(it->second);
    if (it != dirty_kind.end()) row_kinds[row] = it->second;
    DQM_RETURN_NOT_OK(
        table.AppendRow({StrFormat("a%zu", row), std::move(address)}));
  }

  std::sort(dirty.begin(), dirty.end());
  RecordDataset base{std::move(table), std::move(dirty)};
  return AddressDataset{std::move(base), std::move(row_kinds)};
}

}  // namespace dqm::dataset
