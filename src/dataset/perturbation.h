#ifndef DQM_DATASET_PERTURBATION_H_
#define DQM_DATASET_PERTURBATION_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/random.h"

namespace dqm::dataset {

/// String-corruption toolbox used by the dataset generators to create
/// realistic duplicates and malformed records: the "natural" noise sources
/// the paper's real datasets contain (typos, token reordering, dropped
/// fields, abbreviations like "Cafe Ritz-Carlton Buckhead" vs
/// "Ritz-Carlton Cafe (buckhead)").
///
/// All operations are deterministic given the Rng stream and never produce
/// the empty string from a non-empty input unless stated.
class Perturber {
 public:
  /// The perturber draws randomness from `rng`, which must outlive it.
  explicit Perturber(Rng* rng);

  /// Applies one random character edit (insert, delete, substitute, or
  /// transpose) at a random position. Single-character strings are never
  /// deleted to emptiness.
  std::string Typo(std::string_view input);

  /// Applies `count` independent typos.
  std::string Typos(std::string_view input, int count);

  /// Swaps two adjacent word tokens (no-op when fewer than two tokens).
  std::string SwapAdjacentTokens(std::string_view input);

  /// Drops one random word token (no-op when fewer than two tokens).
  std::string DropToken(std::string_view input);

  /// Replaces the first dictionary key found (case-insensitive, whole token)
  /// with its expansion, e.g. {"street", "st."}. No-op when nothing matches.
  std::string Abbreviate(
      std::string_view input,
      const std::vector<std::pair<std::string, std::string>>& dictionary);

  /// Random case damage: upper-cases or lower-cases one token.
  std::string CaseNoise(std::string_view input);

  /// Draws a perturbation from the duplicate-record noise model: one or two
  /// of {typo, token swap, abbreviation, case noise} so that the duplicate
  /// stays recognizably similar (similarity typically in the paper's
  /// "candidate" band rather than the auto-match band).
  std::string DuplicateNoise(
      std::string_view input,
      const std::vector<std::pair<std::string, std::string>>& dictionary);

 private:
  Rng* rng_;  // not owned
};

}  // namespace dqm::dataset

#endif  // DQM_DATASET_PERTURBATION_H_
