#include "dataset/table.h"

#include <unordered_set>

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace dqm::dataset {

Schema::Schema(std::vector<std::string> field_names)
    : names_(std::move(field_names)) {
  std::unordered_set<std::string_view> seen;
  for (const std::string& name : names_) {
    DQM_CHECK(!name.empty()) << "schema field names must be non-empty";
    DQM_CHECK(seen.insert(name).second)
        << "duplicate schema field name: " << name;
  }
}

const std::string& Schema::field_name(size_t index) const {
  DQM_CHECK_LT(index, names_.size());
  return names_[index];
}

std::optional<size_t> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return std::nullopt;
}

Status Table::AppendRow(std::vector<std::string> row) {
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument(StrFormat(
        "row width %zu does not match schema width %zu", row.size(),
        schema_.num_fields()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const std::vector<std::string>& Table::row(size_t row_index) const {
  DQM_CHECK_LT(row_index, rows_.size());
  return rows_[row_index];
}

const std::string& Table::cell(size_t row_index, size_t column_index) const {
  DQM_CHECK_LT(row_index, rows_.size());
  DQM_CHECK_LT(column_index, schema_.num_fields());
  return rows_[row_index][column_index];
}

Result<std::string> Table::CellByName(size_t row_index,
                                      std::string_view column_name) const {
  std::optional<size_t> column = schema_.FieldIndex(column_name);
  if (!column.has_value()) {
    return Status::NotFound("no such column: " + std::string(column_name));
  }
  if (row_index >= rows_.size()) {
    return Status::OutOfRange(StrFormat("row %zu >= %zu", row_index,
                                        rows_.size()));
  }
  return rows_[row_index][*column];
}

Status Table::SetCell(size_t row_index, size_t column_index,
                      std::string value) {
  if (row_index >= rows_.size()) {
    return Status::OutOfRange(StrFormat("row %zu >= %zu", row_index,
                                        rows_.size()));
  }
  if (column_index >= schema_.num_fields()) {
    return Status::OutOfRange(StrFormat("column %zu >= %zu", column_index,
                                        schema_.num_fields()));
  }
  rows_[row_index][column_index] = std::move(value);
  return Status::OK();
}

Result<std::vector<std::string>> Table::Column(
    std::string_view column_name) const {
  std::optional<size_t> column = schema_.FieldIndex(column_name);
  if (!column.has_value()) {
    return Status::NotFound("no such column: " + std::string(column_name));
  }
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[*column]);
  return out;
}

Result<Table> Table::FromCsv(std::string_view text, bool has_header) {
  DQM_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, Csv::Parse(text));
  if (rows.empty()) {
    return Status::InvalidArgument("csv document is empty");
  }
  std::vector<std::string> names;
  size_t first_data_row = 0;
  if (has_header) {
    names = rows[0];
    first_data_row = 1;
  } else {
    names.reserve(rows[0].size());
    for (size_t i = 0; i < rows[0].size(); ++i) {
      names.push_back(StrFormat("c%zu", i));
    }
  }
  Table table{Schema(std::move(names))};
  for (size_t i = first_data_row; i < rows.size(); ++i) {
    if (rows[i].size() != table.schema().num_fields()) {
      return Status::InvalidArgument(
          StrFormat("csv row %zu has %zu fields, expected %zu", i,
                    rows[i].size(), table.schema().num_fields()));
    }
    DQM_RETURN_NOT_OK(table.AppendRow(std::move(rows[i])));
  }
  return table;
}

std::string Table::ToCsv() const {
  std::vector<CsvRow> rows;
  rows.reserve(rows_.size() + 1);
  rows.push_back(schema_.field_names());
  for (const auto& r : rows_) rows.push_back(r);
  return Csv::Format(rows);
}

Result<Table> Table::ReadCsvFile(const std::string& path, bool has_header) {
  DQM_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, Csv::ReadFile(path));
  std::string text = Csv::Format(rows);
  return FromCsv(text, has_header);
}

Status Table::WriteCsvFile(const std::string& path) const {
  std::vector<CsvRow> rows;
  rows.reserve(rows_.size() + 1);
  rows.push_back(schema_.field_names());
  for (const auto& r : rows_) rows.push_back(r);
  return Csv::WriteFile(path, rows);
}

}  // namespace dqm::dataset
