#include "dataset/perturbation.h"

#include <cctype>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace dqm::dataset {

namespace {
constexpr std::string_view kAlphabet = "abcdefghijklmnopqrstuvwxyz";
}  // namespace

Perturber::Perturber(Rng* rng) : rng_(rng) { DQM_CHECK(rng != nullptr); }

std::string Perturber::Typo(std::string_view input) {
  std::string out(input);
  if (out.empty()) {
    out.push_back(kAlphabet[rng_->UniformIndex(kAlphabet.size())]);
    return out;
  }
  enum { kInsert, kDelete, kSubstitute, kTranspose };
  int op = static_cast<int>(rng_->UniformIndex(4));
  if (out.size() == 1 && (op == kDelete || op == kTranspose)) {
    op = kSubstitute;
  }
  switch (op) {
    case kInsert: {
      size_t pos = rng_->UniformIndex(out.size() + 1);
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                 kAlphabet[rng_->UniformIndex(kAlphabet.size())]);
      break;
    }
    case kDelete: {
      size_t pos = rng_->UniformIndex(out.size());
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
      break;
    }
    case kSubstitute: {
      size_t pos = rng_->UniformIndex(out.size());
      char replacement = kAlphabet[rng_->UniformIndex(kAlphabet.size())];
      // Ensure the substitution changes the string.
      if (replacement == out[pos]) {
        replacement = kAlphabet[(static_cast<size_t>(replacement - 'a') + 1) %
                                kAlphabet.size()];
      }
      out[pos] = replacement;
      break;
    }
    case kTranspose: {
      size_t pos = rng_->UniformIndex(out.size() - 1);
      std::swap(out[pos], out[pos + 1]);
      break;
    }
    default:
      break;
  }
  return out;
}

std::string Perturber::Typos(std::string_view input, int count) {
  std::string out(input);
  for (int i = 0; i < count; ++i) out = Typo(out);
  return out;
}

std::string Perturber::SwapAdjacentTokens(std::string_view input) {
  std::vector<std::string> tokens = SplitWhitespace(input);
  if (tokens.size() < 2) return std::string(input);
  size_t pos = rng_->UniformIndex(tokens.size() - 1);
  std::swap(tokens[pos], tokens[pos + 1]);
  return Join(tokens, " ");
}

std::string Perturber::DropToken(std::string_view input) {
  std::vector<std::string> tokens = SplitWhitespace(input);
  if (tokens.size() < 2) return std::string(input);
  size_t pos = rng_->UniformIndex(tokens.size());
  tokens.erase(tokens.begin() + static_cast<std::ptrdiff_t>(pos));
  return Join(tokens, " ");
}

std::string Perturber::Abbreviate(
    std::string_view input,
    const std::vector<std::pair<std::string, std::string>>& dictionary) {
  std::vector<std::string> tokens = SplitWhitespace(input);
  for (auto& token : tokens) {
    std::string lower = ToLower(token);
    for (const auto& [key, value] : dictionary) {
      if (lower == key) {
        token = value;
        return Join(tokens, " ");
      }
    }
  }
  return std::string(input);
}

std::string Perturber::CaseNoise(std::string_view input) {
  std::vector<std::string> tokens = SplitWhitespace(input);
  if (tokens.empty()) return std::string(input);
  size_t pos = rng_->UniformIndex(tokens.size());
  tokens[pos] = rng_->Bernoulli(0.5) ? ToUpper(tokens[pos])
                                     : ToLower(tokens[pos]);
  return Join(tokens, " ");
}

std::string Perturber::DuplicateNoise(
    std::string_view input,
    const std::vector<std::pair<std::string, std::string>>& dictionary) {
  std::string out(input);
  int edits = rng_->Bernoulli(0.5) ? 1 : 2;
  for (int i = 0; i < edits; ++i) {
    switch (rng_->UniformIndex(4)) {
      case 0:
        out = Typo(out);
        break;
      case 1:
        out = SwapAdjacentTokens(out);
        break;
      case 2:
        out = Abbreviate(out, dictionary);
        break;
      default:
        out = CaseNoise(out);
        break;
    }
  }
  return out;
}

}  // namespace dqm::dataset
