#ifndef DQM_DATASET_PRODUCT_GENERATOR_H_
#define DQM_DATASET_PRODUCT_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "dataset/generated.h"

namespace dqm::dataset {

/// Configuration for the synthetic Product dataset.
///
/// Substitutes for the Amazon–Google product matching dataset used by the
/// paper (2336 Amazon records x 1363 Google records, each product matched at
/// most once). Matched products appear on both sides under retailer-specific
/// naming conventions, which makes the matching task noticeably harder than
/// the Restaurant dataset — exactly the paper's setting, where workers make
/// more false-negative mistakes.
struct ProductConfig {
  size_t num_amazon = 2336;
  size_t num_google = 1363;
  /// Products present on both sides (ground-truth matches). Must be
  /// <= min(num_amazon, num_google).
  size_t num_matches = 1100;
  uint64_t seed = 11;
};

/// Generates a product table with schema
/// (id, retailer, name, vendor, price) and ground-truth matching pairs
/// (Amazon row, Google row).
Result<ErDataset> GenerateProductDataset(const ProductConfig& config);

}  // namespace dqm::dataset

#endif  // DQM_DATASET_PRODUCT_GENERATOR_H_
