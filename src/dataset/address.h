#ifndef DQM_DATASET_ADDRESS_H_
#define DQM_DATASET_ADDRESS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dataset/generated.h"

namespace dqm::dataset {

/// Error classes for the synthetic Address dataset, mirroring the taxonomy
/// of the paper's Figure 1 (missing values, invalid city/zip, functional-
/// dependency violations, not-a-home-address, fake-but-well-formed).
enum class AddressErrorKind : int {
  kNone = 0,
  kMissingField = 1,      // e.g., no zip
  kInvalidCity = 2,       // misspelled city name
  kInvalidZip = 3,        // malformed zip (wrong length / non-digits)
  kFdViolation = 4,       // zip belongs to a different city/state
  kNotHomeAddress = 5,    // e.g., a PO box
  kFakeWellFormed = 6,    // plausible format, nonexistent street
};

/// Configuration for the synthetic Address dataset. Substitutes for the
/// paper's 1000 registered Portland, OR home addresses containing 90
/// malformed entries. Error kinds are drawn uniformly from the taxonomy.
struct AddressConfig {
  size_t num_records = 1000;
  size_t num_errors = 90;
  uint64_t seed = 13;
};

/// Address dataset: the generic record dataset plus the per-row error kind
/// (kNone for clean rows), which tests and the algorithmic-worker example
/// use to reason about detectability per class.
struct AddressDataset {
  RecordDataset data;
  std::vector<AddressErrorKind> row_kinds;
};

/// Generates a table with schema (id, address) where `address` conforms to
/// `<number street unit, city, state, zip>` (unit optional), plus the
/// ground-truth dirty row ids.
Result<AddressDataset> GenerateAddressDataset(const AddressConfig& config);

/// Per-record verdict from the rule-based validator.
struct AddressValidation {
  bool valid = true;
  AddressErrorKind kind = AddressErrorKind::kNone;
  std::string detail;
};

/// Rule-based address validator: parses the `<number street unit, city,
/// state, zip>` format and checks the city registry, the zip format, and the
/// zip -> (city, state) functional dependency.
///
/// Deliberately *incomplete*: it cannot detect kFakeWellFormed errors and
/// detects kNotHomeAddress only via a keyword list — this models the
/// "long tail" of errors that rule systems miss and only (some) humans
/// catch, which is the gap the DQM estimators quantify. It also serves as
/// one of the semi-independent algorithmic workers in the future-work
/// extension example.
class AddressValidator {
 public:
  AddressValidator() = default;

  /// Validates one address string.
  AddressValidation Validate(std::string_view address) const;

  /// Known-good street names for the generator's city.
  static const std::vector<std::string>& StreetRegistry();

  /// Zip codes with their canonical (city, state).
  struct ZipEntry {
    std::string zip;
    std::string city;
    std::string state;
  };
  static const std::vector<ZipEntry>& ZipRegistry();
};

}  // namespace dqm::dataset

#endif  // DQM_DATASET_ADDRESS_H_
