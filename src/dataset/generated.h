#ifndef DQM_DATASET_GENERATED_H_
#define DQM_DATASET_GENERATED_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "dataset/table.h"

namespace dqm::dataset {

/// A generated entity-resolution dataset: the table plus the ground-truth
/// set of duplicate record pairs (each pair ordered `first < second`,
/// commutative/transitive duplicates already reduced as in Section 2.1 of
/// the paper).
struct ErDataset {
  Table table;
  std::vector<std::pair<size_t, size_t>> duplicate_pairs;
};

/// A generated record-level cleaning dataset: the table plus the ground-
/// truth ids of dirty rows (e.g., malformed addresses).
struct RecordDataset {
  Table table;
  std::vector<size_t> dirty_rows;
};

}  // namespace dqm::dataset

#endif  // DQM_DATASET_GENERATED_H_
