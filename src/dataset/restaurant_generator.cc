#include "dataset/restaurant_generator.h"

#include <string>
#include <unordered_set>

#include "common/random.h"
#include "common/string_util.h"
#include "dataset/perturbation.h"

namespace dqm::dataset {

namespace {

constexpr std::string_view kAdjectives[] = {
    "golden", "silver", "blue", "red", "jade", "royal", "little", "grand",
    "old", "new", "happy", "lucky", "sunny", "rustic", "urban", "coastal",
    "hidden", "twin", "wild", "quiet", "velvet", "copper", "ivory", "amber",
    "crimson", "emerald", "mellow", "noble", "brave", "gentle", "bright",
    "misty", "stone", "iron", "cedar", "maple", "willow", "harbor", "garden",
    "corner",
};

constexpr std::string_view kNouns[] = {
    "dragon", "lotus", "olive", "pepper", "basil", "truffle", "lantern",
    "anchor", "sparrow", "falcon", "orchid", "tulip", "saffron", "ginger",
    "clove", "juniper", "barrel", "kettle", "skillet", "hearth", "table",
    "fork", "spoon", "plate", "goblet", "vine", "grove", "meadow", "river",
    "canyon", "summit", "valley", "prairie", "lagoon", "reef", "tide",
    "ember", "flame", "smoke", "spice", "salt", "honey", "cocoa", "citrus",
    "almond", "walnut", "pearl", "coral", "moon", "star", "sun", "cloud",
    "rain", "breeze", "aurora", "comet", "meteor", "quartz", "onyx", "topaz",
};

constexpr std::string_view kVenueTypes[] = {
    "cafe", "grill", "bistro", "diner", "kitchen", "restaurant", "tavern",
    "cantina", "brasserie", "eatery", "house", "bar",
};

constexpr std::string_view kStreets[] = {
    "main", "oak", "pine", "elm", "maple", "cedar", "walnut", "chestnut",
    "washington", "franklin", "jefferson", "madison", "monroe", "jackson",
    "lincoln", "grant", "sunset", "ocean", "bay", "hill", "lake", "river",
    "park", "market", "mission", "valencia", "geary", "fillmore", "divisadero",
    "broadway", "spring", "grand", "central", "highland", "prospect",
    "fairview", "melrose", "vermont", "western", "vine",
};

constexpr std::string_view kStreetTypes[] = {"st", "ave", "blvd", "rd", "ln",
                                             "way", "dr", "pl"};

constexpr std::string_view kCities[] = {
    "new york", "los angeles", "san francisco", "atlanta", "chicago",
    "boston", "seattle", "portland", "austin", "denver", "miami",
    "philadelphia", "new orleans", "san diego", "phoenix", "dallas",
    "houston", "nashville", "memphis", "baltimore",
};

constexpr std::string_view kCategories[] = {
    "american", "italian", "french", "chinese", "japanese", "mexican",
    "indian", "thai", "mediterranean", "steakhouses", "seafood", "bbq",
    "delis", "pizza", "vegetarian", "coffee shops",
};

// Abbreviation dictionary used when perturbing duplicates; mirrors the kind
// of variation in the paper's example ("Ritz-Carlton Cafe (buckhead)" vs
// "Cafe Ritz-Carlton Buckhead").
const std::vector<std::pair<std::string, std::string>>& AbbreviationDict() {
  static const auto& dict =
      *new std::vector<std::pair<std::string, std::string>>{
          {"restaurant", "rest."}, {"cafe", "caffe"},   {"grill", "grille"},
          {"street", "st."},       {"avenue", "ave."},  {"boulevard", "blvd."},
          {"saint", "st."},        {"and", "&"},        {"house", "hse."},
          {"kitchen", "kitchn"},
      };
  return dict;
}

template <size_t N>
std::string_view Pick(Rng& rng, const std::string_view (&pool)[N]) {
  return pool[rng.UniformIndex(N)];
}

}  // namespace

Result<ErDataset> GenerateRestaurantDataset(const RestaurantConfig& config) {
  if (config.num_duplicates > config.num_entities) {
    return Status::InvalidArgument(
        "num_duplicates cannot exceed num_entities");
  }
  const size_t max_distinct_names = (sizeof(kAdjectives) / sizeof(kAdjectives[0])) *
                                    (sizeof(kNouns) / sizeof(kNouns[0])) *
                                    (sizeof(kVenueTypes) / sizeof(kVenueTypes[0]));
  if (config.num_entities > max_distinct_names / 2) {
    return Status::InvalidArgument(StrFormat(
        "num_entities %zu too large for the name pool (max %zu)",
        config.num_entities, max_distinct_names / 2));
  }

  Rng rng(config.seed);
  Perturber perturber(&rng);

  Table table{Schema({"id", "name", "address", "city", "category"})};
  std::vector<std::pair<size_t, size_t>> duplicate_pairs;

  // Distinct entity names via rejection sampling against a seen-set.
  std::unordered_set<std::string> seen_names;
  std::vector<std::vector<std::string>> entities;
  entities.reserve(config.num_entities);
  while (entities.size() < config.num_entities) {
    std::string name = StrFormat(
        "%s %s %s", std::string(Pick(rng, kAdjectives)).c_str(),
        std::string(Pick(rng, kNouns)).c_str(),
        std::string(Pick(rng, kVenueTypes)).c_str());
    if (!seen_names.insert(name).second) continue;
    std::string address = StrFormat(
        "%d %s %s", static_cast<int>(rng.UniformInt(1, 9999)),
        std::string(Pick(rng, kStreets)).c_str(),
        std::string(Pick(rng, kStreetTypes)).c_str());
    entities.push_back({name, address, std::string(Pick(rng, kCities)),
                        std::string(Pick(rng, kCategories))});
  }

  // Emit all originals first, then duplicates of a random subset, then
  // shuffle row order so duplicates are not adjacent.
  struct PendingRow {
    std::vector<std::string> fields;  // name, address, city, category
    // Index into `entities`; duplicates share it with their original.
    size_t entity;
    bool is_duplicate;
  };
  std::vector<PendingRow> pending;
  pending.reserve(config.num_entities + config.num_duplicates);
  for (size_t e = 0; e < config.num_entities; ++e) {
    pending.push_back({entities[e], e, false});
  }
  std::vector<size_t> dup_entities =
      rng.SampleIndices(config.num_entities, config.num_duplicates);
  for (size_t e : dup_entities) {
    PendingRow dup{entities[e], e, true};
    dup.fields[0] = perturber.DuplicateNoise(dup.fields[0], AbbreviationDict());
    // Address noise: abbreviation or typo, sometimes untouched.
    if (rng.Bernoulli(0.6)) {
      dup.fields[1] = rng.Bernoulli(0.5)
                          ? perturber.Abbreviate(dup.fields[1], AbbreviationDict())
                          : perturber.Typo(dup.fields[1]);
    }
    pending.push_back(std::move(dup));
  }
  rng.Shuffle(pending);

  // First row index seen per entity; the second occurrence forms the pair.
  std::vector<size_t> first_row(config.num_entities, SIZE_MAX);
  for (size_t row = 0; row < pending.size(); ++row) {
    const PendingRow& p = pending[row];
    std::vector<std::string> fields = p.fields;
    fields.insert(fields.begin(), StrFormat("r%zu", row));
    DQM_RETURN_NOT_OK(table.AppendRow(std::move(fields)));
    if (first_row[p.entity] == SIZE_MAX) {
      first_row[p.entity] = row;
    } else {
      size_t a = first_row[p.entity];
      duplicate_pairs.emplace_back(std::min(a, row), std::max(a, row));
    }
  }

  return ErDataset{std::move(table), std::move(duplicate_pairs)};
}

}  // namespace dqm::dataset
