#ifndef DQM_DATASET_RESTAURANT_GENERATOR_H_
#define DQM_DATASET_RESTAURANT_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "dataset/generated.h"

namespace dqm::dataset {

/// Configuration for the synthetic Restaurant dataset.
///
/// Substitutes for the Fodor's/Zagat restaurant dataset used by the paper
/// (858 records, each restaurant duplicated at most once, 106 duplicate
/// pairs). Defaults reproduce the paper's shape: 858 = 752 entities + 106
/// duplicated entities.
struct RestaurantConfig {
  /// Distinct restaurant entities.
  size_t num_entities = 752;
  /// Entities that additionally appear as a perturbed duplicate record.
  size_t num_duplicates = 106;
  uint64_t seed = 7;
};

/// Generates a restaurant table with schema
/// (id, name, address, city, category) and ground-truth duplicate pairs.
/// Duplicate records are derived from their originals through the
/// Perturber's duplicate-noise model (typos, token swaps, abbreviations),
/// so a similarity heuristic places most of them in the ambiguous band —
/// the regime the paper's crowd experiments operate in.
Result<ErDataset> GenerateRestaurantDataset(const RestaurantConfig& config);

}  // namespace dqm::dataset

#endif  // DQM_DATASET_RESTAURANT_GENERATOR_H_
