#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/dqm.h"
#include "estimators/registry.h"
#include "workload/workload.h"

namespace dqm::core {

namespace {

/// Pool sized for `config.threads` over `jobs` independent jobs; nullopt when
/// the replay should run serially on the caller.
std::optional<ThreadPool> MakeReplayPool(const ExperimentRunner::Config& config,
                                         size_t jobs) {
  size_t threads =
      config.threads == 0 ? ThreadPool::DefaultThreadCount() : config.threads;
  threads = std::min(threads, jobs);
  if (threads <= 1) return std::nullopt;
  return std::make_optional<ThreadPool>(threads);
}

}  // namespace

uint64_t PermutationSeed(uint64_t base, size_t index) {
  return base ^ SplitMix64(static_cast<uint64_t>(index)).Next();
}

crowd::ResponseLog PermuteTasks(const crowd::ResponseLog& log, uint64_t seed) {
  // Group event index ranges by task in first-appearance order. Simulator
  // logs have contiguous per-task runs; grouping by scan keeps this general.
  std::vector<std::vector<const crowd::VoteEvent*>> groups;
  std::unordered_map<uint32_t, size_t> group_of_task;
  for (const crowd::VoteEvent& event : log.events()) {
    auto [it, inserted] = group_of_task.emplace(event.task, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(&event);
  }

  Rng rng(seed);
  std::vector<size_t> order = rng.Permutation(groups.size());

  crowd::ResponseLog permuted(log.num_items());
  std::unordered_map<uint32_t, uint32_t> worker_renumber;
  for (size_t new_task = 0; new_task < order.size(); ++new_task) {
    for (const crowd::VoteEvent* event : groups[order[new_task]]) {
      auto [it, inserted] = worker_renumber.emplace(
          event->worker, static_cast<uint32_t>(worker_renumber.size()));
      permuted.Append(crowd::VoteEvent{static_cast<uint32_t>(new_task),
                                       it->second, event->item, event->vote});
    }
  }
  return permuted;
}

SimulatedRun SimulateScenario(const Scenario& scenario, size_t num_tasks,
                              uint64_t seed) {
  std::vector<bool> truth = BuildTruth(scenario, seed);
  crowd::CrowdSimulator simulator =
      MakeSimulator(scenario, truth, seed ^ 0xc2b2ae3d27d4eb4fULL);
  crowd::ResponseLog log(scenario.num_items);
  simulator.RunTasks(log, num_tasks);
  return SimulatedRun{std::move(log), std::move(truth)};
}

std::vector<SeriesResult> ExperimentRunner::Run(
    const crowd::ResponseLog& log, size_t num_items,
    const std::vector<std::pair<std::string, estimators::EstimatorFactory>>&
        factories) const {
  DQM_CHECK_GT(config_.permutations, 0u);
  // rows[f][p] = series of estimator f on permutation p. Each permutation
  // writes only its own p-slots, so the replays are embarrassingly parallel
  // and the aggregate below sees the same layout regardless of thread count.
  std::vector<std::vector<std::vector<double>>> rows(
      factories.size(), std::vector<std::vector<double>>(config_.permutations));
  auto replay = [&](size_t p) {
    crowd::ResponseLog permuted =
        PermuteTasks(log, PermutationSeed(config_.seed, p));
    for (size_t f = 0; f < factories.size(); ++f) {
      std::unique_ptr<estimators::TotalErrorEstimator> estimator =
          factories[f].second(num_items);
      rows[f][p] = estimators::EstimateSeriesByTask(permuted, *estimator);
    }
  };
  std::optional<ThreadPool> pool = MakeReplayPool(config_, config_.permutations);
  ParallelFor(pool ? &*pool : nullptr, config_.permutations, replay);
  std::vector<SeriesResult> results;
  results.reserve(factories.size());
  for (size_t f = 0; f < factories.size(); ++f) {
    SeriesBand band = AggregateSeries(rows[f]);
    results.push_back(
        SeriesResult{factories[f].first, std::move(band.mean),
                     std::move(band.std_dev)});
  }
  return results;
}

Result<std::vector<SeriesResult>> ExperimentRunner::Run(
    const crowd::ResponseLog& log, size_t num_items,
    std::span<const std::string> specs) const {
  std::vector<std::pair<std::string, estimators::EstimatorFactory>> factories;
  factories.reserve(specs.size());
  for (const std::string& spec : specs) {
    DQM_ASSIGN_OR_RETURN(
        estimators::EstimatorFactory factory,
        estimators::EstimatorRegistry::Global().FactoryFor(spec));
    factories.emplace_back(spec, std::move(factory));
  }
  return Run(log, num_items, factories);
}

Result<ExperimentRunner::WorkloadReport> ExperimentRunner::RunWorkload(
    std::string_view workload_spec,
    std::span<const std::string> estimator_specs) const {
  DQM_ASSIGN_OR_RETURN(
      std::unique_ptr<workload::Workload> generator,
      workload::WorkloadRegistry::Global().Create(workload_spec));
  workload::GeneratedWorkload run = generator->Generate(config_.seed);

  // The scoring pipeline only consumes tallies and the shared fingerprint,
  // never arrival history (the generated run keeps that) — compacted counts
  // keep big workload sweeps at O(#pairs) memory per scored panel.
  DQM_ASSIGN_OR_RETURN(
      DataQualityMetric metric,
      DataQualityMetric::Create(generator->num_items(), estimator_specs,
                                crowd::RetentionPolicy::kCounts));
  for (const crowd::VoteEvent& event : run.log.events()) {
    metric.AddVote(event.task, event.worker, event.item,
                   event.vote == crowd::Vote::kDirty);
  }
  DataQualityMetric::QualityReport report = metric.Report();

  WorkloadReport result;
  result.workload_spec = generator->spec();
  result.num_items = generator->num_items();
  result.num_dirty = run.NumDirty();
  result.num_votes = report.num_votes;
  result.num_batches = run.batch_sizes.size();
  result.majority_count = report.majority_count;
  result.nominal_count = report.nominal_count;
  double truth = static_cast<double>(result.num_dirty);
  result.cells.reserve(report.estimators.size());
  for (const DataQualityMetric::EstimatorReport& row : report.estimators) {
    result.cells.push_back(WorkloadCell{
        row.spec, row.name, row.total_errors, row.undetected_errors,
        row.quality_score, std::abs(row.total_errors - truth)});
  }
  return result;
}

ExperimentRunner::SwitchDiagnostics ExperimentRunner::RunSwitchDiagnostics(
    const crowd::ResponseLog& log, size_t num_items,
    const std::vector<bool>& truth,
    const estimators::SwitchTotalErrorEstimator::Config& config) const {
  DQM_CHECK_EQ(truth.size(), num_items);
  DQM_CHECK_GT(config_.permutations, 0u);
  std::vector<std::vector<double>> pos_est(config_.permutations),
      neg_est(config_.permutations), pos_needed(config_.permutations),
      neg_needed(config_.permutations);
  auto replay = [&](size_t p) {
    crowd::ResponseLog permuted =
        PermuteTasks(log, PermutationSeed(config_.seed, p));
    estimators::SwitchTotalErrorEstimator estimator(num_items, config);
    std::vector<uint32_t> positive(num_items, 0), total(num_items, 0);
    std::vector<double> s_pos, s_neg, s_pos_needed, s_neg_needed;

    auto sample = [&]() {
      s_pos.push_back(estimator.RemainingPositive());
      s_neg.push_back(estimator.RemainingNegative());
      estimators::SwitchesNeeded needed =
          estimators::ComputeSwitchesNeeded(positive, total, truth);
      s_pos_needed.push_back(static_cast<double>(needed.positive));
      s_neg_needed.push_back(static_cast<double>(needed.negative));
    };

    const auto& events = permuted.events();
    uint32_t current_task = events.empty() ? 0 : events.front().task;
    for (const crowd::VoteEvent& event : events) {
      if (event.task != current_task) {
        sample();
        current_task = event.task;
      }
      estimator.Observe(event);
      ++total[event.item];
      if (event.vote == crowd::Vote::kDirty) ++positive[event.item];
    }
    if (!events.empty()) sample();

    pos_est[p] = std::move(s_pos);
    neg_est[p] = std::move(s_neg);
    pos_needed[p] = std::move(s_pos_needed);
    neg_needed[p] = std::move(s_neg_needed);
  };
  std::optional<ThreadPool> pool = MakeReplayPool(config_, config_.permutations);
  ParallelFor(pool ? &*pool : nullptr, config_.permutations, replay);

  auto aggregate = [](const std::string& name,
                      const std::vector<std::vector<double>>& series) {
    SeriesBand band = AggregateSeries(series);
    return SeriesResult{name, std::move(band.mean), std::move(band.std_dev)};
  };
  SwitchDiagnostics diagnostics;
  diagnostics.remaining_positive_estimate =
      aggregate("remaining positive switches (est)", pos_est);
  diagnostics.remaining_negative_estimate =
      aggregate("remaining negative switches (est)", neg_est);
  diagnostics.needed_positive_truth =
      aggregate("positive switches needed (truth)", pos_needed);
  diagnostics.needed_negative_truth =
      aggregate("negative switches needed (truth)", neg_needed);
  return diagnostics;
}

double SampleCleanMinimumTasks(size_t sample_size, size_t records_per_task,
                               size_t workers_per_record) {
  DQM_CHECK_GT(records_per_task, 0u);
  return static_cast<double>(workers_per_record) *
         static_cast<double>(sample_size) /
         static_cast<double>(records_per_task);
}

}  // namespace dqm::core
