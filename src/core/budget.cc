#include "core/budget.h"

namespace dqm::core {

StoppingRule::StoppingRule(const Options& options, const CostModel& cost)
    : options_(options), cost_(cost) {}

StoppingRule::Decision StoppingRule::Evaluate(const DataQualityMetric& metric,
                                              size_t tasks_run) const {
  Decision decision;
  decision.estimated_undetected = metric.EstimatedUndetectedErrors();
  decision.mean_votes_per_item =
      metric.num_items() == 0
          ? 0.0
          : static_cast<double>(metric.num_votes()) /
                static_cast<double>(metric.num_items());
  decision.cost_spent = cost_.CostOfTasks(tasks_run);
  decision.stop =
      decision.mean_votes_per_item >= options_.min_mean_votes_per_item &&
      decision.estimated_undetected <= options_.max_undetected_errors;
  return decision;
}

}  // namespace dqm::core
