#ifndef DQM_CORE_EXPERIMENT_H_
#define DQM_CORE_EXPERIMENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "core/scenario.h"
#include "crowd/response_log.h"
#include "estimators/estimator.h"
#include "estimators/switch_total.h"
#include "estimators/switch_tracker.h"

namespace dqm::core {

/// Reorders a log's tasks by a random permutation, renumbering tasks and
/// workers in the new arrival order (votes within a task keep their order).
/// This reproduces the paper's evaluation protocol: "we randomly permute the
/// workers and average the results over r = 10 such permutations".
crowd::ResponseLog PermuteTasks(const crowd::ResponseLog& log, uint64_t seed);

/// The PermuteTasks seed the ExperimentRunner uses for permutation `index`:
/// base ^ splitmix64(index). Each permutation's seed depends only on (base,
/// index), never on evaluation order, so serial and pool-parallel replays of
/// the same config are bit-identical.
uint64_t PermutationSeed(uint64_t base, size_t index);

/// Simulates `num_tasks` tasks of `scenario` and returns the log plus the
/// hidden truth (for ground-truth lines in reports).
struct SimulatedRun {
  crowd::ResponseLog log;
  std::vector<bool> truth;
};
SimulatedRun SimulateScenario(const Scenario& scenario, size_t num_tasks,
                              uint64_t seed);

/// A named mean +/- std series over task counts.
struct SeriesResult {
  std::string name;
  std::vector<double> mean;
  std::vector<double> std_dev;
};

/// Evaluates estimators over task-order permutations of one response log.
class ExperimentRunner {
 public:
  struct Config {
    /// r — number of task-order permutations averaged.
    size_t permutations = 10;
    uint64_t seed = 42;
    /// Worker threads for the permutation replays. 1 = serial on the caller;
    /// 0 = one per hardware thread. Results are bit-identical at any value
    /// because each permutation's seed and output slot depend only on its
    /// index (see PermutationSeed).
    size_t threads = 1;
  };

  explicit ExperimentRunner(const Config& config) : config_(config) {}

  /// For each named factory: replays `permutations` shuffles of `log` and
  /// aggregates the per-task estimate series into mean/std. All series share
  /// the x grid 1..num_tasks.
  std::vector<SeriesResult> Run(
      const crowd::ResponseLog& log, size_t num_items,
      const std::vector<std::pair<std::string, estimators::EstimatorFactory>>&
          factories) const;

  /// As above with the estimator lineup drawn from the registry: one series
  /// per spec string ("switch", "vchao92?shift=2", ...), named after the
  /// spec. Fails up front on unknown names or bad params.
  Result<std::vector<SeriesResult>> Run(
      const crowd::ResponseLog& log, size_t num_items,
      std::span<const std::string> specs) const;

  /// One estimator's final numbers on one generated workload.
  struct WorkloadCell {
    /// The estimator spec the cell was scored with ("vchao92?shift=2").
    std::string spec;
    /// Display name ("V-CHAO").
    std::string name;
    double total_errors = 0.0;
    double undetected_errors = 0.0;
    double quality_score = 1.0;
    /// |total_errors - true dirty count| — the robustness number the
    /// scenario x estimator matrix plots.
    double abs_error = 0.0;
  };

  /// One row of the scenario x estimator robustness grid.
  struct WorkloadReport {
    /// Canonical workload spec ("drift?walk=0.02").
    std::string workload_spec;
    size_t num_items = 0;
    /// Ground-truth |R_dirty| of the generated run.
    size_t num_dirty = 0;
    size_t num_votes = 0;
    /// Ingest batches the workload's arrival process produced.
    size_t num_batches = 0;
    size_t majority_count = 0;
    size_t nominal_count = 0;
    /// One cell per estimator spec, in spec order.
    std::vector<WorkloadCell> cells;
  };

  /// Generates `workload_spec` (resolved via workload::WorkloadRegistry)
  /// with the runner's seed and scores every estimator spec on the one vote
  /// stream through the multi-estimator pipeline — the entry point the
  /// workload matrix bench and the CLI sweep share. Fails up front on
  /// unknown workload/estimator names or bad params.
  Result<WorkloadReport> RunWorkload(
      std::string_view workload_spec,
      std::span<const std::string> estimator_specs) const;

  /// SWITCH diagnostics for Figures 3-5 (b)/(c): per-task series of the
  /// estimated remaining positive/negative switches and the ground-truth
  /// switches still needed (from the evolving majority labels vs `truth`),
  /// permutation-averaged.
  struct SwitchDiagnostics {
    SeriesResult remaining_positive_estimate;
    SeriesResult remaining_negative_estimate;
    SeriesResult needed_positive_truth;
    SeriesResult needed_negative_truth;
  };
  SwitchDiagnostics RunSwitchDiagnostics(
      const crowd::ResponseLog& log, size_t num_items,
      const std::vector<bool>& truth,
      const estimators::SwitchTotalErrorEstimator::Config& config) const;

 private:
  Config config_;
};

/// Sample Clean Minimum (Section 6.1): the number of tasks needed to clean a
/// sample of size `sample_size` with `workers_per_record` fixed votes per
/// record at `records_per_task` records per task.
double SampleCleanMinimumTasks(size_t sample_size, size_t records_per_task,
                               size_t workers_per_record = 3);

}  // namespace dqm::core

#endif  // DQM_CORE_EXPERIMENT_H_
