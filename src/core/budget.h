#ifndef DQM_CORE_BUDGET_H_
#define DQM_CORE_BUDGET_H_

#include <cstddef>

#include "core/dqm.h"

namespace dqm::core {

/// Task pricing for cost-aware reporting; defaults match the paper's AMT
/// deployment ($0.03 per task, 10 records per task).
struct CostModel {
  double cost_per_task = 0.03;
  size_t items_per_task = 10;

  double CostOfTasks(size_t tasks) const {
    return cost_per_task * static_cast<double>(tasks);
  }
};

/// Data-driven stopping rule for a crowdsourced cleaning deployment — the
/// operational answer to the paper's motivating question, "quantifying the
/// utility of hiring additional workers".
///
/// Stop when the estimated number of undetected errors drops to
/// `max_undetected_errors` or below (optionally also requiring a minimum
/// average vote coverage so the estimate itself is trustworthy).
class StoppingRule {
 public:
  struct Options {
    double max_undetected_errors = 1.0;
    /// Require at least this many votes per item on average before any
    /// stop decision (guards against optimistic early estimates).
    double min_mean_votes_per_item = 2.0;
  };

  struct Decision {
    bool stop = false;
    double estimated_undetected = 0.0;
    double mean_votes_per_item = 0.0;
    /// Cost spent so far under the model.
    double cost_spent = 0.0;
  };

  StoppingRule(const Options& options, const CostModel& cost);
  StoppingRule() : StoppingRule(Options(), CostModel()) {}

  /// Evaluates the rule against the metric's current state. `tasks_run` is
  /// used for the cost report.
  Decision Evaluate(const DataQualityMetric& metric, size_t tasks_run) const;

 private:
  Options options_;
  CostModel cost_;
};

}  // namespace dqm::core

#endif  // DQM_CORE_BUDGET_H_
