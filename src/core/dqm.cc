#include "core/dqm.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "estimators/baselines.h"
#include "estimators/chao92.h"

namespace dqm::core {

namespace {

/// Legacy enum path: constructs the estimator directly (bypassing the
/// registry) so the deprecated Options knobs — vchao_shift and the full
/// switch_config struct — keep their exact historical behavior.
std::unique_ptr<estimators::TotalErrorEstimator> MakeLegacyEstimator(
    Method method, size_t num_items, const DataQualityMetric::Options& options) {
  switch (method) {
    case Method::kSwitch:
      return std::make_unique<estimators::SwitchTotalErrorEstimator>(
          num_items, options.switch_config);
    case Method::kChao92:
      return std::make_unique<estimators::Chao92Estimator>(num_items, true);
    case Method::kGoodTuring:
      return std::make_unique<estimators::Chao92Estimator>(num_items, false);
    case Method::kVChao92:
      return std::make_unique<estimators::VChao92Estimator>(
          num_items, options.vchao_shift);
    case Method::kVoting:
      return std::make_unique<estimators::VotingEstimator>(num_items);
    case Method::kNominal:
      return std::make_unique<estimators::NominalEstimator>(num_items);
  }
  DQM_CHECK(false) << "unknown method";
  return nullptr;
}

}  // namespace

DataQualityMetric::DataQualityMetric(size_t num_items,
                                     crowd::RetentionPolicy retention,
                                     PrivateTag)
    : state_(std::make_unique<PipelineState>(num_items, retention)) {
  state_->shared.log = &state_->log;
}

DataQualityMetric::DataQualityMetric(size_t num_items)
    : DataQualityMetric(num_items, Options()) {}

DataQualityMetric::DataQualityMetric(size_t num_items, const Options& options)
    : DataQualityMetric(num_items, options.retention, PrivateTag()) {
  if (!options.specs.empty()) {
    Status status = AttachSpecs(options.specs);
    DQM_CHECK(status.ok()) << status.ToString()
                           << " (use DataQualityMetric::Create to handle bad "
                              "specs without aborting)";
    return;
  }
  rows_.push_back(Row{MethodSpec(options.method, options.vchao_shift),
                      MakeLegacyEstimator(options.method, num_items, options)});
  observing_.push_back(rows_.back().estimator.get());
}

Result<DataQualityMetric> DataQualityMetric::Create(
    size_t num_items, std::span<const std::string> specs,
    crowd::RetentionPolicy retention) {
  DataQualityMetric metric(num_items, retention, PrivateTag());
  DQM_RETURN_NOT_OK(metric.AttachSpecs(specs));
  return metric;
}

Result<DataQualityMetric> DataQualityMetric::Create(
    size_t num_items, std::initializer_list<std::string> specs,
    crowd::RetentionPolicy retention) {
  std::vector<std::string> copy(specs);
  return Create(num_items, std::span<const std::string>(copy), retention);
}

Result<DataQualityMetric> DataQualityMetric::Create(
    size_t num_items, const std::string& spec_list,
    crowd::RetentionPolicy retention) {
  std::vector<std::string> specs = estimators::SplitSpecList(spec_list);
  return Create(num_items, std::span<const std::string>(specs), retention);
}

Status DataQualityMetric::AttachSpecs(std::span<const std::string> specs) {
  if (specs.empty()) {
    return Status::InvalidArgument(
        "DataQualityMetric needs at least one estimator spec");
  }
  const estimators::EstimatorRegistry& registry =
      estimators::EstimatorRegistry::Global();

  // Pass 1: parse and resolve every spec so the pipeline knows — before any
  // estimator is built — whether the shared positive-vote fingerprint must
  // be maintained.
  std::vector<estimators::EstimatorSpec> parsed;
  parsed.reserve(specs.size());
  for (const std::string& spec : specs) {
    DQM_ASSIGN_OR_RETURN(estimators::EstimatorSpec one,
                         estimators::ParseEstimatorSpec(spec));
    DQM_ASSIGN_OR_RETURN(
        std::shared_ptr<const estimators::EstimatorRegistry::Entry> entry,
        registry.Find(one.name));
    if (entry->wants_positive_fingerprint) state_->maintain_positive_f = true;
    if (entry->wants_pair_counts) state_->need_pair_counts = true;
    parsed.push_back(std::move(one));
  }
  state_->shared.positive_f =
      state_->maintain_positive_f ? &state_->positive_f : nullptr;

  // Pass 2: build each estimator against the shared stats.
  estimators::EstimatorEnv env{state_->log.num_items(), &state_->shared};
  for (size_t i = 0; i < parsed.size(); ++i) {
    DQM_ASSIGN_OR_RETURN(
        std::unique_ptr<estimators::TotalErrorEstimator> estimator,
        registry.Create(parsed[i], env));
    rows_.push_back(Row{specs[i], std::move(estimator)});
    if (rows_.back().estimator->needs_observe()) {
      observing_.push_back(rows_.back().estimator.get());
    }
  }
  return Status::OK();
}

bool DataQualityMetric::SupportsConcurrentIngest() const {
  return observing_.empty() &&
         state_->log.retention() == crowd::RetentionPolicy::kCounts;
}

void DataQualityMetric::EnableConcurrentIngest(size_t num_stripes) {
  DQM_CHECK(SupportsConcurrentIngest())
      << "panel has an order-sensitive (observing) estimator or retains "
         "full events; concurrent ingest would break it";
  state_->log.EnableConcurrentIngest(num_stripes, state_->need_pair_counts);
}

void DataQualityMetric::CommitVotesConcurrent(
    std::span<const crowd::VoteEvent> votes) {
  state_->log.AppendConcurrent(votes);
}

crowd::ResponseLog::IngestPause DataQualityMetric::ReconcileForEstimates() {
  crowd::ResponseLog::IngestPause pause = state_->log.PauseAndReconcile();
  if (state_->maintain_positive_f && state_->log.concurrent_ingest()) {
    // The striped commit path defers fingerprint maintenance; re-derive it
    // from the reconciled per-item dirty counts (bit-identical to the
    // incremental AddVote stream).
    state_->positive_f.RebuildFromCounts(state_->log.positive_counts());
  }
  return pause;
}

void DataQualityMetric::AddVote(uint32_t task, uint32_t worker, uint32_t item,
                                bool is_dirty) {
  crowd::VoteEvent event{task, worker, item,
                         is_dirty ? crowd::Vote::kDirty : crowd::Vote::kClean};
  PipelineState& state = *state_;
  if (is_dirty && state.maintain_positive_f) {
    // Bounds check before the tally read — everywhere else Append's own
    // check fires before any indexing.
    DQM_CHECK_LT(item, state.log.num_items()) << "item id out of range";
    // Mirror of Chao92Estimator::Observe, keyed on the pre-append count.
    uint32_t count = state.log.positive_votes(item);
    if (count == 0) {
      state.positive_f.AddSingleton();
    } else {
      state.positive_f.Promote(count);
    }
  }
  state.log.Append(event);
  for (estimators::TotalErrorEstimator* estimator : observing_) {
    estimator->Observe(event);
  }
}

double DataQualityMetric::EstimatedTotalErrors() const {
  return rows_.front().estimator->Estimate();
}

double DataQualityMetric::EstimatedUndetectedErrors() const {
  double undetected =
      EstimatedTotalErrors() - static_cast<double>(state_->log.MajorityCount());
  return std::max(undetected, 0.0);
}

double DataQualityMetric::QualityScore() const {
  if (state_->log.num_items() == 0) return 1.0;
  double fraction = EstimatedUndetectedErrors() /
                    static_cast<double>(state_->log.num_items());
  return std::clamp(1.0 - fraction, 0.0, 1.0);
}

DataQualityMetric::QualityReport DataQualityMetric::Report() const {
  QualityReport report;
  ReportInto(report);
  return report;
}

void DataQualityMetric::ReportInto(QualityReport& report) const {
  const crowd::ResponseLog& log = state_->log;
  report.num_votes = log.num_events();
  report.num_items = log.num_items();
  report.majority_count = log.MajorityCount();
  report.nominal_count = log.NominalCount();
  if (report.estimators.size() != rows_.size()) {
    // First fill (or a mismatched report object): build the immutable name
    // and spec columns once; subsequent calls only touch the numbers.
    report.estimators.assign(rows_.size(), EstimatorReport{});
    for (size_t i = 0; i < rows_.size(); ++i) {
      report.estimators[i].name = std::string(rows_[i].estimator->name());
      report.estimators[i].spec = rows_[i].spec;
    }
  }
  double majority = static_cast<double>(report.majority_count);
  double items = static_cast<double>(report.num_items);
  for (size_t i = 0; i < rows_.size(); ++i) {
    EstimatorReport& entry = report.estimators[i];
    entry.total_errors = rows_[i].estimator->Estimate();
    entry.undetected_errors = std::max(entry.total_errors - majority, 0.0);
    entry.quality_score =
        report.num_items == 0
            ? 1.0
            : std::clamp(1.0 - entry.undetected_errors / items, 0.0, 1.0);
  }
}

std::vector<std::string> DataQualityMetric::estimator_names() const {
  std::vector<std::string> names;
  names.reserve(rows_.size());
  for (const Row& row : rows_) {
    names.emplace_back(row.estimator->name());
  }
  return names;
}

estimators::EstimatorFactory MakeEstimatorFactory(Method method,
                                                  uint32_t vchao_shift) {
  return [method, vchao_shift](size_t num_items)
             -> std::unique_ptr<estimators::TotalErrorEstimator> {
    DataQualityMetric::Options options;
    options.vchao_shift = vchao_shift;
    return MakeLegacyEstimator(method, num_items, options);
  };
}

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kSwitch:
      return "SWITCH";
    case Method::kChao92:
      return "CHAO92";
    case Method::kGoodTuring:
      return "GOOD-TURING";
    case Method::kVChao92:
      return "V-CHAO";
    case Method::kVoting:
      return "VOTING";
    case Method::kNominal:
      return "NOMINAL";
  }
  return "?";
}

std::string MethodSpec(Method method, uint32_t vchao_shift) {
  switch (method) {
    case Method::kSwitch:
      return "switch";
    case Method::kChao92:
      return "chao92";
    case Method::kGoodTuring:
      return "good-turing";
    case Method::kVChao92:
      return StrFormat("vchao92?shift=%u", vchao_shift);
    case Method::kVoting:
      return "voting";
    case Method::kNominal:
      return "nominal";
  }
  return "?";
}

}  // namespace dqm::core
