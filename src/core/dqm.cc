#include "core/dqm.h"

#include <algorithm>

#include "common/logging.h"
#include "estimators/baselines.h"
#include "estimators/chao92.h"

namespace dqm::core {

namespace {

std::unique_ptr<estimators::TotalErrorEstimator> MakeEstimator(
    Method method, size_t num_items, const DataQualityMetric::Options& options) {
  switch (method) {
    case Method::kSwitch:
      return std::make_unique<estimators::SwitchTotalErrorEstimator>(
          num_items, options.switch_config);
    case Method::kChao92:
      return std::make_unique<estimators::Chao92Estimator>(num_items, true);
    case Method::kGoodTuring:
      return std::make_unique<estimators::Chao92Estimator>(num_items, false);
    case Method::kVChao92:
      return std::make_unique<estimators::VChao92Estimator>(
          num_items, options.vchao_shift);
    case Method::kVoting:
      return std::make_unique<estimators::VotingEstimator>(num_items);
    case Method::kNominal:
      return std::make_unique<estimators::NominalEstimator>(num_items);
  }
  DQM_CHECK(false) << "unknown method";
  return nullptr;
}

}  // namespace

DataQualityMetric::DataQualityMetric(size_t num_items)
    : DataQualityMetric(num_items, Options()) {}

DataQualityMetric::DataQualityMetric(size_t num_items, const Options& options)
    : log_(num_items),
      estimator_(MakeEstimator(options.method, num_items, options)) {}

void DataQualityMetric::AddVote(uint32_t task, uint32_t worker, uint32_t item,
                                bool is_dirty) {
  crowd::VoteEvent event{task, worker, item,
                         is_dirty ? crowd::Vote::kDirty : crowd::Vote::kClean};
  log_.Append(event);
  estimator_->Observe(event);
}

double DataQualityMetric::EstimatedTotalErrors() const {
  return estimator_->Estimate();
}

double DataQualityMetric::EstimatedUndetectedErrors() const {
  double undetected =
      EstimatedTotalErrors() - static_cast<double>(log_.MajorityCount());
  return std::max(undetected, 0.0);
}

double DataQualityMetric::QualityScore() const {
  if (log_.num_items() == 0) return 1.0;
  double fraction = EstimatedUndetectedErrors() /
                    static_cast<double>(log_.num_items());
  return std::clamp(1.0 - fraction, 0.0, 1.0);
}

estimators::EstimatorFactory MakeEstimatorFactory(Method method,
                                                  uint32_t vchao_shift) {
  return [method, vchao_shift](size_t num_items)
             -> std::unique_ptr<estimators::TotalErrorEstimator> {
    DataQualityMetric::Options options;
    options.vchao_shift = vchao_shift;
    return MakeEstimator(method, num_items, options);
  };
}

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kSwitch:
      return "SWITCH";
    case Method::kChao92:
      return "CHAO92";
    case Method::kGoodTuring:
      return "GOOD-TURING";
    case Method::kVChao92:
      return "V-CHAO";
    case Method::kVoting:
      return "VOTING";
    case Method::kNominal:
      return "NOMINAL";
  }
  return "?";
}

}  // namespace dqm::core
