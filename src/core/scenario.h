#ifndef DQM_CORE_SCENARIO_H_
#define DQM_CORE_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crowd/simulator.h"
#include "crowd/worker.h"

namespace dqm::core {

/// A fully-specified crowdsourced-cleaning workload: the item universe with
/// its hidden truth layout, the worker error regime, and the task shape.
/// Scenarios are the bench harness's reproducible stand-ins for the paper's
/// AMT deployments (see DESIGN.md, substitutions table).
struct Scenario {
  std::string name;

  /// Total item universe |R|. Items [0, num_candidates) form the heuristic
  /// candidate set R_H; the rest form the complement R_H^c.
  size_t num_items = 0;
  size_t num_candidates = 0;  // == num_items when no prioritization

  /// True-dirty counts per stratum.
  size_t dirty_in_candidates = 0;
  size_t dirty_in_complement = 0;

  size_t items_per_task = 10;
  /// Probability a task slot draws from R_H^c (Section 5.3); ignored when
  /// num_candidates == num_items.
  double epsilon = 0.1;

  crowd::WorkerPool::Config workers;
  /// Consecutive tasks taken by one worker.
  size_t tasks_per_worker = 1;

  /// Per-item difficulty ("a few difficult pairs on which more than just a
  /// single worker make mistakes", Section 6.1.2): a random
  /// `hard_dirty_fraction` of the dirty items carries `hard_extra_fn`
  /// additional miss probability, and a random `confusing_clean_fraction`
  /// of the clean items carries `confusing_extra_fp` additional
  /// false-positive probability for every worker.
  double hard_dirty_fraction = 0.0;
  double hard_extra_fn = 0.0;
  double confusing_clean_fraction = 0.0;
  double confusing_extra_fp = 0.0;

  size_t num_dirty() const { return dirty_in_candidates + dirty_in_complement; }
};

/// Materializes the hidden truth vector for a scenario: dirty items placed
/// uniformly at random within each stratum.
std::vector<bool> BuildTruth(const Scenario& scenario, uint64_t seed);

/// Builds a ready-to-run simulator over `truth` (uniform assignment when the
/// scenario has no complement stratum, prioritized otherwise).
crowd::CrowdSimulator MakeSimulator(const Scenario& scenario,
                                    std::vector<bool> truth, uint64_t seed);

/// As MakeSimulator but with the conventional fixed-quorum assignment
/// (exactly `quorum` votes per item) used by the SCM cost baseline.
crowd::CrowdSimulator MakeFixedQuorumSimulator(const Scenario& scenario,
                                               std::vector<bool> truth,
                                               size_t quorum, uint64_t seed);

/// Paper-shaped presets (Sections 6.1-6.2). Worker regimes follow the
/// paper's qualitative characterization of each crowd: Restaurant FP-heavy,
/// Product FN-heavy, Address both; the simulation preset matches the
/// "1000 candidate pairs, 100 duplicates, 15 items per task" study.
Scenario RestaurantScenario();
Scenario ProductScenario();
Scenario AddressScenario();
Scenario SimulationScenario(double false_positive_rate,
                            double false_negative_rate,
                            size_t items_per_task = 15);

/// Prioritization study preset (Figure 8): `heuristic_error` is the fraction
/// of true errors the heuristic misplaces into R_H^c.
Scenario PrioritizationScenario(double heuristic_error, double epsilon);

}  // namespace dqm::core

#endif  // DQM_CORE_SCENARIO_H_
