#ifndef DQM_CORE_DQM_H_
#define DQM_CORE_DQM_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "crowd/response_log.h"
#include "estimators/estimator.h"
#include "estimators/registry.h"
#include "estimators/switch_total.h"

namespace dqm::core {

/// Estimation method selector for the facade.
///
/// DEPRECATED: the closed enum is kept for source compatibility only. New
/// code selects estimators by registry spec string ("switch?tau=50",
/// "vchao92?shift=2", ...) — see estimators/registry.h and
/// DataQualityMetric::Create — which also covers estimators this enum will
/// never learn about.
enum class Method {
  kSwitch,      // the paper's SWITCH estimator (default, most robust)
  kChao92,      // plain species estimation (fast convergence, FP-fragile)
  kGoodTuring,  // Chao92 without the skew correction
  kVChao92,     // shifted, majority-based Chao92
  kVoting,      // descriptive majority baseline
  kNominal,     // descriptive union baseline
};

/// The user-facing Data Quality Metric (the library's quickstart API).
///
/// Feed it worker votes as they arrive; ask at any time how many errors the
/// dataset is estimated to contain, how many are still undetected, and what
/// that means as a quality score. Example:
///
///     dqm::core::DataQualityMetric metric(num_records);
///     for (auto& vote : collected_votes)
///       metric.AddVote(vote.task, vote.worker, vote.record, vote.is_dirty);
///     double total = metric.EstimatedTotalErrors();
///     double undetected = metric.EstimatedUndetectedErrors();
///     double quality = metric.QualityScore();  // in [0, 1]
///
/// The metric is a single-pass, multi-estimator pipeline: any number of
/// registered estimators can be attached to the same vote stream and every
/// AddVote feeds all of them at once, so comparing the paper's estimator
/// panel costs one log replay instead of one per method. Descriptive
/// tallies and the positive-vote fingerprint are maintained once and shared
/// with every estimator that can use them:
///
///     auto metric = dqm::core::DataQualityMetric::Create(
///         num_records, {"switch", "chao92", "vchao92?shift=2", "voting"});
///     for (auto& vote : collected_votes)
///       metric->AddVote(vote.task, vote.worker, vote.record, vote.is_dirty);
///     dqm::core::QualityReport report = metric->Report();
///
/// The single-method accessors (EstimatedTotalErrors etc.) always answer for
/// the *primary* estimator — the first spec.
class DataQualityMetric {
 public:
  struct Options {
    Method method = Method::kSwitch;
    /// DEPRECATED: use a "vchao92?shift=<s>" spec instead. Still honored
    /// (only by kVChao92) while enum construction is supported.
    uint32_t vchao_shift = 1;
    /// DEPRECATED: use "switch?tau=...&flip_abs=..." spec params instead.
    /// Still honored (only by kSwitch) while enum construction is supported.
    estimators::SwitchTotalErrorEstimator::Config switch_config;
    /// Registry spec strings. When non-empty this wins over `method` and
    /// the deprecated per-method knobs above. Invalid specs abort via
    /// DQM_CHECK on this legacy constructor path — prefer Create(), which
    /// reports them as a Status.
    std::vector<std::string> specs;
    /// What the pipeline's internal log retains. kFullEvents (default)
    /// keeps arrival history available through log().events(); kCounts
    /// keeps only the compacted per-(worker, item) count matrix, bounding
    /// steady-state memory by #distinct pairs instead of #votes (the
    /// serving configuration — see engine::DqmEngine::OpenSession).
    crowd::RetentionPolicy retention = crowd::RetentionPolicy::kFullEvents;
  };

  /// `num_items` — size of the record (or candidate-pair) universe N.
  explicit DataQualityMetric(size_t num_items);
  DataQualityMetric(size_t num_items, const Options& options);

  /// Builds a multi-estimator pipeline from registry spec strings. The
  /// first spec is the primary estimator (the one the single-method
  /// accessors answer for). InvalidArgument when `specs` is empty or a
  /// param is malformed; NotFound for unregistered estimator names.
  static Result<DataQualityMetric> Create(
      size_t num_items, std::span<const std::string> specs,
      crowd::RetentionPolicy retention = crowd::RetentionPolicy::kFullEvents);
  /// Braced-list convenience: Create(n, {"switch", "chao92"}).
  static Result<DataQualityMetric> Create(
      size_t num_items, std::initializer_list<std::string> specs,
      crowd::RetentionPolicy retention = crowd::RetentionPolicy::kFullEvents);
  /// As above from a comma-separated list ("switch,chao92,voting").
  static Result<DataQualityMetric> Create(
      size_t num_items, const std::string& spec_list,
      crowd::RetentionPolicy retention = crowd::RetentionPolicy::kFullEvents);

  DataQualityMetric(DataQualityMetric&&) noexcept = default;
  DataQualityMetric& operator=(DataQualityMetric&&) noexcept = default;

  /// Records one worker vote and fans it out to every attached estimator.
  /// Tasks must arrive in non-decreasing task id order (append-only
  /// stream).
  void AddVote(uint32_t task, uint32_t worker, uint32_t item, bool is_dirty);

  // --- Concurrent ingest (the engine's striped commit path) --------------

  /// True when this pipeline can ingest from many producer threads at once:
  /// every attached estimator is a shared-stats scorer (no per-event
  /// Observe fan-out — order-sensitive estimators like SWITCH need one) and
  /// the log runs kCounts retention. Such panels are producer-order
  /// independent: their state is a function of the per-(worker, item) vote
  /// multiset, so tallies and tally-derived estimates from any commit
  /// interleaving are bit-identical to a serialized feed.
  bool SupportsConcurrentIngest() const;

  /// Switches the internal log to striped concurrent ingest (requires
  /// SupportsConcurrentIngest() and no votes yet; aborts otherwise). The
  /// per-(worker, item) matrix shards are maintained only when some
  /// attached estimator declared wants_pair_counts. After this, votes
  /// arrive through CommitVotesConcurrent — AddVote aborts.
  void EnableConcurrentIngest(size_t num_stripes);

  /// Thread-safe striped tally commit (enabled pipelines only). Item ids
  /// must be < num_items(); the caller validates (the engine session does).
  void CommitVotesConcurrent(std::span<const crowd::VoteEvent> votes);

  /// Pauses committers, reconciles the striped log, and rebuilds the shared
  /// positive-vote fingerprint from the reconciled tallies (one flat-array
  /// scan, bit-identical to incremental maintenance). Estimates / Report
  /// calls are valid while — and only while — the returned guard lives.
  /// No-op guard when concurrent ingest is not enabled.
  [[nodiscard]] crowd::ResponseLog::IngestPause ReconcileForEstimates();

  bool concurrent_ingest() const { return state_->log.concurrent_ingest(); }

  /// Estimated total number of dirty items |R_dirty| under the primary
  /// estimator.
  double EstimatedTotalErrors() const;

  /// Estimated errors not yet reflected in the current majority consensus:
  /// max(EstimatedTotalErrors() - MajorityCount(), 0). The "how many errors
  /// would more workers still find" number.
  double EstimatedUndetectedErrors() const;

  /// Quality score in [0, 1]: fraction of records whose current consensus
  /// label is believed correct, 1 - undetected/N.
  double QualityScore() const;

  /// One row per attached estimator plus the shared descriptive counts —
  /// the same numbers N independent single-method replays would produce,
  /// from one pass over the stream.
  struct EstimatorReport {
    /// Display name ("SWITCH", "CHAO92", ...).
    std::string name;
    /// The spec string the estimator was built from.
    std::string spec;
    double total_errors = 0.0;
    double undetected_errors = 0.0;
    double quality_score = 1.0;
  };
  struct QualityReport {
    uint64_t num_votes = 0;
    size_t num_items = 0;
    size_t majority_count = 0;
    size_t nominal_count = 0;
    /// Rows in spec order; row 0 is the primary estimator.
    std::vector<EstimatorReport> estimators;
  };
  QualityReport Report() const;

  /// Allocation-free form of Report() for hot publish paths: refreshes the
  /// numeric fields of `report` in place, reusing its row storage. The row
  /// names/specs are (re)written only when `report` does not already carry
  /// one row per attached estimator — pass the same QualityReport object to
  /// the same metric every call (the engine's per-session scratch pattern);
  /// a report previously filled by a *different* metric must be reset to
  /// `{}` first.
  void ReportInto(QualityReport& report) const;

  /// Number of attached estimators (>= 1).
  size_t num_estimators() const { return rows_.size(); }

  /// Display names in spec order (index 0 = primary).
  std::vector<std::string> estimator_names() const;

  /// Descriptive counts from the underlying log.
  size_t MajorityCount() const { return state_->log.MajorityCount(); }
  size_t NominalCount() const { return state_->log.NominalCount(); }
  size_t num_votes() const { return state_->log.num_events(); }
  size_t num_items() const { return state_->log.num_items(); }

  /// The underlying log (e.g., for re-analysis with other estimators).
  const crowd::ResponseLog& log() const { return state_->log; }

  /// Name of the primary estimator.
  std::string_view method_name() const {
    return rows_.front().estimator->name();
  }

 private:
  struct PrivateTag {};
  /// Heap-pinned pipeline state: estimators hold pointers into it, so the
  /// metric object itself stays cheaply movable.
  struct PipelineState {
    PipelineState(size_t num_items, crowd::RetentionPolicy retention)
        : log(num_items, retention) {}
    crowd::ResponseLog log;
    /// Fingerprint of dirty votes per item, maintained iff some attached
    /// estimator wants it (see EstimatorRegistry::Entry).
    estimators::FStatistics positive_f;
    bool maintain_positive_f = false;
    /// Some attached estimator reads the response matrix (EM-VOTING); the
    /// striped ingest path maintains the matrix shards iff set.
    bool need_pair_counts = false;
    estimators::SharedVoteStats shared;
  };
  struct Row {
    std::string spec;
    std::unique_ptr<estimators::TotalErrorEstimator> estimator;
  };

  DataQualityMetric(size_t num_items, crowd::RetentionPolicy retention,
                    PrivateTag);

  /// Shared by Create and the legacy spec-carrying Options path.
  Status AttachSpecs(std::span<const std::string> specs);

  std::unique_ptr<PipelineState> state_;
  std::vector<Row> rows_;
  /// Estimators whose needs_observe() is true, in row order — the per-event
  /// fan-out list (shared-state scorers are skipped entirely).
  std::vector<estimators::TotalErrorEstimator*> observing_;
};

/// Builds a factory for any Method, usable with the ExperimentRunner.
/// DEPRECATED: use EstimatorRegistry::Global().FactoryFor(spec).
estimators::EstimatorFactory MakeEstimatorFactory(Method method,
                                                  uint32_t vchao_shift = 1);

/// Canonical display name for a method ("SWITCH", "CHAO92", ...).
std::string_view MethodName(Method method);

/// The registry spec string equivalent to a legacy Method value
/// ("switch", "vchao92?shift=2", ...) — the migration bridge from the enum.
std::string MethodSpec(Method method, uint32_t vchao_shift = 1);

}  // namespace dqm::core

#endif  // DQM_CORE_DQM_H_
