#ifndef DQM_CORE_DQM_H_
#define DQM_CORE_DQM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "crowd/response_log.h"
#include "estimators/estimator.h"
#include "estimators/switch_total.h"

namespace dqm::core {

/// Estimation method selector for the facade.
enum class Method {
  kSwitch,      // the paper's SWITCH estimator (default, most robust)
  kChao92,      // plain species estimation (fast convergence, FP-fragile)
  kGoodTuring,  // Chao92 without the skew correction
  kVChao92,     // shifted, majority-based Chao92
  kVoting,      // descriptive majority baseline
  kNominal,     // descriptive union baseline
};

/// The user-facing Data Quality Metric (the library's quickstart API).
///
/// Feed it worker votes as they arrive; ask at any time how many errors the
/// dataset is estimated to contain, how many are still undetected, and what
/// that means as a quality score. Example:
///
///     dqm::core::DataQualityMetric metric(num_records);
///     for (auto& vote : collected_votes)
///       metric.AddVote(vote.task, vote.worker, vote.record, vote.is_dirty);
///     double total = metric.EstimatedTotalErrors();
///     double undetected = metric.EstimatedUndetectedErrors();
///     double quality = metric.QualityScore();  // in [0, 1]
class DataQualityMetric {
 public:
  struct Options {
    Method method = Method::kSwitch;
    /// vChao92 shift parameter (only used by kVChao92).
    uint32_t vchao_shift = 1;
    /// SWITCH configuration (only used by kSwitch).
    estimators::SwitchTotalErrorEstimator::Config switch_config;
  };

  /// `num_items` — size of the record (or candidate-pair) universe N.
  explicit DataQualityMetric(size_t num_items);
  DataQualityMetric(size_t num_items, const Options& options);

  /// Records one worker vote. Tasks must arrive in non-decreasing task id
  /// order (append-only stream).
  void AddVote(uint32_t task, uint32_t worker, uint32_t item, bool is_dirty);

  /// Estimated total number of dirty items |R_dirty| under the configured
  /// method.
  double EstimatedTotalErrors() const;

  /// Estimated errors not yet reflected in the current majority consensus:
  /// max(EstimatedTotalErrors() - MajorityCount(), 0). The "how many errors
  /// would more workers still find" number.
  double EstimatedUndetectedErrors() const;

  /// Quality score in [0, 1]: fraction of records whose current consensus
  /// label is believed correct, 1 - undetected/N.
  double QualityScore() const;

  /// Descriptive counts from the underlying log.
  size_t MajorityCount() const { return log_.MajorityCount(); }
  size_t NominalCount() const { return log_.NominalCount(); }
  size_t num_votes() const { return log_.num_events(); }
  size_t num_items() const { return log_.num_items(); }

  /// The underlying log (e.g., for re-analysis with other estimators).
  const crowd::ResponseLog& log() const { return log_; }

  /// Name of the active method.
  std::string_view method_name() const { return estimator_->name(); }

 private:
  crowd::ResponseLog log_;
  std::unique_ptr<estimators::TotalErrorEstimator> estimator_;
};

/// Builds a factory for any Method, usable with the ExperimentRunner.
estimators::EstimatorFactory MakeEstimatorFactory(Method method,
                                                  uint32_t vchao_shift = 1);

/// Canonical display name for a method ("SWITCH", "CHAO92", ...).
std::string_view MethodName(Method method);

}  // namespace dqm::core

#endif  // DQM_CORE_DQM_H_
