#include "core/scenario.h"

#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "crowd/assignment.h"

namespace dqm::core {

std::vector<bool> BuildTruth(const Scenario& scenario, uint64_t seed) {
  DQM_CHECK_GT(scenario.num_items, 0u);
  DQM_CHECK_LE(scenario.num_candidates, scenario.num_items);
  DQM_CHECK_LE(scenario.dirty_in_candidates, scenario.num_candidates);
  DQM_CHECK_LE(scenario.dirty_in_complement,
               scenario.num_items - scenario.num_candidates);
  Rng rng(seed);
  std::vector<bool> truth(scenario.num_items, false);
  for (size_t index :
       rng.SampleIndices(scenario.num_candidates, scenario.dirty_in_candidates)) {
    truth[index] = true;
  }
  size_t complement = scenario.num_items - scenario.num_candidates;
  for (size_t index :
       rng.SampleIndices(complement, scenario.dirty_in_complement)) {
    truth[scenario.num_candidates + index] = true;
  }
  return truth;
}

namespace {

// Assigns the scenario's per-item difficulty; deterministic for a seed.
std::vector<crowd::ItemNoise> BuildItemNoise(const Scenario& scenario,
                                             const std::vector<bool>& truth,
                                             uint64_t seed) {
  if (scenario.hard_dirty_fraction <= 0.0 &&
      scenario.confusing_clean_fraction <= 0.0) {
    return {};
  }
  Rng rng(seed ^ 0x6a09e667f3bcc909ULL);
  std::vector<crowd::ItemNoise> noise(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i]) {
      if (rng.Bernoulli(scenario.hard_dirty_fraction)) {
        noise[i].extra_false_negative =
            static_cast<float>(scenario.hard_extra_fn);
      }
    } else if (rng.Bernoulli(scenario.confusing_clean_fraction)) {
      noise[i].extra_false_positive =
          static_cast<float>(scenario.confusing_extra_fp);
    }
  }
  return noise;
}

}  // namespace

crowd::CrowdSimulator MakeSimulator(const Scenario& scenario,
                                    std::vector<bool> truth, uint64_t seed) {
  DQM_CHECK_EQ(truth.size(), scenario.num_items);
  std::unique_ptr<crowd::AssignmentStrategy> assignment;
  if (scenario.num_candidates == scenario.num_items) {
    assignment = std::make_unique<crowd::UniformAssignment>(
        scenario.num_items, scenario.items_per_task);
  } else {
    assignment = std::make_unique<crowd::PrioritizedAssignment>(
        scenario.num_items, scenario.num_candidates, scenario.items_per_task,
        scenario.epsilon);
  }
  crowd::CrowdSimulator::Config config;
  config.tasks_per_worker = scenario.tasks_per_worker;
  config.seed = seed;
  std::vector<crowd::ItemNoise> noise = BuildItemNoise(scenario, truth, seed);
  crowd::CrowdSimulator simulator(
      std::move(truth), std::move(assignment),
      crowd::WorkerPool(scenario.workers, Rng(seed ^ 0x9e3779b97f4a7c15ULL)),
      config);
  simulator.SetItemNoise(std::move(noise));
  return simulator;
}

crowd::CrowdSimulator MakeFixedQuorumSimulator(const Scenario& scenario,
                                               std::vector<bool> truth,
                                               size_t quorum, uint64_t seed) {
  DQM_CHECK_EQ(truth.size(), scenario.num_items);
  auto assignment = std::make_unique<crowd::FixedQuorumAssignment>(
      scenario.num_items, scenario.items_per_task, quorum,
      Rng(seed ^ 0xda3e39cb94b95bdbULL));
  crowd::CrowdSimulator::Config config;
  config.tasks_per_worker = scenario.tasks_per_worker;
  config.seed = seed;
  std::vector<crowd::ItemNoise> noise = BuildItemNoise(scenario, truth, seed);
  crowd::CrowdSimulator simulator(
      std::move(truth), std::move(assignment),
      crowd::WorkerPool(scenario.workers, Rng(seed ^ 0x9e3779b97f4a7c15ULL)),
      config);
  simulator.SetItemNoise(std::move(noise));
  return simulator;
}

Scenario RestaurantScenario() {
  Scenario s;
  s.name = "restaurant";
  // 1264 candidate pairs with 12 true duplicates (Section 6.1.1); the
  // crowd's dominant failure mode on this dataset is false positives.
  s.num_items = 1264;
  s.num_candidates = 1264;
  s.dirty_in_candidates = 12;
  s.items_per_task = 10;
  s.workers.base.false_positive_rate = 0.035;
  s.workers.base.false_negative_rate = 0.15;
  s.workers.variation = 0.015;
  s.workers.qualification_max_fp = 0.12;
  s.workers.qualification_max_fn = 0.5;
  return s;
}

Scenario ProductScenario() {
  Scenario s;
  s.name = "product";
  // 13022 candidate pairs, 607 true duplicates (Section 6.1.2); the harder
  // matching task produces mostly false negatives.
  s.num_items = 13022;
  s.num_candidates = 13022;
  s.dirty_in_candidates = 607;
  s.items_per_task = 10;
  s.workers.base.false_positive_rate = 0.004;
  s.workers.base.false_negative_rate = 0.15;
  s.workers.variation = 0.02;
  s.workers.qualification_max_fp = 0.05;
  s.workers.qualification_max_fn = 0.7;
  // "a few difficult pairs on which more than just a single worker make
  // mistakes" (Section 6.1.2): hard matches most workers miss, and a few
  // look-alike non-matches many workers accept.
  s.hard_dirty_fraction = 0.25;
  s.hard_extra_fn = 0.30;
  s.confusing_clean_fraction = 0.012;
  s.confusing_extra_fp = 0.45;
  return s;
}

Scenario AddressScenario() {
  Scenario s;
  s.name = "address";
  // 1000 addresses, 90 malformed (Section 6.1.3); fair amounts of both
  // error types.
  s.num_items = 1000;
  s.num_candidates = 1000;
  s.dirty_in_candidates = 90;
  s.items_per_task = 10;
  s.workers.base.false_positive_rate = 0.05;
  s.workers.base.false_negative_rate = 0.25;
  s.workers.variation = 0.02;
  s.workers.qualification_max_fp = 0.15;
  s.workers.qualification_max_fn = 0.6;
  return s;
}

Scenario SimulationScenario(double false_positive_rate,
                            double false_negative_rate,
                            size_t items_per_task) {
  Scenario s;
  s.name = "simulation";
  // Section 6.2: 1000 candidate pairs, 100 true duplicates.
  s.num_items = 1000;
  s.num_candidates = 1000;
  s.dirty_in_candidates = 100;
  s.items_per_task = items_per_task;
  s.workers.base.false_positive_rate = false_positive_rate;
  s.workers.base.false_negative_rate = false_negative_rate;
  return s;
}

Scenario PrioritizationScenario(double heuristic_error, double epsilon) {
  DQM_CHECK(heuristic_error >= 0.0 && heuristic_error <= 1.0);
  Scenario s;
  s.name = "prioritization";
  // 1000-pair candidate set R_H inside a 5000-pair universe; 100 true
  // errors total of which `heuristic_error` were misplaced into R_H^c.
  s.num_items = 5000;
  s.num_candidates = 1000;
  auto misplaced = static_cast<size_t>(heuristic_error * 100.0 + 0.5);
  s.dirty_in_candidates = 100 - misplaced;
  s.dirty_in_complement = misplaced;
  s.items_per_task = 15;
  s.epsilon = epsilon;
  s.workers.base.false_positive_rate = 0.01;
  s.workers.base.false_negative_rate = 0.10;
  return s;
}

}  // namespace dqm::core
