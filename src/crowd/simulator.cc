#include "crowd/simulator.h"

#include <algorithm>

#include "common/logging.h"

namespace dqm::crowd {

CrowdSimulator::CrowdSimulator(std::vector<bool> truth,
                               std::unique_ptr<AssignmentStrategy> assignment,
                               WorkerPool pool, const Config& config)
    : truth_(std::move(truth)),
      assignment_(std::move(assignment)),
      pool_(std::move(pool)),
      config_(config),
      rng_(config.seed) {
  DQM_CHECK(!truth_.empty());
  DQM_CHECK(assignment_ != nullptr);
  DQM_CHECK_GT(config_.tasks_per_worker, 0u);
  current_worker_ = pool_.DrawWorker();
}

void CrowdSimulator::SetItemNoise(std::vector<ItemNoise> noise) {
  DQM_CHECK(noise.empty() || noise.size() == truth_.size())
      << "item noise must align with the truth vector";
  item_noise_ = std::move(noise);
}

void CrowdSimulator::RunTask(ResponseLog& log) {
  if (tasks_by_current_worker_ >= config_.tasks_per_worker) {
    current_worker_ = pool_.DrawWorker();
    ++next_worker_;
    tasks_by_current_worker_ = 0;
  }
  const uint32_t task = next_task_++;
  WorkerProfile task_profile = current_worker_;
  if (dynamics_) dynamics_(next_worker_, task, task_profile);
  std::vector<uint32_t> items = assignment_->NextTask(rng_);
  for (uint32_t item : items) {
    DQM_CHECK_LT(item, truth_.size());
    WorkerProfile effective = task_profile;
    if (!item_noise_.empty()) {
      const ItemNoise& noise = item_noise_[item];
      effective.false_positive_rate =
          std::min(0.95, effective.false_positive_rate +
                             static_cast<double>(noise.extra_false_positive));
      effective.false_negative_rate =
          std::min(0.95, effective.false_negative_rate +
                             static_cast<double>(noise.extra_false_negative));
    }
    Vote vote = effective.Answer(truth_[item], rng_);
    log.Append(VoteEvent{task, next_worker_, item, vote});
  }
  ++tasks_by_current_worker_;
}

void CrowdSimulator::RunTasks(ResponseLog& log, size_t count) {
  for (size_t i = 0; i < count; ++i) RunTask(log);
}

size_t CrowdSimulator::NumDirty() const {
  size_t count = 0;
  for (bool dirty : truth_) count += dirty ? 1 : 0;
  return count;
}

}  // namespace dqm::crowd
