#ifndef DQM_CROWD_SIMULATOR_H_
#define DQM_CROWD_SIMULATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "crowd/assignment.h"
#include "crowd/response_log.h"
#include "crowd/worker.h"

namespace dqm::crowd {

/// Extra, item-specific error probability: some items are intrinsically
/// hard ("a few difficult pairs on which more than just a single worker
/// make mistakes", Section 6.1.2). Added on top of the worker's own rates
/// and clamped to [0, 0.95].
struct ItemNoise {
  float extra_false_positive = 0.0f;
  float extra_false_negative = 0.0f;
};

/// Drives the crowdsourcing process: draws workers from the pool, asks the
/// assignment strategy for task contents, and applies each worker's error
/// model to the hidden ground truth, appending the resulting votes to a
/// ResponseLog.
///
/// This is the synthetic stand-in for the paper's Amazon Mechanical Turk
/// deployment (10 items per task, $0.03 each, qualification-screened
/// workers); see DESIGN.md for the substitution rationale.
class CrowdSimulator {
 public:
  struct Config {
    /// Consecutive tasks answered by the same worker before a fresh worker
    /// is drawn ("a worker may take on more than a single task").
    size_t tasks_per_worker = 1;
    uint64_t seed = 1;
  };

  /// `truth[i]` is the hidden true label of item i (true = dirty).
  CrowdSimulator(std::vector<bool> truth,
                 std::unique_ptr<AssignmentStrategy> assignment,
                 WorkerPool pool, const Config& config);

  /// Installs per-item difficulty. `noise` must be empty or match the truth
  /// vector's size.
  void SetItemNoise(std::vector<ItemNoise> noise);

  /// Per-(worker, task) mutation of the active worker's effective profile,
  /// applied once per task before any item noise — the hook workload
  /// generators use to model drifting crowds (per-worker accuracy random
  /// walks, fleet-wide quality trends; see workload/). The callback must be
  /// deterministic (own any Rng it needs) so seeded runs stay reproducible.
  using ProfileDynamics =
      std::function<void(uint32_t worker, uint32_t task, WorkerProfile&)>;
  void SetProfileDynamics(ProfileDynamics dynamics) {
    dynamics_ = std::move(dynamics);
  }

  /// Runs one task end-to-end, appending its votes to `log`.
  void RunTask(ResponseLog& log);

  /// Runs `count` tasks.
  void RunTasks(ResponseLog& log, size_t count);

  const std::vector<bool>& truth() const { return truth_; }

  /// True number of dirty items — the ground-truth target |R_dirty| that the
  /// estimators try to recover (never shown to them).
  size_t NumDirty() const;

 private:
  std::vector<bool> truth_;
  std::vector<ItemNoise> item_noise_;  // empty = uniform difficulty
  ProfileDynamics dynamics_;           // null = static worker quality
  std::unique_ptr<AssignmentStrategy> assignment_;
  WorkerPool pool_;
  Config config_;
  Rng rng_;
  WorkerProfile current_worker_{};
  uint32_t next_task_ = 0;
  uint32_t next_worker_ = 0;
  size_t tasks_by_current_worker_ = 0;
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_SIMULATOR_H_
