#ifndef DQM_CROWD_ASSIGNMENT_H_
#define DQM_CROWD_ASSIGNMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"

namespace dqm::crowd {

/// Chooses which items go into each crowd task.
///
/// The paper's estimators rely on *random* worker assignment with overlap
/// (Section 1.2): redundancy across workers is what produces the f-statistics.
/// The fixed-quorum strategy models the conventional "exactly three votes per
/// item" assignment used by the SCM cost baseline.
class AssignmentStrategy {
 public:
  virtual ~AssignmentStrategy() = default;

  /// Items for the next task. Within one task items are distinct; across
  /// tasks items repeat (sampling with replacement at the task level).
  virtual std::vector<uint32_t> NextTask(Rng& rng) = 0;

  /// Number of items per task this strategy was configured with.
  virtual size_t items_per_task() const = 0;
};

/// Uniform random assignment over the whole item universe [0, num_items):
/// each task samples `items_per_task` distinct items uniformly.
class UniformAssignment : public AssignmentStrategy {
 public:
  UniformAssignment(size_t num_items, size_t items_per_task);

  std::vector<uint32_t> NextTask(Rng& rng) override;
  size_t items_per_task() const override { return items_per_task_; }

 private:
  size_t num_items_;
  size_t items_per_task_;
};

/// Prioritized assignment of Section 5.3: each task slot draws from the
/// heuristic candidate set R_H with probability 1-epsilon and from the
/// complement R_H^c with probability epsilon. Item ids [0, num_candidates)
/// form R_H; ids [num_candidates, num_items) form R_H^c.
class PrioritizedAssignment : public AssignmentStrategy {
 public:
  PrioritizedAssignment(size_t num_items, size_t num_candidates,
                        size_t items_per_task, double epsilon);

  std::vector<uint32_t> NextTask(Rng& rng) override;
  size_t items_per_task() const override { return items_per_task_; }

 private:
  size_t num_items_;
  size_t num_candidates_;
  size_t items_per_task_;
  double epsilon_;
};

/// Fixed-quorum assignment: every item receives exactly `quorum` votes in
/// total. Items are dealt from `quorum` independent random permutations,
/// chunked into tasks, mirroring the conventional "assign a fixed number of
/// workers (e.g., three) to all items" scheme the paper compares against.
/// After quorum * num_items / items_per_task tasks the deck is exhausted and
/// further tasks fall back to uniform sampling.
class FixedQuorumAssignment : public AssignmentStrategy {
 public:
  FixedQuorumAssignment(size_t num_items, size_t items_per_task, size_t quorum,
                        Rng deck_rng);

  std::vector<uint32_t> NextTask(Rng& rng) override;
  size_t items_per_task() const override { return items_per_task_; }

 private:
  size_t num_items_;
  size_t items_per_task_;
  std::vector<uint32_t> deck_;  // quorum concatenated permutations
  size_t next_ = 0;
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_ASSIGNMENT_H_
