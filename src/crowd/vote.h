#ifndef DQM_CROWD_VOTE_H_
#define DQM_CROWD_VOTE_H_

#include <cstdint>

namespace dqm::crowd {

/// A worker's verdict on one item. The third matrix state of the paper
/// ("unseen", ∅) is represented by absence of a VoteEvent.
enum class Vote : uint8_t {
  kClean = 0,
  kDirty = 1,
};

/// One cell of the paper's N x K response matrix `I`, in arrival order.
/// Arrival order matters: the SWITCH estimator is defined over the vote
/// sequence, not just the tallies.
struct VoteEvent {
  /// Task (HIT) this vote belongs to; tasks arrive in increasing order.
  uint32_t task = 0;
  /// Worker who produced the vote (column of `I`).
  uint32_t worker = 0;
  /// Item voted on (row of `I`).
  uint32_t item = 0;
  Vote vote = Vote::kClean;

  friend bool operator==(const VoteEvent&, const VoteEvent&) = default;
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_VOTE_H_
