#ifndef DQM_CROWD_LOG_IO_H_
#define DQM_CROWD_LOG_IO_H_

#include <string>

#include "common/result.h"
#include "crowd/response_log.h"

namespace dqm::crowd {

/// CSV persistence for vote logs, so real crowd results (e.g., an AMT
/// result export) can be fed to the estimators and simulated logs can be
/// archived for re-analysis.
///
/// Format: a header row `task,worker,item,vote` followed by one row per
/// vote in arrival order; `vote` is `dirty` or `clean` (also accepts
/// `1`/`0`). Arrival order is preserved — it is load-bearing for the
/// SWITCH estimator.
class ResponseLogIo {
 public:
  /// Serializes `log` (with header).
  static std::string ToCsv(const ResponseLog& log);

  /// Parses a CSV document; `num_items` fixes the item universe size and
  /// must exceed every item id in the file.
  static Result<ResponseLog> FromCsv(std::string_view text, size_t num_items);

  /// File convenience wrappers.
  static Status WriteFile(const ResponseLog& log, const std::string& path);
  static Result<ResponseLog> ReadFile(const std::string& path,
                                      size_t num_items);
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_LOG_IO_H_
